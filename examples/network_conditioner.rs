//! Network conditioning demo: why library defaults bite on mobile
//! networks (the mechanism behind the paper's Figure 3 and Figure 2).
//!
//! Downloads a file through three library default configurations over
//! good and degraded links, then compares the battery cost of retry
//! policies during an outage.
//!
//! ```sh
//! cargo run --release --example network_conditioner
//! ```

use nck_netsim::{
    backoff_retry_energy, periodic_retry_energy, success_rate, ClientConfig, LinkModel, RadioModel,
    Timeline,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let size = 128 * 1024; // A 128 KB image.

    println!("Downloading 128 KB through library defaults:");
    println!(
        "{:<28} {:>10} {:>12} {:>14}",
        "client", "WiFi", "3G", "3G + 10% loss"
    );
    let configs = [
        ("Volley (2500 ms, 1 retry)", ClientConfig::volley_default()),
        (
            "Async HTTP (10 s, 5 retries)",
            ClientConfig::async_http_default(),
        ),
        (
            "HttpURLConnection (no timeout)",
            ClientConfig::http_url_connection_default(),
        ),
    ];
    for (name, cfg) in configs {
        let wifi = success_rate(&LinkModel::wifi(), &cfg, size, 200, &mut rng);
        let g3 = success_rate(&LinkModel::three_g(), &cfg, size, 200, &mut rng);
        let lossy = success_rate(
            &LinkModel::three_g().with_loss(0.10),
            &cfg,
            size,
            200,
            &mut rng,
        );
        println!("{name:<28} {wifi:>10.2} {g3:>12.2} {lossy:>14.2}");
    }

    println!("\nIntermittent connectivity (2 s up / 1 s down):");
    let timeline = Timeline::intermittent(LinkModel::three_g(), 2000.0, 1000.0);
    println!(
        "  availability over 60 s: {:.0}% — the window the ChatSecure patch's\n\
         \x20 isConnected() guard cannot see (Figure 1).",
        timeline.availability(60_000.0, 10.0) * 100.0
    );

    println!("\nRetry-policy energy over a 60 s outage (3G radio):");
    let radio = RadioModel::three_g();
    let telegram = periodic_retry_energy(&radio, 500.0, 200.0, 60_000.0);
    let backoff = backoff_retry_energy(&radio, 1000.0, 32_000.0, 200.0, 60_000.0);
    println!("  retry every 500 ms (Figure 2 bug): {telegram:>8.0} mJ");
    println!("  exponential backoff 1 s -> 32 s:   {backoff:>8.0} mJ");
    println!(
        "  -> the buggy loop costs {:.0}x more battery",
        telegram / backoff
    );
}
