//! Inspect the pipeline's artifacts: build an app, save the APK bundle to
//! disk, reload it, and print both the ADX disassembly and the lifted
//! Jimple-style IR of its main method.
//!
//! ```sh
//! cargo run --example disassemble
//! ```

use nck_android::apk::Apk;
use nck_appgen::studyapps::telegram;

fn main() {
    // The Telegram reconstruction carries a customized retry loop —
    // interesting bytecode to look at.
    let apk = nck_appgen::generate(&telegram());

    // Round-trip through disk, as the real tool would.
    let path = std::env::temp_dir().join("telegram-reconstruction.apk");
    apk.save(&path).expect("writable temp dir");
    let loaded = Apk::load(&path).expect("reload");
    println!(
        "wrote and reloaded {} ({} bytes)\n",
        path.display(),
        apk.to_bytes().len()
    );

    println!("=== manifest ===");
    println!("{}", loaded.manifest.to_text());

    println!("=== ADX disassembly ===");
    print!("{}", nck_dex::disasm::disassemble(&loaded.adx));

    println!("=== lifted IR ===");
    let program = nck_ir::lift_file(&loaded.adx).expect("liftable");
    print!("{}", nck_ir::pretty::fmt_program(&program));

    std::fs::remove_file(&path).ok();
}
