//! Audit a corpus: generate a batch of synthetic apps, analyze each one
//! from its serialized binary, and print a per-cause summary — a
//! miniature of the paper's Table 6 run.
//!
//! ```sh
//! cargo run --release --example audit_corpus [-- <n_apps>]
//! ```

use nchecker::{CorpusStats, NChecker};
use nck_appgen::profile::corpus;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);

    let specs = corpus(2016);
    let specs = &specs[..n.min(specs.len())];
    let checker = NChecker::new();
    let mut stats = CorpusStats::new();
    let mut total_defects = 0usize;

    println!("auditing {} apps...", specs.len());
    for spec in specs {
        let apk = nck_appgen::generate(spec);
        let report = checker
            .analyze_bytes(&apk.to_bytes())
            .expect("generated app analyzes");
        total_defects += report.defects.len();
        stats.add(report.stats);
    }

    println!(
        "\n{} defects across {} apps ({} with at least one defect)\n",
        total_defects,
        stats.len(),
        stats.buggy_apps()
    );
    println!(
        "{:<30} {:>14} {:>10}",
        "NPD cause", "buggy/evaluated", "percent"
    );
    for row in stats.table6() {
        println!(
            "{:<30} {:>8}/{:<5} {:>9.0}%",
            row.cause,
            row.buggy,
            row.evaluated,
            row.percent()
        );
    }
    println!(
        "\ncustomized retry loops in {:.0}% of apps; {:.0}% of typed error callbacks ignored",
        stats.custom_retry_rate() * 100.0,
        stats.error_type_ignored_rate() * 100.0
    );
}
