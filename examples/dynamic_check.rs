//! Run an app instead of reading it: the dynamic baseline in action.
//!
//! Executes the ChatSecure reconstruction (Figure 1) under simulated
//! network scenarios and shows why the `isConnected()` patch is not
//! enough — then contrasts the dynamic findings with NChecker's static
//! reports on the same binary.
//!
//! ```sh
//! cargo run --example dynamic_check
//! ```

use nchecker::NChecker;
use nck_appgen::studyapps::chatsecure;
use nck_dyntest::{DynConfig, DynamicChecker, Event, RunOutcome};

fn main() {
    let spec = chatsecure();
    let apk = nck_appgen::generate(&spec);
    println!(
        "app: {} (the Figure 1 ChatSecure patch: login guarded by isConnected())\n",
        spec.package
    );

    // Dynamic: execute every entry point under each scenario.
    let dynamic = DynamicChecker::new(DynConfig::full());
    let observations = dynamic.observe(&apk).expect("runs");
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>8}",
        "scenario", "requests", "outcome", "alerts", "hangs"
    );
    for o in &observations {
        let alerts = o
            .events
            .iter()
            .filter(|e| matches!(e, Event::UiAlert))
            .count();
        let hangs = o.events.iter().filter(|e| matches!(e, Event::Hang)).count();
        let outcome = match &o.outcome {
            RunOutcome::Completed => "ok",
            RunOutcome::Crashed(_) => "CRASH",
            RunOutcome::SpinLoop => "SPIN",
        };
        println!(
            "{:<16} {:>10} {:>10} {:>8} {:>8}",
            o.scenario,
            o.attempts(),
            outcome,
            alerts,
            hangs
        );
    }
    println!();
    println!("dynamic findings: {:?}", dynamic.findings(&observations));
    println!(
        "\nNote the `flaky` row: connectivity reports UP, so the Figure 1 guard lets the\n\
         request through and it fails anyway — and the `stalled` row hangs because no\n\
         timeout was ever configured.\n"
    );

    // Static: the same defects without running anything.
    let report = NChecker::new().analyze_apk(&apk).expect("analyzable");
    println!("static NChecker reports ({}):", report.defects.len());
    for d in &report.defects {
        println!("  - {} ({})", d.message, d.kind.impact());
    }
}
