//! Before/after: analyze the GPSLogger reconstruction (the paper's
//! Figure 7 report example), apply the fixes its reports suggest, and
//! show the warnings disappear — the workflow the user study timed.
//!
//! ```sh
//! cargo run --example fix_the_app
//! ```

use nchecker::NChecker;
use nck_appgen::spec::{ConnCheck, Notification};
use nck_appgen::studyapps::gpslogger;

fn main() {
    let checker = NChecker::new();

    // Before: the app as shipped.
    let buggy = gpslogger();
    let report = checker
        .analyze_apk(&nck_appgen::generate(&buggy))
        .expect("analyzable");
    println!(
        "=== {} (before): {} defects ===\n",
        report.stats.package,
        report.defects.len()
    );
    for d in &report.defects {
        println!("{}", d.render());
    }

    // After: apply each report's fix suggestion to the spec —
    // connectivity check, timeout API, retry API.
    let mut fixed = buggy;
    for r in &mut fixed.requests {
        r.conn_check = ConnCheck::Guarding;
        r.set_timeout = true;
        r.set_retries = Some(2);
        r.notification = Notification::Alert;
    }
    let report = checker
        .analyze_apk(&nck_appgen::generate(&fixed))
        .expect("analyzable");
    println!(
        "=== {} (after fixes): {} defects ===",
        report.stats.package,
        report.defects.len()
    );
    assert!(
        report.defects.is_empty(),
        "applying the suggested fixes must clear every warning"
    );
    println!("all warnings resolved — average fix time in the study: 1.7 minutes.");
}
