//! Quickstart: build a small buggy app binary with the ADX builder, run
//! NChecker on it, and print the Figure 7-style warning reports.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nchecker::NChecker;
use nck_android::apk::Apk;
use nck_android::manifest::{ComponentKind, Manifest};
use nck_dex::builder::AdxBuilder;
use nck_dex::AccessFlags;

fn main() {
    // 1. Author an app the way a careless developer would: an Activity
    //    that fires an HTTP request straight from onCreate with no
    //    connectivity check, no timeout, and no failure handling.
    let mut b = AdxBuilder::new();
    b.class("Lcom/example/quickstart/MainActivity;", |c| {
        c.super_class("Landroid/app/Activity;");
        c.method(
            "onCreate",
            "(Landroid/os/Bundle;)V",
            AccessFlags::PUBLIC,
            8,
            |m| {
                let client = m.reg(0);
                let url = m.reg(1);
                let params = m.reg(2);
                m.new_instance(client, "Lcom/turbomanage/httpclient/BasicHttpClient;");
                m.invoke_direct(
                    "Lcom/turbomanage/httpclient/BasicHttpClient;",
                    "<init>",
                    "()V",
                    &[client],
                );
                m.const_str(url, "http://api.example.com/feed");
                m.const_null(params);
                m.invoke_virtual(
                    "Lcom/turbomanage/httpclient/BasicHttpClient;",
                    "get",
                    "(Ljava/lang/String;Lcom/turbomanage/httpclient/ParameterMap;)Lcom/turbomanage/httpclient/HttpResponse;",
                    &[client, url, params],
                );
                m.move_result(m.reg(3));
                m.ret(None);
            },
        );
    });

    let mut manifest = Manifest::new("com.example.quickstart");
    manifest
        .permission("android.permission.INTERNET")
        .component(
            "Lcom/example/quickstart/MainActivity;",
            ComponentKind::Activity,
        );
    let apk = Apk::new(manifest, b.finish().expect("valid app"));

    // 2. Serialize to the binary container — the artifact NChecker
    //    actually consumes — and analyze it.
    let bytes = apk.to_bytes();
    println!("built app binary: {} bytes\n", bytes.len());

    let checker = NChecker::new();
    let report = checker.analyze_bytes(&bytes).expect("analyzable binary");

    // 3. Read the warnings.
    println!(
        "NChecker found {} defects in {} request(s):\n",
        report.defects.len(),
        report.stats.requests
    );
    for d in &report.defects {
        println!("{}", d.render());
    }
}
