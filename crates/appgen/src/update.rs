//! Versioned app updates: evolving a spec the way developers ship new
//! releases.
//!
//! The incremental re-analysis experiments need *version N+1* of an app:
//! same package, mostly the same code, a few behaviour changes. This
//! module produces one by mutating a fraction of an [`AppSpec`]'s
//! request specs — spec-level edits only, so the ground-truth oracle
//! re-derives automatically from the evolved spec and the generator
//! still emits a verifying binary.
//!
//! Evolutions are deterministic in `(spec, fraction, seed)`: the same
//! inputs always produce the same new version.

use crate::spec::{AppSpec, ConnCheck, Notification};
use nck_netlibs::api::HttpMethod;
use nck_netlibs::library::Library;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A produced app update: the evolved spec plus which requests changed.
#[derive(Debug, Clone)]
pub struct Evolution {
    /// The new version of the app. Same package, same request count.
    pub spec: AppSpec,
    /// Indices (into `spec.requests`) of the requests that were edited.
    pub changed: Vec<usize>,
}

/// Evolves `spec` into a new version by editing roughly
/// `fraction` (clamped to `[0, 1]`) of its requests, at least one when
/// the app has any. Every edit is guaranteed to change the request (all
/// edit kinds toggle or cycle a field), so the generated binary differs
/// from version N exactly in the touched requests' classes.
pub fn evolve(spec: &AppSpec, fraction: f64, seed: u64) -> Evolution {
    let n = spec.requests.len();
    let mut out = spec.clone();
    if n == 0 {
        return Evolution {
            spec: out,
            changed: Vec::new(),
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let frac = fraction.clamp(0.0, 1.0);
    let k = ((frac * n as f64).round() as usize).clamp(1, n);

    // Partial Fisher-Yates: the first k slots of `order` are a uniform
    // k-subset of the request indices.
    let mut order: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        order.swap(i, j);
    }
    let mut changed: Vec<usize> = order[..k].to_vec();
    changed.sort_unstable();

    for &i in &changed {
        let r = &mut out.requests[i];
        let arm = rng.gen_range(0..5u32);
        // Volley carries timeout and retries in one policy object, so
        // its specs couple the two fields; a lone timeout toggle is not
        // expressible — edit the retry config instead.
        let arm = if r.library == Library::Volley && arm == 0 {
            3
        } else {
            arm
        };
        match arm {
            // Each arm is a self-inverse toggle or a strict cycle, so
            // the edited request never equals the original.
            0 => r.set_timeout = !r.set_timeout,
            1 => {
                r.conn_check = match r.conn_check {
                    ConnCheck::Missing => ConnCheck::Guarding,
                    ConnCheck::Guarding => ConnCheck::GuardingViaHelper,
                    ConnCheck::GuardingViaHelper => ConnCheck::UnusedResult,
                    ConnCheck::UnusedResult => ConnCheck::InterComponent,
                    ConnCheck::InterComponent => ConnCheck::Missing,
                };
            }
            2 => {
                r.notification = match r.notification {
                    Notification::Missing => Notification::Alert,
                    Notification::Alert => Notification::InterComponent,
                    Notification::InterComponent => Notification::Missing,
                };
            }
            3 => {
                r.set_retries = match r.set_retries {
                    None => Some(2),
                    Some(0) => None,
                    Some(_) => Some(0),
                };
            }
            _ => {
                r.http_method = match r.http_method {
                    HttpMethod::Get => HttpMethod::Post,
                    _ => HttpMethod::Get,
                };
            }
        }
        if r.library == Library::Volley {
            r.set_timeout = r.set_retries.is_some();
        }
    }

    Evolution { spec: out, changed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile;

    fn corpus() -> Vec<AppSpec> {
        profile::corpus(77).into_iter().take(12).collect()
    }

    #[test]
    fn evolution_is_deterministic() {
        for spec in corpus() {
            let a = evolve(&spec, 0.3, 9);
            let b = evolve(&spec, 0.3, 9);
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.changed, b.changed);
        }
    }

    #[test]
    fn evolution_changes_exactly_the_reported_requests() {
        for spec in corpus() {
            let e = evolve(&spec, 0.25, 4);
            assert_eq!(e.spec.package, spec.package);
            assert_eq!(e.spec.requests.len(), spec.requests.len());
            for (i, (old, new)) in spec.requests.iter().zip(&e.spec.requests).enumerate() {
                if e.changed.contains(&i) {
                    assert_ne!(old, new, "edited request {i} must differ");
                } else {
                    assert_eq!(old, new, "untouched request {i} must be identical");
                }
            }
        }
    }

    #[test]
    fn fraction_bounds_the_edit_count() {
        for spec in corpus() {
            let n = spec.requests.len();
            let e = evolve(&spec, 0.2, 1);
            let expect = ((0.2 * n as f64).round() as usize).clamp(1, n);
            assert_eq!(e.changed.len(), expect);
            // Zero fraction still edits one request: an update with no
            // change is not an update.
            assert_eq!(evolve(&spec, 0.0, 1).changed.len(), 1);
        }
    }

    #[test]
    fn evolved_specs_generate_verifying_binaries_with_matching_oracle() {
        use nchecker::NChecker;
        for spec in corpus().into_iter().take(4) {
            let e = evolve(&spec, 0.3, 5);
            let apk = crate::generate(&e.spec);
            let report = NChecker::new().analyze_apk(&apk).expect("clean analysis");
            let mut got: Vec<String> = report
                .defects
                .iter()
                .map(|d| format!("{:?}", d.kind))
                .collect();
            let mut want: Vec<String> = e
                .spec
                .expected_tool_report()
                .iter()
                .map(|k| format!("{k:?}"))
                .collect();
            got.sort();
            want.sort();
            assert_eq!(got, want, "oracle re-derives for {}", e.spec.package);
        }
    }
}
