//! `nck-appgen`: the synthetic app corpus.
//!
//! The paper evaluates NChecker on 285 real Android apps; those binaries
//! are not redistributable, so this crate generates a corpus of APK
//! bundles with *seeded, ground-truthed* defects instead (see DESIGN.md's
//! substitution table). [`spec`] declares apps oracle-first, [`gen`]
//! compiles specs to binaries, [`profile`] calibrates a 285-app corpus to
//! the paper's aggregate rates, [`stream`] scales that profile to
//! store-sized corpora without materializing them (random-access
//! per-index derivation, version churn via [`update`]), [`opensource`]
//! builds the 16 ground-truth apps of Table 9, [`interproc_suite`] seeds
//! helper-mediated idioms for the summary-engine ablation, and
//! [`studyapps`] reconstructs named defects from the paper (ChatSecure,
//! Telegram, GPSLogger, ...).

pub mod gen;
pub mod interproc_suite;
pub mod mutate;
pub mod opensource;
pub mod profile;
pub mod spec;
pub mod stream;
pub mod studyapps;
pub mod update;

pub use gen::{generate, generate_with_bulk};
pub use mutate::{mutate, Expectation, Mutation, MutationKind, Outcome};
pub use spec::{AppSpec, ConnCheck, Notification, Origin, RequestSpec, RespCheck, RetryShape};
pub use stream::{CorpusStream, StreamOptions};
pub use update::{evolve, Evolution};
