//! The calibrated 285-app evaluation corpus (§5.1, Table 7).
//!
//! Library usage counts are fixed exactly to Table 7 (native 270,
//! Volley 78, Async 25, Basic 18, OkHttp 11); per-app defect flags are
//! assigned with exact counts matching the paper's aggregate rates
//! (Tables 6 and 8), and per-request miss fractions are drawn from a
//! seeded RNG so Figures 8 and 9 get non-degenerate CDFs.

use crate::spec::{AppSpec, ConnCheck, Notification, Origin, RequestSpec, RespCheck, RetryShape};
use nck_netlibs::api::HttpMethod;
use nck_netlibs::library::Library;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Number of apps in the corpus.
pub const CORPUS_SIZE: usize = 285;

/// The behavioural flags of one corpus app.
#[derive(Debug, Clone, Default)]
struct Flags {
    libs: Vec<Library>,
    never_conn: bool,
    never_timeout: bool,
    never_retry: bool,
    never_notify: bool,
    service_only: bool,
    clean: bool,
    /// Designated: a user request with retries explicitly 0.
    no_retry_activity: bool,
    /// Designated: a Service request over a retry lib (default retries).
    over_retry_service_default: bool,
    /// Designated: a Service request configured with retries > 0.
    over_retry_service_explicit: bool,
    /// Designated: a POST over Volley/Async with default retries.
    over_retry_post_default: bool,
    /// Designated: a POST configured with retries > 0.
    over_retry_post_explicit: bool,
    /// Response-capable app with at least one unchecked response.
    resp_buggy: bool,
    /// Whether this app's Volley callbacks consult error types.
    check_error_types: bool,
    custom_retry: Option<RetryShape>,
}

fn pick(rng: &mut StdRng, from: &[usize], k: usize) -> BTreeSet<usize> {
    let mut v = from.to_vec();
    v.shuffle(rng);
    v.into_iter().take(k).collect()
}

/// Skewed miss fraction: pushes mass above 0.5 so that ~60% of partial
/// apps miss more than half of their requests (Figures 8 and 9).
fn miss_fraction(rng: &mut StdRng) -> f64 {
    rng.gen::<f64>().powf(0.65)
}

fn assign_flags(seed: u64) -> Vec<Flags> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flags = vec![Flags::default(); CORPUS_SIZE];

    // --- Table 7: exact library ranges. ---
    for (i, f) in flags.iter_mut().enumerate() {
        if i < 78 {
            f.libs.push(Library::Volley);
        }
        if (10..35).contains(&i) {
            f.libs.push(Library::AndroidAsyncHttp);
        }
        if (73..91).contains(&i) {
            f.libs.push(Library::BasicHttpClient);
        }
        if (91..102).contains(&i) {
            f.libs.push(Library::OkHttp);
        }
        if (102..111).contains(&i) {
            f.libs.push(Library::ApacheHttpClient);
        }
        if (15..CORPUS_SIZE).contains(&i) && !(102..111).contains(&i) {
            f.libs.push(Library::HttpUrlConnection);
        }
    }

    // --- Clean apps: the 4 of 285 with no NPDs (§5.2). ---
    for f in flags.iter_mut().take(CORPUS_SIZE).skip(281) {
        f.clean = true;
    }

    // --- Service-only apps: 285 - 264 = 21 with no user requests. ---
    for f in flags.iter_mut().take(261).skip(240) {
        f.service_only = true;
    }

    let non_clean: Vec<usize> = (0..281).collect();
    let retry_zone: Vec<usize> = (0..91).collect();
    let non_retry_zone: Vec<usize> = (91..281).collect();

    // --- Table 6 row 1: 122 apps never check connectivity. ---
    for i in pick(&mut rng, &non_clean, 122) {
        flags[i].never_conn = true;
    }

    // --- Rows 2-3: timeouts and retries. In the retry zone the two are
    // coupled (Volley carries both in one policy object): exactly 64
    // retry-zone apps never set either; 75 more never-timeout apps come
    // from outside the zone (64 + 75 = 139). ---
    let never_retry = pick(&mut rng, &retry_zone, 64);
    for &i in &never_retry {
        flags[i].never_retry = true;
        flags[i].never_timeout = true;
    }
    for i in pick(&mut rng, &non_retry_zone, 75) {
        flags[i].never_timeout = true;
    }

    // --- Table 8: retry parameter misuse over the 91 retry-zone apps.
    // Designated sets live inside 0..78 (Volley) so POSTs go through a
    // default-retries-POST library. ---
    let never_retry_volley: Vec<usize> = never_retry.iter().copied().filter(|&i| i < 78).collect();
    let configuring: Vec<usize> = retry_zone
        .iter()
        .copied()
        .filter(|i| !never_retry.contains(i))
        .collect();
    // 29 service over-retries: 22 default (76%) + 7 explicit.
    let svc_default = pick(&mut rng, &never_retry_volley, 22);
    for &i in &svc_default {
        flags[i].over_retry_service_default = true;
    }
    let cfg_for_svc = pick(&mut rng, &configuring, 7);
    for &i in &cfg_for_svc {
        flags[i].over_retry_service_explicit = true;
    }
    // 23 POST over-retries: 22 default (~98%) + 1 explicit; 2 of the
    // default ones overlap the service set so the union is 50 (55%).
    let mut post_default_pool: Vec<usize> = never_retry_volley
        .iter()
        .copied()
        .filter(|i| !svc_default.contains(i))
        .collect();
    post_default_pool.shuffle(&mut rng);
    let mut post_default: BTreeSet<usize> = post_default_pool.into_iter().take(20).collect();
    post_default.extend(svc_default.iter().copied().take(2));
    for &i in &post_default {
        flags[i].over_retry_post_default = true;
    }
    let cfg_rest: Vec<usize> = configuring
        .iter()
        .copied()
        .filter(|i| !cfg_for_svc.contains(i))
        .collect();
    let cfg_for_post = pick(&mut rng, &cfg_rest, 1);
    for &i in &cfg_for_post {
        flags[i].over_retry_post_explicit = true;
    }
    // 7 apps (8%) disable retry for a user request.
    let cfg_rest2: Vec<usize> = cfg_rest
        .iter()
        .copied()
        .filter(|i| !cfg_for_post.contains(i))
        .collect();
    for i in pick(&mut rng, &cfg_rest2, 7) {
        flags[i].no_retry_activity = true;
    }

    // --- Row 5: 151 of the 264 user-request apps never notify. ---
    let user_apps: Vec<usize> = (0..281).filter(|i| !flags[*i].service_only).collect();
    for i in pick(&mut rng, &user_apps, 151) {
        flags[i].never_notify = true;
    }

    // --- Row 6: 15 of the 20 response-capable apps are buggy. ---
    let resp_apps: Vec<usize> = (91..111).collect();
    for i in pick(&mut rng, &resp_apps, 15) {
        flags[i].resp_buggy = true;
    }

    // --- §5.2.3: ~7% of Volley apps consult error types. ---
    let volley_apps: Vec<usize> = (0..78).collect();
    for i in pick(&mut rng, &volley_apps, 5) {
        flags[i].check_error_types = true;
    }

    // --- §5.2.1: 10% of apps implement customized retry loops, wrapped
    // around native/sync requests. ---
    let shapes = [
        RetryShape::SuccessExit,
        RetryShape::CatchCondition,
        RetryShape::InterprocCatchCondition,
    ];
    let native_pool: Vec<usize> = (111..240).collect();
    for (k, i) in pick(&mut rng, &native_pool, 28).into_iter().enumerate() {
        flags[i].custom_retry = Some(shapes[k % shapes.len()]);
    }

    flags
}

fn is_retry_lib(lib: Library) -> bool {
    lib.has_retry_api()
}

fn build_app(i: usize, f: &Flags, rng: &mut StdRng) -> AppSpec {
    let package = format!("com.corpus.app{i:03}");

    if f.clean {
        // Fully configured native app: zero defects.
        let mut reqs = Vec::new();
        for _ in 0..3 {
            let mut r = RequestSpec::new(Library::HttpUrlConnection, Origin::UserClick);
            r.conn_check = ConnCheck::Guarding;
            r.set_timeout = true;
            r.notification = Notification::Alert;
            reqs.push(r);
        }
        return AppSpec::new(&package, reqs);
    }

    let n = rng.gen_range(3..=9).max(f.libs.len());
    let mut reqs: Vec<RequestSpec> = Vec::with_capacity(n);
    for j in 0..n {
        let lib = f.libs[j % f.libs.len()];
        let origin = if f.service_only {
            Origin::Service
        } else {
            match j % 4 {
                0 | 1 => Origin::UserClick,
                2 => Origin::ActivityLifecycle,
                _ => {
                    // Retry-lib requests only go to a Service when the
                    // app is designated for a service over-retry;
                    // otherwise the slot falls back to a user request.
                    if is_retry_lib(lib)
                        && !f.over_retry_service_default
                        && !f.over_retry_service_explicit
                    {
                        Origin::UserClick
                    } else {
                        Origin::Service
                    }
                }
            }
        };
        reqs.push(RequestSpec::new(lib, origin));
    }

    // Make sure designated request shapes exist.
    if (f.over_retry_service_default || f.over_retry_service_explicit)
        && !reqs
            .iter()
            .any(|r| is_retry_lib(r.library) && r.origin == Origin::Service)
    {
        reqs.push(RequestSpec::new(Library::Volley, Origin::Service));
    }
    if f.over_retry_post_default || f.over_retry_post_explicit {
        let has_post = reqs.iter().any(|r| {
            matches!(r.library, Library::Volley | Library::AndroidAsyncHttp)
                && r.http_method == HttpMethod::Post
        });
        if !has_post {
            if let Some(r) = reqs.iter_mut().find(|r| {
                matches!(r.library, Library::Volley | Library::AndroidAsyncHttp)
                    && r.origin.is_user()
            }) {
                r.http_method = HttpMethod::Post;
            } else {
                let mut r = RequestSpec::new(Library::Volley, Origin::UserClick);
                r.http_method = HttpMethod::Post;
                reqs.push(r);
            }
        }
    }
    // POSTs on retry libraries only where designated; other apps get an
    // occasional POST through a POST-neutral library.
    for (j, r) in reqs.iter_mut().enumerate() {
        if j % 6 == 5
            && matches!(
                r.library,
                Library::HttpUrlConnection | Library::ApacheHttpClient
            )
        {
            r.http_method = HttpMethod::Post;
        }
        if r.http_method == HttpMethod::Post
            && matches!(r.library, Library::Volley | Library::AndroidAsyncHttp)
            && !(f.over_retry_post_default || f.over_retry_post_explicit)
        {
            r.http_method = HttpMethod::Get;
        }
    }

    // Connectivity checks.
    if f.never_conn {
        for r in &mut reqs {
            r.conn_check = ConnCheck::Missing;
        }
    } else {
        let m = miss_fraction(rng);
        let n_req = reqs.len();
        let missing = ((m * n_req as f64).round() as usize).min(n_req.saturating_sub(1));
        for (j, r) in reqs.iter_mut().enumerate() {
            r.conn_check = if j < missing {
                ConnCheck::Missing
            } else {
                ConnCheck::Guarding
            };
        }
    }

    // Timeouts and retries (coupled inside the retry zone).
    let retry_zone = i < 91;
    let configured_set: Vec<bool> =
        if (retry_zone && f.never_retry) || (!retry_zone && f.never_timeout) {
            vec![false; reqs.len()]
        } else {
            let m = miss_fraction(rng);
            let missing = ((m * reqs.len() as f64).round() as usize).min(reqs.len() - 1);
            (0..reqs.len()).map(|j| j >= missing).collect()
        };
    for (j, r) in reqs.iter_mut().enumerate() {
        let configured = configured_set[j];
        if is_retry_lib(r.library) {
            if configured {
                let count = match r.origin {
                    Origin::Service => {
                        if f.over_retry_service_explicit {
                            3
                        } else {
                            0
                        }
                    }
                    _ => {
                        if f.no_retry_activity {
                            0
                        } else {
                            2
                        }
                    }
                };
                r.set_retries = Some(count);
                r.set_timeout = true;
            }
        } else {
            r.set_timeout = configured;
        }
    }
    // Designated explicit over-retries must actually be configured.
    if f.over_retry_service_explicit {
        if let Some(r) = reqs
            .iter_mut()
            .find(|r| is_retry_lib(r.library) && r.origin == Origin::Service)
        {
            r.set_retries = Some(3);
            r.set_timeout = true;
        }
    }
    if f.over_retry_post_explicit {
        if let Some(r) = reqs.iter_mut().find(|r| {
            matches!(r.library, Library::Volley | Library::AndroidAsyncHttp)
                && r.http_method == HttpMethod::Post
        }) {
            r.set_retries = Some(2);
            r.set_timeout = true;
        }
    }
    if f.no_retry_activity {
        if let Some(r) = reqs
            .iter_mut()
            .find(|r| is_retry_lib(r.library) && r.origin.is_user())
        {
            r.set_retries = Some(0);
            r.set_timeout = true;
        }
    }

    // Notifications (user-facing requests only).
    let user_count = reqs.iter().filter(|r| r.origin.is_user()).count();
    if user_count > 0 {
        if f.never_notify {
            for r in &mut reqs {
                r.notification = Notification::Missing;
            }
        } else {
            let m = miss_fraction(rng);
            let missing = ((m * user_count as f64).round() as usize).min(user_count - 1);
            let mut seen = 0usize;
            for r in &mut reqs {
                if r.origin.is_user() {
                    r.notification = if seen < missing {
                        Notification::Missing
                    } else {
                        Notification::Alert
                    };
                    seen += 1;
                }
            }
        }
    }
    if f.check_error_types {
        for r in &mut reqs {
            if r.library == Library::Volley {
                r.check_error_types = true;
            }
        }
    }

    // Responses (OkHttp / Apache apps).
    for (j, r) in reqs.iter_mut().enumerate() {
        if r.library.has_response_check_api() {
            r.response = if f.resp_buggy {
                // Most responses unchecked in buggy apps (§5.2.4: 75% of
                // responses miss checks).
                if j % 4 == 3 {
                    RespCheck::Checked
                } else {
                    RespCheck::Unchecked
                }
            } else {
                RespCheck::Checked
            };
        }
    }

    // Customized retry loops wrap a native/sync request.
    if let Some(shape) = f.custom_retry {
        if let Some(r) = reqs.iter_mut().find(|r| {
            matches!(
                r.library,
                Library::HttpUrlConnection | Library::OkHttp | Library::ApacheHttpClient
            )
        }) {
            r.custom_retry = Some(shape);
        }
    }

    let spec = AppSpec::new(&package, reqs);
    debug_assert!(
        !spec.oracle().is_empty(),
        "non-clean corpus app {i} came out defect-free"
    );
    spec
}

/// Generates the calibrated 285-app corpus.
pub fn corpus(seed: u64) -> Vec<AppSpec> {
    let flags = assign_flags(seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e37_79b9));
    flags
        .iter()
        .enumerate()
        .map(|(i, f)| build_app(i, f, &mut rng))
        .collect()
}

/// Ballast classes per no-network app: enough real code that skipping
/// it is worth something, small enough to generate by the hundred. Real
/// apps bundle far more non-network code than a defect-corpus app's
/// handful of request classes, so the clean profile carries a
/// comparable class count rather than an empty shell.
const CLEAN_APP_BULK: usize = 40;

/// A *no-network* app: `bulk` self-contained ballast classes (loops,
/// fields, intra-class calls) and not a single network-library
/// reference anywhere in its constant pool. This is the shape the
/// targeted prescan classifies as skippable without lifting a method.
///
/// Distinct from the corpus's "clean" apps, which *use* the network but
/// commit no defect.
pub fn no_network_app(tag: usize, bulk: usize) -> AppSpec {
    let mut spec = AppSpec::new(&format!("com.clean.app{tag:03}"), Vec::new());
    spec.bulk = bulk.max(1);
    spec
}

/// A mixed corpus of `size` apps, roughly `clean_frac` of which are
/// [`no_network_app`]s; the rest are drawn from the calibrated defect
/// [`corpus`] (cycling with re-tagged packages if `size` exceeds it).
///
/// App-store reality is closer to this mix than to the evaluation
/// corpus: most submissions never touch a network library, which is
/// exactly the headroom the targeted mode's prescan converts into
/// throughput. Deterministic in `(seed, size, clean_frac)`.
pub fn clean_corpus(seed: u64, size: usize, clean_frac: f64) -> Vec<AppSpec> {
    let n_clean = ((size as f64) * clean_frac.clamp(0.0, 1.0)).round() as usize;
    let mut is_clean = vec![false; size];
    for slot in is_clean.iter_mut().take(n_clean) {
        *slot = true;
    }
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xc1ea_0c0d));
    is_clean.shuffle(&mut rng);

    let network = corpus(seed);
    let mut out = Vec::with_capacity(size);
    let (mut clean_tag, mut net_idx) = (0usize, 0usize);
    for clean in is_clean {
        if clean {
            out.push(no_network_app(clean_tag, CLEAN_APP_BULK));
            clean_tag += 1;
        } else {
            let mut spec = network[net_idx % network.len()].clone();
            if net_idx >= network.len() {
                spec.package = format!("{}.v{}", spec.package, net_idx / network.len());
            }
            out.push(spec);
            net_idx += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_netlibs::library::Library;

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus(42);
        let b = corpus(42);
        assert_eq!(a.len(), CORPUS_SIZE);
        assert_eq!(a, b);
        let c = corpus(43);
        assert_ne!(a, c);
    }

    #[test]
    fn library_counts_match_table7() {
        let apps = corpus(42);
        let count = |lib: Library| apps.iter().filter(|a| a.libraries().contains(&lib)).count();
        assert_eq!(count(Library::Volley), 78);
        assert_eq!(count(Library::AndroidAsyncHttp), 25);
        assert_eq!(count(Library::BasicHttpClient), 18);
        assert_eq!(count(Library::OkHttp), 11);
        // Native = HttpURLConnection + Apache = 270.
        let native = apps
            .iter()
            .filter(|a| {
                a.libraries().contains(&Library::HttpUrlConnection)
                    || a.libraries().contains(&Library::ApacheHttpClient)
            })
            .count();
        assert_eq!(native, 270);
    }

    #[test]
    fn retry_zone_has_91_apps() {
        let apps = corpus(42);
        let retry_apps = apps
            .iter()
            .filter(|a| a.libraries().iter().any(|l| l.has_retry_api()))
            .count();
        assert_eq!(retry_apps, 91);
    }

    #[test]
    fn exactly_four_clean_apps() {
        let apps = corpus(42);
        let clean = apps.iter().filter(|a| a.oracle().is_empty()).count();
        assert_eq!(clean, 4);
    }

    #[test]
    fn never_conn_rate_matches_table6() {
        let apps = corpus(42);
        let never = apps
            .iter()
            .filter(|a| {
                a.requests
                    .iter()
                    .all(|r| r.conn_check == ConnCheck::Missing)
            })
            .count();
        assert_eq!(never, 122);
    }

    #[test]
    fn service_only_apps_have_no_user_requests() {
        let apps = corpus(42);
        let service_only = apps
            .iter()
            .filter(|a| !a.requests.iter().any(|r| r.origin.is_user()))
            .count();
        assert_eq!(service_only, 21);
    }

    #[test]
    fn no_network_app_has_an_empty_network_pool() {
        let apk = crate::gen::generate(&no_network_app(0, 12));
        assert!(nck_dex::verify::verify(&apk.adx).is_empty());
        assert!(!apk.adx.classes.is_empty(), "ballast classes present");
        let registry = nck_netlibs::api::Registry::standard();
        let scan = nck_dex::prescan(&apk.adx, &|class, name| {
            registry.is_relevant_api(class, name)
        });
        assert!(!scan.touches_network(), "clean app must prescan clean");
    }

    #[test]
    fn clean_corpus_hits_the_requested_mix() {
        let apps = clean_corpus(7, 100, 0.7);
        assert_eq!(apps.len(), 100);
        let clean = apps
            .iter()
            .filter(|a| a.requests.is_empty() && a.bulk > 0)
            .count();
        assert_eq!(clean, 70);
        // Deterministic, and the seed matters.
        assert_eq!(apps, clean_corpus(7, 100, 0.7));
        assert_ne!(apps, clean_corpus(8, 100, 0.7));
        // Package names stay unique even when the defect corpus cycles.
        let big = clean_corpus(7, 600, 0.1);
        let distinct: std::collections::BTreeSet<&str> =
            big.iter().map(|a| a.package.as_str()).collect();
        assert_eq!(distinct.len(), big.len());
    }

    #[test]
    fn every_sampled_app_generates_and_verifies() {
        // Spot-check a sample: generating all 285 here would slow the
        // suite; the bench harness exercises the full corpus.
        let apps = corpus(42);
        for i in [0usize, 11, 74, 92, 105, 150, 245, 282] {
            let apk = crate::gen::generate(&apps[i]);
            assert!(nck_dex::verify::verify(&apk.adx).is_empty(), "app {i}");
        }
    }
}
