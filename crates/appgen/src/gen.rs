//! Code generation: compiling an [`AppSpec`] into an APK binary.
//!
//! Every request spec expands into realistic Android shapes: Activities
//! with click listeners, Services, AsyncTask wrappers for native
//! requests, Volley error listeners, loopj response handlers, and the
//! three customized retry-loop shapes of Figure 6.

use crate::spec::{AppSpec, ConnCheck, Notification, Origin, RequestSpec, RespCheck, RetryShape};
use nck_android::apk::Apk;
use nck_android::manifest::{ComponentKind, Manifest};
use nck_dex::builder::{AdxBuilder, CodeBuilder};
use nck_dex::{AccessFlags, BinOp, CondOp};
use nck_netlibs::api::HttpMethod;
use nck_netlibs::library::Library;

const CM: &str = "Landroid/net/ConnectivityManager;";
const NETINFO: &str = "Landroid/net/NetworkInfo;";
const TOAST: &str = "Landroid/widget/Toast;";
const CONTEXT: &str = "Landroid/content/Context;";
const INTENT: &str = "Landroid/content/Intent;";
const IOE: &str = "Ljava/io/IOException;";

const BASIC: &str = "Lcom/turbomanage/httpclient/BasicHttpClient;";
const BASIC_REQ_SIG: &str =
    "(Ljava/lang/String;Lcom/turbomanage/httpclient/ParameterMap;)Lcom/turbomanage/httpclient/HttpResponse;";

const ASYNC: &str = "Lcom/loopj/android/http/AsyncHttpClient;";
const ASYNC_REQ_SIG: &str =
    "(Ljava/lang/String;Lcom/loopj/android/http/ResponseHandlerInterface;)Lcom/loopj/android/http/RequestHandle;";
const ASYNC_HANDLER_BASE: &str = "Lcom/loopj/android/http/AsyncHttpResponseHandler;";

const VOLLEY_QUEUE: &str = "Lcom/android/volley/RequestQueue;";
const VOLLEY_ADD_SIG: &str = "(Lcom/android/volley/Request;)Lcom/android/volley/Request;";
const VOLLEY_STRING_REQ: &str = "Lcom/android/volley/toolbox/StringRequest;";
const VOLLEY_REQ_INIT_SIG: &str = "(ILcom/android/volley/Response$ErrorListener;)V";
const VOLLEY_REQUEST: &str = "Lcom/android/volley/Request;";
const VOLLEY_POLICY: &str = "Lcom/android/volley/DefaultRetryPolicy;";
const VOLLEY_ERR_IFACE: &str = "Lcom/android/volley/Response$ErrorListener;";
const VOLLEY_ERR_SIG: &str = "(Lcom/android/volley/VolleyError;)V";

const OK_CLIENT: &str = "Lcom/squareup/okhttp/OkHttpClient;";
const OK_CALL: &str = "Lcom/squareup/okhttp/Call;";
const OK_RESP: &str = "Lcom/squareup/okhttp/Response;";

const APACHE: &str = "Lorg/apache/http/impl/client/DefaultHttpClient;";
const APACHE_EXEC_SIG: &str =
    "(Lorg/apache/http/client/methods/HttpUriRequest;)Lorg/apache/http/HttpResponse;";
const APACHE_RESP: &str = "Lorg/apache/http/HttpResponse;";
const APACHE_PARAMS: &str = "Lorg/apache/http/params/HttpParams;";
const APACHE_CONN_PARAMS: &str = "Lorg/apache/http/params/HttpConnectionParams;";

const HUC: &str = "Ljava/net/HttpURLConnection;";

const ONCLICK_IFACE: &str = "Landroid/view/View$OnClickListener;";
const ONCLICK_SIG: &str = "(Landroid/view/View;)V";
const ASYNCTASK: &str = "Landroid/os/AsyncTask;";

/// Fixed frame size for all generated methods.
const REGS: u16 = 16;

/// Converts a package (`com.gen.app7`) into a class-path prefix
/// (`Lcom/gen/app7/`).
fn base_of(package: &str) -> String {
    format!("L{}/", package.replace('.', "/"))
}

/// Per-request naming context.
struct Ctx<'a> {
    spec: &'a RequestSpec,
    /// Class that hosts the request-sending method (for `shouldRetry`/
    /// `trySend` helpers).
    host_class: String,
}

fn emit_toast(m: &mut CodeBuilder<'_>) {
    let t = m.reg(11);
    let s = m.reg(12);
    m.const_str(s, "Network error");
    m.invoke_static(
        TOAST,
        "makeText",
        "(Ljava/lang/String;)Landroid/widget/Toast;",
        &[s],
    );
    m.move_result(t);
    m.invoke_virtual(TOAST, "show", "()V", &[t]);
}

fn emit_broadcast(m: &mut CodeBuilder<'_>) {
    let i = m.reg(11);
    let this = m.param(0).expect("instance method");
    m.new_instance(i, INTENT);
    m.invoke_direct(INTENT, "<init>", "()V", &[i]);
    m.invoke_virtual(
        CONTEXT,
        "sendBroadcast",
        "(Landroid/content/Intent;)V",
        &[this, i],
    );
}

fn emit_log(m: &mut CodeBuilder<'_>) {
    let tag = m.reg(11);
    let msg = m.reg(12);
    m.const_str(tag, "net");
    m.const_str(msg, "request failed");
    m.invoke_static(
        "Landroid/util/Log;",
        "d",
        "(Ljava/lang/String;Ljava/lang/String;)I",
        &[tag, msg],
    );
    m.move_result(m.reg(13));
}

/// Emits the connectivity prefix; returns the skip label for a guarding
/// check (to be bound at the end of the request block).
fn emit_conn_prefix(
    m: &mut CodeBuilder<'_>,
    spec: &RequestSpec,
    host: &str,
) -> Option<nck_dex::builder::Label> {
    match spec.conn_check {
        ConnCheck::GuardingViaHelper => {
            // The guard-wrapper idiom: the connectivity APIs live in an
            // app helper and only the boolean comes back.
            let ok = m.reg(10);
            let skip = m.new_label();
            let this = m.param(0).expect("instance method");
            m.invoke_virtual(host, "isOnline", "()Z", &[this]);
            m.move_result(ok);
            m.ifz(CondOp::Eq, ok, skip);
            Some(skip)
        }
        ConnCheck::Guarding => {
            // The recommended pattern: `info != null && info.isConnected()`
            // — getActiveNetworkInfo() returns null when offline.
            let cm = m.reg(8);
            let info = m.reg(9);
            let ok = m.reg(10);
            let skip = m.new_label();
            m.new_instance(cm, CM);
            m.invoke_direct(CM, "<init>", "()V", &[cm]);
            m.invoke_virtual(
                CM,
                "getActiveNetworkInfo",
                "()Landroid/net/NetworkInfo;",
                &[cm],
            );
            m.move_result(info);
            m.ifz(CondOp::Eq, info, skip);
            m.invoke_virtual(NETINFO, "isConnected", "()Z", &[info]);
            m.move_result(ok);
            m.ifz(CondOp::Eq, ok, skip);
            Some(skip)
        }
        ConnCheck::UnusedResult => {
            // The Table 9 FN idiom: the APIs are called but the result
            // never becomes a control condition of the request.
            let cm = m.reg(8);
            let info = m.reg(9);
            let ok = m.reg(10);
            let cont = m.new_label();
            m.new_instance(cm, CM);
            m.invoke_direct(CM, "<init>", "()V", &[cm]);
            m.invoke_virtual(
                CM,
                "getActiveNetworkInfo",
                "()Landroid/net/NetworkInfo;",
                &[cm],
            );
            m.move_result(info);
            m.ifz(CondOp::Eq, info, cont); // Null-safe, but...
            m.invoke_virtual(NETINFO, "isConnected", "()Z", &[info]);
            m.move_result(ok);
            m.bind(cont); // ...both paths fall through to the request.
            None
        }
        _ => None,
    }
}

/// Emits the library-specific request core using registers 0..7.
///
/// Callback-based libraries take `err_class` (the generated error
/// listener / response handler class) when one exists.
fn emit_core(m: &mut CodeBuilder<'_>, spec: &RequestSpec, err_class: Option<&str>, host: &str) {
    match spec.library {
        Library::BasicHttpClient => {
            let cl = m.reg(0);
            let v = m.reg(1);
            let url = m.reg(2);
            let pm = m.reg(3);
            m.new_instance(cl, BASIC);
            m.invoke_direct(BASIC, "<init>", "()V", &[cl]);
            if spec.set_timeout {
                m.const_int(v, 5000);
                m.invoke_virtual(BASIC, "setReadTimeout", "(I)V", &[cl, v]);
            }
            if let Some(n) = spec.set_retries {
                emit_retry_count(m, spec, v, n, host);
                m.invoke_virtual(BASIC, "setMaxRetries", "(I)V", &[cl, v]);
            }
            m.const_str(url, "http://api.example.com/data");
            m.const_null(pm);
            let name = if spec.http_method == HttpMethod::Post {
                "post"
            } else {
                "get"
            };
            m.invoke_virtual(BASIC, name, BASIC_REQ_SIG, &[cl, url, pm]);
            m.move_result(m.reg(4));
        }
        Library::AndroidAsyncHttp => {
            let cl = m.reg(0);
            let v = m.reg(1);
            let t = m.reg(2);
            let url = m.reg(3);
            let h = m.reg(4);
            m.new_instance(cl, ASYNC);
            m.invoke_direct(ASYNC, "<init>", "()V", &[cl]);
            if spec.set_timeout {
                m.const_int(v, 10000);
                m.invoke_virtual(ASYNC, "setTimeout", "(I)V", &[cl, v]);
            }
            if let Some(n) = spec.set_retries {
                emit_retry_count(m, spec, v, n, host);
                m.const_int(t, 1500);
                m.invoke_virtual(ASYNC, "setMaxRetriesAndTimeout", "(II)V", &[cl, v, t]);
            }
            m.const_str(url, "http://api.example.com/data");
            let handler = err_class.expect("async http needs a handler class");
            m.new_instance(h, handler);
            m.invoke_direct(handler, "<init>", "()V", &[h]);
            let name = if spec.http_method == HttpMethod::Post {
                "post"
            } else {
                "get"
            };
            m.invoke_virtual(ASYNC, name, ASYNC_REQ_SIG, &[cl, url, h]);
            m.move_result(m.reg(5));
        }
        Library::Volley => {
            // A volley spec must couple timeout and retry: both travel in
            // the same DefaultRetryPolicy object.
            debug_assert_eq!(
                spec.set_timeout,
                spec.set_retries.is_some(),
                "volley specs must couple set_timeout and set_retries"
            );
            let q = m.reg(0);
            let req = m.reg(1);
            let l = m.reg(2);
            let mc = m.reg(3);
            m.invoke_static(
                "Lcom/android/volley/toolbox/Volley;",
                "newRequestQueue",
                "()Lcom/android/volley/RequestQueue;",
                &[],
            );
            m.move_result(q);
            let listener = err_class.expect("volley needs an error listener class");
            m.new_instance(l, listener);
            m.invoke_direct(listener, "<init>", "()V", &[l]);
            m.new_instance(req, VOLLEY_STRING_REQ);
            let method_const = match spec.http_method {
                HttpMethod::Get => 0,
                HttpMethod::Post => 1,
                HttpMethod::Put => 2,
                HttpMethod::Delete => 3,
                HttpMethod::Head => 4,
            };
            m.const_int(mc, method_const);
            m.invoke_direct(
                VOLLEY_STRING_REQ,
                "<init>",
                VOLLEY_REQ_INIT_SIG,
                &[req, mc, l],
            );
            if let Some(n) = spec.set_retries {
                let pol = m.reg(4);
                let t = m.reg(5);
                let nreg = m.reg(6);
                let f = m.reg(7);
                m.new_instance(pol, VOLLEY_POLICY);
                m.const_int(t, 5000);
                emit_retry_count(m, spec, nreg, n, host);
                m.const_int(f, 1);
                m.invoke_direct(VOLLEY_POLICY, "<init>", "(IIF)V", &[pol, t, nreg, f]);
                m.invoke_virtual(
                    VOLLEY_REQUEST,
                    "setRetryPolicy",
                    "(Lcom/android/volley/RetryPolicy;)Lcom/android/volley/Request;",
                    &[req, pol],
                );
            }
            m.invoke_virtual(VOLLEY_QUEUE, "add", VOLLEY_ADD_SIG, &[q, req]);
            m.move_result(m.reg(3));
        }
        Library::OkHttp => {
            let cl = m.reg(0);
            let v = m.reg(1);
            let tu = m.reg(2);
            let req = m.reg(3);
            let call = m.reg(4);
            let resp = m.reg(5);
            m.new_instance(cl, OK_CLIENT);
            m.invoke_direct(OK_CLIENT, "<init>", "()V", &[cl]);
            if spec.set_timeout {
                m.const_int(v, 10);
                m.const_null(tu);
                m.invoke_virtual(
                    OK_CLIENT,
                    "setConnectTimeout",
                    "(JLjava/util/concurrent/TimeUnit;)V",
                    &[cl, v, tu],
                );
                m.invoke_virtual(
                    OK_CLIENT,
                    "setReadTimeout",
                    "(JLjava/util/concurrent/TimeUnit;)V",
                    &[cl, v, tu],
                );
            }
            m.const_null(req);
            m.invoke_virtual(
                OK_CLIENT,
                "newCall",
                "(Lcom/squareup/okhttp/Request;)Lcom/squareup/okhttp/Call;",
                &[cl, req],
            );
            m.move_result(call);
            m.invoke_virtual(
                OK_CALL,
                "execute",
                "()Lcom/squareup/okhttp/Response;",
                &[call],
            );
            m.move_result(resp);
            emit_response_use(
                m,
                spec,
                resp,
                OK_RESP,
                "isSuccessful",
                "()Z",
                "body",
                "()Lcom/squareup/okhttp/ResponseBody;",
                host,
            );
        }
        Library::ApacheHttpClient => {
            let cl = m.reg(0);
            let params = m.reg(1);
            let v = m.reg(2);
            let req = m.reg(3);
            let resp = m.reg(4);
            m.new_instance(cl, APACHE);
            m.invoke_direct(APACHE, "<init>", "()V", &[cl]);
            if spec.set_timeout {
                m.invoke_virtual(
                    APACHE,
                    "getParams",
                    "()Lorg/apache/http/params/HttpParams;",
                    &[cl],
                );
                m.move_result(params);
                m.const_int(v, 5000);
                m.invoke_static(
                    APACHE_CONN_PARAMS,
                    "setSoTimeout",
                    &format!("({APACHE_PARAMS}I)V"),
                    &[params, v],
                );
            }
            let req_class = if spec.http_method == HttpMethod::Post {
                "Lorg/apache/http/client/methods/HttpPost;"
            } else {
                "Lorg/apache/http/client/methods/HttpGet;"
            };
            m.new_instance(req, req_class);
            m.invoke_direct(req_class, "<init>", "()V", &[req]);
            m.invoke_virtual(APACHE, "execute", APACHE_EXEC_SIG, &[cl, req]);
            m.move_result(resp);
            emit_response_use(
                m,
                spec,
                resp,
                APACHE_RESP,
                "getStatusLine",
                "()Lorg/apache/http/StatusLine;",
                "getEntity",
                "()Lorg/apache/http/HttpEntity;",
                host,
            );
        }
        Library::HttpUrlConnection => {
            let conn = m.reg(0);
            let v = m.reg(1);
            let s = m.reg(2);
            m.new_instance(conn, HUC);
            m.invoke_direct(HUC, "<init>", "()V", &[conn]);
            if spec.set_timeout {
                m.const_int(v, 15000);
                m.invoke_virtual(HUC, "setConnectTimeout", "(I)V", &[conn, v]);
                m.invoke_virtual(HUC, "setReadTimeout", "(I)V", &[conn, v]);
            }
            if spec.http_method == HttpMethod::Post {
                m.const_str(s, "POST");
                m.invoke_virtual(HUC, "setRequestMethod", "(Ljava/lang/String;)V", &[conn, s]);
            }
            m.invoke_virtual(HUC, "getInputStream", "()Ljava/io/InputStream;", &[conn]);
            m.move_result(m.reg(3));
        }
    }
}

/// Loads the configured retry count into `v`: a plain constant, or a
/// `getRetryCount()` helper call when the spec routes it through one.
fn emit_retry_count(
    m: &mut CodeBuilder<'_>,
    spec: &RequestSpec,
    v: nck_dex::Reg,
    n: u32,
    host: &str,
) {
    if spec.retries_via_helper {
        let this = m.param(0).expect("instance method");
        m.invoke_virtual(host, "getRetryCount", "()I", &[this]);
        m.move_result(v);
    } else {
        m.const_int(v, i64::from(n));
    }
}

/// Emits the response-consumption tail for a response-returning library.
#[allow(clippy::too_many_arguments)]
fn emit_response_use(
    m: &mut CodeBuilder<'_>,
    spec: &RequestSpec,
    resp: nck_dex::Reg,
    resp_class: &str,
    check_name: &str,
    check_sig: &str,
    read_name: &str,
    read_sig: &str,
    host: &str,
) {
    match spec.response {
        RespCheck::NotUsed => {}
        RespCheck::Checked => {
            // Table 10's DevFest fix: "add null check AND status check on
            // the response before reading its body".
            let ok = m.reg(6);
            let skip = m.new_label();
            m.ifz(CondOp::Eq, resp, skip);
            m.invoke_virtual(resp_class, check_name, check_sig, &[resp]);
            m.move_result(ok);
            m.ifz(CondOp::Eq, ok, skip);
            m.invoke_virtual(resp_class, read_name, read_sig, &[resp]);
            m.move_result(m.reg(7));
            m.bind(skip);
        }
        RespCheck::Unchecked => {
            m.invoke_virtual(resp_class, read_name, read_sig, &[resp]);
            m.move_result(m.reg(7));
        }
        RespCheck::CheckedViaHelper => {
            // The validation lives in an app helper; only the summary
            // engine can tell the read is guarded.
            let ok = m.reg(6);
            let skip = m.new_label();
            m.invoke_static(
                host,
                "isValidResponse",
                &format!("({resp_class})Z"),
                &[resp],
            );
            m.move_result(ok);
            m.ifz(CondOp::Eq, ok, skip);
            m.invoke_virtual(resp_class, read_name, read_sig, &[resp]);
            m.move_result(m.reg(7));
            m.bind(skip);
        }
    }
}

/// Returns `true` when the library delivers completion synchronously in
/// the sending method (so the notification lives there too).
fn is_sync(library: Library) -> bool {
    matches!(
        library,
        Library::BasicHttpClient
            | Library::OkHttp
            | Library::ApacheHttpClient
            | Library::HttpUrlConnection
    )
}

/// Emits the full request block (prefix, optional retry loop, core,
/// sync-path notification) into the current method.
fn emit_request_block(m: &mut CodeBuilder<'_>, ctx: &Ctx<'_>, err_class: Option<&str>) {
    let spec = ctx.spec;
    let skip = emit_conn_prefix(m, spec, &ctx.host_class);

    match spec.custom_retry {
        // Synchronous libraries throw checked IOExceptions, which Java
        // forces apps to catch: the failure handling (or its absence)
        // lives in the catch block, as in the paper's examples.
        None if is_sync(spec.library) => {
            let handler = m.new_label();
            let done = m.new_label();
            let t = m.begin_try();
            emit_core(m, spec, err_class, &ctx.host_class);
            m.end_try(t, &[(Some(IOE), handler)]);
            m.goto(done);
            m.bind(handler);
            m.move_exception(m.reg(13));
            if spec.origin.is_user() {
                match spec.notification {
                    Notification::Alert => emit_toast(m),
                    Notification::InterComponent => emit_broadcast(m),
                    Notification::Missing => emit_log(m),
                }
            }
            m.bind(done);
        }
        None => emit_core(m, spec, err_class, &ctx.host_class),
        Some(RetryShape::SuccessExit) => {
            let head = m.new_label();
            let handler = m.new_label();
            let done = m.new_label();
            m.bind(head);
            let t = m.begin_try();
            emit_core(m, spec, err_class, &ctx.host_class);
            m.end_try(t, &[(Some(IOE), handler)]);
            m.goto(done);
            m.bind(handler);
            m.move_exception(m.reg(13));
            m.goto(head);
            m.bind(done);
        }
        Some(RetryShape::CatchCondition) => {
            let retry = m.reg(13);
            let head = m.new_label();
            let handler = m.new_label();
            let done = m.new_label();
            m.const_int(retry, 1);
            m.bind(head);
            m.ifz(CondOp::Eq, retry, done);
            let t = m.begin_try();
            emit_core(m, spec, err_class, &ctx.host_class);
            m.end_try(t, &[(Some(IOE), handler)]);
            m.goto(done);
            m.bind(handler);
            m.move_exception(m.reg(14));
            m.invoke_virtual(
                &ctx.host_class,
                "shouldRetry",
                "()Z",
                &[m.param(0).expect("instance method")],
            );
            m.move_result(retry);
            m.goto(head);
            m.bind(done);
        }
        Some(RetryShape::InterprocCatchCondition) => {
            let ok = m.reg(13);
            let head = m.new_label();
            let done = m.new_label();
            m.const_int(ok, 0);
            m.bind(head);
            m.ifz(CondOp::Ne, ok, done);
            m.invoke_virtual(
                &ctx.host_class,
                "trySend",
                "()Z",
                &[m.param(0).expect("instance method")],
            );
            m.move_result(ok);
            m.goto(head);
            m.bind(done);
        }
    }

    // Custom-retry shapes surface the final outcome after the loop; the
    // plain sync path already notified inside its catch block.
    if spec.custom_retry.is_some() && is_sync(spec.library) && spec.origin.is_user() {
        match spec.notification {
            Notification::Alert => emit_toast(m),
            Notification::InterComponent => emit_broadcast(m),
            Notification::Missing => emit_log(m),
        }
    }

    if let Some(skip) = skip {
        m.bind(skip);
    }
}

/// Emits every helper method the spec needs on the host class: the
/// retry-shape helpers (`shouldRetry`, `trySend`), the connectivity
/// guard wrapper (`isOnline`), the retry-count getter (`getRetryCount`),
/// and the response validator (`isValidResponse`).
fn emit_spec_helpers(c: &mut nck_dex::builder::ClassBuilder<'_>, spec: &RequestSpec, host: &str) {
    match spec.custom_retry {
        Some(RetryShape::CatchCondition) => {
            c.method("shouldRetry", "()Z", AccessFlags::PUBLIC, 4, |m| {
                m.const_int(m.reg(0), 0);
                m.ret(Some(m.reg(0)));
            });
        }
        Some(RetryShape::InterprocCatchCondition) => {
            let spec = spec.clone();
            let host = host.to_owned();
            c.method("trySend", "()Z", AccessFlags::PUBLIC, REGS, move |m| {
                let ok = m.reg(13);
                let handler = m.new_label();
                let out = m.new_label();
                m.const_int(ok, 1);
                let t = m.begin_try();
                // The core request without retry wrapping.
                let mut inner = spec.clone();
                inner.custom_retry = None;
                emit_core(m, &inner, None, &host);
                m.end_try(t, &[(Some(IOE), handler)]);
                m.goto(out);
                m.bind(handler);
                m.move_exception(m.reg(14));
                m.const_int(ok, 0);
                m.bind(out);
                m.ret(Some(ok));
            });
        }
        _ => {}
    }
    if spec.conn_check == ConnCheck::GuardingViaHelper {
        c.method("isOnline", "()Z", AccessFlags::PUBLIC, 8, |m| {
            let cm = m.reg(0);
            let info = m.reg(1);
            let ok = m.reg(2);
            let offline = m.new_label();
            m.new_instance(cm, CM);
            m.invoke_direct(CM, "<init>", "()V", &[cm]);
            m.invoke_virtual(
                CM,
                "getActiveNetworkInfo",
                "()Landroid/net/NetworkInfo;",
                &[cm],
            );
            m.move_result(info);
            m.ifz(CondOp::Eq, info, offline);
            m.invoke_virtual(NETINFO, "isConnected", "()Z", &[info]);
            m.move_result(ok);
            m.ret(Some(ok));
            m.bind(offline);
            m.const_int(ok, 0);
            m.ret(Some(ok));
        });
    }
    if spec.retries_via_helper {
        if let Some(n) = spec.set_retries {
            c.method("getRetryCount", "()I", AccessFlags::PUBLIC, 2, move |m| {
                m.const_int(m.reg(0), i64::from(n));
                m.ret(Some(m.reg(0)));
            });
        }
    }
    if spec.response == RespCheck::CheckedViaHelper {
        let resp_check = match spec.library {
            Library::OkHttp => Some((OK_RESP, "isSuccessful", "()Z")),
            Library::ApacheHttpClient => Some((
                APACHE_RESP,
                "getStatusLine",
                "()Lorg/apache/http/StatusLine;",
            )),
            _ => None,
        };
        if let Some((resp_class, check_name, check_sig)) = resp_check {
            c.method(
                "isValidResponse",
                &format!("({resp_class})Z"),
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                4,
                move |m| {
                    let resp = m.param(0).expect("response param");
                    let ok = m.reg(0);
                    let bad = m.new_label();
                    m.ifz(CondOp::Eq, resp, bad);
                    m.invoke_virtual(resp_class, check_name, check_sig, &[resp]);
                    m.move_result(ok);
                    m.ifz(CondOp::Eq, ok, bad);
                    m.const_int(ok, 1);
                    m.ret(Some(ok));
                    m.bind(bad);
                    m.const_int(ok, 0);
                    m.ret(Some(ok));
                },
            );
        }
    }
}

/// Emits the callback class for callback-based libraries; returns its
/// descriptor.
fn emit_callback_class(
    b: &mut AdxBuilder,
    base: &str,
    i: usize,
    spec: &RequestSpec,
) -> Option<String> {
    match spec.library {
        Library::Volley => {
            let name = format!("{base}Err{i};");
            let spec = spec.clone();
            b.class(&name, move |c| {
                c.interface(VOLLEY_ERR_IFACE);
                c.method(
                    "onErrorResponse",
                    VOLLEY_ERR_SIG,
                    AccessFlags::PUBLIC,
                    REGS,
                    |m| {
                        if spec.check_error_types {
                            let err = m.param(1).expect("error param");
                            m.invoke_virtual(
                                "Lcom/android/volley/VolleyError;",
                                "getMessage",
                                "()Ljava/lang/String;",
                                &[err],
                            );
                            m.move_result(m.reg(0));
                        }
                        match spec.notification {
                            Notification::Alert => emit_toast(m),
                            Notification::InterComponent => emit_broadcast(m),
                            Notification::Missing => emit_log(m),
                        }
                        m.ret(None);
                    },
                );
            });
            Some(name)
        }
        Library::AndroidAsyncHttp => {
            let name = format!("{base}RespHandler{i};");
            let spec = spec.clone();
            b.class(&name, move |c| {
                c.super_class(ASYNC_HANDLER_BASE);
                c.method(
                    "onFailure",
                    "(I[Lorg/apache/http/Header;[BLjava/lang/Throwable;)V",
                    AccessFlags::PUBLIC,
                    REGS,
                    |m| {
                        match spec.notification {
                            Notification::Alert => emit_toast(m),
                            Notification::InterComponent => emit_broadcast(m),
                            Notification::Missing => emit_log(m),
                        }
                        m.ret(None);
                    },
                );
                c.method(
                    "onSuccess",
                    "(I[Lorg/apache/http/Header;[B)V",
                    AccessFlags::PUBLIC,
                    REGS,
                    |m| m.ret(None),
                );
            });
            Some(name)
        }
        _ => None,
    }
}

/// Emits one request's classes and manifest entries.
fn emit_request(
    b: &mut AdxBuilder,
    manifest: &mut Manifest,
    base: &str,
    i: usize,
    spec: &RequestSpec,
) {
    let err_class = emit_callback_class(b, base, i, spec);

    // Native user-facing requests go through an AsyncTask; the request
    // lives in doInBackground and notification in onPostExecute.
    let native_task = spec.library == Library::HttpUrlConnection && spec.origin.is_user();
    let task_class = format!("{base}Task{i};");
    if native_task {
        let spec_c = spec.clone();
        let host = task_class.clone();
        b.class(&task_class, move |c| {
            c.super_class(ASYNCTASK);
            let ctx = Ctx {
                spec: &spec_c,
                host_class: host.clone(),
            };
            c.method(
                "doInBackground",
                "([Ljava/lang/Object;)Ljava/lang/Object;",
                AccessFlags::PUBLIC,
                REGS,
                |m| {
                    emit_request_block(m, &ctx, None);
                    m.const_null(m.reg(7));
                    m.ret(Some(m.reg(7)));
                },
            );
            c.method(
                "onPostExecute",
                "(Ljava/lang/Object;)V",
                AccessFlags::PUBLIC,
                REGS,
                |m| {
                    match spec_c.notification {
                        Notification::Alert => emit_toast(m),
                        Notification::InterComponent => emit_broadcast(m),
                        Notification::Missing => emit_log(m),
                    }
                    m.ret(None);
                },
            );
            emit_spec_helpers(c, &spec_c, &host);
        });
    }

    match spec.origin {
        Origin::UserClick => {
            let act = format!("{base}Act{i};");
            let listener = format!("{base}Act{i}$L;");
            manifest.component(&act, ComponentKind::Activity);
            {
                let listener_c = listener.clone();
                b.class(&act, move |c| {
                    c.super_class("Landroid/app/Activity;");
                    c.method(
                        "onCreate",
                        "(Landroid/os/Bundle;)V",
                        AccessFlags::PUBLIC,
                        REGS,
                        |m| {
                            let l = m.reg(0);
                            m.new_instance(l, &listener_c);
                            m.invoke_direct(&listener_c, "<init>", "()V", &[l]);
                            m.ret(None);
                        },
                    );
                });
            }
            let spec_c = spec.clone();
            let host = listener.clone();
            let err = err_class.clone();
            let task = task_class.clone();
            b.class(&listener, move |c| {
                c.interface(ONCLICK_IFACE);
                let ctx = Ctx {
                    spec: &spec_c,
                    host_class: host.clone(),
                };
                c.method("onClick", ONCLICK_SIG, AccessFlags::PUBLIC, REGS, |m| {
                    if native_task {
                        let t = m.reg(0);
                        m.new_instance(t, &task);
                        m.invoke_direct(&task, "<init>", "()V", &[t]);
                        m.invoke_virtual(
                            &task,
                            "execute",
                            "([Ljava/lang/Object;)Landroid/os/AsyncTask;",
                            &[t, m.reg(1)],
                        );
                        m.move_result(m.reg(2));
                    } else {
                        emit_request_block(m, &ctx, err.as_deref());
                    }
                    m.ret(None);
                });
                if !native_task {
                    emit_spec_helpers(c, &spec_c, &host);
                }
            });
        }
        Origin::ActivityLifecycle => {
            let act = format!("{base}Act{i};");
            manifest.component(&act, ComponentKind::Activity);
            let spec_c = spec.clone();
            let host = act.clone();
            let err = err_class.clone();
            let task = task_class.clone();
            b.class(&act, move |c| {
                c.super_class("Landroid/app/Activity;");
                let ctx = Ctx {
                    spec: &spec_c,
                    host_class: host.clone(),
                };
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    REGS,
                    |m| {
                        if native_task {
                            let t = m.reg(0);
                            m.new_instance(t, &task);
                            m.invoke_direct(&task, "<init>", "()V", &[t]);
                            m.invoke_virtual(
                                &task,
                                "execute",
                                "([Ljava/lang/Object;)Landroid/os/AsyncTask;",
                                &[t, m.reg(1)],
                            );
                            m.move_result(m.reg(2));
                        } else {
                            emit_request_block(m, &ctx, err.as_deref());
                        }
                        m.ret(None);
                    },
                );
                if !native_task {
                    emit_spec_helpers(c, &spec_c, &host);
                }
            });
        }
        Origin::Service => {
            let svc = format!("{base}Svc{i};");
            manifest.component(&svc, ComponentKind::Service);
            let spec_c = spec.clone();
            let host = svc.clone();
            let err = err_class.clone();
            b.class(&svc, move |c| {
                c.super_class("Landroid/app/Service;");
                let ctx = Ctx {
                    spec: &spec_c,
                    host_class: host.clone(),
                };
                c.method(
                    "onStartCommand",
                    "(Landroid/content/Intent;II)I",
                    AccessFlags::PUBLIC,
                    REGS,
                    |m| {
                        emit_request_block(m, &ctx, err.as_deref());
                        m.const_int(m.reg(7), 0);
                        m.ret(Some(m.reg(7)));
                    },
                );
                emit_spec_helpers(c, &spec_c, &host);
            });
        }
    }

    // Inter-component connectivity check: a receiver that checks the
    // network and only then launches the requesting component through an
    // explicit Intent. The flow is off the entry→request call-graph
    // path, so the default (paper) analysis reports a false positive;
    // the ICC-aware mode resolves the Intent target and clears it.
    if spec.conn_check == ConnCheck::InterComponent {
        let gate = format!("{base}Gate{i};");
        let target = match spec.origin {
            Origin::Service => format!("{base}Svc{i};"),
            _ => format!("{base}Act{i};"),
        };
        let launch = if spec.origin == Origin::Service {
            "startService"
        } else {
            "startActivity"
        };
        manifest.component(&gate, ComponentKind::Receiver);
        b.class(&gate, move |c| {
            c.super_class("Landroid/content/BroadcastReceiver;");
            c.method(
                "onReceive",
                "(Landroid/content/Context;Landroid/content/Intent;)V",
                AccessFlags::PUBLIC,
                REGS,
                |m| {
                    let cm = m.reg(0);
                    let info = m.reg(1);
                    let ok = m.reg(2);
                    let skip = m.new_label();
                    m.new_instance(cm, CM);
                    m.invoke_direct(CM, "<init>", "()V", &[cm]);
                    m.invoke_virtual(
                        CM,
                        "getActiveNetworkInfo",
                        "()Landroid/net/NetworkInfo;",
                        &[cm],
                    );
                    m.move_result(info);
                    m.ifz(CondOp::Eq, info, skip);
                    m.invoke_virtual(NETINFO, "isConnected", "()Z", &[info]);
                    m.move_result(ok);
                    m.ifz(CondOp::Eq, ok, skip);
                    let intent = m.reg(3);
                    let cls = m.reg(4);
                    m.new_instance(intent, INTENT);
                    m.const_class(cls, &target);
                    m.invoke_direct(INTENT, "<init>", "(Ljava/lang/Class;)V", &[intent, cls]);
                    m.invoke_virtual(
                        CONTEXT,
                        launch,
                        "(Landroid/content/Intent;)V",
                        &[m.param(1).unwrap(), intent],
                    );
                    m.bind(skip);
                    m.ret(None);
                },
            );
        });
    }

    // Inter-component notification: a second activity that shows the
    // broadcast error (Table 9 FP idiom).
    if spec.origin.is_user() && spec.notification == Notification::InterComponent {
        let view = format!("{base}ErrView{i};");
        manifest.component(&view, ComponentKind::Activity);
        b.class(&view, |c| {
            c.super_class("Landroid/app/Activity;");
            c.method(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                AccessFlags::PUBLIC,
                REGS,
                |m| {
                    emit_toast(m);
                    m.ret(None);
                },
            );
        });
    }
}

/// Compiles `spec` into an APK bundle, honouring the spec's own
/// [`AppSpec::bulk`] ballast-class count.
pub fn generate(spec: &AppSpec) -> Apk {
    generate_with_bulk(spec, spec.bulk)
}

/// Like [`generate`], but prepends `bulk` deterministic, self-contained
/// "ballast" classes before the request classes.
///
/// Real apps bundle far more code than their networking paths; ballast
/// classes stand in for that bulk. Each is loop-heavy (the fixpoint
/// dataflow engine has real work to do per method), touches no network
/// API (the checkers stay silent on them), and calls only within itself
/// (no edges into the request classes). They are emitted *first* so a
/// versioned update that changes request specs perturbs only the file
/// tail, leaving a long unchanged class prefix for the incremental
/// analyzer to replay.
pub fn generate_with_bulk(spec: &AppSpec, bulk: usize) -> Apk {
    let mut b = AdxBuilder::new();
    let base = base_of(&spec.package);
    let mut manifest = Manifest::new(&spec.package);
    manifest.permission("android.permission.INTERNET");
    if spec
        .requests
        .iter()
        .any(|r| r.conn_check != ConnCheck::Missing)
    {
        manifest.permission("android.permission.ACCESS_NETWORK_STATE");
    }
    for i in 0..bulk {
        emit_ballast_class(&mut b, &base, i);
    }
    for (i, req) in spec.requests.iter().enumerate() {
        emit_request(&mut b, &mut manifest, &base, i, req);
    }
    let adx = b.finish().expect("generator binds all labels");
    debug_assert!(
        nck_dex::verify::verify(&adx).is_empty(),
        "generated binary must verify"
    );
    Apk::new(manifest, adx)
}

/// One ballast class: arithmetic loop kernels plus an intra-class
/// caller, salted by `i` so every class has distinct code (and so a
/// distinct content fingerprint).
fn emit_ballast_class(b: &mut AdxBuilder, base: &str, i: usize) {
    let name = format!("{base}Ballast{i};");
    let salt = (i as i64) % 97 + 3;
    let churn_host = name.clone();
    b.class(&name, |c| {
        c.super_class("Ljava/lang/Object;");
        // churn(n): a counted loop of mixed arithmetic.
        c.method(
            "churn",
            "(I)I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            8,
            move |m| {
                let n = m.param(0).expect("churn arg");
                let acc = m.reg(0);
                let j = m.reg(1);
                let t = m.reg(2);
                let head = m.new_label();
                let out = m.new_label();
                m.const_int(acc, salt);
                m.const_int(j, 0);
                m.bind(head);
                m.if_(CondOp::Ge, j, n, out);
                m.binop(BinOp::Mul, t, acc, j);
                m.binop_lit(BinOp::Add, acc, t, (salt as i32) + 1);
                m.binop(BinOp::Xor, acc, acc, j);
                m.binop_lit(BinOp::Add, j, j, 1);
                m.goto(head);
                m.bind(out);
                m.ret(Some(acc));
            },
        );
        // weave(): a nested loop driving churn through an intra-class
        // call, with a data-dependent early exit.
        c.method(
            "weave",
            "()I",
            AccessFlags::PUBLIC | AccessFlags::STATIC,
            8,
            move |m| {
                let acc = m.reg(0);
                let k = m.reg(1);
                let lim = m.reg(2);
                let t = m.reg(3);
                let head = m.new_label();
                let out = m.new_label();
                m.const_int(acc, 0);
                m.const_int(k, 0);
                m.const_int(lim, salt + 5);
                m.bind(head);
                m.if_(CondOp::Ge, k, lim, out);
                m.invoke_static(&churn_host, "churn", "(I)I", &[k]);
                m.move_result(t);
                m.binop(BinOp::Add, acc, acc, t);
                m.binop_lit(BinOp::Rem, t, acc, 251);
                m.ifz(CondOp::Lt, t, out);
                m.binop_lit(BinOp::Add, k, k, 1);
                m.goto(head);
                m.bind(out);
                m.ret(Some(acc));
            },
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use nchecker::{DefectKind, NChecker};
    use nck_netlibs::library::ALL_LIBRARIES;

    fn report_kinds(spec: &AppSpec) -> Vec<DefectKind> {
        let apk = generate(spec);
        let report = NChecker::new().analyze_apk(&apk).unwrap();
        report.defects.iter().map(|d| d.kind).collect()
    }

    fn sorted(mut v: Vec<DefectKind>) -> Vec<String> {
        let mut out: Vec<String> = v.drain(..).map(|k| format!("{k:?}")).collect();
        out.sort();
        out
    }

    /// The generator's oracle and the checker's report must agree for
    /// straightforward specs, for every library and origin.
    #[test]
    fn tool_matches_oracle_on_naive_specs() {
        for &lib in ALL_LIBRARIES {
            for origin in [
                Origin::UserClick,
                Origin::ActivityLifecycle,
                Origin::Service,
            ] {
                let spec = AppSpec::new("com.gen.naive", vec![RequestSpec::new(lib, origin)]);
                let got = sorted(report_kinds(&spec));
                let want = sorted(spec.expected_tool_report());
                assert_eq!(got, want, "library {lib}, origin {origin:?}");
            }
        }
    }

    #[test]
    fn tool_matches_oracle_on_well_configured_specs() {
        for &lib in ALL_LIBRARIES {
            let mut r = RequestSpec::new(lib, Origin::UserClick);
            r.conn_check = ConnCheck::Guarding;
            r.set_timeout = true;
            if lib.has_retry_api() {
                r.set_retries = Some(2);
            }
            if lib == Library::Volley {
                // Coupled timeout/retry.
                r.set_retries = Some(2);
                r.check_error_types = true;
            }
            r.notification = Notification::Alert;
            if lib.has_response_check_api() {
                r.response = RespCheck::Checked;
            }
            let spec = AppSpec::new("com.gen.good", vec![r]);
            let got = sorted(report_kinds(&spec));
            let want = sorted(spec.expected_tool_report());
            assert_eq!(got, want, "library {lib}");
            assert!(
                got.is_empty(),
                "well-configured app must be clean: {lib}: {got:?}"
            );
        }
    }

    #[test]
    fn fn_and_fp_idioms_behave_as_in_table9() {
        // Known FN: unused connectivity result.
        let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
        r.conn_check = ConnCheck::UnusedResult;
        let spec = AppSpec::new("com.gen.fnapp", vec![r]);
        let got = report_kinds(&spec);
        assert!(!got.contains(&DefectKind::MissedConnectivityCheck));

        // Known FP: inter-component check.
        let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
        r.conn_check = ConnCheck::InterComponent;
        let spec = AppSpec::new("com.gen.fpapp", vec![r]);
        let got = report_kinds(&spec);
        assert!(got.contains(&DefectKind::MissedConnectivityCheck));
    }

    #[test]
    fn custom_retry_shapes_are_recognized() {
        for shape in [
            RetryShape::SuccessExit,
            RetryShape::CatchCondition,
            RetryShape::InterprocCatchCondition,
        ] {
            let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
            r.custom_retry = Some(shape);
            let spec = AppSpec::new("com.gen.retry", vec![r]);
            let apk = generate(&spec);
            let report = NChecker::new().analyze_apk(&apk).unwrap();
            assert_eq!(
                report.stats.custom_retry_loops, 1,
                "shape {shape:?} must be detected"
            );
            // A custom retry suppresses the missed-retry defect.
            assert!(!report
                .defects
                .iter()
                .any(|d| d.kind == DefectKind::MissedRetry));
        }
    }

    #[test]
    fn helper_idioms_are_seen_by_the_summary_engine() {
        // Guard wrapper, helper-provided retry count, and helper-checked
        // response: clean under the default (interprocedural) analysis.
        let mut r = RequestSpec::new(Library::OkHttp, Origin::UserClick);
        r.conn_check = ConnCheck::GuardingViaHelper;
        r.set_timeout = true;
        r.notification = Notification::Alert;
        r.response = RespCheck::CheckedViaHelper;
        let spec = AppSpec::new("com.gen.helpers", vec![r]);
        let got = sorted(report_kinds(&spec));
        let want = sorted(spec.expected_tool_report());
        assert_eq!(got, want);
        assert!(
            got.is_empty(),
            "helper-mediated practices must be clean: {got:?}"
        );
    }

    #[test]
    fn helper_idioms_defeat_the_method_local_analysis() {
        use nchecker::CheckerConfig;
        let mut r = RequestSpec::new(Library::OkHttp, Origin::UserClick);
        r.conn_check = ConnCheck::GuardingViaHelper;
        r.set_timeout = true;
        r.notification = Notification::Alert;
        r.response = RespCheck::CheckedViaHelper;
        let spec = AppSpec::new("com.gen.helpersoff", vec![r]);
        let apk = generate(&spec);
        let off = NChecker::with_config(CheckerConfig {
            interproc: false,
            ..CheckerConfig::default()
        });
        let report = off.analyze_apk(&apk).unwrap();
        assert!(report.has(DefectKind::MissedConnectivityCheck));
        assert!(report.has(DefectKind::MissedResponseCheck));
    }

    #[test]
    fn helper_retry_count_recovers_the_no_retry_defect() {
        use nchecker::CheckerConfig;
        // setMaxRetries(getRetryCount()) with a helper returning 0 in an
        // activity: a true NoRetryInActivity defect only the summary
        // engine can see (the local analysis cannot prove the count).
        let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
        r.set_retries = Some(0);
        r.retries_via_helper = true;
        r.set_timeout = true;
        r.conn_check = ConnCheck::Guarding;
        r.notification = Notification::Alert;
        let spec = AppSpec::new("com.gen.retryhelper", vec![r]);
        assert!(spec.oracle().contains(&DefectKind::NoRetryInActivity));
        let apk = generate(&spec);
        let on = NChecker::new().analyze_apk(&apk).unwrap();
        assert!(
            on.has(DefectKind::NoRetryInActivity),
            "summary engine recovers the count"
        );
        let off = NChecker::with_config(CheckerConfig {
            interproc: false,
            ..CheckerConfig::default()
        });
        let report = off.analyze_apk(&apk).unwrap();
        assert!(
            !report.has(DefectKind::NoRetryInActivity),
            "method-local analysis cannot prove retries are disabled"
        );
    }

    #[test]
    fn generated_binaries_roundtrip_and_verify() {
        let mut r = RequestSpec::new(Library::Volley, Origin::UserClick);
        r.set_retries = Some(1);
        r.set_timeout = true;
        let spec = AppSpec::new("com.gen.round", vec![r]);
        let apk = generate(&spec);
        let bytes = apk.to_bytes();
        let parsed = Apk::from_bytes(&bytes).unwrap();
        assert!(nck_dex::verify::verify(&parsed.adx).is_empty());
    }

    #[test]
    fn multi_request_apps_accumulate_defects() {
        let spec = AppSpec::new(
            "com.gen.multi",
            vec![
                RequestSpec::new(Library::BasicHttpClient, Origin::UserClick),
                RequestSpec::new(Library::AndroidAsyncHttp, Origin::Service),
                RequestSpec::new(Library::HttpUrlConnection, Origin::ActivityLifecycle),
            ],
        );
        let apk = generate(&spec);
        let report = NChecker::new().analyze_apk(&apk).unwrap();
        assert_eq!(report.stats.requests, 3);
        let got = sorted(report.defects.iter().map(|d| d.kind).collect());
        let want = sorted(spec.expected_tool_report());
        assert_eq!(got, want);
    }
}
