//! Generates one synthetic APK bundle and writes it to disk, so shell
//! scripts (CI smoke tests, manual `nchecker` runs) can produce inputs
//! without linking against the generator.
//!
//! ```text
//! genapp [--clean-frac F] <gpslogger|suite:N|corpus:SEED:INDEX|cleancorpus:SEED:INDEX> <out.apk>
//! ```

use std::process::ExitCode;

/// Apps in a `cleancorpus:` mix (the full 285-app defect corpus is
/// still reachable through `corpus:`; the mixed corpus exists to
/// exercise the targeted prescan, where size matters less than mix).
const CLEAN_CORPUS_SIZE: usize = 100;

fn usage() -> ExitCode {
    eprintln!(
        "usage: genapp [--clean-frac F] \
         <gpslogger|suite:N|corpus:SEED:INDEX|cleancorpus:SEED:INDEX> <out.apk>"
    );
    eprintln!();
    eprintln!("  gpslogger             the GPSLogger study app");
    eprintln!("  suite:N               app N of the interprocedural suite");
    eprintln!("  corpus:SEED:IDX       app IDX of the seeded evaluation corpus");
    eprintln!("  cleancorpus:SEED:IDX  app IDX of a 100-app mix of no-network and");
    eprintln!("                        defect-corpus apps (see --clean-frac)");
    eprintln!("  --clean-frac F        no-network fraction of the cleancorpus mix,");
    eprintln!("                        in [0, 1] (default 0.7)");
    ExitCode::from(2)
}

fn spec_for(what: &str, clean_frac: f64) -> Option<nck_appgen::AppSpec> {
    if what == "gpslogger" {
        return Some(nck_appgen::studyapps::gpslogger());
    }
    if let Some(n) = what.strip_prefix("suite:") {
        let n: usize = n.parse().ok()?;
        return nck_appgen::interproc_suite::interproc_apps()
            .into_iter()
            .nth(n);
    }
    if let Some(rest) = what.strip_prefix("corpus:") {
        let (seed, idx) = rest.split_once(':')?;
        let seed: u64 = seed.parse().ok()?;
        let idx: usize = idx.parse().ok()?;
        return nck_appgen::profile::corpus(seed).into_iter().nth(idx);
    }
    if let Some(rest) = what.strip_prefix("cleancorpus:") {
        let (seed, idx) = rest.split_once(':')?;
        let seed: u64 = seed.parse().ok()?;
        let idx: usize = idx.parse().ok()?;
        return nck_appgen::profile::clean_corpus(seed, CLEAN_CORPUS_SIZE, clean_frac)
            .into_iter()
            .nth(idx);
    }
    None
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut clean_frac = 0.7f64;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--clean-frac" {
            let Some(f) = it.next().and_then(|v| v.parse().ok()) else {
                return usage();
            };
            if !(0.0..=1.0).contains(&f) {
                return usage();
            }
            clean_frac = f;
        } else {
            positional.push(a);
        }
    }
    let [what, out] = positional.as_slice() else {
        return usage();
    };
    let Some(spec) = spec_for(what, clean_frac) else {
        return usage();
    };
    let apk = nck_appgen::generate(&spec);
    if let Err(e) = apk.save(std::path::Path::new(out)) {
        eprintln!("{out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out} ({})", spec.package);
    ExitCode::SUCCESS
}
