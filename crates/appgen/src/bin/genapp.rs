//! Generates synthetic APK bundles and writes them to disk, so shell
//! scripts (CI smoke tests, manual `nchecker` runs) can produce inputs
//! without linking against the generator.
//!
//! ```text
//! genapp [--clean-frac F] <gpslogger|suite:N|corpus:SEED:INDEX|cleancorpus:SEED:INDEX> <out.apk>
//! genapp corpus --seed S --count N [--clean-frac F] [--shards K] [--version V] <outdir>
//! ```
//!
//! The `corpus` mode streams a store-scale corpus straight to a sharded
//! directory tree (`outdir/shard-XX/appNNNNNN.apk`), one bundle at a
//! time — corpus size never shows up as memory. `--version V` writes
//! version `V` of every app under the *same* file names, which is how a
//! vetting pipeline simulates a store-wide resubmission wave.

use std::process::ExitCode;

/// Apps in a `cleancorpus:` mix (the full 285-app defect corpus is
/// still reachable through `corpus:`; the mixed corpus exists to
/// exercise the targeted prescan, where size matters less than mix).
const CLEAN_CORPUS_SIZE: usize = 100;

fn usage() -> ExitCode {
    eprintln!(
        "usage: genapp [--clean-frac F] \
         <gpslogger|suite:N|corpus:SEED:INDEX|cleancorpus:SEED:INDEX> <out.apk>\n\
         \x20      genapp corpus --seed S --count N [--clean-frac F] [--shards K] \
         [--version V] <outdir>"
    );
    eprintln!();
    eprintln!("  gpslogger             the GPSLogger study app");
    eprintln!("  suite:N               app N of the interprocedural suite");
    eprintln!("  corpus:SEED:IDX       app IDX of the seeded evaluation corpus");
    eprintln!("  cleancorpus:SEED:IDX  app IDX of a 100-app mix of no-network and");
    eprintln!("                        defect-corpus apps (see --clean-frac)");
    eprintln!("  --clean-frac F        no-network fraction of the mix, in [0, 1]");
    eprintln!("                        (default 0.7; corpus mode default 0.5)");
    eprintln!();
    eprintln!("corpus mode (streams a store-scale corpus to a sharded tree):");
    eprintln!("  --seed S              stream seed (required)");
    eprintln!("  --count N             apps to write (required)");
    eprintln!("  --shards K            shard directories (default 16)");
    eprintln!("  --version V           write version V of every app (default 0);");
    eprintln!("                        same file names, evolved content");
    ExitCode::from(2)
}

fn spec_for(what: &str, clean_frac: f64) -> Option<nck_appgen::AppSpec> {
    if what == "gpslogger" {
        return Some(nck_appgen::studyapps::gpslogger());
    }
    if let Some(n) = what.strip_prefix("suite:") {
        let n: usize = n.parse().ok()?;
        return nck_appgen::interproc_suite::interproc_apps()
            .into_iter()
            .nth(n);
    }
    if let Some(rest) = what.strip_prefix("corpus:") {
        let (seed, idx) = rest.split_once(':')?;
        let seed: u64 = seed.parse().ok()?;
        let idx: usize = idx.parse().ok()?;
        return nck_appgen::profile::corpus(seed).into_iter().nth(idx);
    }
    if let Some(rest) = what.strip_prefix("cleancorpus:") {
        let (seed, idx) = rest.split_once(':')?;
        let seed: u64 = seed.parse().ok()?;
        let idx: usize = idx.parse().ok()?;
        return nck_appgen::profile::clean_corpus(seed, CLEAN_CORPUS_SIZE, clean_frac)
            .into_iter()
            .nth(idx);
    }
    None
}

/// The `genapp corpus` mode: stream `count` apps into a sharded tree.
fn corpus_main(args: &[String]) -> ExitCode {
    let mut seed: Option<u64> = None;
    let mut count: Option<usize> = None;
    let mut clean_frac = 0.5f64;
    let mut shards = 16usize;
    let mut version = 0u32;
    let mut outdir: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = || it.next();
        match a.as_str() {
            "--seed" => match value().and_then(|v| v.parse().ok()) {
                Some(v) => seed = Some(v),
                None => return usage(),
            },
            "--count" => match value().and_then(|v| v.parse().ok()) {
                Some(v) => count = Some(v),
                None => return usage(),
            },
            "--clean-frac" => match value().and_then(|v| v.parse().ok()) {
                Some(f) if (0.0..=1.0).contains(&f) => clean_frac = f,
                _ => return usage(),
            },
            "--shards" => match value().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => shards = v,
                _ => return usage(),
            },
            "--version" => match value().and_then(|v| v.parse().ok()) {
                Some(v) => version = v,
                None => return usage(),
            },
            s if s.starts_with('-') => return usage(),
            _ if outdir.is_none() => outdir = Some(a),
            _ => return usage(),
        }
    }
    let (Some(seed), Some(count), Some(outdir)) = (seed, count, outdir) else {
        return usage();
    };

    let options = nck_appgen::StreamOptions {
        clean_frac,
        ..nck_appgen::StreamOptions::default()
    };
    let stream = nck_appgen::CorpusStream::with_options(seed, count, options);
    let root = std::path::Path::new(outdir);
    let mut bytes_written = 0u64;
    for i in 0..count {
        let spec = stream.version_at(i, version);
        let apk = nck_appgen::generate(&spec);
        let path = nck_appgen::stream::sharded_path(root, shards, i);
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("{}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = apk.save(&path) {
            eprintln!("{}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        bytes_written += apk.to_bytes().len() as u64;
        if (i + 1) % 1000 == 0 {
            eprintln!("corpus: {}/{count} bundles written", i + 1);
        }
    }
    eprintln!(
        "wrote {count} bundles (version {version}, {shards} shards, {bytes_written} bytes) \
         under {outdir}"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("corpus") {
        return corpus_main(&args[1..]);
    }
    let mut clean_frac = 0.7f64;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--clean-frac" {
            let Some(f) = it.next().and_then(|v| v.parse().ok()) else {
                return usage();
            };
            if !(0.0..=1.0).contains(&f) {
                return usage();
            }
            clean_frac = f;
        } else {
            positional.push(a);
        }
    }
    let [what, out] = positional.as_slice() else {
        return usage();
    };
    let Some(spec) = spec_for(what, clean_frac) else {
        return usage();
    };
    let apk = nck_appgen::generate(&spec);
    if let Err(e) = apk.save(std::path::Path::new(out)) {
        eprintln!("{out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out} ({})", spec.package);
    ExitCode::SUCCESS
}
