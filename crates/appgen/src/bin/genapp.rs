//! Generates one synthetic APK bundle and writes it to disk, so shell
//! scripts (CI smoke tests, manual `nchecker` runs) can produce inputs
//! without linking against the generator.
//!
//! ```text
//! genapp <gpslogger|suite:N|corpus:SEED:INDEX> <out.apk>
//! ```

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: genapp <gpslogger|suite:N|corpus:SEED:INDEX> <out.apk>");
    eprintln!();
    eprintln!("  gpslogger        the GPSLogger study app");
    eprintln!("  suite:N          app N of the interprocedural suite");
    eprintln!("  corpus:SEED:IDX  app IDX of the seeded evaluation corpus");
    ExitCode::from(2)
}

fn spec_for(what: &str) -> Option<nck_appgen::AppSpec> {
    if what == "gpslogger" {
        return Some(nck_appgen::studyapps::gpslogger());
    }
    if let Some(n) = what.strip_prefix("suite:") {
        let n: usize = n.parse().ok()?;
        return nck_appgen::interproc_suite::interproc_apps()
            .into_iter()
            .nth(n);
    }
    if let Some(rest) = what.strip_prefix("corpus:") {
        let (seed, idx) = rest.split_once(':')?;
        let seed: u64 = seed.parse().ok()?;
        let idx: usize = idx.parse().ok()?;
        return nck_appgen::profile::corpus(seed).into_iter().nth(idx);
    }
    None
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [what, out] = args.as_slice() else {
        return usage();
    };
    let Some(spec) = spec_for(what) else {
        return usage();
    };
    let apk = nck_appgen::generate(&spec);
    if let Err(e) = apk.save(std::path::Path::new(out)) {
        eprintln!("{out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out} ({})", spec.package);
    ExitCode::SUCCESS
}
