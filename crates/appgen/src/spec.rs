//! Declarative specifications of synthetic apps and their seeded defects.
//!
//! The corpus generator works oracle-first: an [`AppSpec`] states, per
//! request, which good practices the "developer" applied; the generator
//! emits a binary realizing the spec, and [`AppSpec::oracle`] derives the
//! ground-truth defect list the binary actually contains. Calibration to
//! the paper's rates happens in [`profile`](crate::profile).

use nchecker::{DefectKind, OverRetryContext};
use nck_netlibs::api::HttpMethod;
use nck_netlibs::library::{defaults, Library};

/// Where a request originates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Fired from a click listener in an Activity (user-initiated,
    /// time-sensitive).
    UserClick,
    /// Fired from an Activity lifecycle method (user-facing context).
    ActivityLifecycle,
    /// Fired from a Service (background, energy-sensitive).
    Service,
}

impl Origin {
    /// Returns `true` for user-facing origins.
    pub fn is_user(self) -> bool {
        !matches!(self, Origin::Service)
    }
}

/// How (and whether) the developer checks connectivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnCheck {
    /// No check at all — a true defect the tool reports.
    Missing,
    /// A proper guard before the request.
    Guarding,
    /// The API is called but its result ignored — a true defect the
    /// path-insensitive tool misses (Table 9 known FN).
    UnusedResult,
    /// The check happens in another component (inter-component flow) — no
    /// true defect, but the tool reports one (Table 9 FP).
    InterComponent,
    /// A proper guard through an app-level wrapper (`if (!isOnline())
    /// return`). No true defect; only the interprocedural summary engine
    /// sees through the wrapper — the method-local analysis reports a
    /// false positive.
    GuardingViaHelper,
}

/// How the failure notification is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Notification {
    /// No notification — a true defect for user-initiated requests.
    Missing,
    /// An alert (Toast/TextView/...) in the error callback.
    Alert,
    /// The error code is broadcast and displayed by another activity — no
    /// true defect, but invisible to the tool (Table 9 FP).
    InterComponent,
}

/// How the response object is treated (libraries with response-check
/// APIs only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespCheck {
    /// The response is not captured or never read.
    NotUsed,
    /// Read guarded by `isSuccessful()`/null checks.
    Checked,
    /// Read with no validity check — a true defect.
    Unchecked,
    /// Read guarded by an app-level validation helper
    /// (`if (isValidResponse(resp))`). No true defect; visible only to
    /// the interprocedural summary engine.
    CheckedViaHelper,
}

/// The customized retry-loop shape to wrap the request in (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryShape {
    /// Figure 6(b): unconditional success exit out of a `try`.
    SuccessExit,
    /// Figure 6(c): exit variable assigned in the catch block.
    CatchCondition,
    /// Figure 6(d): exit variable from a callee whose catch sets it.
    InterprocCatchCondition,
}

/// One network request in a synthetic app.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpec {
    /// Library used.
    pub library: Library,
    /// Where it fires from.
    pub origin: Origin,
    /// HTTP method.
    pub http_method: HttpMethod,
    /// Connectivity-check behaviour.
    pub conn_check: ConnCheck,
    /// Whether a timeout config API is invoked.
    pub set_timeout: bool,
    /// Retry configuration: `Some(n)` invokes the retry API with count
    /// `n`; `None` leaves the library default in force.
    pub set_retries: Option<u32>,
    /// Route the configured retry count through an app-level helper
    /// (`setMaxRetries(getRetryCount())`): the value is only
    /// recoverable through the interprocedural summaries.
    pub retries_via_helper: bool,
    /// Failure-notification behaviour (user-facing requests).
    pub notification: Notification,
    /// For Volley: whether the error callback consults the error object.
    pub check_error_types: bool,
    /// Response handling (OkHttp/Apache).
    pub response: RespCheck,
    /// Optional customized retry loop around the request.
    pub custom_retry: Option<RetryShape>,
}

impl RequestSpec {
    /// A minimal sane default for `library` from `origin`.
    pub fn new(library: Library, origin: Origin) -> RequestSpec {
        RequestSpec {
            library,
            origin,
            http_method: HttpMethod::Get,
            conn_check: ConnCheck::Missing,
            set_timeout: false,
            set_retries: None,
            retries_via_helper: false,
            notification: Notification::Missing,
            check_error_types: false,
            response: RespCheck::NotUsed,
            custom_retry: None,
        }
    }

    /// The retry count effectively in force.
    pub fn effective_retries(&self) -> u32 {
        self.set_retries
            .unwrap_or_else(|| defaults(self.library).retries)
    }

    /// True (oracle) defects this request carries.
    pub fn oracle(&self) -> Vec<DefectKind> {
        let mut out = Vec::new();
        // Connectivity: Missing and UnusedResult are real defects;
        // Guarding and InterComponent are not.
        if matches!(
            self.conn_check,
            ConnCheck::Missing | ConnCheck::UnusedResult
        ) {
            out.push(DefectKind::MissedConnectivityCheck);
        }
        if !self.set_timeout {
            out.push(DefectKind::MissedTimeout);
        }
        if self.library.has_retry_api() && self.set_retries.is_none() && self.custom_retry.is_none()
        {
            out.push(DefectKind::MissedRetry);
        }
        // Retry-parameter causes are only evaluated for libraries with
        // retry APIs (the paper's Table 8 scope).
        if self.library.has_retry_api() {
            let retries = self.effective_retries();
            let default_caused = self.set_retries.is_none();
            if self.origin.is_user() && retries == 0 && self.custom_retry.is_none() {
                out.push(DefectKind::NoRetryInActivity);
            }
            if self.origin == Origin::Service && retries > 0 {
                out.push(DefectKind::OverRetry {
                    context: OverRetryContext::Service,
                    default_caused,
                });
            }
            // A library default that skips non-idempotent methods does
            // not over-retry POSTs.
            let post_retries = if default_caused {
                retries > 0 && defaults(self.library).retries_apply_to_post
            } else {
                retries > 0
            };
            if self.http_method == HttpMethod::Post && post_retries {
                out.push(DefectKind::OverRetry {
                    context: OverRetryContext::Post,
                    default_caused,
                });
            }
        }
        if self.origin.is_user() && self.notification == Notification::Missing {
            out.push(DefectKind::MissedFailureNotification);
        }
        // Our generated Volley apps always implement the error listener,
        // so the typed-error check applies to every user-facing Volley
        // request.
        if self.origin.is_user() && self.library == Library::Volley && !self.check_error_types {
            out.push(DefectKind::NoErrorTypeCheck);
        }
        if self.response == RespCheck::Unchecked {
            out.push(DefectKind::MissedResponseCheck);
        }
        out
    }

    /// Defects the *tool* is expected to report, accounting for the known
    /// deviations: the `UnusedResult` FN and the `InterComponent` FPs.
    pub fn expected_tool_report(&self) -> Vec<DefectKind> {
        let mut out = self.oracle();
        match self.conn_check {
            ConnCheck::UnusedResult => {
                out.retain(|d| *d != DefectKind::MissedConnectivityCheck); // FN.
            }
            ConnCheck::InterComponent => {
                out.push(DefectKind::MissedConnectivityCheck); // FP.
            }
            _ => {}
        }
        if self.origin.is_user() && self.notification == Notification::InterComponent {
            out.push(DefectKind::MissedFailureNotification); // FP.
        }
        out
    }
}

/// A whole synthetic app.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Package name (also used to derive class names).
    pub package: String,
    /// The requests the app makes.
    pub requests: Vec<RequestSpec>,
    /// Self-contained ballast classes emitted ahead of the request
    /// classes: realistic non-network app code (loops, fields, helper
    /// calls) with no network-library references. With `requests`
    /// empty and `bulk > 0` this yields a *clean* app — real code, no
    /// network surface — the shape the targeted prescan skips.
    pub bulk: usize,
}

impl AppSpec {
    /// Creates an app spec.
    pub fn new(package: &str, requests: Vec<RequestSpec>) -> AppSpec {
        AppSpec {
            package: package.to_owned(),
            requests,
            bulk: 0,
        }
    }

    /// Libraries used by the app.
    pub fn libraries(&self) -> std::collections::BTreeSet<Library> {
        self.requests.iter().map(|r| r.library).collect()
    }

    /// True defects over all requests.
    pub fn oracle(&self) -> Vec<DefectKind> {
        self.requests.iter().flat_map(RequestSpec::oracle).collect()
    }

    /// Expected tool reports over all requests.
    pub fn expected_tool_report(&self) -> Vec<DefectKind> {
        self.requests
            .iter()
            .flat_map(RequestSpec::expected_tool_report)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_request_has_the_full_defect_set() {
        let r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
        let oracle = r.oracle();
        assert!(oracle.contains(&DefectKind::MissedConnectivityCheck));
        assert!(oracle.contains(&DefectKind::MissedTimeout));
        assert!(oracle.contains(&DefectKind::MissedRetry));
        assert!(oracle.contains(&DefectKind::MissedFailureNotification));
    }

    #[test]
    fn default_retries_cause_over_retry_in_service() {
        let r = RequestSpec::new(Library::AndroidAsyncHttp, Origin::Service);
        let oracle = r.oracle();
        assert!(oracle.contains(&DefectKind::OverRetry {
            context: OverRetryContext::Service,
            default_caused: true,
        }));
    }

    #[test]
    fn explicit_zero_retries_in_activity_is_cause_2_1() {
        let mut r = RequestSpec::new(Library::Volley, Origin::UserClick);
        r.set_retries = Some(0);
        assert!(r.oracle().contains(&DefectKind::NoRetryInActivity));
        // Custom retry suppresses it.
        r.custom_retry = Some(RetryShape::SuccessExit);
        assert!(!r.oracle().contains(&DefectKind::NoRetryInActivity));
    }

    #[test]
    fn fn_and_fp_deviations() {
        let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
        r.conn_check = ConnCheck::UnusedResult;
        assert!(r.oracle().contains(&DefectKind::MissedConnectivityCheck));
        assert!(!r
            .expected_tool_report()
            .contains(&DefectKind::MissedConnectivityCheck));

        r.conn_check = ConnCheck::InterComponent;
        assert!(!r.oracle().contains(&DefectKind::MissedConnectivityCheck));
        assert!(r
            .expected_tool_report()
            .contains(&DefectKind::MissedConnectivityCheck));
    }

    #[test]
    fn post_over_retry_from_volley_default() {
        let mut r = RequestSpec::new(Library::Volley, Origin::UserClick);
        r.http_method = HttpMethod::Post;
        assert!(r.oracle().contains(&DefectKind::OverRetry {
            context: OverRetryContext::Post,
            default_caused: true,
        }));
    }
}
