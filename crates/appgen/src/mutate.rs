//! Seeded corruption of serialized APK bundles, with ground truth.
//!
//! The fault-tolerance claim of the pipeline is *panic-free analysis of
//! adversarial binaries*: every input either parses and analyzes, is
//! rejected with a typed error, or analyzes in degraded mode with the
//! damage recorded. This module manufactures the adversarial inputs.
//! Given a healthy generated bundle and a seed, [`mutate`] injects one
//! classed corruption and returns the damaged bytes together with a
//! [`Mutation`] record stating what was done and what the pipeline is
//! allowed to do with it. Harnesses ([`check`]) then drive the damaged
//! bytes through the full pipeline and flag any outcome outside the
//! ground-truth envelope — a panic, or silent clean acceptance.
//!
//! Mutations are deterministic in `(bundle, seed)`, so a failing seed
//! reported by the fuzz harness reproduces exactly.
//!
//! Two corruption families exist, distinguished by *where* the damage
//! lands:
//!
//! - **Raw** mutations damage serialized bytes directly (truncation,
//!   header damage, payload bit flips). The ADX container carries an
//!   FNV-1a checksum over its payload, so any raw byte damage inside the
//!   ADX region is guaranteed to be rejected at parse:
//!   [`Expectation::MustError`].
//! - **Structural** mutations patch the parsed [`AdxFile`] in memory and
//!   re-serialize, producing a well-formed container (valid checksum)
//!   whose *content* lies: out-of-frame registers, frame-size lies,
//!   branch targets past the end of a method, dangling pool references.
//!   These reach the verifier and lifter; the pipeline may reject them
//!   outright or degrade per-method, but must not accept them cleanly:
//!   [`Expectation::MustErrorOrDegrade`].

use nchecker::{AnalyzeError, AppReport, NChecker};
use nck_android::apk::Apk;
use nck_dex::{write_adx, AdxFile, Insn, Reg, TypeIdx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Byte length of the ADX container header (magic + version + reserved +
/// payload length + checksum) preceding the checksummed payload.
const ADX_HEADER_LEN: usize = 4 + 2 + 2 + 8 + 8;

/// The corruption classes the fuzz harness draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MutationKind {
    /// Raw: cut bytes off the end of the serialized bundle.
    TruncateBytes,
    /// Raw: flip a byte inside the ADX header (magic, version, declared
    /// payload length, or checksum).
    CorruptHeader,
    /// Raw: flip a byte inside the checksummed ADX payload.
    FlipPayloadByte,
    /// Structural: point an in-code string reference past the pool.
    BadPoolIndex,
    /// Structural: declare more parameter registers than the frame holds.
    FrameLie,
    /// Structural: aim a branch past the end of the instruction stream.
    BranchOutOfRange,
    /// Structural: make an instruction touch a register outside its
    /// method's frame.
    RegisterOutOfFrame,
    /// Structural: point a class's superclass reference past the type
    /// pool.
    DanglingSuperclass,
}

/// Every class, for harnesses that iterate or build histograms.
pub const ALL_KINDS: &[MutationKind] = &[
    MutationKind::TruncateBytes,
    MutationKind::CorruptHeader,
    MutationKind::FlipPayloadByte,
    MutationKind::BadPoolIndex,
    MutationKind::FrameLie,
    MutationKind::BranchOutOfRange,
    MutationKind::RegisterOutOfFrame,
    MutationKind::DanglingSuperclass,
];

impl MutationKind {
    /// A stable lower-case name for logs and histograms.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::TruncateBytes => "truncate-bytes",
            MutationKind::CorruptHeader => "corrupt-header",
            MutationKind::FlipPayloadByte => "flip-payload-byte",
            MutationKind::BadPoolIndex => "bad-pool-index",
            MutationKind::FrameLie => "frame-lie",
            MutationKind::BranchOutOfRange => "branch-out-of-range",
            MutationKind::RegisterOutOfFrame => "register-out-of-frame",
            MutationKind::DanglingSuperclass => "dangling-superclass",
        }
    }
}

impl std::fmt::Display for MutationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the pipeline is allowed to do with a mutated bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The bundle must be rejected with a typed error at parse. Raw
    /// damage inside the ADX region lands here: the payload checksum
    /// (or the header checks in front of it) guarantees detection.
    MustError,
    /// The bundle must be rejected with a typed error *or* analyzed in
    /// degraded mode with the damaged methods recorded as skipped.
    /// Structural damage lands here: the parser may catch it (pool
    /// references are range-checked on read), and what the parser lets
    /// through the verifier and lifter must contain.
    MustErrorOrDegrade,
}

/// A record of one injected corruption: the ground truth the fuzz
/// harness checks pipeline behaviour against.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// The corruption class.
    pub kind: MutationKind,
    /// The seed that produced it (reproduces the exact damage).
    pub seed: u64,
    /// Human-readable description of the exact damage.
    pub detail: String,
    /// The allowed pipeline outcomes.
    pub expectation: Expectation,
}

/// How the pipeline actually handled a mutated bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Rejected with a typed error.
    Rejected,
    /// Analyzed, with at least one method skipped as unanalyzable.
    Degraded,
    /// Analyzed cleanly as if nothing were wrong.
    Clean,
    /// The analysis panicked (contained by `analyze_bytes_checked`).
    Panicked,
}

/// Injects one seeded corruption into `apk` and returns the damaged
/// serialized bundle plus its ground-truth [`Mutation`] record.
///
/// Deterministic: the same `(apk, seed)` pair always yields the same
/// bytes and record. The mutation class is drawn from the seed; classes
/// that need a code-bearing method fall back to a raw payload flip when
/// the app has none.
pub fn mutate(apk: &Apk, seed: u64) -> (Vec<u8>, Mutation) {
    let mut rng = StdRng::seed_from_u64(seed);
    let kind = ALL_KINDS[rng.gen_range(0..ALL_KINDS.len())];
    let (bytes, detail, kind) = apply(apk, kind, &mut rng);
    let expectation = match kind {
        MutationKind::TruncateBytes
        | MutationKind::CorruptHeader
        | MutationKind::FlipPayloadByte => Expectation::MustError,
        _ => Expectation::MustErrorOrDegrade,
    };
    (
        bytes,
        Mutation {
            kind,
            seed,
            detail,
            expectation,
        },
    )
}

/// Applies `kind` to the bundle; returns the bytes, a description, and
/// the kind actually applied (structural kinds degrade to a raw payload
/// flip when no suitable target exists).
fn apply(apk: &Apk, kind: MutationKind, rng: &mut StdRng) -> (Vec<u8>, String, MutationKind) {
    match kind {
        MutationKind::TruncateBytes => {
            let bytes = apk.to_bytes();
            // Keep at least one byte gone and at most the whole ADX
            // region, so the damage is always inside checksummed (or
            // length-checked) territory.
            let adx_len = write_adx(&apk.adx).len();
            let cut = rng.gen_range(1..=adx_len);
            let keep = bytes.len() - cut;
            (
                bytes[..keep].to_vec(),
                format!("truncated {cut} of {} bytes", bytes.len()),
                kind,
            )
        }
        MutationKind::CorruptHeader => {
            let mut bytes = apk.to_bytes();
            let adx_start = bytes.len() - write_adx(&apk.adx).len();
            let at = adx_start + rng.gen_range(0..ADX_HEADER_LEN);
            let bit = rng.gen_range(0..8u32);
            bytes[at] ^= 1 << bit;
            (
                bytes,
                format!("flipped bit {bit} of ADX header byte {}", at - adx_start),
                kind,
            )
        }
        MutationKind::FlipPayloadByte => flip_payload(apk, rng),
        MutationKind::BadPoolIndex => {
            structural(apk, rng, kind, |adx, rng, class, method, insn| {
                let n = adx.pools.strings().len() as u32;
                adx.classes[class].methods[method]
                    .code
                    .as_mut()
                    .unwrap()
                    .insns[insn] = Insn::ConstString {
                    dst: Reg(0),
                    idx: nck_dex::StringIdx(n + rng.gen_range(1..100u32)),
                };
                format!("string reference past the {n}-entry pool")
            })
        }
        MutationKind::FrameLie => structural(apk, rng, kind, |adx, rng, class, method, _| {
            let code = adx.classes[class].methods[method].code.as_mut().unwrap();
            let lie = code.registers + rng.gen_range(1..16u16);
            code.ins = lie;
            format!("ins={lie} exceeds registers={}", code.registers)
        }),
        MutationKind::BranchOutOfRange => {
            structural(apk, rng, kind, |adx, rng, class, method, insn| {
                let code = adx.classes[class].methods[method].code.as_mut().unwrap();
                let target = code.insns.len() as u32 + rng.gen_range(1..100u32);
                code.insns[insn] = Insn::Goto { target };
                format!("branch to {target} past {}-insn method", code.insns.len())
            })
        }
        MutationKind::RegisterOutOfFrame => {
            structural(apk, rng, kind, |adx, _, class, method, insn| {
                let code = adx.classes[class].methods[method].code.as_mut().unwrap();
                let bad = Reg(code.registers);
                code.insns[insn] = Insn::Move { dst: bad, src: bad };
                format!("register {} in a {}-register frame", bad.0, code.registers)
            })
        }
        MutationKind::DanglingSuperclass => {
            let mut adx = apk.adx.clone();
            if adx.classes.is_empty() {
                return flip_payload(apk, rng);
            }
            let n = adx.pools.types().len() as u32;
            let class = rng.gen_range(0..adx.classes.len());
            adx.classes[class].superclass = Some(TypeIdx(n + rng.gen_range(1..100u32)));
            let detail = format!("class {class} superclass past the {n}-entry type pool");
            (rebundle(apk, adx), detail, kind)
        }
    }
}

/// Raw fallback: flips one byte inside the checksummed ADX payload.
fn flip_payload(apk: &Apk, rng: &mut StdRng) -> (Vec<u8>, String, MutationKind) {
    let mut bytes = apk.to_bytes();
    let adx = write_adx(&apk.adx);
    let adx_start = bytes.len() - adx.len();
    // Generated bundles always carry a non-empty payload (pools at
    // minimum), so this range is never empty.
    let at = adx_start + ADX_HEADER_LEN + rng.gen_range(0..adx.len() - ADX_HEADER_LEN);
    let bit = rng.gen_range(0..8u32);
    bytes[at] ^= 1 << bit;
    (
        bytes,
        format!("flipped bit {bit} of ADX payload byte {}", at - adx_start),
        MutationKind::FlipPayloadByte,
    )
}

/// Runs a structural patch against a randomly chosen code-bearing method,
/// falling back to a raw payload flip when the app has none.
fn structural(
    apk: &Apk,
    rng: &mut StdRng,
    kind: MutationKind,
    patch: impl FnOnce(&mut AdxFile, &mut StdRng, usize, usize, usize) -> String,
) -> (Vec<u8>, String, MutationKind) {
    let mut targets = Vec::new();
    for (ci, c) in apk.adx.classes.iter().enumerate() {
        for (mi, m) in c.methods.iter().enumerate() {
            if let Some(code) = &m.code {
                if !code.insns.is_empty() {
                    targets.push((ci, mi, code.insns.len()));
                }
            }
        }
    }
    let Some(&(class, method, len)) = targets.get(rng.gen_range(0..targets.len().max(1))) else {
        return flip_payload(apk, rng);
    };
    let insn = rng.gen_range(0..len);
    let mut adx = apk.adx.clone();
    let what = patch(&mut adx, rng, class, method, insn);
    let detail = format!("{what} (class {class}, method {method}, insn {insn})");
    (rebundle(apk, adx), detail, kind)
}

/// Re-serializes a patched ADX under the original manifest. The writer
/// recomputes length and checksum, so the container itself is valid —
/// only its content lies.
fn rebundle(apk: &Apk, adx: AdxFile) -> Vec<u8> {
    Apk::new(apk.manifest.clone(), adx).to_bytes()
}

/// A checker with all diagnostics silenced, for fuzz harnesses that
/// drive thousands of deliberately damaged bundles and only care about
/// expectation violations.
pub fn quiet_checker() -> NChecker {
    let mut checker = NChecker::new();
    checker.obs.events = nck_obs::Events::silent();
    checker
}

/// Classifies a pipeline result for comparison against an expectation.
pub fn classify(result: &Result<AppReport, AnalyzeError>) -> Outcome {
    match result {
        Err(AnalyzeError::Panic(_)) => Outcome::Panicked,
        Err(_) => Outcome::Rejected,
        Ok(report) if report.degraded() => Outcome::Degraded,
        Ok(_) => Outcome::Clean,
    }
}

/// Drives mutated `bytes` through the full pipeline (parse → verify →
/// lift → checkers, panics contained) and checks the outcome against the
/// mutation's ground truth.
///
/// Returns the observed [`Outcome`] on success and a violation
/// description naming the seed, class, and damage on failure. Violations
/// are exactly: a panic (any class), or acceptance outside the
/// expectation envelope — a clean report for any mutation, or a merely
/// degraded report for a [`Expectation::MustError`] class.
pub fn check(checker: &NChecker, bytes: &[u8], m: &Mutation) -> Result<Outcome, String> {
    let outcome = classify(&checker.analyze_bytes_checked(bytes));
    let violation = |what: &str| Err(format!("seed {}: {} ({}) {what}", m.seed, m.kind, m.detail));
    match (outcome, m.expectation) {
        (Outcome::Panicked, _) => violation("panicked"),
        (Outcome::Clean, _) => violation("was accepted cleanly"),
        (Outcome::Degraded, Expectation::MustError) => {
            violation("was only degraded but raw damage must be rejected at parse")
        }
        _ => Ok(outcome),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AppSpec, Origin, RequestSpec};
    use nck_netlibs::library::Library;

    fn healthy() -> Apk {
        crate::generate(&AppSpec::new(
            "com.mutate.test",
            vec![
                RequestSpec::new(Library::Volley, Origin::UserClick),
                RequestSpec::new(Library::OkHttp, Origin::Service),
            ],
        ))
    }

    #[test]
    fn mutation_is_deterministic() {
        let apk = healthy();
        for seed in 0..32 {
            let (a, ma) = mutate(&apk, seed);
            let (b, mb) = mutate(&apk, seed);
            assert_eq!(a, b, "seed {seed} bytes differ");
            assert_eq!(ma.kind, mb.kind);
            assert_eq!(ma.detail, mb.detail);
        }
    }

    #[test]
    fn mutation_always_changes_the_bytes() {
        let apk = healthy();
        let clean = apk.to_bytes();
        for seed in 0..64 {
            let (bytes, m) = mutate(&apk, seed);
            assert_ne!(bytes, clean, "seed {seed} ({}) left bundle intact", m.kind);
        }
    }

    #[test]
    fn seeds_cover_every_class() {
        let apk = healthy();
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..256 {
            seen.insert(mutate(&apk, seed).1.kind);
        }
        for &kind in ALL_KINDS {
            assert!(seen.contains(&kind), "no seed in 0..256 produced {kind}");
        }
    }

    #[test]
    fn raw_damage_is_rejected_at_parse() {
        let apk = healthy();
        for seed in 0..128 {
            let (bytes, m) = mutate(&apk, seed);
            if m.expectation != Expectation::MustError {
                continue;
            }
            assert!(
                Apk::from_bytes(&bytes).is_err(),
                "seed {seed} ({}: {}) parsed despite raw damage",
                m.kind,
                m.detail
            );
        }
    }

    #[test]
    fn every_mutation_in_a_small_sweep_is_handled() {
        let apk = healthy();
        let checker = quiet_checker();
        for seed in 0..64 {
            let (bytes, m) = mutate(&apk, seed);
            if let Err(violation) = check(&checker, &bytes, &m) {
                panic!("{violation}");
            }
        }
    }
}
