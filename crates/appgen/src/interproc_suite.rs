//! The extended 16-app accuracy suite for the summary-engine ablation.
//!
//! Every good practice here is mediated by an app-level helper method:
//! connectivity guards behind `isOnline()` wrappers, retry counts behind
//! `getRetryCount()` getters, and response checks behind
//! `isValidResponse()` validators. The ground truth is the specs'
//! oracles; the method-local analysis (interproc off) misreads the
//! helper-mediated apps in both directions — false positives on
//! helper-guarded requests and false negatives on helper-disabled
//! retries — while the summary engine matches the oracle exactly. A
//! third of the suite uses no helpers at all, pinning the two
//! configurations to identical output on baseline apps.

use crate::opensource::{tally_accuracy, Accuracy, Table9Row};
use crate::spec::{AppSpec, ConnCheck, Notification, Origin, RequestSpec, RespCheck};
use nck_netlibs::library::Library;
use std::collections::BTreeMap;

/// A fully well-configured request: guarded, timed out, bounded retries,
/// alerting, response-checked. The starting point each app perturbs.
fn clean(library: Library, origin: Origin) -> RequestSpec {
    let mut r = RequestSpec::new(library, origin);
    r.conn_check = ConnCheck::Guarding;
    r.set_timeout = true;
    if library.has_retry_api() {
        // Bounded retries for user requests; none for services (retries
        // there would be the over-retry defect itself).
        r.set_retries = Some(if origin == Origin::Service { 0 } else { 2 });
    }
    if library == Library::Volley {
        // Volley couples timeout and retry in one policy object.
        r.set_timeout = r.set_retries.is_some();
        r.check_error_types = true;
    }
    r.notification = Notification::Alert;
    if library.has_response_check_api() {
        r.response = RespCheck::Checked;
    }
    r
}

/// Does the spec rely on any helper-mediated idiom (the ones only the
/// summary engine resolves)?
pub fn uses_helper_idioms(spec: &AppSpec) -> bool {
    spec.requests.iter().any(|r| {
        r.conn_check == ConnCheck::GuardingViaHelper
            || r.retries_via_helper
            || r.response == RespCheck::CheckedViaHelper
    })
}

/// Builds the 16 apps of the extended suite.
pub fn interproc_apps() -> Vec<AppSpec> {
    let mut apps = Vec::new();

    // 1-5: guard wrappers across libraries and origins. Oracle: clean.
    // Method-local analysis: one connectivity FP each.
    for (pkg, lib, origin) in [
        (
            "com.ip.guardbasic",
            Library::BasicHttpClient,
            Origin::UserClick,
        ),
        ("com.ip.guardok", Library::OkHttp, Origin::ActivityLifecycle),
        (
            "com.ip.guardnative",
            Library::HttpUrlConnection,
            Origin::UserClick,
        ),
        ("com.ip.guardvolley", Library::Volley, Origin::UserClick),
        (
            "com.ip.guardsvc",
            Library::AndroidAsyncHttp,
            Origin::Service,
        ),
    ] {
        let mut r = clean(lib, origin);
        r.conn_check = ConnCheck::GuardingViaHelper;
        apps.push(AppSpec::new(pkg, vec![r]));
    }

    // 6-7: retries disabled through a getter in user-facing requests.
    // Oracle: NoRetryInActivity. Method-local analysis: FN (it cannot
    // prove the count is zero).
    for (pkg, lib) in [
        ("com.ip.retryzero", Library::BasicHttpClient),
        ("com.ip.retryzerovolley", Library::Volley),
    ] {
        let mut r = clean(lib, Origin::UserClick);
        r.set_retries = Some(0);
        r.retries_via_helper = true;
        apps.push(AppSpec::new(pkg, vec![r]));
    }

    // 8: retries disabled through a getter in a service. Oracle: clean.
    // Method-local analysis: an over-retry FP (unknown count counts as
    // retries-enabled).
    {
        let mut r = clean(Library::AndroidAsyncHttp, Origin::Service);
        r.retries_via_helper = true;
        apps.push(AppSpec::new("com.ip.retrysvc", vec![r]));
    }

    // 9-10: response validity checked through a helper. Oracle: clean.
    // Method-local analysis: one response FP each.
    for (pkg, lib) in [
        ("com.ip.respok", Library::OkHttp),
        ("com.ip.respapache", Library::ApacheHttpClient),
    ] {
        let mut r = clean(lib, Origin::UserClick);
        r.response = RespCheck::CheckedViaHelper;
        apps.push(AppSpec::new(pkg, vec![r]));
    }

    // 11: every helper idiom at once.
    {
        let mut r = clean(Library::OkHttp, Origin::UserClick);
        r.conn_check = ConnCheck::GuardingViaHelper;
        r.response = RespCheck::CheckedViaHelper;
        apps.push(AppSpec::new("com.ip.combo", vec![r]));
    }

    // 12-16: baseline apps with no helper idioms — defective and clean —
    // on which both configurations must agree exactly.
    apps.push(AppSpec::new(
        "com.ip.plaindefect",
        vec![RequestSpec::new(
            Library::BasicHttpClient,
            Origin::UserClick,
        )],
    ));
    apps.push(AppSpec::new(
        "com.ip.plainclean",
        vec![clean(Library::OkHttp, Origin::UserClick)],
    ));
    apps.push(AppSpec::new(
        "com.ip.plainsvc",
        vec![RequestSpec::new(Library::AndroidAsyncHttp, Origin::Service)],
    ));
    {
        let mut r = RequestSpec::new(Library::Volley, Origin::UserClick);
        r.check_error_types = true;
        apps.push(AppSpec::new("com.ip.plainvolley", vec![r]));
    }
    apps.push(AppSpec::new(
        "com.ip.mixed",
        vec![clean(Library::BasicHttpClient, Origin::UserClick), {
            let mut r = clean(Library::HttpUrlConnection, Origin::ActivityLifecycle);
            r.conn_check = ConnCheck::GuardingViaHelper;
            r
        }],
    ));

    apps
}

/// Runs the checker over the extended suite under `config` and tallies
/// per-row accuracy against the oracles.
pub fn evaluate_interproc_with(config: nchecker::CheckerConfig) -> BTreeMap<Table9Row, Accuracy> {
    tally_accuracy(&interproc_apps(), config)
}

/// The defect kinds reported for one spec under `config` (per-app raw
/// material for the ablation comparison).
pub fn report_kinds_with(
    spec: &AppSpec,
    config: nchecker::CheckerConfig,
) -> Vec<nchecker::DefectKind> {
    let apk = crate::gen::generate(spec);
    let report = nchecker::NChecker::with_config(config)
        .analyze_apk(&apk)
        .expect("analyzable app");
    report.defects.iter().map(|d| d.kind).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nchecker::CheckerConfig;

    fn totals(table: &BTreeMap<Table9Row, Accuracy>) -> (usize, usize, usize) {
        table.values().fold((0, 0, 0), |(c, f, n), a| {
            (c + a.correct, f + a.fp, n + a.known_fn)
        })
    }

    #[test]
    fn sixteen_apps() {
        assert_eq!(interproc_apps().len(), 16);
    }

    #[test]
    fn summary_engine_matches_the_oracle_exactly() {
        let table = evaluate_interproc_with(CheckerConfig::default());
        let (_, fp, known_fn) = totals(&table);
        assert_eq!(fp, 0, "engine on: no false positives: {table:?}");
        assert_eq!(known_fn, 0, "engine on: no false negatives: {table:?}");
    }

    #[test]
    fn ablation_strictly_worse_without_the_engine() {
        let on = totals(&evaluate_interproc_with(CheckerConfig::default()));
        let off = totals(&evaluate_interproc_with(CheckerConfig {
            interproc: false,
            ..CheckerConfig::default()
        }));
        assert!(
            off.2 > on.2,
            "engine off must miss seeded defects: {off:?} vs {on:?}"
        );
        assert!(
            off.1 > on.1,
            "engine off must raise false alarms: {off:?} vs {on:?}"
        );
    }

    #[test]
    fn baseline_apps_agree_between_configurations() {
        let off = CheckerConfig {
            interproc: false,
            ..CheckerConfig::default()
        };
        let mut baseline = 0;
        for spec in interproc_apps() {
            if uses_helper_idioms(&spec) {
                continue;
            }
            baseline += 1;
            let mut a = report_kinds_with(&spec, CheckerConfig::default());
            let mut b = report_kinds_with(&spec, off);
            a.sort_by_key(|k| format!("{k:?}"));
            b.sort_by_key(|k| format!("{k:?}"));
            assert_eq!(a, b, "baseline app {} must not shift", spec.package);
        }
        assert!(baseline >= 4, "suite keeps a baseline cohort");
    }
}
