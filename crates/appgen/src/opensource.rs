//! The 16 "open-source" apps of the accuracy evaluation (Table 9).
//!
//! The paper verified NChecker's output by hand against 16 open-source
//! apps: 130 correct warnings, 9 false positives (4 connectivity from
//! inter-component checks, 5 notifications from broadcast-then-display),
//! and 5 known false negatives (connectivity APIs called but unused as
//! control conditions). These specs are engineered so the checker's
//! output on the generated binaries reproduces exactly those counts,
//! with the FP/FN coming from the same idioms the paper blames.

use crate::spec::{AppSpec, ConnCheck, Notification, Origin, RequestSpec, RespCheck};
use nck_netlibs::api::HttpMethod;
use nck_netlibs::library::Library;

fn volley_user(conn: ConnCheck, retries: Option<u32>, notify: Notification) -> RequestSpec {
    let mut r = RequestSpec::new(Library::Volley, Origin::UserClick);
    r.conn_check = conn;
    r.set_retries = retries;
    r.set_timeout = retries.is_some(); // Volley couples both.
    r.notification = notify;
    r.check_error_types = true; // Keep Table 9 free of error-type warnings.
    r
}

fn native(origin: Origin, conn: ConnCheck, notify: Notification) -> RequestSpec {
    let mut r = RequestSpec::new(Library::HttpUrlConnection, origin);
    r.conn_check = conn;
    r.notification = notify;
    r
}

/// Builds the 16 apps, named after the paper's open-source study apps.
pub fn open_source_apps() -> Vec<AppSpec> {
    use ConnCheck::{Guarding, InterComponent, Missing, UnusedResult};
    use Notification::Alert;

    let mut apps = Vec::new();

    // chatsecure: Volley; 3 conn, 3 timeout, 3 retry, 2 notification.
    apps.push(AppSpec::new(
        "org.chatsecure",
        vec![
            volley_user(Missing, None, Notification::Missing),
            volley_user(Missing, None, Notification::Missing),
            volley_user(Missing, None, Alert),
            volley_user(Guarding, Some(2), Alert),
        ],
    ));

    // yaxim: Volley; 2 conn, 3 timeout, 3 retry, 2 notification.
    apps.push(AppSpec::new(
        "org.yaxim",
        vec![
            volley_user(Missing, None, Notification::Missing),
            volley_user(Missing, None, Notification::Missing),
            volley_user(Guarding, None, Alert),
        ],
    ));

    // kontalk: Async HTTP; 2 conn, 2 timeout, 2 retry, 2 over-retry,
    // 1 notification.
    apps.push(AppSpec::new("org.kontalk", {
        let mut svc = RequestSpec::new(Library::AndroidAsyncHttp, Origin::Service);
        svc.conn_check = Missing; // Over-retry via the 5-retry default.
        let mut post = RequestSpec::new(Library::AndroidAsyncHttp, Origin::UserClick);
        post.conn_check = Missing;
        post.http_method = HttpMethod::Post;
        post.notification = Notification::Missing;
        let mut good = RequestSpec::new(Library::AndroidAsyncHttp, Origin::UserClick);
        good.conn_check = Guarding;
        good.set_timeout = true;
        good.set_retries = Some(2);
        good.notification = Alert;
        vec![svc, post, good]
    }));

    // bombusmod: Volley; 2 conn, 2 timeout, 2 retry, 2 over-retry,
    // 1 notification.
    apps.push(AppSpec::new("org.bombusmod", {
        let mut svc = volley_user(Missing, None, Alert);
        svc.origin = Origin::Service;
        let mut post = volley_user(Missing, None, Notification::Missing);
        post.http_method = HttpMethod::Post;
        vec![svc, post]
    }));

    // gtalksms: Basic HTTP; 2 conn, 2 timeout, 2 retry, 1 notification.
    apps.push(AppSpec::new("org.gtalksms", {
        let mut a = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
        a.conn_check = Missing;
        a.notification = Notification::Missing;
        let mut b = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
        b.conn_check = Missing;
        b.notification = Alert;
        vec![a, b]
    }));

    // signal: the 5 known FNs — connectivity checked but unused as a
    // control condition; 5 timeout, 2 notification.
    apps.push(AppSpec::new(
        "org.signal",
        vec![
            native(Origin::UserClick, UnusedResult, Notification::Missing),
            native(Origin::UserClick, UnusedResult, Notification::Missing),
            native(Origin::UserClick, UnusedResult, Alert),
            native(Origin::ActivityLifecycle, UnusedResult, Alert),
            native(Origin::Service, UnusedResult, Alert),
        ],
    ));

    // owncloud + wordpress: the 4 connectivity FPs — the check lives in
    // another component; 2 timeout each.
    apps.push(AppSpec::new(
        "org.owncloud",
        vec![
            native(Origin::UserClick, InterComponent, Alert),
            native(Origin::UserClick, InterComponent, Alert),
        ],
    ));
    apps.push(AppSpec::new(
        "org.wordpress",
        vec![
            native(Origin::UserClick, InterComponent, Alert),
            native(Origin::UserClick, InterComponent, Alert),
        ],
    ));

    // hackernews: the 5 notification FPs — the error is broadcast and
    // displayed in another activity; 5 timeout.
    apps.push(AppSpec::new(
        "org.hackernews",
        vec![
            native(Origin::UserClick, Guarding, Notification::InterComponent),
            native(Origin::UserClick, Guarding, Notification::InterComponent),
            native(Origin::UserClick, Guarding, Notification::InterComponent),
            native(Origin::UserClick, Guarding, Notification::InterComponent),
            native(Origin::UserClick, Guarding, Notification::InterComponent),
        ],
    ));

    // xbmc: OkHttp; 5 conn, 5 timeout, 5 response, 5 notification.
    apps.push(AppSpec::new("org.xbmc", {
        (0..5)
            .map(|_| {
                let mut r = RequestSpec::new(Library::OkHttp, Origin::UserClick);
                r.conn_check = Missing;
                r.notification = Notification::Missing;
                r.response = RespCheck::Unchecked;
                r
            })
            .collect()
    }));

    // Six native apps filling the remaining counts:
    // firefox/telegram/k9: 3 conn, 5 timeout, 1 notification each;
    // sipdroid/connectbot/nprnews: 2 conn, 4 timeout, 1 notification each.
    for name in ["org.firefox", "org.telegram", "org.k9"] {
        apps.push(AppSpec::new(
            name,
            vec![
                native(Origin::UserClick, Missing, Notification::Missing),
                native(Origin::UserClick, Missing, Alert),
                native(Origin::ActivityLifecycle, Missing, Alert),
                native(Origin::UserClick, Guarding, Alert),
                native(Origin::Service, Guarding, Alert),
            ],
        ));
    }
    for name in ["org.sipdroid", "org.connectbot", "org.nprnews"] {
        apps.push(AppSpec::new(
            name,
            vec![
                native(Origin::UserClick, Missing, Notification::Missing),
                native(Origin::UserClick, Missing, Alert),
                native(Origin::UserClick, Guarding, Alert),
                native(Origin::Service, Guarding, Alert),
            ],
        ));
    }

    apps
}

/// Defect categories as rows of Table 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Table9Row {
    /// Missed connectivity checks.
    Conn,
    /// Missed timeout APIs.
    Timeout,
    /// Missed retry APIs.
    Retry,
    /// Over retries.
    OverRetry,
    /// Missed failure notifications.
    Notification,
    /// Missed response checks.
    Response,
}

impl Table9Row {
    /// Maps a defect kind to its Table 9 row, `None` for kinds the table
    /// does not cover.
    pub fn of(kind: nchecker::DefectKind) -> Option<Table9Row> {
        use nchecker::DefectKind as K;
        match kind {
            K::MissedConnectivityCheck => Some(Table9Row::Conn),
            K::MissedTimeout => Some(Table9Row::Timeout),
            K::MissedRetry => Some(Table9Row::Retry),
            K::OverRetry { .. } | K::NoRetryInActivity => Some(Table9Row::OverRetry),
            K::MissedFailureNotification => Some(Table9Row::Notification),
            K::MissedResponseCheck => Some(Table9Row::Response),
            K::NoErrorTypeCheck => None,
        }
    }

    /// The row label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Table9Row::Conn => "Missed conn. checks",
            Table9Row::Timeout => "Missed timeout APIs",
            Table9Row::Retry => "Missed retry APIs",
            Table9Row::OverRetry => "Over retries",
            Table9Row::Notification => "Missed failure notifications",
            Table9Row::Response => "Missed response checks",
        }
    }

    /// All rows in table order.
    pub const ALL: [Table9Row; 6] = [
        Table9Row::Conn,
        Table9Row::Timeout,
        Table9Row::Retry,
        Table9Row::OverRetry,
        Table9Row::Notification,
        Table9Row::Response,
    ];
}

/// Accuracy tally per row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Accuracy {
    /// Correct warnings (true positives).
    pub correct: usize,
    /// False positives.
    pub fp: usize,
    /// Known false negatives.
    pub known_fn: usize,
}

/// Runs the checker over the 16 apps and tallies accuracy against the
/// specs' oracles, with the paper's default configuration.
pub fn evaluate_accuracy() -> std::collections::BTreeMap<Table9Row, Accuracy> {
    evaluate_accuracy_with(nchecker::CheckerConfig::default())
}

/// Runs the accuracy evaluation under a specific checker configuration
/// (used by the ICC / strict-connectivity / summary-engine ablations).
pub fn evaluate_accuracy_with(
    config: nchecker::CheckerConfig,
) -> std::collections::BTreeMap<Table9Row, Accuracy> {
    tally_accuracy(&open_source_apps(), config)
}

/// Tallies per-row accuracy of the checker under `config` over `specs`,
/// scoring each app's report against its oracle.
pub fn tally_accuracy(
    specs: &[AppSpec],
    config: nchecker::CheckerConfig,
) -> std::collections::BTreeMap<Table9Row, Accuracy> {
    use std::collections::BTreeMap;
    let checker = nchecker::NChecker::with_config(config);
    let mut table: BTreeMap<Table9Row, Accuracy> = Table9Row::ALL
        .iter()
        .map(|&r| (r, Accuracy::default()))
        .collect();

    for spec in specs {
        let apk = crate::gen::generate(spec);
        let report = checker.analyze_apk(&apk).expect("analyzable app");
        let mut reported: BTreeMap<Table9Row, usize> = BTreeMap::new();
        for d in &report.defects {
            if let Some(row) = Table9Row::of(d.kind) {
                *reported.entry(row).or_default() += 1;
            }
        }
        let mut oracle: BTreeMap<Table9Row, usize> = BTreeMap::new();
        for k in spec.oracle() {
            if let Some(row) = Table9Row::of(k) {
                *oracle.entry(row).or_default() += 1;
            }
        }
        for &row in &Table9Row::ALL {
            let r = reported.get(&row).copied().unwrap_or(0);
            let o = oracle.get(&row).copied().unwrap_or(0);
            let tp = r.min(o);
            let acc = table.get_mut(&row).expect("row present");
            acc.correct += tp;
            acc.fp += r - tp;
            acc.known_fn += o - tp;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_apps() {
        assert_eq!(open_source_apps().len(), 16);
    }

    #[test]
    fn accuracy_matches_table9() {
        let table = evaluate_accuracy();
        let get = |r: Table9Row| table[&r];
        assert_eq!(
            get(Table9Row::Conn),
            Accuracy {
                correct: 31,
                fp: 4,
                known_fn: 5
            },
            "connectivity row"
        );
        assert_eq!(
            get(Table9Row::Timeout),
            Accuracy {
                correct: 58,
                fp: 0,
                known_fn: 0
            },
            "timeout row"
        );
        assert_eq!(
            get(Table9Row::Retry),
            Accuracy {
                correct: 12,
                fp: 0,
                known_fn: 0
            },
            "retry row"
        );
        assert_eq!(
            get(Table9Row::OverRetry),
            Accuracy {
                correct: 4,
                fp: 0,
                known_fn: 0
            },
            "over-retry row"
        );
        assert_eq!(
            get(Table9Row::Notification),
            Accuracy {
                correct: 20,
                fp: 5,
                known_fn: 0
            },
            "notification row"
        );
        assert_eq!(
            get(Table9Row::Response),
            Accuracy {
                correct: 5,
                fp: 0,
                known_fn: 0
            },
            "response row"
        );
        let total: (usize, usize, usize) = table.values().fold((0, 0, 0), |(c, f, n), a| {
            (c + a.correct, f + a.fp, n + a.known_fn)
        });
        assert_eq!(total, (130, 9, 5), "Table 9 totals");
        // Accuracy: 130 / (130 + 9) ≈ 93.5% — the paper's "94+%" rounds
        // from the same ratio.
        let acc = 130.0 / 139.0;
        assert!(acc > 0.93);
    }
}
