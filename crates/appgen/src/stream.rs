//! Streaming generation of app-store-sized corpora.
//!
//! The evaluation corpus ([`crate::profile::corpus`]) materializes 285
//! specs in RAM, which is fine at paper scale and hopeless at store
//! scale: vetting 100k+ submissions must generate, analyze, and drop
//! each bundle without ever holding the corpus. A [`CorpusStream`] does
//! exactly that — the only materialized state is the 285 calibrated
//! *base* specs it draws defect shapes from; every streamed app is
//! derived on demand from `(seed, index)` alone.
//!
//! That per-index **random access** is the property the store-scale
//! subsystem is built on:
//!
//! - [`CorpusStream::spec_at`] makes generation shardable — any worker
//!   can produce app `i` without generating apps `0..i`;
//! - [`CorpusStream::version_at`] makes *version churn* reproducible —
//!   version `v` of app `i` is a pure function, so a re-vetting run can
//!   regenerate exactly the bundle a store resubmission would carry and
//!   the delta machinery can be checked against spec-level ground truth.
//!
//! Size realism: app stores are dominated by small apps with a heavy
//! tail of large ones, and most submissions never touch the network.
//! The stream draws each app's ballast-class count from a Pareto-shaped
//! distribution and makes a seeded fraction of apps network-free
//! ([`crate::profile::no_network_app`] shapes); the rest clone a
//! calibrated base spec, so defect *rates* still track the paper's
//! tables.

use crate::profile::{self, CORPUS_SIZE};
use crate::spec::AppSpec;
use crate::update::evolve;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Tuning knobs for a [`CorpusStream`].
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Fraction of streamed apps with no network surface at all, in
    /// `[0, 1]`.
    pub clean_frac: f64,
    /// Smallest ballast-class count an app can draw.
    pub min_bulk: usize,
    /// Cap on the ballast-class heavy tail.
    pub max_bulk: usize,
}

impl Default for StreamOptions {
    fn default() -> StreamOptions {
        StreamOptions {
            clean_frac: 0.5,
            min_bulk: 4,
            max_bulk: 64,
        }
    }
}

/// A streaming, randomly addressable corpus of `size` apps.
///
/// Iterating yields `(index, spec)` pairs in index order; [`spec_at`]
/// and [`version_at`] answer the same question out of order. Both are
/// deterministic in `(seed, options, index)`.
///
/// [`spec_at`]: CorpusStream::spec_at
/// [`version_at`]: CorpusStream::version_at
pub struct CorpusStream {
    seed: u64,
    size: usize,
    options: StreamOptions,
    /// The calibrated defect shapes every network app clones from —
    /// the only corpus-sized state the stream ever holds.
    base: Arc<Vec<AppSpec>>,
    next: usize,
}

/// SplitMix64: the per-index hash every derived property hangs off.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform float in `[0, 1)` from the high bits of a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl CorpusStream {
    /// A stream of `size` apps derived from `seed` with default
    /// [`StreamOptions`].
    pub fn new(seed: u64, size: usize) -> CorpusStream {
        CorpusStream::with_options(seed, size, StreamOptions::default())
    }

    /// A stream with explicit options.
    pub fn with_options(seed: u64, size: usize, options: StreamOptions) -> CorpusStream {
        CorpusStream {
            seed,
            size,
            options,
            base: Arc::new(profile::corpus(seed)),
            next: 0,
        }
    }

    /// Apps in the stream.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The ballast-class count app `i` draws: Pareto-shaped (many small
    /// apps, a heavy tail of large ones), clamped to
    /// `[min_bulk, max_bulk]`.
    fn bulk_at(&self, i: usize) -> usize {
        let u = unit(mix(self.seed ^ 0xb01c, i as u64));
        // Inverse-CDF sample of a Pareto tail with alpha = 2: the median
        // lands near 1.4 × min, the 99th percentile near 10 × min.
        let pareto = self.options.min_bulk.max(1) as f64 / (1.0 - u).sqrt();
        (pareto as usize).clamp(self.options.min_bulk.max(1), self.options.max_bulk.max(1))
    }

    /// Version 0 of app `i`. Clean apps are pure-ballast
    /// [`profile::no_network_app`] shapes; network apps clone a
    /// calibrated base spec. Every app gets a stream-unique package and
    /// its own ballast draw.
    pub fn spec_at(&self, i: usize) -> AppSpec {
        assert!(i < self.size, "index {i} out of a {}-app stream", self.size);
        let h = mix(self.seed, i as u64);
        let bulk = self.bulk_at(i);
        let mut spec = if unit(h) < self.options.clean_frac.clamp(0.0, 1.0) {
            profile::no_network_app(i, bulk)
        } else {
            let mut s = self.base[(mix(h, 0x5e1ec7) as usize) % CORPUS_SIZE].clone();
            s.bulk = bulk;
            s
        };
        spec.package = format!("com.store.app{i:06}");
        spec
    }

    /// Version `v` of app `i`: `v` successive [`evolve`] steps over
    /// [`spec_at`]`(i)`, each editing ~30% of the app's requests.
    /// Network-free apps have no requests to evolve, so a new version
    /// grows its ballast instead — an update must change the bundle
    /// bytes, or resubmission would be a no-op.
    ///
    /// [`spec_at`]: CorpusStream::spec_at
    pub fn version_at(&self, i: usize, v: u32) -> AppSpec {
        let mut spec = self.spec_at(i);
        if spec.requests.is_empty() {
            spec.bulk += v as usize;
            return spec;
        }
        for step in 1..=v {
            spec = evolve(
                &spec,
                0.3,
                mix(self.seed ^ 0xeb01, ((i as u64) << 8) | step as u64),
            )
            .spec;
        }
        spec
    }
}

impl Iterator for CorpusStream {
    type Item = (usize, AppSpec);

    fn next(&mut self) -> Option<(usize, AppSpec)> {
        if self.next >= self.size {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some((i, self.spec_at(i)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.size - self.next;
        (left, Some(left))
    }
}

/// Where app `i` of a sharded corpus tree lives under `root`:
/// `root/shard-XX/appNNNNNN.apk`, sharded round-robin so every shard
/// directory stays small enough for plain `ls` at 100k apps.
pub fn sharded_path(root: &Path, shards: usize, index: usize) -> PathBuf {
    let shard = index % shards.max(1);
    root.join(format!("shard-{shard:02x}"))
        .join(format!("app{index:06}.apk"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_randomly_addressable() {
        let collected: Vec<AppSpec> = CorpusStream::new(7, 24).map(|(_, s)| s).collect();
        assert_eq!(collected.len(), 24);
        let stream = CorpusStream::new(7, 24);
        for (i, spec) in collected.iter().enumerate() {
            assert_eq!(&stream.spec_at(i), spec, "spec_at({i}) matches iteration");
        }
        assert_ne!(
            CorpusStream::new(8, 24).spec_at(0),
            collected[0],
            "seed moves the stream"
        );
    }

    #[test]
    fn packages_are_stream_unique() {
        let names: std::collections::BTreeSet<String> =
            CorpusStream::new(3, 300).map(|(_, s)| s.package).collect();
        assert_eq!(names.len(), 300);
    }

    #[test]
    fn clean_fraction_and_bulk_distribution_hold() {
        let opts = StreamOptions {
            clean_frac: 0.5,
            min_bulk: 4,
            max_bulk: 64,
        };
        let specs: Vec<AppSpec> = CorpusStream::with_options(11, 400, opts)
            .map(|(_, s)| s)
            .collect();
        let clean = specs.iter().filter(|s| s.requests.is_empty()).count();
        assert!(
            (140..=260).contains(&clean),
            "~half the stream is network-free, got {clean}/400"
        );
        assert!(specs.iter().all(|s| (4..=64).contains(&s.bulk)));
        // Heavy tail: most apps are small, some are several times the
        // minimum.
        let small = specs.iter().filter(|s| s.bulk <= 8).count();
        let large = specs.iter().filter(|s| s.bulk >= 16).count();
        assert!(small > specs.len() / 2, "mostly small apps ({small})");
        assert!(large > 0, "a heavy tail exists");
    }

    #[test]
    fn versions_always_change_the_bundle() {
        let stream = CorpusStream::new(5, 40);
        for i in 0..40 {
            let v0 = crate::generate(&stream.version_at(i, 0)).to_bytes();
            let v1 = crate::generate(&stream.version_at(i, 1)).to_bytes();
            assert_ne!(v0, v1, "app {i}: version 1 must differ from version 0");
            assert_eq!(
                v1,
                crate::generate(&stream.version_at(i, 1)).to_bytes(),
                "app {i}: versions are deterministic"
            );
        }
    }

    #[test]
    fn version_zero_equals_spec_at() {
        let stream = CorpusStream::new(9, 10);
        for i in 0..10 {
            assert_eq!(stream.version_at(i, 0), stream.spec_at(i));
        }
    }

    #[test]
    fn sharded_paths_partition_the_tree() {
        let root = Path::new("/corpus");
        let p = sharded_path(root, 8, 11);
        assert_eq!(p, root.join("shard-03").join("app000011.apk"));
        // Every shard directory gets work.
        let used: std::collections::BTreeSet<PathBuf> = (0..64)
            .map(|i| sharded_path(root, 8, i).parent().unwrap().to_path_buf())
            .collect();
        assert_eq!(used.len(), 8);
    }
}
