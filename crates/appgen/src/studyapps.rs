//! Reconstructions of named apps from the paper: the motivating examples
//! (Figures 1 and 2), the GPSLogger report example (Figure 7), and the
//! user-study subjects (Table 10).

use crate::spec::{AppSpec, ConnCheck, Notification, Origin, RequestSpec, RespCheck, RetryShape};
use nck_netlibs::library::Library;

/// Figure 1 — ChatSecure: connect guarded by `isConnected()`, but login
/// still fails under poor (not absent) connectivity: no timeout, no
/// failure handling beyond the guard.
pub fn chatsecure() -> AppSpec {
    let mut r = RequestSpec::new(Library::HttpUrlConnection, Origin::UserClick);
    r.conn_check = ConnCheck::Guarding; // The patch of Figure 1.
    r.set_timeout = false; // login() can still block forever.
    r.notification = Notification::Missing;
    AppSpec::new("info.guardianproject.chatsecure", vec![r])
}

/// Figure 2 — Telegram: a customized reconnect loop that hammers
/// `connect()` every 500 ms with no backoff (battery drain).
pub fn telegram() -> AppSpec {
    let mut r = RequestSpec::new(Library::HttpUrlConnection, Origin::ActivityLifecycle);
    r.conn_check = ConnCheck::Guarding; // The patch of Figure 2.
    r.custom_retry = Some(RetryShape::SuccessExit); // Spin until success.
    r.notification = Notification::Missing;
    AppSpec::new("org.telegram.messenger", vec![r])
}

/// Figure 7 / Table 10 — GPSLogger: no timeout, no retry times, no
/// retried exception class, and no connectivity check.
pub fn gpslogger() -> AppSpec {
    let mut r = RequestSpec::new(Library::AndroidAsyncHttp, Origin::UserClick);
    r.conn_check = ConnCheck::Missing;
    r.set_timeout = false;
    r.set_retries = None;
    r.notification = Notification::Alert;
    AppSpec::new("com.mendhak.gpslogger", vec![r])
}

/// Table 10 — AnkiDroid: no connectivity check before the sync request.
pub fn ankidroid() -> AppSpec {
    let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
    r.conn_check = ConnCheck::Missing;
    r.set_timeout = true;
    r.set_retries = Some(2);
    r.notification = Notification::Alert;
    AppSpec::new("com.ichi2.anki", vec![r])
}

/// Table 10 — DevFest: no error message in the callback and an invalid
/// (unchecked) response read.
pub fn devfest() -> AppSpec {
    let mut r = RequestSpec::new(Library::OkHttp, Origin::UserClick);
    r.conn_check = ConnCheck::Guarding;
    r.set_timeout = true;
    r.notification = Notification::Missing;
    r.response = RespCheck::Unchecked;
    AppSpec::new("com.devfest.schedule", vec![r])
}

/// Table 10 — Maoshishu: background sync over-retries (5-retry default).
pub fn maoshishu() -> AppSpec {
    let mut r = RequestSpec::new(Library::AndroidAsyncHttp, Origin::Service);
    r.conn_check = ConnCheck::Guarding;
    r.set_timeout = true;
    r.set_retries = None; // The library default retries 5 times.
    AppSpec::new("com.maoshishu", vec![r])
}

/// All named reconstructions.
pub fn all_study_apps() -> Vec<AppSpec> {
    vec![
        chatsecure(),
        telegram(),
        gpslogger(),
        ankidroid(),
        devfest(),
        maoshishu(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nchecker::{DefectKind, NChecker, OverRetryContext};

    fn kinds(spec: &AppSpec) -> Vec<DefectKind> {
        let apk = crate::gen::generate(spec);
        NChecker::new()
            .analyze_apk(&apk)
            .unwrap()
            .defects
            .iter()
            .map(|d| d.kind)
            .collect()
    }

    #[test]
    fn chatsecure_guard_is_not_enough() {
        let got = kinds(&chatsecure());
        // The Figure 1 patch silences the connectivity warning but the
        // timeout and notification defects remain.
        assert!(!got.contains(&DefectKind::MissedConnectivityCheck));
        assert!(got.contains(&DefectKind::MissedTimeout));
        assert!(got.contains(&DefectKind::MissedFailureNotification));
    }

    #[test]
    fn telegram_reconnect_loop_is_detected() {
        let apk = crate::gen::generate(&telegram());
        let report = NChecker::new().analyze_apk(&apk).unwrap();
        assert_eq!(report.stats.custom_retry_loops, 1);
    }

    #[test]
    fn gpslogger_matches_figure7() {
        let got = kinds(&gpslogger());
        assert!(got.contains(&DefectKind::MissedConnectivityCheck));
        assert!(got.contains(&DefectKind::MissedTimeout));
        assert!(got.contains(&DefectKind::MissedRetry));
    }

    #[test]
    fn ankidroid_only_misses_the_connectivity_check() {
        let got = kinds(&ankidroid());
        assert_eq!(got, vec![DefectKind::MissedConnectivityCheck]);
    }

    #[test]
    fn devfest_misses_notification_and_response_check() {
        let got = kinds(&devfest());
        assert!(got.contains(&DefectKind::MissedFailureNotification));
        assert!(got.contains(&DefectKind::MissedResponseCheck));
    }

    #[test]
    fn maoshishu_over_retries_in_background() {
        let got = kinds(&maoshishu());
        assert!(got.contains(&DefectKind::OverRetry {
            context: OverRetryContext::Service,
            default_caused: true,
        }));
    }
}
