//! Textual disassembly of ADX files, for debugging and golden tests.

use crate::insn::{Insn, InvokeKind};
use crate::model::{AccessFlags, AdxFile, CodeItem};
use std::fmt::Write as _;

fn kind_name(k: InvokeKind) -> &'static str {
    match k {
        InvokeKind::Virtual => "invoke-virtual",
        InvokeKind::Static => "invoke-static",
        InvokeKind::Direct => "invoke-direct",
        InvokeKind::Interface => "invoke-interface",
        InvokeKind::Super => "invoke-super",
    }
}

fn fmt_insn(file: &AdxFile, insn: &Insn) -> String {
    match insn {
        Insn::Nop => "nop".to_owned(),
        Insn::Move { dst, src } => format!("move {dst}, {src}"),
        Insn::ConstInt { dst, value } => format!("const {dst}, {value}"),
        Insn::ConstString { dst, idx } => format!(
            "const-string {dst}, {:?}",
            file.pools.get_string(*idx).unwrap_or("<bad>")
        ),
        Insn::ConstNull { dst } => format!("const-null {dst}"),
        Insn::ConstClass { dst, ty } => format!(
            "const-class {dst}, {}",
            file.pools.get_type(*ty).unwrap_or("<bad>")
        ),
        Insn::NewInstance { dst, ty } => format!(
            "new-instance {dst}, {}",
            file.pools.get_type(*ty).unwrap_or("<bad>")
        ),
        Insn::NewArray { dst, len, ty } => format!(
            "new-array {dst}, {len}, {}",
            file.pools.get_type(*ty).unwrap_or("<bad>")
        ),
        Insn::CheckCast { reg, ty } => format!(
            "check-cast {reg}, {}",
            file.pools.get_type(*ty).unwrap_or("<bad>")
        ),
        Insn::InstanceOf { dst, src, ty } => format!(
            "instance-of {dst}, {src}, {}",
            file.pools.get_type(*ty).unwrap_or("<bad>")
        ),
        Insn::ArrayLength { dst, arr } => format!("array-length {dst}, {arr}"),
        Insn::Aget { dst, arr, idx } => format!("aget {dst}, {arr}[{idx}]"),
        Insn::Aput { src, arr, idx } => format!("aput {src}, {arr}[{idx}]"),
        Insn::Iget { dst, obj, field } => {
            format!("iget {dst}, {obj}.{}", file.pools.display_field(*field))
        }
        Insn::Iput { src, obj, field } => {
            format!("iput {src}, {obj}.{}", file.pools.display_field(*field))
        }
        Insn::Sget { dst, field } => format!("sget {dst}, {}", file.pools.display_field(*field)),
        Insn::Sput { src, field } => format!("sput {src}, {}", file.pools.display_field(*field)),
        Insn::Invoke { kind, method, args } => {
            let args = args
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{} {}({args})",
                kind_name(*kind),
                file.pools.display_method(*method)
            )
        }
        Insn::MoveResult { dst } => format!("move-result {dst}"),
        Insn::MoveException { dst } => format!("move-exception {dst}"),
        Insn::Return { src: None } => "return-void".to_owned(),
        Insn::Return { src: Some(r) } => format!("return {r}"),
        Insn::Throw { src } => format!("throw {src}"),
        Insn::Goto { target } => format!("goto @{target}"),
        Insn::If { cond, a, b, target } => format!("if-{cond:?} {a}, {b} @{target}"),
        Insn::IfZ { cond, a, target } => format!("ifz-{cond:?} {a} @{target}"),
        Insn::BinOp { op, dst, a, b } => format!("{op:?} {dst}, {a}, {b}"),
        Insn::BinOpLit { op, dst, a, lit } => format!("{op:?}-lit {dst}, {a}, #{lit}"),
        Insn::UnOp { op, dst, src } => format!("{op:?} {dst}, {src}"),
        Insn::Switch { src, targets } => {
            let arms = targets
                .iter()
                .map(|(k, t)| format!("{k}=>@{t}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("switch {src} {{{arms}}}")
        }
    }
}

fn disasm_code(file: &AdxFile, code: &CodeItem, out: &mut String) {
    let _ = writeln!(out, "    .registers {} .ins {}", code.registers, code.ins);
    for (i, insn) in code.insns.iter().enumerate() {
        let _ = writeln!(out, "    {i:4}: {}", fmt_insn(file, insn));
    }
    for t in &code.tries {
        let handlers = t
            .handlers
            .iter()
            .map(|h| {
                let ty = h
                    .exception
                    .and_then(|t| file.pools.get_type(t))
                    .unwrap_or("<any>");
                format!("{ty} => @{}", h.target)
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "    .try [{}, {}) {{{handlers}}}", t.start, t.end);
    }
}

/// Renders the whole file as human-readable assembly.
pub fn disassemble(file: &AdxFile) -> String {
    let mut out = String::new();
    for class in &file.classes {
        let name = file.pools.get_type(class.ty).unwrap_or("<bad>");
        let sup = class
            .superclass
            .and_then(|s| file.pools.get_type(s))
            .unwrap_or("<none>");
        let _ = writeln!(out, ".class {name} extends {sup}");
        for i in &class.interfaces {
            let _ = writeln!(
                out,
                "  .implements {}",
                file.pools.get_type(*i).unwrap_or("<bad>")
            );
        }
        for f in &class.fields {
            let _ = writeln!(out, "  .field {}", file.pools.display_field(f.field));
        }
        for m in &class.methods {
            let abs = if m.flags.contains(AccessFlags::ABSTRACT) {
                " (abstract)"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  .method {}{abs}",
                file.pools.display_method(m.method)
            );
            if let Some(code) = &m.code {
                disasm_code(file, code, &mut out);
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AdxBuilder;
    use crate::insn::CondOp;
    use crate::model::AccessFlags;

    #[test]
    fn disassembly_mentions_everything() {
        let mut b = AdxBuilder::new();
        b.class("Lcom/app/A;", |c| {
            c.super_class("Landroid/app/Activity;");
            c.field("count", "I", AccessFlags::PRIVATE);
            c.method("f", "(I)V", AccessFlags::PUBLIC, 4, |m| {
                let p = m.param(1).unwrap();
                let end = m.new_label();
                m.ifz(CondOp::Eq, p, end);
                m.const_str(m.reg(0), "hello");
                m.invoke_virtual("Lcom/app/A;", "g", "()V", &[m.param(0).unwrap()]);
                m.bind(end);
                m.ret(None);
            });
        });
        let f = b.finish().unwrap();
        let text = disassemble(&f);
        assert!(text.contains(".class Lcom/app/A; extends Landroid/app/Activity;"));
        assert!(text.contains(".field Lcom/app/A;.count:I"));
        assert!(text.contains("invoke-virtual Lcom/app/A;.g()V(v2)"));
        assert!(text.contains("const-string v0, \"hello\""));
        assert!(text.contains("return-void"));
    }
}
