//! Constant-pool prescan: classify a bundle as network-touching or not
//! *before* lifting any code.
//!
//! Every network API an app can call must appear as a `MethodRef` in the
//! constant pool, so scanning the pool against the registry is a sound
//! over-approximation of "this app may create a request": no pool hit
//! means no call site can exist anywhere in the bundle. The scan is two
//! phases — resolve each pool entry's class/name strings against a
//! relevance predicate, then (only when something matched) walk the
//! instruction stream to find which classes actually reference a
//! matching entry. Phase two never allocates per-instruction and the
//! whole scan runs in O(pool + insns) without building any IR.

use crate::insn::Insn;
use crate::model::AdxFile;
use crate::pool::MethodIdx;
use std::collections::BTreeSet;

/// The result of scanning one bundle's constant pool.
#[derive(Debug, Clone, Default)]
pub struct PoolScan {
    /// Pool indices of method references matching the predicate.
    pub relevant_refs: Vec<MethodIdx>,
    /// Names of classes whose code references a matching pool entry.
    pub touching_classes: BTreeSet<String>,
}

impl PoolScan {
    /// Whether any code in the bundle can reach a relevant API.
    pub fn touches_network(&self) -> bool {
        !self.relevant_refs.is_empty()
    }
}

/// Scans `file`'s method pool for entries whose `(class, name)` pair
/// satisfies `is_relevant`, then collects the classes that invoke them.
///
/// Dangling pool references (a `MethodRef` whose class or name index
/// resolves to nothing) are skipped here: they cannot name a real API,
/// and the verifier reports them through its own channel.
pub fn prescan(file: &AdxFile, is_relevant: &dyn Fn(&str, &str) -> bool) -> PoolScan {
    let mut relevant_refs = Vec::new();
    for (i, m) in file.pools.methods().iter().enumerate() {
        let (Some(class), Some(name)) =
            (file.pools.get_type(m.class), file.pools.get_string(m.name))
        else {
            continue;
        };
        if is_relevant(class, name) {
            relevant_refs.push(MethodIdx(i as u32));
        }
    }

    let mut touching_classes = BTreeSet::new();
    if !relevant_refs.is_empty() {
        let hits: BTreeSet<MethodIdx> = relevant_refs.iter().copied().collect();
        for class in &file.classes {
            let touches = class
                .methods
                .iter()
                .filter_map(|m| m.code.as_ref())
                .flat_map(|c| &c.insns)
                .any(|i| matches!(i, Insn::Invoke { method, .. } if hits.contains(method)));
            if touches {
                if let Some(name) = file.pools.get_type(class.ty) {
                    touching_classes.insert(name.to_owned());
                }
            }
        }
    }

    PoolScan {
        relevant_refs,
        touching_classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AdxBuilder;
    use crate::model::AccessFlags;

    fn app_with_call(class: &str, callee_class: &str, callee: &str) -> AdxFile {
        let mut b = AdxBuilder::new();
        let callee_class = callee_class.to_owned();
        let callee = callee.to_owned();
        b.class(class, |c| {
            c.super_class("Ljava/lang/Object;");
            c.method(
                "run",
                "()V",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                4,
                {
                    let (cc, cn) = (callee_class.clone(), callee.clone());
                    move |m| {
                        m.invoke_static(&cc, &cn, "()V", &[]);
                        m.ret(None);
                    }
                },
            );
        });
        b.finish().expect("builds")
    }

    #[test]
    fn scan_finds_referencing_class() {
        let file = app_with_call("Lcom/t/Main;", "Ljava/net/URL;", "openConnection");
        let scan = prescan(&file, &|class, name| {
            class == "Ljava/net/URL;" && name == "openConnection"
        });
        assert!(scan.touches_network());
        assert_eq!(scan.relevant_refs.len(), 1);
        assert!(scan.touching_classes.contains("Lcom/t/Main;"));
    }

    #[test]
    fn scan_skips_unrelated_bundle() {
        let file = app_with_call("Lcom/t/Main;", "Lcom/t/Helper;", "work");
        let scan = prescan(&file, &|class, _| class.starts_with("Ljava/net/"));
        assert!(!scan.touches_network());
        assert!(scan.touching_classes.is_empty());
    }

    #[test]
    fn empty_file_is_clean() {
        let scan = prescan(&AdxFile::new(), &|_, _| true);
        assert!(!scan.touches_network());
    }
}
