//! Low-level wire helpers: little-endian primitives and the payload
//! checksum shared by the writer and the parser.

use crate::{AdxError, Result};

/// FNV-1a 64-bit hash, used as the payload integrity checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes without a length prefix.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// A bounds-checked little-endian byte reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes remaining to be read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(AdxError::Truncated {
                at: self.pos,
                wanted: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32> {
        Ok(self.u32()? as i32)
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let at = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| AdxError::BadUtf8 { at })
    }

    /// Reads a count that is subsequently used to size an allocation,
    /// rejecting counts that could not possibly fit in the remaining input.
    ///
    /// `min_elem_size` is the smallest possible wire size of one element.
    pub fn count(&mut self, min_elem_size: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        if min_elem_size > 0 && n > self.remaining() / min_elem_size {
            return Err(AdxError::BadCount {
                at: self.pos,
                count: n,
            });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(1000);
        w.u32(123_456);
        w.u64(u64::MAX);
        w.i32(-5);
        w.i64(i64::MIN);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 1000);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i32().unwrap(), -5);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_read_is_an_error() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
    }

    #[test]
    fn bad_utf8_is_an_error() {
        let mut w = Writer::new();
        w.u32(2);
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str(), Err(AdxError::BadUtf8 { .. })));
    }

    #[test]
    fn absurd_count_is_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.count(4), Err(AdxError::BadCount { .. })));
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
