//! The ADX file model: classes, fields, methods, code items, and traps.

use crate::insn::Insn;
use crate::pool::{FieldIdx, MethodIdx, Pools, ProtoIdx, StringIdx, TypeIdx};

/// Access and kind flags for classes, fields, and methods.
///
/// The numeric values match the JVM/DEX `access_flags` encoding for the
/// subset we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessFlags(pub u32);

impl AccessFlags {
    /// `public` visibility.
    pub const PUBLIC: AccessFlags = AccessFlags(0x1);
    /// `private` visibility.
    pub const PRIVATE: AccessFlags = AccessFlags(0x2);
    /// `protected` visibility.
    pub const PROTECTED: AccessFlags = AccessFlags(0x4);
    /// `static` member.
    pub const STATIC: AccessFlags = AccessFlags(0x8);
    /// `final` class or member.
    pub const FINAL: AccessFlags = AccessFlags(0x10);
    /// `interface` class.
    pub const INTERFACE: AccessFlags = AccessFlags(0x200);
    /// `abstract` class or method (no code item).
    pub const ABSTRACT: AccessFlags = AccessFlags(0x400);
    /// Synthetic (compiler-generated) member.
    pub const SYNTHETIC: AccessFlags = AccessFlags(0x1000);
    /// Constructor method.
    pub const CONSTRUCTOR: AccessFlags = AccessFlags(0x10000);

    /// Returns `true` if every bit of `flag` is set in `self`.
    pub fn contains(self, flag: AccessFlags) -> bool {
        self.0 & flag.0 == flag.0
    }

    /// Returns the union of two flag sets.
    pub fn union(self, other: AccessFlags) -> AccessFlags {
        AccessFlags(self.0 | other.0)
    }
}

impl std::ops::BitOr for AccessFlags {
    type Output = AccessFlags;

    fn bitor(self, rhs: AccessFlags) -> AccessFlags {
        self.union(rhs)
    }
}

/// An exception table entry covering a half-open range of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TryBlock {
    /// First covered instruction index.
    pub start: u32,
    /// One past the last covered instruction index.
    pub end: u32,
    /// Catch clauses in declaration order.
    pub handlers: Vec<CatchHandler>,
}

impl TryBlock {
    /// Returns `true` if instruction index `pc` is covered by this range.
    pub fn covers(&self, pc: u32) -> bool {
        self.start <= pc && pc < self.end
    }
}

/// A single catch clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatchHandler {
    /// Caught exception type, or `None` for a catch-all.
    pub exception: Option<TypeIdx>,
    /// Handler entry instruction index.
    pub target: u32,
}

/// The executable body of a concrete method.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CodeItem {
    /// Total number of virtual registers in the frame.
    pub registers: u16,
    /// Number of incoming parameter registers (including the receiver for
    /// instance methods). Parameters occupy the *last* `ins` registers.
    pub ins: u16,
    /// The instruction stream.
    pub insns: Vec<Insn>,
    /// Exception table.
    pub tries: Vec<TryBlock>,
}

impl CodeItem {
    /// Returns the register holding parameter `i` (0-based; for instance
    /// methods parameter 0 is the receiver).
    ///
    /// Returns `None` when `i` is out of range for the declared `ins`,
    /// or when the frame lies (`ins > registers`) and no parameter
    /// register exists at all — adversarial inputs can declare such
    /// frames, and this accessor must stay total on them.
    pub fn param_reg(&self, i: u16) -> Option<crate::insn::Reg> {
        if i >= self.ins {
            return None;
        }
        let base = self.registers.checked_sub(self.ins)?;
        Some(crate::insn::Reg(base + i))
    }

    /// Returns the try blocks covering instruction index `pc` in
    /// declaration order — the runtime's handler search order (inner
    /// ranges are emitted first).
    pub fn traps_at(&self, pc: u32) -> Vec<&TryBlock> {
        self.tries.iter().filter(|t| t.covers(pc)).collect()
    }
}

/// A field definition inside a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldDef {
    /// Reference into the field pool.
    pub field: FieldIdx,
    /// Access flags.
    pub flags: AccessFlags,
}

/// A method definition inside a class.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDef {
    /// Reference into the method pool.
    pub method: MethodIdx,
    /// Access flags.
    pub flags: AccessFlags,
    /// Body, absent for `abstract`/`native` methods.
    pub code: Option<CodeItem>,
}

/// A class definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// This class's type.
    pub ty: TypeIdx,
    /// Superclass type, `None` only for the root object type.
    pub superclass: Option<TypeIdx>,
    /// Implemented interface types.
    pub interfaces: Vec<TypeIdx>,
    /// Access flags.
    pub flags: AccessFlags,
    /// Declared fields.
    pub fields: Vec<FieldDef>,
    /// Declared methods.
    pub methods: Vec<MethodDef>,
}

/// A complete ADX file: pools plus class definitions.
///
/// This is the in-memory form of the binary container produced by
/// [`write`](crate::write::write_adx) and consumed by
/// [`read`](crate::read::read_adx).
#[derive(Debug, Clone, Default)]
pub struct AdxFile {
    /// Constant pools.
    pub pools: Pools,
    /// Class definitions, in file order.
    pub classes: Vec<ClassDef>,
}

impl AdxFile {
    /// Creates an empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds a class definition by its descriptor string.
    pub fn class_by_name(&self, descriptor: &str) -> Option<&ClassDef> {
        self.classes
            .iter()
            .find(|c| self.pools.get_type(c.ty) == Some(descriptor))
    }

    /// Finds the definition of the method referred to by `idx`, if the
    /// declaring class is defined in this file.
    pub fn method_def(&self, idx: MethodIdx) -> Option<(&ClassDef, &MethodDef)> {
        let mref = self.pools.get_method(idx)?;
        let class = self.classes.iter().find(|c| c.ty == mref.class)?;
        let m = class.methods.iter().find(|m| m.method == idx)?;
        Some((class, m))
    }

    /// Iterates over every concrete (code-bearing) method in the file.
    pub fn concrete_methods(&self) -> impl Iterator<Item = (&ClassDef, &MethodDef, &CodeItem)> {
        self.classes.iter().flat_map(|c| {
            c.methods
                .iter()
                .filter_map(move |m| m.code.as_ref().map(|code| (c, m, code)))
        })
    }

    /// Returns the total number of instructions across all methods.
    pub fn insn_count(&self) -> usize {
        self.concrete_methods().map(|(_, _, c)| c.insns.len()).sum()
    }

    /// Returns the proto index of the method referred to by `idx`.
    pub fn proto_of(&self, idx: MethodIdx) -> Option<ProtoIdx> {
        self.pools.get_method(idx).map(|m| m.proto)
    }

    /// Returns the simple (unqualified) name of the method referred to by
    /// `idx`.
    pub fn method_name(&self, idx: MethodIdx) -> Option<&str> {
        let m = self.pools.get_method(idx)?;
        self.pools.get_string(m.name)
    }

    /// Returns the descriptor of the class declaring the method `idx`.
    pub fn method_class_name(&self, idx: MethodIdx) -> Option<&str> {
        let m = self.pools.get_method(idx)?;
        self.pools.get_type(m.class)
    }

    /// Interns a string in this file's pools (convenience passthrough).
    pub fn intern_string(&mut self, s: &str) -> StringIdx {
        self.pools.string(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Reg;

    #[test]
    fn access_flags_compose() {
        let f = AccessFlags::PUBLIC | AccessFlags::STATIC;
        assert!(f.contains(AccessFlags::PUBLIC));
        assert!(f.contains(AccessFlags::STATIC));
        assert!(!f.contains(AccessFlags::FINAL));
    }

    #[test]
    fn param_registers_are_trailing() {
        let code = CodeItem {
            registers: 6,
            ins: 2,
            insns: vec![],
            tries: vec![],
        };
        assert_eq!(code.param_reg(0), Some(Reg(4)));
        assert_eq!(code.param_reg(1), Some(Reg(5)));
        assert_eq!(code.param_reg(2), None);
    }

    #[test]
    fn try_block_coverage() {
        let t = TryBlock {
            start: 2,
            end: 5,
            handlers: vec![],
        };
        assert!(!t.covers(1));
        assert!(t.covers(2));
        assert!(t.covers(4));
        assert!(!t.covers(5));
    }

    #[test]
    fn traps_at_returns_declaration_order() {
        let inner = TryBlock {
            start: 2,
            end: 5,
            handlers: vec![],
        };
        let outer = TryBlock {
            start: 0,
            end: 10,
            handlers: vec![],
        };
        let code = CodeItem {
            registers: 1,
            ins: 0,
            insns: vec![],
            tries: vec![inner.clone(), outer.clone()],
        };
        let at3 = code.traps_at(3);
        assert_eq!(at3.len(), 2);
        assert_eq!(at3[0], &inner, "inner (declared first) leads");
        assert_eq!(at3[1], &outer);
        assert_eq!(code.traps_at(7).len(), 1);
    }

    #[test]
    fn class_lookup_by_name() {
        let mut f = AdxFile::new();
        let ty = f.pools.type_("Lcom/app/A;");
        let sup = f.pools.type_("Ljava/lang/Object;");
        f.classes.push(ClassDef {
            ty,
            superclass: Some(sup),
            interfaces: vec![],
            flags: AccessFlags::PUBLIC,
            fields: vec![],
            methods: vec![],
        });
        assert!(f.class_by_name("Lcom/app/A;").is_some());
        assert!(f.class_by_name("Lcom/app/B;").is_none());
    }
}
