//! Structural verification of parsed or constructed [`AdxFile`]s.
//!
//! The parser ([`read_adx`](crate::read::read_adx)) only checks what it
//! needs to decode safely; this module performs the deeper, whole-file
//! checks a DEX verifier would: branch targets in range, registers within
//! the declared frame, `move-result` placement, try-range sanity, and
//! pool-reference validity inside instruction operands.

use crate::insn::Insn;
use crate::model::{AccessFlags, AdxFile, CodeItem};

/// How much of the file a verification failure poisons.
///
/// Consumers use this to degrade gracefully: a [`VerifyScope::Method`]
/// failure invalidates only that method's body (the rest of the app can
/// still be analyzed), while class- and file-scoped failures leave no
/// sound way to interpret the surrounding structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyScope {
    /// The whole file is suspect (reserved for cross-class problems).
    File,
    /// One class definition is malformed (duplicate definition, bad
    /// superclass reference).
    Class,
    /// One method body is malformed; sibling methods are unaffected.
    Method,
}

/// A single verification failure, locatable to a method and instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Blast radius of the failure (see [`VerifyScope`]).
    pub scope: VerifyScope,
    /// Rendered `class.name(sig)` of the offending method, or the class
    /// name for class-level problems.
    pub method: String,
    /// Instruction index within the method, when applicable.
    pub pc: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "{} @{}: {}", self.method, pc, self.message),
            None => write!(f, "{}: {}", self.method, self.message),
        }
    }
}

fn check_code(file: &AdxFile, method: &str, code: &CodeItem, errors: &mut Vec<VerifyError>) {
    let len = code.insns.len() as u32;
    let n_strings = file.pools.strings().len() as u32;
    let n_types = file.pools.types().len() as u32;
    let n_fields = file.pools.fields().len() as u32;
    let n_methods = file.pools.methods().len() as u32;
    let mut err = |pc: Option<u32>, message: String| {
        errors.push(VerifyError {
            scope: VerifyScope::Method,
            method: method.to_owned(),
            pc,
            message,
        });
    };

    if code.insns.is_empty() {
        err(None, "empty instruction stream".to_owned());
        return;
    }
    if let Some(last) = code.insns.last() {
        if !last.is_terminator() {
            err(
                Some(len - 1),
                "control can fall off the end of the method".to_owned(),
            );
        }
    }

    for (i, insn) in code.insns.iter().enumerate() {
        let pc = i as u32;
        if let Some(d) = insn.def() {
            if d.0 >= code.registers {
                err(Some(pc), format!("defined register {d} out of frame"));
            }
        }
        for u in insn.uses() {
            if u.0 >= code.registers {
                err(Some(pc), format!("used register {u} out of frame"));
            }
        }
        for t in insn.branch_targets() {
            if t >= len {
                err(Some(pc), format!("branch target {t} out of range"));
            }
        }
        match insn {
            Insn::ConstString { idx, .. } if idx.0 >= n_strings => {
                err(Some(pc), format!("string index {idx} out of range"));
            }
            Insn::ConstClass { ty, .. }
            | Insn::NewInstance { ty, .. }
            | Insn::NewArray { ty, .. }
            | Insn::CheckCast { ty, .. }
            | Insn::InstanceOf { ty, .. }
                if ty.0 >= n_types =>
            {
                err(Some(pc), format!("type index {ty} out of range"));
            }
            Insn::Iget { field, .. }
            | Insn::Iput { field, .. }
            | Insn::Sget { field, .. }
            | Insn::Sput { field, .. }
                if field.0 >= n_fields =>
            {
                err(Some(pc), format!("field index {field} out of range"));
            }
            Insn::Invoke { method: m, .. } if m.0 >= n_methods => {
                err(Some(pc), format!("method index {m} out of range"));
            }
            Insn::MoveResult { .. } => {
                let prev = i.checked_sub(1).map(|j| &code.insns[j]);
                if !matches!(prev, Some(Insn::Invoke { .. })) {
                    err(
                        Some(pc),
                        "move-result not immediately after an invoke".to_owned(),
                    );
                }
            }
            _ => {}
        }
    }

    for (ti, t) in code.tries.iter().enumerate() {
        if t.start >= t.end || t.end > len {
            err(
                None,
                format!("try range {ti} [{}, {}) invalid", t.start, t.end),
            );
        }
        if t.handlers.is_empty() {
            err(None, format!("try range {ti} has no handlers"));
        }
        for h in &t.handlers {
            if h.target >= len {
                err(
                    None,
                    format!("try range {ti} handler target {} out of range", h.target),
                );
            }
            if let Some(ty) = h.exception {
                if ty.0 >= n_types {
                    err(
                        None,
                        format!("try range {ti} handler type {ty} out of range"),
                    );
                }
            }
        }
    }
}

/// Verifies `file`, returning every failure found (empty means valid).
pub fn verify(file: &AdxFile) -> Vec<VerifyError> {
    verify_with_skip(file, &[])
}

/// Like [`verify`], but skips the per-class checks for every class index
/// where `skip` is `true` — the incremental path's lever for classes a
/// previous run already verified clean (by content fingerprint). The
/// cross-class duplicate-definition check still covers *all* classes:
/// it is the one file-scoped property a per-class cache cannot carry.
/// Indices beyond `skip.len()` are verified normally.
pub fn verify_with_skip(file: &AdxFile, skip: &[bool]) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    let n_types = file.pools.types().len() as u32;

    let mut seen = std::collections::HashSet::new();
    for (ci, class) in file.classes.iter().enumerate() {
        let class_name = file
            .pools
            .get_type(class.ty)
            .unwrap_or("<bad type>")
            .to_owned();
        if !seen.insert(class.ty) {
            errors.push(VerifyError {
                scope: VerifyScope::Class,
                method: class_name.clone(),
                pc: None,
                message: "duplicate class definition".to_owned(),
            });
        }
        if skip.get(ci).copied().unwrap_or(false) {
            continue;
        }
        if let Some(s) = class.superclass {
            if s.0 >= n_types {
                errors.push(VerifyError {
                    scope: VerifyScope::Class,
                    method: class_name.clone(),
                    pc: None,
                    message: format!("superclass index {s} out of range"),
                });
            }
        }
        for m in &class.methods {
            let name = file.pools.display_method(m.method);
            let is_abstract = m.flags.contains(AccessFlags::ABSTRACT);
            match (&m.code, is_abstract) {
                (Some(_), true) => errors.push(VerifyError {
                    scope: VerifyScope::Method,
                    method: name.clone(),
                    pc: None,
                    message: "abstract method has code".to_owned(),
                }),
                (None, false) => errors.push(VerifyError {
                    scope: VerifyScope::Method,
                    method: name.clone(),
                    pc: None,
                    message: "concrete method missing code".to_owned(),
                }),
                _ => {}
            }
            if let Some(code) = &m.code {
                if code.ins > code.registers {
                    errors.push(VerifyError {
                        scope: VerifyScope::Method,
                        method: name.clone(),
                        pc: None,
                        message: "ins exceeds registers".to_owned(),
                    });
                    continue;
                }
                check_code(file, &name, code, &mut errors);
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AdxBuilder;
    use crate::insn::{CondOp, Insn, Reg};
    use crate::model::AccessFlags;

    fn valid_file() -> AdxFile {
        let mut b = AdxBuilder::new();
        b.class("Lcom/app/A;", |c| {
            c.method("f", "(I)V", AccessFlags::PUBLIC, 4, |m| {
                let p = m.param(1).unwrap();
                let end = m.new_label();
                m.ifz(CondOp::Eq, p, end);
                m.invoke_virtual("Lcom/app/A;", "g", "()V", &[m.param(0).unwrap()]);
                m.bind(end);
                m.ret(None);
            });
            c.method("g", "()V", AccessFlags::PUBLIC, 1, |m| m.ret(None));
        });
        b.finish().unwrap()
    }

    #[test]
    fn valid_file_verifies_clean() {
        assert!(verify(&valid_file()).is_empty());
    }

    #[test]
    fn out_of_frame_register_is_flagged() {
        let mut f = valid_file();
        f.classes[0].methods[0].code.as_mut().unwrap().insns.insert(
            0,
            Insn::ConstInt {
                dst: Reg(99),
                value: 0,
            },
        );
        let errs = verify(&f);
        assert!(errs.iter().any(|e| e.message.contains("out of frame")));
    }

    #[test]
    fn branch_out_of_range_is_flagged() {
        let mut f = valid_file();
        let code = f.classes[0].methods[0].code.as_mut().unwrap();
        code.insns[0] = Insn::Goto { target: 1000 };
        let errs = verify(&f);
        assert!(errs.iter().any(|e| e.message.contains("out of range")));
    }

    #[test]
    fn fall_off_end_is_flagged() {
        let mut f = valid_file();
        let code = f.classes[0].methods[1].code.as_mut().unwrap();
        code.insns = vec![Insn::Nop];
        let errs = verify(&f);
        assert!(errs.iter().any(|e| e.message.contains("fall off")));
    }

    #[test]
    fn stray_move_result_is_flagged() {
        let mut f = valid_file();
        let code = f.classes[0].methods[1].code.as_mut().unwrap();
        code.insns = vec![Insn::MoveResult { dst: Reg(0) }, Insn::Return { src: None }];
        let errs = verify(&f);
        assert!(errs
            .iter()
            .any(|e| e.message.contains("move-result not immediately")));
    }

    #[test]
    fn empty_try_range_is_flagged() {
        let mut f = valid_file();
        let code = f.classes[0].methods[0].code.as_mut().unwrap();
        code.tries.push(crate::model::TryBlock {
            start: 3,
            end: 3,
            handlers: vec![],
        });
        let errs = verify(&f);
        assert!(errs.iter().any(|e| e.message.contains("invalid")));
        assert!(errs.iter().any(|e| e.message.contains("no handlers")));
    }

    #[test]
    fn duplicate_class_is_flagged() {
        let mut f = valid_file();
        let dup = f.classes[0].clone();
        f.classes.push(dup);
        let errs = verify(&f);
        assert!(errs.iter().any(|e| e.message.contains("duplicate class")));
    }

    #[test]
    fn method_failures_are_method_scoped() {
        let mut f = valid_file();
        let code = f.classes[0].methods[0].code.as_mut().unwrap();
        code.insns[0] = Insn::Goto { target: 1000 };
        let errs = verify(&f);
        assert!(!errs.is_empty());
        assert!(errs.iter().all(|e| e.scope == VerifyScope::Method));
        // The sibling method is untouched: no error names it.
        assert!(errs.iter().all(|e| !e.method.contains(".g(")));
    }

    #[test]
    fn class_failures_are_class_scoped() {
        let mut f = valid_file();
        let dup = f.classes[0].clone();
        f.classes.push(dup);
        let errs = verify(&f);
        assert!(errs
            .iter()
            .any(|e| e.scope == VerifyScope::Class && e.message.contains("duplicate class")));
    }

    #[test]
    fn bad_pool_reference_inside_code_is_flagged() {
        // The parser only checks pool refs it decodes structurally;
        // instruction operands like a string index are verify's job.
        let mut f = valid_file();
        let n = f.pools.strings().len() as u32;
        let code = f.classes[0].methods[0].code.as_mut().unwrap();
        code.insns.insert(
            0,
            Insn::ConstString {
                dst: Reg(0),
                idx: crate::pool::StringIdx(n + 7),
            },
        );
        let errs = verify(&f);
        assert!(errs
            .iter()
            .any(|e| e.message.contains("string index") && e.scope == VerifyScope::Method));
    }
}
