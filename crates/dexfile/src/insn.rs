//! The ADX register-based instruction set.
//!
//! ADX instructions are Dalvik-inspired: methods execute over a fixed-size
//! virtual register file, method parameters arrive in the *highest*
//! registers (as in DEX), and call results are consumed by an explicit
//! `move-result`. One deliberate simplification relative to DEX: branch
//! targets are *instruction indices*, not code-unit offsets, which removes
//! an entire class of mis-alignment concerns without changing anything the
//! analyses observe.

use crate::pool::{FieldIdx, MethodIdx, StringIdx, TypeIdx};

/// A virtual register number within a method frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The dispatch kind of an `invoke` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvokeKind {
    /// Virtual dispatch on the receiver (first argument).
    Virtual,
    /// Static call; no receiver.
    Static,
    /// Direct (non-virtual) call: constructors and private methods.
    Direct,
    /// Interface dispatch on the receiver.
    Interface,
    /// Superclass call from an overriding method.
    Super,
}

impl InvokeKind {
    /// Returns `true` if the call has a receiver object in its first slot.
    pub fn has_receiver(self) -> bool {
        !matches!(self, InvokeKind::Static)
    }
}

/// Comparison operator for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CondOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Signed greater-than.
    Gt,
    /// Signed less-or-equal.
    Le,
}

impl CondOp {
    /// Returns the operator that accepts exactly the complementary inputs.
    pub fn negate(self) -> CondOp {
        match self {
            CondOp::Eq => CondOp::Ne,
            CondOp::Ne => CondOp::Eq,
            CondOp::Lt => CondOp::Ge,
            CondOp::Ge => CondOp::Lt,
            CondOp::Gt => CondOp::Le,
            CondOp::Le => CondOp::Gt,
        }
    }

    /// Evaluates the comparison on concrete integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CondOp::Eq => a == b,
            CondOp::Ne => a != b,
            CondOp::Lt => a < b,
            CondOp::Ge => a >= b,
            CondOp::Gt => a > b,
            CondOp::Le => a <= b,
        }
    }
}

/// Arithmetic and logical binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (can throw on a zero divisor).
    Div,
    /// Remainder (can throw on a zero divisor).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
}

impl BinOp {
    /// Returns `true` when the operation can throw `ArithmeticException`.
    pub fn can_throw(self) -> bool {
        matches!(self, BinOp::Div | BinOp::Rem)
    }

    /// Evaluates the operation on concrete integers, if defined.
    ///
    /// This is the *single* evaluation function shared by the
    /// interpreter, constant propagation, and the interprocedural
    /// summary engine, so all three agree by construction.
    ///
    /// Shift semantics: ADX has one integer width, `i64`, so `Shl`/`Shr`
    /// mask the shift amount with 63 — Dalvik's rule for its *long*-width
    /// ops (`shl-long` masks with 0x3f). Dalvik's int-width ops mask with
    /// 0x1f instead, but ADX deliberately has no 32-bit lane; a Dalvik
    /// int shift lowered to ADX is widened to 64 bits first, and the
    /// 63-mask is the correct mask for that width. Negative shift
    /// amounts therefore behave as their low six bits (e.g. `-1` shifts
    /// by 63), exactly as on Dalvik.
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        match self {
            BinOp::Add => Some(a.wrapping_add(b)),
            BinOp::Sub => Some(a.wrapping_sub(b)),
            BinOp::Mul => Some(a.wrapping_mul(b)),
            BinOp::Div => a.checked_div(b),
            BinOp::Rem => a.checked_rem(b),
            BinOp::And => Some(a & b),
            BinOp::Or => Some(a | b),
            BinOp::Xor => Some(a ^ b),
            BinOp::Shl => Some(a.wrapping_shl(b as u32 & 63)),
            BinOp::Shr => Some(a.wrapping_shr(b as u32 & 63)),
        }
    }
}

/// Unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise not.
    Not,
}

/// A single ADX instruction.
///
/// Branch targets (`target` fields) are indices into the enclosing
/// [`CodeItem`](crate::model::CodeItem)'s instruction vector.
#[derive(Debug, Clone, PartialEq)]
pub enum Insn {
    /// No operation.
    Nop,
    /// `dst = src` register copy.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Load an integer constant.
    ConstInt {
        /// Destination register.
        dst: Reg,
        /// Constant value.
        value: i64,
    },
    /// Load a string constant from the pool.
    ConstString {
        /// Destination register.
        dst: Reg,
        /// String pool index.
        idx: StringIdx,
    },
    /// Load the `null` reference.
    ConstNull {
        /// Destination register.
        dst: Reg,
    },
    /// Load a class object.
    ConstClass {
        /// Destination register.
        dst: Reg,
        /// Type pool index.
        ty: TypeIdx,
    },
    /// Allocate a new instance (uninitialized until `<init>` is invoked).
    NewInstance {
        /// Destination register.
        dst: Reg,
        /// Class to instantiate.
        ty: TypeIdx,
    },
    /// Allocate a new array.
    NewArray {
        /// Destination register.
        dst: Reg,
        /// Register holding the length.
        len: Reg,
        /// Array type (e.g. `[I`).
        ty: TypeIdx,
    },
    /// Checked downcast; throws `ClassCastException` on mismatch.
    CheckCast {
        /// Register holding the reference, cast in place.
        reg: Reg,
        /// Target type.
        ty: TypeIdx,
    },
    /// `dst = src instanceof ty` (0 or 1).
    InstanceOf {
        /// Destination register.
        dst: Reg,
        /// Reference to test.
        src: Reg,
        /// Type to test against.
        ty: TypeIdx,
    },
    /// `dst = src.length`.
    ArrayLength {
        /// Destination register.
        dst: Reg,
        /// Array reference.
        arr: Reg,
    },
    /// `dst = arr[idx]`.
    Aget {
        /// Destination register.
        dst: Reg,
        /// Array reference.
        arr: Reg,
        /// Index register.
        idx: Reg,
    },
    /// `arr[idx] = src`.
    Aput {
        /// Source register.
        src: Reg,
        /// Array reference.
        arr: Reg,
        /// Index register.
        idx: Reg,
    },
    /// `dst = obj.field`.
    Iget {
        /// Destination register.
        dst: Reg,
        /// Object reference.
        obj: Reg,
        /// Field reference.
        field: FieldIdx,
    },
    /// `obj.field = src`.
    Iput {
        /// Source register.
        src: Reg,
        /// Object reference.
        obj: Reg,
        /// Field reference.
        field: FieldIdx,
    },
    /// `dst = Class.field` (static read).
    Sget {
        /// Destination register.
        dst: Reg,
        /// Field reference.
        field: FieldIdx,
    },
    /// `Class.field = src` (static write).
    Sput {
        /// Source register.
        src: Reg,
        /// Field reference.
        field: FieldIdx,
    },
    /// Method call; result (if any) is picked up by a following
    /// [`Insn::MoveResult`].
    Invoke {
        /// Dispatch kind.
        kind: InvokeKind,
        /// Callee reference.
        method: MethodIdx,
        /// Argument registers; for non-static calls the receiver is first.
        args: Vec<Reg>,
    },
    /// Capture the result of the immediately preceding `invoke`.
    MoveResult {
        /// Destination register.
        dst: Reg,
    },
    /// Capture the caught exception at the start of a handler.
    MoveException {
        /// Destination register.
        dst: Reg,
    },
    /// Return from the method.
    Return {
        /// Returned register, or `None` for `void`.
        src: Option<Reg>,
    },
    /// Throw the exception object in `src`.
    Throw {
        /// Exception reference.
        src: Reg,
    },
    /// Unconditional branch.
    Goto {
        /// Target instruction index.
        target: u32,
    },
    /// Two-register conditional branch; falls through when false.
    If {
        /// Comparison operator.
        cond: CondOp,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
        /// Target instruction index when the comparison holds.
        target: u32,
    },
    /// Compare-with-zero conditional branch; falls through when false.
    IfZ {
        /// Comparison operator (against zero / null).
        cond: CondOp,
        /// Operand register.
        a: Reg,
        /// Target instruction index when the comparison holds.
        target: u32,
    },
    /// `dst = a <op> b`.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = a <op> literal`.
    BinOpLit {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Literal right operand.
        lit: i32,
    },
    /// `dst = <op> src`.
    UnOp {
        /// Operator.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Operand.
        src: Reg,
    },
    /// Multi-way branch on an integer key; falls through on no match.
    Switch {
        /// Key register.
        src: Reg,
        /// `(key, target)` pairs.
        targets: Vec<(i32, u32)>,
    },
}

impl Insn {
    /// Returns the register defined (written) by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Insn::Move { dst, .. }
            | Insn::ConstInt { dst, .. }
            | Insn::ConstString { dst, .. }
            | Insn::ConstNull { dst }
            | Insn::ConstClass { dst, .. }
            | Insn::NewInstance { dst, .. }
            | Insn::NewArray { dst, .. }
            | Insn::InstanceOf { dst, .. }
            | Insn::ArrayLength { dst, .. }
            | Insn::Aget { dst, .. }
            | Insn::Iget { dst, .. }
            | Insn::Sget { dst, .. }
            | Insn::MoveResult { dst }
            | Insn::MoveException { dst }
            | Insn::BinOp { dst, .. }
            | Insn::BinOpLit { dst, .. }
            | Insn::UnOp { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Returns the registers used (read) by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Insn::Move { src, .. } => vec![*src],
            Insn::NewArray { len, .. } => vec![*len],
            Insn::CheckCast { reg, .. } => vec![*reg],
            Insn::InstanceOf { src, .. } => vec![*src],
            Insn::ArrayLength { arr, .. } => vec![*arr],
            Insn::Aget { arr, idx, .. } => vec![*arr, *idx],
            Insn::Aput { src, arr, idx } => vec![*src, *arr, *idx],
            Insn::Iget { obj, .. } => vec![*obj],
            Insn::Iput { src, obj, .. } => vec![*src, *obj],
            Insn::Sput { src, .. } => vec![*src],
            Insn::Invoke { args, .. } => args.clone(),
            Insn::Return { src } => src.iter().copied().collect(),
            Insn::Throw { src } => vec![*src],
            Insn::If { a, b, .. } => vec![*a, *b],
            Insn::IfZ { a, .. } => vec![*a],
            Insn::BinOp { a, b, .. } => vec![*a, *b],
            Insn::BinOpLit { a, .. } => vec![*a],
            Insn::UnOp { src, .. } => vec![*src],
            Insn::Switch { src, .. } => vec![*src],
            _ => vec![],
        }
    }

    /// Returns `true` if control cannot fall through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Insn::Return { .. } | Insn::Throw { .. } | Insn::Goto { .. }
        )
    }

    /// Returns `true` if the instruction can branch somewhere other than
    /// falling through.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Insn::Goto { .. } | Insn::If { .. } | Insn::IfZ { .. } | Insn::Switch { .. }
        )
    }

    /// Returns all explicit branch targets of this instruction.
    pub fn branch_targets(&self) -> Vec<u32> {
        match self {
            Insn::Goto { target } => vec![*target],
            Insn::If { target, .. } | Insn::IfZ { target, .. } => vec![*target],
            Insn::Switch { targets, .. } => targets.iter().map(|&(_, t)| t).collect(),
            _ => vec![],
        }
    }

    /// Rewrites all explicit branch targets through `f`, used by the builder
    /// to patch labels.
    pub fn map_targets(&mut self, mut f: impl FnMut(u32) -> u32) {
        match self {
            Insn::Goto { target } => *target = f(*target),
            Insn::If { target, .. } | Insn::IfZ { target, .. } => *target = f(*target),
            Insn::Switch { targets, .. } => {
                for (_, t) in targets.iter_mut() {
                    *t = f(*t);
                }
            }
            _ => {}
        }
    }

    /// Returns `true` if the instruction may raise a runtime exception and
    /// therefore induces an edge to any enclosing trap handler.
    pub fn can_throw(&self) -> bool {
        match self {
            Insn::Invoke { .. }
            | Insn::Throw { .. }
            | Insn::NewInstance { .. }
            | Insn::NewArray { .. }
            | Insn::CheckCast { .. }
            | Insn::ArrayLength { .. }
            | Insn::Aget { .. }
            | Insn::Aput { .. }
            | Insn::Iget { .. }
            | Insn::Iput { .. } => true,
            Insn::BinOp { op, .. } => op.can_throw(),
            Insn::BinOpLit { op, lit, .. } => op.can_throw() && *lit == 0,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses_cover_invoke() {
        let i = Insn::Invoke {
            kind: InvokeKind::Virtual,
            method: MethodIdx(0),
            args: vec![Reg(1), Reg(2)],
        };
        assert_eq!(i.def(), None);
        assert_eq!(i.uses(), vec![Reg(1), Reg(2)]);
        assert!(i.can_throw());
    }

    #[test]
    fn move_result_defines() {
        let i = Insn::MoveResult { dst: Reg(3) };
        assert_eq!(i.def(), Some(Reg(3)));
        assert!(i.uses().is_empty());
    }

    #[test]
    fn terminators_and_branches() {
        assert!(Insn::Return { src: None }.is_terminator());
        assert!(Insn::Goto { target: 0 }.is_terminator());
        assert!(!Insn::IfZ {
            cond: CondOp::Eq,
            a: Reg(0),
            target: 5
        }
        .is_terminator());
        assert!(Insn::IfZ {
            cond: CondOp::Eq,
            a: Reg(0),
            target: 5
        }
        .is_branch());
    }

    #[test]
    fn branch_targets_of_switch() {
        let i = Insn::Switch {
            src: Reg(0),
            targets: vec![(1, 10), (2, 20)],
        };
        assert_eq!(i.branch_targets(), vec![10, 20]);
    }

    #[test]
    fn map_targets_patches_labels() {
        let mut i = Insn::If {
            cond: CondOp::Lt,
            a: Reg(0),
            b: Reg(1),
            target: 7,
        };
        i.map_targets(|t| t + 100);
        assert_eq!(i.branch_targets(), vec![107]);
    }

    #[test]
    fn cond_negate_roundtrips() {
        for c in [
            CondOp::Eq,
            CondOp::Ne,
            CondOp::Lt,
            CondOp::Ge,
            CondOp::Gt,
            CondOp::Le,
        ] {
            assert_eq!(c.negate().negate(), c);
            assert_ne!(c.eval(1, 2), c.negate().eval(1, 2));
        }
    }

    #[test]
    fn binop_eval_checks_division() {
        assert_eq!(BinOp::Div.eval(10, 2), Some(5));
        assert_eq!(BinOp::Div.eval(10, 0), None);
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), Some(i64::MIN));
    }

    #[test]
    fn shifts_mask_to_long_width() {
        // ADX integers are 64-bit, so shift amounts take Dalvik's
        // long-op 0x3f mask: 64 wraps to 0, 65 to 1, and a negative
        // amount acts as its low six bits.
        assert_eq!(BinOp::Shl.eval(1, 63), Some(i64::MIN));
        assert_eq!(BinOp::Shl.eval(5, 64), Some(5));
        assert_eq!(BinOp::Shl.eval(5, 65), Some(10));
        assert_eq!(BinOp::Shl.eval(1, -1), Some(i64::MIN)); // -1 & 63 == 63
        assert_eq!(BinOp::Shr.eval(i64::MIN, 63), Some(-1));
        assert_eq!(BinOp::Shr.eval(-8, 64), Some(-8));
        assert_eq!(BinOp::Shr.eval(-8, 1), Some(-4)); // arithmetic, not logical
                                                      // Shifts never fail: the mask makes every amount defined.
        for amt in [-65i64, -64, -1, 0, 31, 32, 63, 64, 127, i64::MAX] {
            assert!(BinOp::Shl.eval(0x1234, amt).is_some());
            assert!(BinOp::Shr.eval(0x1234, amt).is_some());
        }
    }

    #[test]
    fn throwing_instructions() {
        assert!(Insn::Iget {
            dst: Reg(0),
            obj: Reg(1),
            field: FieldIdx(0)
        }
        .can_throw());
        assert!(!Insn::ConstInt {
            dst: Reg(0),
            value: 1
        }
        .can_throw());
        assert!(!Insn::BinOpLit {
            op: BinOp::Div,
            dst: Reg(0),
            a: Reg(1),
            lit: 2
        }
        .can_throw());
    }
}
