//! `nck-dex`: the ADX binary app container.
//!
//! ADX is a Dalvik-inspired register-based bytecode container used as the
//! binary substrate of the NChecker reproduction. Real Android apps ship
//! DEX inside an APK; this crate plays the role of the DEX format plus the
//! Dexpler front-end's input: a binary on disk that the analysis pipeline
//! must *parse* before it can lift and analyze anything.
//!
//! The crate provides:
//!
//! - the in-memory model ([`AdxFile`], [`ClassDef`], [`CodeItem`], ...),
//! - the instruction set ([`Insn`]),
//! - a binary writer ([`write_adx`]) and defensive parser ([`read_adx`]),
//! - a structural verifier ([`verify::verify`]),
//! - an ergonomic programmatic builder ([`builder::AdxBuilder`]), and
//! - a disassembler ([`disasm::disassemble`]).
//!
//! # Examples
//!
//! ```
//! use nck_dex::builder::AdxBuilder;
//! use nck_dex::model::AccessFlags;
//!
//! let mut b = AdxBuilder::new();
//! b.class("Lcom/app/Main;", |c| {
//!     c.super_class("Ljava/lang/Object;");
//!     c.method("answer", "()I", AccessFlags::PUBLIC, 2, |m| {
//!         let v = m.reg(0);
//!         m.const_int(v, 42);
//!         m.ret(Some(v));
//!     });
//! });
//! let file = b.finish().unwrap();
//! let bytes = nck_dex::write_adx(&file);
//! let parsed = nck_dex::read_adx(&bytes).unwrap();
//! assert_eq!(parsed.classes.len(), 1);
//! ```

pub mod builder;
pub mod disasm;
pub mod fingerprint;
pub mod insn;
pub mod model;
pub mod pool;
pub mod prescan;
pub mod read;
pub mod verify;
pub mod wire;
pub mod write;

pub use fingerprint::class_fingerprints;
pub use insn::{BinOp, CondOp, Insn, InvokeKind, Reg, UnOp};
pub use model::{
    AccessFlags, AdxFile, CatchHandler, ClassDef, CodeItem, FieldDef, MethodDef, TryBlock,
};
pub use pool::{
    FieldIdx, FieldRef, MethodIdx, MethodRef, Pools, Proto, ProtoIdx, StringIdx, TypeIdx,
};
pub use prescan::{prescan, PoolScan};
pub use read::{read_adx, read_adx_obs};
pub use verify::{VerifyError, VerifyScope};
pub use write::write_adx;

/// Errors produced while reading or constructing ADX containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdxError {
    /// The file does not start with the `ADX1` magic.
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The format version is not supported.
    BadVersion {
        /// The version found.
        found: u16,
    },
    /// Fewer bytes were available than a field required.
    Truncated {
        /// Byte offset of the read.
        at: usize,
        /// Bytes wanted.
        wanted: usize,
        /// Bytes available.
        available: usize,
    },
    /// The payload checksum did not match.
    ChecksumMismatch {
        /// Checksum declared in the header.
        expected: u64,
        /// Checksum computed over the payload.
        actual: u64,
    },
    /// A string was not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the string body.
        at: usize,
    },
    /// A section count was impossibly large for the remaining input.
    BadCount {
        /// Byte offset of the count.
        at: usize,
        /// The declared count.
        count: usize,
    },
    /// A pool cross-reference was out of range.
    BadIndex {
        /// Byte offset of the index.
        at: usize,
        /// Which pool the index refers to.
        kind: &'static str,
        /// The out-of-range value.
        index: u32,
    },
    /// An enum discriminant byte was out of range.
    BadEnum {
        /// Byte offset of the discriminant.
        at: usize,
        /// The unknown value.
        value: u8,
    },
    /// An unknown opcode byte.
    BadOpcode {
        /// Byte offset of the instruction.
        at: usize,
        /// The unknown opcode.
        opcode: u8,
    },
    /// A structural constraint was violated.
    Malformed {
        /// Byte offset of the violation.
        at: usize,
        /// Description of the violation.
        what: &'static str,
    },
    /// The builder finished with an unbound label.
    UnboundLabel {
        /// The label's id.
        label: usize,
    },
    /// An invalid method signature string was supplied to the builder.
    BadSignature {
        /// The offending signature.
        signature: String,
    },
}

impl std::fmt::Display for AdxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdxError::BadMagic { found } => write!(f, "bad magic {found:?}"),
            AdxError::BadVersion { found } => write!(f, "unsupported version {found}"),
            AdxError::Truncated {
                at,
                wanted,
                available,
            } => write!(
                f,
                "truncated input at offset {at}: wanted {wanted} bytes, have {available}"
            ),
            AdxError::ChecksumMismatch { expected, actual } => write!(
                f,
                "payload checksum mismatch: header says {expected:#018x}, computed {actual:#018x}"
            ),
            AdxError::BadUtf8 { at } => write!(f, "invalid UTF-8 string at offset {at}"),
            AdxError::BadCount { at, count } => {
                write!(f, "implausible element count {count} at offset {at}")
            }
            AdxError::BadIndex { at, kind, index } => {
                write!(f, "out-of-range {kind} index {index} at offset {at}")
            }
            AdxError::BadEnum { at, value } => {
                write!(f, "invalid enum discriminant {value} at offset {at}")
            }
            AdxError::BadOpcode { at, opcode } => {
                write!(f, "unknown opcode {opcode:#04x} at offset {at}")
            }
            AdxError::Malformed { at, what } => write!(f, "malformed file at offset {at}: {what}"),
            AdxError::UnboundLabel { label } => {
                write!(f, "builder finished with unbound label {label}")
            }
            AdxError::BadSignature { signature } => {
                write!(f, "invalid method signature {signature:?}")
            }
        }
    }
}

impl std::error::Error for AdxError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AdxError>;

/// Parses the parameter and return descriptors out of a JVM-style method
/// signature such as `(Landroid/os/Bundle;I)V`.
///
/// Returns `(params, return_type)` as descriptor strings.
pub fn parse_signature(sig: &str) -> Result<(Vec<String>, String)> {
    let err = || AdxError::BadSignature {
        signature: sig.to_owned(),
    };
    let rest = sig.strip_prefix('(').ok_or_else(err)?;
    let close = rest.find(')').ok_or_else(err)?;
    let (param_str, ret) = rest.split_at(close);
    let ret = &ret[1..];
    if ret.is_empty() {
        return Err(err());
    }
    validate_descriptor(ret).map_err(|_| err())?;
    let mut params = Vec::new();
    let bytes = param_str.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        while i < bytes.len() && bytes[i] == b'[' {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(err());
        }
        match bytes[i] {
            b'L' => {
                let semi = param_str[i..].find(';').ok_or_else(err)?;
                i += semi + 1;
            }
            b'Z' | b'B' | b'S' | b'C' | b'I' | b'J' | b'F' | b'D' => i += 1,
            _ => return Err(err()),
        }
        params.push(param_str[start..i].to_owned());
    }
    Ok((params, ret.to_owned()))
}

fn validate_descriptor(d: &str) -> std::result::Result<(), ()> {
    let inner = d.trim_start_matches('[');
    match inner.as_bytes().first() {
        Some(b'L') => {
            if inner.ends_with(';') && inner.len() > 2 {
                Ok(())
            } else {
                Err(())
            }
        }
        Some(b'Z' | b'B' | b'S' | b'C' | b'I' | b'J' | b'F' | b'D') if inner.len() == 1 => Ok(()),
        Some(b'V') if inner.len() == 1 && d == "V" => Ok(()),
        _ => Err(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_empty_signature() {
        let (p, r) = parse_signature("()V").unwrap();
        assert!(p.is_empty());
        assert_eq!(r, "V");
    }

    #[test]
    fn parse_mixed_signature() {
        let (p, r) = parse_signature("(Landroid/os/Bundle;I[BLjava/lang/String;)I").unwrap();
        assert_eq!(
            p,
            vec!["Landroid/os/Bundle;", "I", "[B", "Ljava/lang/String;"]
        );
        assert_eq!(r, "I");
    }

    #[test]
    fn parse_array_of_objects() {
        let (p, r) = parse_signature("([[Ljava/lang/String;)V").unwrap();
        assert_eq!(p, vec!["[[Ljava/lang/String;"]);
        assert_eq!(r, "V");
    }

    #[test]
    fn malformed_signatures_rejected() {
        assert!(parse_signature("I)V").is_err());
        assert!(parse_signature("(I").is_err());
        assert!(parse_signature("(Q)V").is_err());
        assert!(parse_signature("(Ljava/lang/String)V").is_err());
        assert!(parse_signature("(I)").is_err());
        assert!(parse_signature("([)V").is_err());
        assert!(parse_signature("(I)[V").is_err());
    }
}
