//! Interned constant pools for strings, types, prototypes, fields, and methods.
//!
//! An [`AdxFile`](crate::AdxFile) stores every symbolic reference once in a
//! pool and refers to it by a typed index, mirroring how DEX files store
//! `string_ids`/`type_ids`/`proto_ids`/`field_ids`/`method_ids`.

use std::collections::HashMap;
use std::fmt;

macro_rules! pool_index {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw pool slot of this index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "#{}", self.0)
            }
        }
    };
}

pool_index!(
    /// Index into the string pool.
    StringIdx
);
pool_index!(
    /// Index into the type pool.
    TypeIdx
);
pool_index!(
    /// Index into the prototype pool.
    ProtoIdx
);
pool_index!(
    /// Index into the field-reference pool.
    FieldIdx
);
pool_index!(
    /// Index into the method-reference pool.
    MethodIdx
);

/// A method prototype: return type plus parameter types.
///
/// Types are stored as [`TypeIdx`] values pointing at JVM-style descriptors
/// (`V`, `I`, `J`, `Z`, `Ljava/lang/String;`, `[B`, ...).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Proto {
    /// Return type descriptor.
    pub return_type: TypeIdx,
    /// Parameter type descriptors, in declaration order.
    pub params: Vec<TypeIdx>,
}

/// A symbolic reference to a field: declaring class, field type, and name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldRef {
    /// Declaring class type.
    pub class: TypeIdx,
    /// Field type.
    pub ty: TypeIdx,
    /// Field name.
    pub name: StringIdx,
}

/// A symbolic reference to a method: declaring class, prototype, and name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodRef {
    /// Declaring class type.
    pub class: TypeIdx,
    /// Method prototype.
    pub proto: ProtoIdx,
    /// Method name.
    pub name: StringIdx,
}

/// The five interned pools of an ADX file.
#[derive(Debug, Clone, Default)]
pub struct Pools {
    strings: Vec<String>,
    string_map: HashMap<String, StringIdx>,
    types: Vec<StringIdx>,
    type_map: HashMap<StringIdx, TypeIdx>,
    protos: Vec<Proto>,
    proto_map: HashMap<Proto, ProtoIdx>,
    fields: Vec<FieldRef>,
    field_map: HashMap<FieldRef, FieldIdx>,
    methods: Vec<MethodRef>,
    method_map: HashMap<MethodRef, MethodIdx>,
}

impl Pools {
    /// Creates empty pools.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a string, returning its pool index.
    pub fn string(&mut self, s: &str) -> StringIdx {
        if let Some(&idx) = self.string_map.get(s) {
            return idx;
        }
        let idx = StringIdx(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.string_map.insert(s.to_owned(), idx);
        idx
    }

    /// Interns a type descriptor string, returning its type index.
    pub fn type_(&mut self, descriptor: &str) -> TypeIdx {
        let s = self.string(descriptor);
        if let Some(&idx) = self.type_map.get(&s) {
            return idx;
        }
        let idx = TypeIdx(self.types.len() as u32);
        self.types.push(s);
        self.type_map.insert(s, idx);
        idx
    }

    /// Interns a prototype, returning its pool index.
    pub fn proto(&mut self, return_type: TypeIdx, params: Vec<TypeIdx>) -> ProtoIdx {
        let proto = Proto {
            return_type,
            params,
        };
        if let Some(&idx) = self.proto_map.get(&proto) {
            return idx;
        }
        let idx = ProtoIdx(self.protos.len() as u32);
        self.protos.push(proto.clone());
        self.proto_map.insert(proto, idx);
        idx
    }

    /// Interns a field reference, returning its pool index.
    pub fn field(&mut self, class: TypeIdx, ty: TypeIdx, name: StringIdx) -> FieldIdx {
        let fr = FieldRef { class, ty, name };
        if let Some(&idx) = self.field_map.get(&fr) {
            return idx;
        }
        let idx = FieldIdx(self.fields.len() as u32);
        self.fields.push(fr);
        self.field_map.insert(fr, idx);
        idx
    }

    /// Interns a method reference, returning its pool index.
    pub fn method(&mut self, class: TypeIdx, proto: ProtoIdx, name: StringIdx) -> MethodIdx {
        let mr = MethodRef { class, proto, name };
        if let Some(&idx) = self.method_map.get(&mr) {
            return idx;
        }
        let idx = MethodIdx(self.methods.len() as u32);
        self.methods.push(mr);
        self.method_map.insert(mr, idx);
        idx
    }

    /// Looks up a string by index.
    pub fn get_string(&self, idx: StringIdx) -> Option<&str> {
        self.strings.get(idx.index()).map(String::as_str)
    }

    /// Looks up the descriptor string of a type.
    pub fn get_type(&self, idx: TypeIdx) -> Option<&str> {
        self.types
            .get(idx.index())
            .and_then(|&s| self.get_string(s))
    }

    /// Looks up a prototype.
    pub fn get_proto(&self, idx: ProtoIdx) -> Option<&Proto> {
        self.protos.get(idx.index())
    }

    /// Looks up a field reference.
    pub fn get_field(&self, idx: FieldIdx) -> Option<&FieldRef> {
        self.fields.get(idx.index())
    }

    /// Looks up a method reference.
    pub fn get_method(&self, idx: MethodIdx) -> Option<&MethodRef> {
        self.methods.get(idx.index())
    }

    /// Returns all interned strings in index order.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// Returns all interned types (as string indices) in index order.
    pub fn types(&self) -> &[StringIdx] {
        &self.types
    }

    /// Returns all interned prototypes in index order.
    pub fn protos(&self) -> &[Proto] {
        &self.protos
    }

    /// Returns all interned field references in index order.
    pub fn fields(&self) -> &[FieldRef] {
        &self.fields
    }

    /// Returns all interned method references in index order.
    pub fn methods(&self) -> &[MethodRef] {
        &self.methods
    }

    /// Renders a method reference as `Lcls;.name(params)ret`, for diagnostics.
    pub fn display_method(&self, idx: MethodIdx) -> String {
        let Some(m) = self.get_method(idx) else {
            return format!("<bad method {idx}>");
        };
        let class = self.get_type(m.class).unwrap_or("<bad>");
        let name = self.get_string(m.name).unwrap_or("<bad>");
        let sig = self.display_proto(m.proto);
        format!("{class}.{name}{sig}")
    }

    /// Renders a prototype as `(params)ret`, for diagnostics.
    pub fn display_proto(&self, idx: ProtoIdx) -> String {
        let Some(p) = self.get_proto(idx) else {
            return format!("<bad proto {idx}>");
        };
        let mut out = String::from("(");
        for &t in &p.params {
            out.push_str(self.get_type(t).unwrap_or("<bad>"));
        }
        out.push(')');
        out.push_str(self.get_type(p.return_type).unwrap_or("<bad>"));
        out
    }

    /// Renders a field reference as `Lcls;.name:ty`, for diagnostics.
    pub fn display_field(&self, idx: FieldIdx) -> String {
        let Some(f) = self.get_field(idx) else {
            return format!("<bad field {idx}>");
        };
        let class = self.get_type(f.class).unwrap_or("<bad>");
        let name = self.get_string(f.name).unwrap_or("<bad>");
        let ty = self.get_type(f.ty).unwrap_or("<bad>");
        format!("{class}.{name}:{ty}")
    }

    /// Re-adds a string at a specific slot during deserialization.
    ///
    /// Strings must be pushed in index order; out-of-order pushes are a bug
    /// in the caller and corrupt the intern maps.
    pub(crate) fn push_string_raw(&mut self, s: String) {
        let idx = StringIdx(self.strings.len() as u32);
        self.string_map.insert(s.clone(), idx);
        self.strings.push(s);
    }

    pub(crate) fn push_type_raw(&mut self, s: StringIdx) {
        let idx = TypeIdx(self.types.len() as u32);
        self.type_map.insert(s, idx);
        self.types.push(s);
    }

    pub(crate) fn push_proto_raw(&mut self, p: Proto) {
        let idx = ProtoIdx(self.protos.len() as u32);
        self.proto_map.insert(p.clone(), idx);
        self.protos.push(p);
    }

    pub(crate) fn push_field_raw(&mut self, f: FieldRef) {
        let idx = FieldIdx(self.fields.len() as u32);
        self.field_map.insert(f, idx);
        self.fields.push(f);
    }

    pub(crate) fn push_method_raw(&mut self, m: MethodRef) {
        let idx = MethodIdx(self.methods.len() as u32);
        self.method_map.insert(m, idx);
        self.methods.push(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_interning_is_idempotent() {
        let mut p = Pools::new();
        let a = p.string("hello");
        let b = p.string("hello");
        let c = p.string("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(p.get_string(a), Some("hello"));
        assert_eq!(p.get_string(c), Some("world"));
    }

    #[test]
    fn type_interning_shares_strings() {
        let mut p = Pools::new();
        let t1 = p.type_("Ljava/lang/String;");
        let t2 = p.type_("Ljava/lang/String;");
        assert_eq!(t1, t2);
        assert_eq!(p.get_type(t1), Some("Ljava/lang/String;"));
    }

    #[test]
    fn proto_interning_distinguishes_params() {
        let mut p = Pools::new();
        let v = p.type_("V");
        let i = p.type_("I");
        let p1 = p.proto(v, vec![i]);
        let p2 = p.proto(v, vec![i, i]);
        let p3 = p.proto(v, vec![i]);
        assert_eq!(p1, p3);
        assert_ne!(p1, p2);
    }

    #[test]
    fn method_display_is_readable() {
        let mut p = Pools::new();
        let cls = p.type_("Lcom/app/Main;");
        let v = p.type_("V");
        let proto = p.proto(v, vec![]);
        let name = p.string("onCreate");
        let m = p.method(cls, proto, name);
        assert_eq!(p.display_method(m), "Lcom/app/Main;.onCreate()V");
    }

    #[test]
    fn field_display_is_readable() {
        let mut p = Pools::new();
        let cls = p.type_("Lcom/app/Main;");
        let ty = p.type_("I");
        let name = p.string("count");
        let f = p.field(cls, ty, name);
        assert_eq!(p.display_field(f), "Lcom/app/Main;.count:I");
    }

    #[test]
    fn bad_indices_return_none() {
        let p = Pools::new();
        assert!(p.get_string(StringIdx(0)).is_none());
        assert!(p.get_type(TypeIdx(3)).is_none());
        assert!(p.get_proto(ProtoIdx(1)).is_none());
        assert!(p.get_field(FieldIdx(9)).is_none());
        assert!(p.get_method(MethodIdx(2)).is_none());
    }
}
