//! Parsing of the ADX binary container back into an [`AdxFile`].
//!
//! The parser is defensive: every index, count, and length is
//! bounds-checked while reading, and the payload checksum is verified
//! before any section is decoded. Structural (cross-reference) validation
//! beyond what parsing needs lives in [`verify`](crate::verify).

use crate::insn::{BinOp, CondOp, Insn, InvokeKind, Reg, UnOp};
use crate::model::{
    AccessFlags, AdxFile, CatchHandler, ClassDef, CodeItem, FieldDef, MethodDef, TryBlock,
};
use crate::pool::{FieldIdx, MethodIdx, Pools, Proto, StringIdx, TypeIdx};
use crate::wire::{fnv1a, Reader};
use crate::write::{opcode, MAGIC, VERSION};
use crate::{AdxError, Result};

fn decode_invoke_kind(code: u8, at: usize) -> Result<InvokeKind> {
    Ok(match code {
        0 => InvokeKind::Virtual,
        1 => InvokeKind::Static,
        2 => InvokeKind::Direct,
        3 => InvokeKind::Interface,
        4 => InvokeKind::Super,
        _ => return Err(AdxError::BadEnum { at, value: code }),
    })
}

fn decode_cond(code: u8, at: usize) -> Result<CondOp> {
    Ok(match code {
        0 => CondOp::Eq,
        1 => CondOp::Ne,
        2 => CondOp::Lt,
        3 => CondOp::Ge,
        4 => CondOp::Gt,
        5 => CondOp::Le,
        _ => return Err(AdxError::BadEnum { at, value: code }),
    })
}

fn decode_binop(code: u8, at: usize) -> Result<BinOp> {
    Ok(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::And,
        6 => BinOp::Or,
        7 => BinOp::Xor,
        8 => BinOp::Shl,
        9 => BinOp::Shr,
        _ => return Err(AdxError::BadEnum { at, value: code }),
    })
}

fn decode_unop(code: u8, at: usize) -> Result<UnOp> {
    Ok(match code {
        0 => UnOp::Neg,
        1 => UnOp::Not,
        _ => return Err(AdxError::BadEnum { at, value: code }),
    })
}

fn read_insn(r: &mut Reader<'_>) -> Result<Insn> {
    let at = r.position();
    let op = r.u8()?;
    Ok(match op {
        opcode::NOP => Insn::Nop,
        opcode::MOVE => Insn::Move {
            dst: Reg(r.u16()?),
            src: Reg(r.u16()?),
        },
        opcode::CONST_INT => Insn::ConstInt {
            dst: Reg(r.u16()?),
            value: r.i64()?,
        },
        opcode::CONST_STRING => Insn::ConstString {
            dst: Reg(r.u16()?),
            idx: StringIdx(r.u32()?),
        },
        opcode::CONST_NULL => Insn::ConstNull { dst: Reg(r.u16()?) },
        opcode::CONST_CLASS => Insn::ConstClass {
            dst: Reg(r.u16()?),
            ty: TypeIdx(r.u32()?),
        },
        opcode::NEW_INSTANCE => Insn::NewInstance {
            dst: Reg(r.u16()?),
            ty: TypeIdx(r.u32()?),
        },
        opcode::NEW_ARRAY => Insn::NewArray {
            dst: Reg(r.u16()?),
            len: Reg(r.u16()?),
            ty: TypeIdx(r.u32()?),
        },
        opcode::CHECK_CAST => Insn::CheckCast {
            reg: Reg(r.u16()?),
            ty: TypeIdx(r.u32()?),
        },
        opcode::INSTANCE_OF => Insn::InstanceOf {
            dst: Reg(r.u16()?),
            src: Reg(r.u16()?),
            ty: TypeIdx(r.u32()?),
        },
        opcode::ARRAY_LENGTH => Insn::ArrayLength {
            dst: Reg(r.u16()?),
            arr: Reg(r.u16()?),
        },
        opcode::AGET => Insn::Aget {
            dst: Reg(r.u16()?),
            arr: Reg(r.u16()?),
            idx: Reg(r.u16()?),
        },
        opcode::APUT => Insn::Aput {
            src: Reg(r.u16()?),
            arr: Reg(r.u16()?),
            idx: Reg(r.u16()?),
        },
        opcode::IGET => Insn::Iget {
            dst: Reg(r.u16()?),
            obj: Reg(r.u16()?),
            field: FieldIdx(r.u32()?),
        },
        opcode::IPUT => Insn::Iput {
            src: Reg(r.u16()?),
            obj: Reg(r.u16()?),
            field: FieldIdx(r.u32()?),
        },
        opcode::SGET => Insn::Sget {
            dst: Reg(r.u16()?),
            field: FieldIdx(r.u32()?),
        },
        opcode::SPUT => Insn::Sput {
            src: Reg(r.u16()?),
            field: FieldIdx(r.u32()?),
        },
        opcode::INVOKE => {
            let kind = decode_invoke_kind(r.u8()?, at)?;
            let method = MethodIdx(r.u32()?);
            let argc = r.u8()? as usize;
            let mut args = Vec::with_capacity(argc);
            for _ in 0..argc {
                args.push(Reg(r.u16()?));
            }
            Insn::Invoke { kind, method, args }
        }
        opcode::MOVE_RESULT => Insn::MoveResult { dst: Reg(r.u16()?) },
        opcode::MOVE_EXCEPTION => Insn::MoveException { dst: Reg(r.u16()?) },
        opcode::RETURN_VOID => Insn::Return { src: None },
        opcode::RETURN_VALUE => Insn::Return {
            src: Some(Reg(r.u16()?)),
        },
        opcode::THROW => Insn::Throw { src: Reg(r.u16()?) },
        opcode::GOTO => Insn::Goto { target: r.u32()? },
        opcode::IF => Insn::If {
            cond: decode_cond(r.u8()?, at)?,
            a: Reg(r.u16()?),
            b: Reg(r.u16()?),
            target: r.u32()?,
        },
        opcode::IFZ => Insn::IfZ {
            cond: decode_cond(r.u8()?, at)?,
            a: Reg(r.u16()?),
            target: r.u32()?,
        },
        opcode::BINOP => Insn::BinOp {
            op: decode_binop(r.u8()?, at)?,
            dst: Reg(r.u16()?),
            a: Reg(r.u16()?),
            b: Reg(r.u16()?),
        },
        opcode::BINOP_LIT => Insn::BinOpLit {
            op: decode_binop(r.u8()?, at)?,
            dst: Reg(r.u16()?),
            a: Reg(r.u16()?),
            lit: r.i32()?,
        },
        opcode::UNOP => Insn::UnOp {
            op: decode_unop(r.u8()?, at)?,
            dst: Reg(r.u16()?),
            src: Reg(r.u16()?),
        },
        opcode::SWITCH => {
            let src = Reg(r.u16()?);
            let n = r.count(8)?;
            let mut targets = Vec::with_capacity(n);
            for _ in 0..n {
                let k = r.i32()?;
                let t = r.u32()?;
                targets.push((k, t));
            }
            Insn::Switch { src, targets }
        }
        _ => return Err(AdxError::BadOpcode { at, opcode: op }),
    })
}

fn read_code(r: &mut Reader<'_>) -> Result<CodeItem> {
    let registers = r.u16()?;
    let ins = r.u16()?;
    if ins > registers {
        return Err(AdxError::Malformed {
            at: r.position(),
            what: "ins exceeds registers",
        });
    }
    let n = r.count(1)?;
    let mut insns = Vec::with_capacity(n);
    for _ in 0..n {
        insns.push(read_insn(r)?);
    }
    let nt = r.count(12)?;
    let mut tries = Vec::with_capacity(nt);
    for _ in 0..nt {
        let start = r.u32()?;
        let end = r.u32()?;
        let nh = r.count(5)?;
        let mut handlers = Vec::with_capacity(nh);
        for _ in 0..nh {
            let exception = if r.u8()? != 0 {
                Some(TypeIdx(r.u32()?))
            } else {
                None
            };
            let target = r.u32()?;
            handlers.push(CatchHandler { exception, target });
        }
        tries.push(TryBlock {
            start,
            end,
            handlers,
        });
    }
    Ok(CodeItem {
        registers,
        ins,
        insns,
        tries,
    })
}

fn read_pools(r: &mut Reader<'_>) -> Result<Pools> {
    let mut pools = Pools::new();

    let ns = r.count(4)?;
    for _ in 0..ns {
        pools.push_string_raw(r.str()?);
    }
    let n_strings = ns as u32;

    let nt = r.count(4)?;
    for _ in 0..nt {
        let at = r.position();
        let s = r.u32()?;
        if s >= n_strings {
            return Err(AdxError::BadIndex {
                at,
                kind: "string",
                index: s,
            });
        }
        pools.push_type_raw(StringIdx(s));
    }
    let n_types = nt as u32;
    let check_type = |at: usize, t: u32| -> Result<TypeIdx> {
        if t >= n_types {
            return Err(AdxError::BadIndex {
                at,
                kind: "type",
                index: t,
            });
        }
        Ok(TypeIdx(t))
    };

    let np = r.count(8)?;
    for _ in 0..np {
        let at = r.position();
        let ret = check_type(at, r.u32()?)?;
        let nparams = r.count(4)?;
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            let at = r.position();
            params.push(check_type(at, r.u32()?)?);
        }
        pools.push_proto_raw(Proto {
            return_type: ret,
            params,
        });
    }
    let n_protos = np as u32;

    let nf = r.count(12)?;
    for _ in 0..nf {
        let at = r.position();
        let class = check_type(at, r.u32()?)?;
        let ty = check_type(at, r.u32()?)?;
        let name = r.u32()?;
        if name >= n_strings {
            return Err(AdxError::BadIndex {
                at,
                kind: "string",
                index: name,
            });
        }
        pools.push_field_raw(crate::pool::FieldRef {
            class,
            ty,
            name: StringIdx(name),
        });
    }

    let nm = r.count(12)?;
    for _ in 0..nm {
        let at = r.position();
        let class = check_type(at, r.u32()?)?;
        let proto = r.u32()?;
        if proto >= n_protos {
            return Err(AdxError::BadIndex {
                at,
                kind: "proto",
                index: proto,
            });
        }
        let name = r.u32()?;
        if name >= n_strings {
            return Err(AdxError::BadIndex {
                at,
                kind: "string",
                index: name,
            });
        }
        pools.push_method_raw(crate::pool::MethodRef {
            class,
            proto: crate::pool::ProtoIdx(proto),
            name: StringIdx(name),
        });
    }

    Ok(pools)
}

/// [`read_adx`] with parse metrics recorded into `metrics`:
/// `parse.bytes`, `parse.classes`, `parse.methods`, `parse.insns`, and
/// the pool sizes (`parse.pool.strings`, `parse.pool.methods`).
pub fn read_adx_obs(bytes: &[u8], metrics: &nck_obs::Metrics) -> Result<AdxFile> {
    let file = read_adx(bytes)?;
    if metrics.is_enabled() {
        metrics.inc("parse.bytes", bytes.len() as u64);
        metrics.inc("parse.classes", file.classes.len() as u64);
        metrics.inc(
            "parse.methods",
            file.classes.iter().map(|c| c.methods.len() as u64).sum(),
        );
        metrics.inc(
            "parse.insns",
            file.classes
                .iter()
                .flat_map(|c| &c.methods)
                .filter_map(|m| m.code.as_ref())
                .map(|c| c.insns.len() as u64)
                .sum(),
        );
        metrics.inc("parse.pool.strings", file.pools.strings().len() as u64);
        metrics.inc("parse.pool.methods", file.pools.methods().len() as u64);
    }
    Ok(file)
}

/// Parses the ADX binary container in `bytes`.
///
/// Verifies the magic, version, declared length, and payload checksum
/// before decoding. Pool cross-references are bounds-checked during the
/// decode; run [`verify::verify`](crate::verify::verify) afterwards for
/// deeper structural checks (branch targets, register bounds, ...).
pub fn read_adx(bytes: &[u8]) -> Result<AdxFile> {
    let mut r = Reader::new(bytes);
    let at = r.position();
    let mut magic = [0u8; 4];
    for m in &mut magic {
        *m = r.u8()?;
    }
    if &magic != MAGIC {
        return Err(AdxError::BadMagic { found: magic });
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(AdxError::BadVersion { found: version });
    }
    let reserved_at = r.position();
    let reserved = r.u16()?;
    // The reserved field must be zero (it is outside the checksummed
    // payload, so damage here would otherwise go unnoticed).
    if reserved != 0 {
        return Err(AdxError::Malformed {
            at: reserved_at,
            what: "nonzero reserved header field",
        });
    }
    let length = r.u64()? as usize;
    let checksum = r.u64()?;
    if r.remaining() != length {
        return Err(AdxError::Truncated {
            at: r.position(),
            wanted: length,
            available: r.remaining(),
        });
    }
    let payload = &bytes[r.position()..];
    let actual = fnv1a(payload);
    if actual != checksum {
        return Err(AdxError::ChecksumMismatch {
            expected: checksum,
            actual,
        });
    }

    let mut r = Reader::new(payload);
    let pools = read_pools(&mut r)?;
    let n_types = pools.types().len() as u32;
    let n_fields = pools.fields().len() as u32;
    let n_methods = pools.methods().len() as u32;

    let nc = r.count(4)?;
    let mut classes = Vec::with_capacity(nc);
    for _ in 0..nc {
        let at = r.position();
        let ty = r.u32()?;
        if ty >= n_types {
            return Err(AdxError::BadIndex {
                at,
                kind: "type",
                index: ty,
            });
        }
        let superclass = if r.u8()? != 0 {
            let at = r.position();
            let s = r.u32()?;
            if s >= n_types {
                return Err(AdxError::BadIndex {
                    at,
                    kind: "type",
                    index: s,
                });
            }
            Some(TypeIdx(s))
        } else {
            None
        };
        let ni = r.count(4)?;
        let mut interfaces = Vec::with_capacity(ni);
        for _ in 0..ni {
            let at = r.position();
            let i = r.u32()?;
            if i >= n_types {
                return Err(AdxError::BadIndex {
                    at,
                    kind: "type",
                    index: i,
                });
            }
            interfaces.push(TypeIdx(i));
        }
        let flags = AccessFlags(r.u32()?);
        let nf = r.count(8)?;
        let mut fields = Vec::with_capacity(nf);
        for _ in 0..nf {
            let at = r.position();
            let f = r.u32()?;
            if f >= n_fields {
                return Err(AdxError::BadIndex {
                    at,
                    kind: "field",
                    index: f,
                });
            }
            fields.push(FieldDef {
                field: FieldIdx(f),
                flags: AccessFlags(r.u32()?),
            });
        }
        let nm = r.count(9)?;
        let mut methods = Vec::with_capacity(nm);
        for _ in 0..nm {
            let at = r.position();
            let m = r.u32()?;
            if m >= n_methods {
                return Err(AdxError::BadIndex {
                    at,
                    kind: "method",
                    index: m,
                });
            }
            let flags = AccessFlags(r.u32()?);
            let code = if r.u8()? != 0 {
                Some(read_code(&mut r)?)
            } else {
                None
            };
            methods.push(MethodDef {
                method: MethodIdx(m),
                flags,
                code,
            });
        }
        classes.push(ClassDef {
            ty: TypeIdx(ty),
            superclass,
            interfaces,
            flags,
            fields,
            methods,
        });
    }

    if r.remaining() != 0 {
        return Err(AdxError::Malformed {
            at: at + r.position(),
            what: "trailing bytes after class table",
        });
    }

    Ok(AdxFile { pools, classes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::write_adx;

    #[test]
    fn empty_roundtrip() {
        let f = AdxFile::new();
        let bytes = write_adx(&f);
        let g = read_adx(&bytes).unwrap();
        assert!(g.classes.is_empty());
        assert!(g.pools.strings().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let f = AdxFile::new();
        let mut bytes = write_adx(&f);
        bytes[0] = b'X';
        assert!(matches!(read_adx(&bytes), Err(AdxError::BadMagic { .. })));
    }

    #[test]
    fn bad_version_rejected() {
        let f = AdxFile::new();
        let mut bytes = write_adx(&f);
        bytes[4] = 99;
        assert!(matches!(read_adx(&bytes), Err(AdxError::BadVersion { .. })));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut f = AdxFile::new();
        f.pools.string("hello world");
        let mut bytes = write_adx(&f);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            read_adx(&bytes),
            Err(AdxError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_file_rejected() {
        let mut f = AdxFile::new();
        f.pools.string("hello");
        let bytes = write_adx(&f);
        assert!(read_adx(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn nonzero_reserved_field_rejected() {
        // The reserved u16 sits outside the checksummed payload; damage
        // there must still be detected.
        let f = AdxFile::new();
        for byte in [6usize, 7] {
            let mut bytes = write_adx(&f);
            bytes[byte] = 1;
            assert!(
                matches!(read_adx(&bytes), Err(AdxError::Malformed { .. })),
                "flip in reserved byte {byte} accepted"
            );
        }
    }
}
