//! Serialization of an [`AdxFile`] into the ADX binary container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    "ADX1"
//! version  u16        (currently 1)
//! reserved u16        (zero)
//! length   u64        payload byte length
//! checksum u64        FNV-1a 64 of the payload
//! payload  sections: strings, types, protos, fields, methods, classes
//! ```

use crate::insn::{BinOp, CondOp, Insn, InvokeKind, UnOp};
use crate::model::{AdxFile, ClassDef, CodeItem, MethodDef};
use crate::wire::{fnv1a, Writer};

/// File magic bytes.
pub const MAGIC: &[u8; 4] = b"ADX1";
/// Current format version.
pub const VERSION: u16 = 1;

/// Opcode byte assignments for the instruction encoding.
pub(crate) mod opcode {
    pub const NOP: u8 = 0x00;
    pub const MOVE: u8 = 0x01;
    pub const CONST_INT: u8 = 0x02;
    pub const CONST_STRING: u8 = 0x03;
    pub const CONST_NULL: u8 = 0x04;
    pub const CONST_CLASS: u8 = 0x05;
    pub const NEW_INSTANCE: u8 = 0x06;
    pub const NEW_ARRAY: u8 = 0x07;
    pub const CHECK_CAST: u8 = 0x08;
    pub const INSTANCE_OF: u8 = 0x09;
    pub const ARRAY_LENGTH: u8 = 0x0a;
    pub const AGET: u8 = 0x0b;
    pub const APUT: u8 = 0x0c;
    pub const IGET: u8 = 0x0d;
    pub const IPUT: u8 = 0x0e;
    pub const SGET: u8 = 0x0f;
    pub const SPUT: u8 = 0x10;
    pub const INVOKE: u8 = 0x11;
    pub const MOVE_RESULT: u8 = 0x12;
    pub const MOVE_EXCEPTION: u8 = 0x13;
    pub const RETURN_VOID: u8 = 0x14;
    pub const RETURN_VALUE: u8 = 0x15;
    pub const THROW: u8 = 0x16;
    pub const GOTO: u8 = 0x17;
    pub const IF: u8 = 0x18;
    pub const IFZ: u8 = 0x19;
    pub const BINOP: u8 = 0x1a;
    pub const BINOP_LIT: u8 = 0x1b;
    pub const UNOP: u8 = 0x1c;
    pub const SWITCH: u8 = 0x1d;
}

pub(crate) fn invoke_kind_code(k: InvokeKind) -> u8 {
    match k {
        InvokeKind::Virtual => 0,
        InvokeKind::Static => 1,
        InvokeKind::Direct => 2,
        InvokeKind::Interface => 3,
        InvokeKind::Super => 4,
    }
}

pub(crate) fn cond_code(c: CondOp) -> u8 {
    match c {
        CondOp::Eq => 0,
        CondOp::Ne => 1,
        CondOp::Lt => 2,
        CondOp::Ge => 3,
        CondOp::Gt => 4,
        CondOp::Le => 5,
    }
}

pub(crate) fn binop_code(b: BinOp) -> u8 {
    match b {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
    }
}

pub(crate) fn unop_code(u: UnOp) -> u8 {
    match u {
        UnOp::Neg => 0,
        UnOp::Not => 1,
    }
}

fn write_insn(w: &mut Writer, insn: &Insn) {
    use opcode::*;
    match insn {
        Insn::Nop => w.u8(NOP),
        Insn::Move { dst, src } => {
            w.u8(MOVE);
            w.u16(dst.0);
            w.u16(src.0);
        }
        Insn::ConstInt { dst, value } => {
            w.u8(CONST_INT);
            w.u16(dst.0);
            w.i64(*value);
        }
        Insn::ConstString { dst, idx } => {
            w.u8(CONST_STRING);
            w.u16(dst.0);
            w.u32(idx.0);
        }
        Insn::ConstNull { dst } => {
            w.u8(CONST_NULL);
            w.u16(dst.0);
        }
        Insn::ConstClass { dst, ty } => {
            w.u8(CONST_CLASS);
            w.u16(dst.0);
            w.u32(ty.0);
        }
        Insn::NewInstance { dst, ty } => {
            w.u8(NEW_INSTANCE);
            w.u16(dst.0);
            w.u32(ty.0);
        }
        Insn::NewArray { dst, len, ty } => {
            w.u8(NEW_ARRAY);
            w.u16(dst.0);
            w.u16(len.0);
            w.u32(ty.0);
        }
        Insn::CheckCast { reg, ty } => {
            w.u8(CHECK_CAST);
            w.u16(reg.0);
            w.u32(ty.0);
        }
        Insn::InstanceOf { dst, src, ty } => {
            w.u8(INSTANCE_OF);
            w.u16(dst.0);
            w.u16(src.0);
            w.u32(ty.0);
        }
        Insn::ArrayLength { dst, arr } => {
            w.u8(ARRAY_LENGTH);
            w.u16(dst.0);
            w.u16(arr.0);
        }
        Insn::Aget { dst, arr, idx } => {
            w.u8(AGET);
            w.u16(dst.0);
            w.u16(arr.0);
            w.u16(idx.0);
        }
        Insn::Aput { src, arr, idx } => {
            w.u8(APUT);
            w.u16(src.0);
            w.u16(arr.0);
            w.u16(idx.0);
        }
        Insn::Iget { dst, obj, field } => {
            w.u8(IGET);
            w.u16(dst.0);
            w.u16(obj.0);
            w.u32(field.0);
        }
        Insn::Iput { src, obj, field } => {
            w.u8(IPUT);
            w.u16(src.0);
            w.u16(obj.0);
            w.u32(field.0);
        }
        Insn::Sget { dst, field } => {
            w.u8(SGET);
            w.u16(dst.0);
            w.u32(field.0);
        }
        Insn::Sput { src, field } => {
            w.u8(SPUT);
            w.u16(src.0);
            w.u32(field.0);
        }
        Insn::Invoke { kind, method, args } => {
            w.u8(INVOKE);
            w.u8(invoke_kind_code(*kind));
            w.u32(method.0);
            w.u8(args.len() as u8);
            for a in args {
                w.u16(a.0);
            }
        }
        Insn::MoveResult { dst } => {
            w.u8(MOVE_RESULT);
            w.u16(dst.0);
        }
        Insn::MoveException { dst } => {
            w.u8(MOVE_EXCEPTION);
            w.u16(dst.0);
        }
        Insn::Return { src: None } => w.u8(RETURN_VOID),
        Insn::Return { src: Some(r) } => {
            w.u8(RETURN_VALUE);
            w.u16(r.0);
        }
        Insn::Throw { src } => {
            w.u8(THROW);
            w.u16(src.0);
        }
        Insn::Goto { target } => {
            w.u8(GOTO);
            w.u32(*target);
        }
        Insn::If { cond, a, b, target } => {
            w.u8(IF);
            w.u8(cond_code(*cond));
            w.u16(a.0);
            w.u16(b.0);
            w.u32(*target);
        }
        Insn::IfZ { cond, a, target } => {
            w.u8(IFZ);
            w.u8(cond_code(*cond));
            w.u16(a.0);
            w.u32(*target);
        }
        Insn::BinOp { op, dst, a, b } => {
            w.u8(BINOP);
            w.u8(binop_code(*op));
            w.u16(dst.0);
            w.u16(a.0);
            w.u16(b.0);
        }
        Insn::BinOpLit { op, dst, a, lit } => {
            w.u8(BINOP_LIT);
            w.u8(binop_code(*op));
            w.u16(dst.0);
            w.u16(a.0);
            w.i32(*lit);
        }
        Insn::UnOp { op, dst, src } => {
            w.u8(UNOP);
            w.u8(unop_code(*op));
            w.u16(dst.0);
            w.u16(src.0);
        }
        Insn::Switch { src, targets } => {
            w.u8(SWITCH);
            w.u16(src.0);
            w.u32(targets.len() as u32);
            for (k, t) in targets {
                w.i32(*k);
                w.u32(*t);
            }
        }
    }
}

fn write_code(w: &mut Writer, code: &CodeItem) {
    w.u16(code.registers);
    w.u16(code.ins);
    w.u32(code.insns.len() as u32);
    for insn in &code.insns {
        write_insn(w, insn);
    }
    w.u32(code.tries.len() as u32);
    for t in &code.tries {
        w.u32(t.start);
        w.u32(t.end);
        w.u32(t.handlers.len() as u32);
        for h in &t.handlers {
            match h.exception {
                Some(ty) => {
                    w.u8(1);
                    w.u32(ty.0);
                }
                None => w.u8(0),
            }
            w.u32(h.target);
        }
    }
}

fn write_method(w: &mut Writer, m: &MethodDef) {
    w.u32(m.method.0);
    w.u32(m.flags.0);
    match &m.code {
        Some(code) => {
            w.u8(1);
            write_code(w, code);
        }
        None => w.u8(0),
    }
}

fn write_class(w: &mut Writer, c: &ClassDef) {
    w.u32(c.ty.0);
    match c.superclass {
        Some(s) => {
            w.u8(1);
            w.u32(s.0);
        }
        None => w.u8(0),
    }
    w.u32(c.interfaces.len() as u32);
    for i in &c.interfaces {
        w.u32(i.0);
    }
    w.u32(c.flags.0);
    w.u32(c.fields.len() as u32);
    for f in &c.fields {
        w.u32(f.field.0);
        w.u32(f.flags.0);
    }
    w.u32(c.methods.len() as u32);
    for m in &c.methods {
        write_method(w, m);
    }
}

/// Serializes `file` into the ADX binary container.
pub fn write_adx(file: &AdxFile) -> Vec<u8> {
    let mut p = Writer::new();

    let strings = file.pools.strings();
    p.u32(strings.len() as u32);
    for s in strings {
        p.str(s);
    }

    let types = file.pools.types();
    p.u32(types.len() as u32);
    for t in types {
        p.u32(t.0);
    }

    let protos = file.pools.protos();
    p.u32(protos.len() as u32);
    for pr in protos {
        p.u32(pr.return_type.0);
        p.u32(pr.params.len() as u32);
        for t in &pr.params {
            p.u32(t.0);
        }
    }

    let fields = file.pools.fields();
    p.u32(fields.len() as u32);
    for f in fields {
        p.u32(f.class.0);
        p.u32(f.ty.0);
        p.u32(f.name.0);
    }

    let methods = file.pools.methods();
    p.u32(methods.len() as u32);
    for m in methods {
        p.u32(m.class.0);
        p.u32(m.proto.0);
        p.u32(m.name.0);
    }

    p.u32(file.classes.len() as u32);
    for c in &file.classes {
        write_class(&mut p, c);
    }

    let payload = p.into_bytes();
    let mut w = Writer::new();
    w.bytes(MAGIC);
    w.u16(VERSION);
    w.u16(0);
    w.u64(payload.len() as u64);
    w.u64(fnv1a(&payload));
    w.bytes(&payload);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_file_has_header_and_sections() {
        let bytes = write_adx(&AdxFile::new());
        assert_eq!(&bytes[0..4], MAGIC);
        // Header (24 bytes) + six u32 zero counts.
        assert_eq!(bytes.len(), 24 + 6 * 4);
    }

    #[test]
    fn checksum_covers_payload() {
        let mut f = AdxFile::new();
        f.pools.string("x");
        let a = write_adx(&f);
        let mut g = AdxFile::new();
        g.pools.string("y");
        let b = write_adx(&g);
        assert_ne!(a, b);
        assert_ne!(a[16..24], b[16..24]);
    }
}
