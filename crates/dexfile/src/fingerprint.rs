//! Content-addressed fingerprints of ADX classes.
//!
//! The analysis cache keys per-class work on *what a class means*, not
//! where its constants happen to sit: every pool reference inside a
//! class definition is resolved to its string form before hashing, so a
//! class keeps its fingerprint as long as its structure and resolved
//! constants are unchanged, regardless of pool index assignment.
//! Dangling references (adversarial inputs) hash as a sentinel plus the
//! raw index, so a file with a bad reference can never collide with a
//! valid one.

use crate::insn::Insn;
use crate::model::{AdxFile, ClassDef, CodeItem};
use crate::pool::Pools;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a (64-bit) stream hasher, byte-compatible with
/// [`crate::wire::fnv1a`] over the concatenated input.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(FNV_OFFSET)
    }
}

impl Fnv {
    /// A fresh stream.
    pub fn new() -> Fnv {
        Fnv::default()
    }

    /// Folds raw bytes into the stream.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a length-tagged string (self-delimiting, so `"ab" + "c"`
    /// and `"a" + "bc"` cannot collide).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// Folds a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Folds a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_opt_str(h: &mut Fnv, tag: u32, s: Option<&str>, raw: u32) {
    h.u32(tag);
    match s {
        Some(s) => {
            h.u32(1).str(s);
        }
        None => {
            // Dangling reference: sentinel plus the raw index.
            h.u32(0).u32(raw);
        }
    }
}

fn hash_field_ref(h: &mut Fnv, pools: &Pools, field: crate::pool::FieldIdx) {
    match pools.get_field(field) {
        Some(f) => {
            hash_opt_str(h, 3, pools.get_type(f.class), f.class.0);
            hash_opt_str(h, 4, pools.get_string(f.name), f.name.0);
            hash_opt_str(h, 5, pools.get_type(f.ty), f.ty.0);
        }
        None => {
            h.u32(0).u32(field.0);
        }
    }
}

fn hash_proto(h: &mut Fnv, pools: &Pools, proto: crate::pool::ProtoIdx) {
    match pools.get_proto(proto) {
        Some(p) => {
            hash_opt_str(h, 19, pools.get_type(p.return_type), p.return_type.0);
            h.u64(p.params.len() as u64);
            for &t in &p.params {
                hash_opt_str(h, 20, pools.get_type(t), t.0);
            }
        }
        None => {
            h.u32(0).u32(proto.0);
        }
    }
}

fn hash_insn(h: &mut Fnv, pools: &Pools, insn: &Insn) {
    // Every variant hashes a distinct opcode tag plus its structural
    // fields (registers, literals, branch targets, operators). Pool
    // references are resolved to their string form first, so the raw
    // index never reaches the digest. No allocation: this runs once per
    // instruction on every cache probe.
    match insn {
        Insn::Nop => {
            h.u32(0x20);
        }
        Insn::Move { dst, src } => {
            h.u32(0x21).u32(u32::from(dst.0)).u32(u32::from(src.0));
        }
        Insn::ConstInt { dst, value } => {
            h.u32(0x22).u32(u32::from(dst.0)).u64(*value as u64);
        }
        Insn::ConstString { dst, idx } => {
            h.u32(0x23).u32(u32::from(dst.0));
            hash_opt_str(h, 1, pools.get_string(*idx), idx.0);
        }
        Insn::ConstNull { dst } => {
            h.u32(0x24).u32(u32::from(dst.0));
        }
        Insn::ConstClass { dst, ty } => {
            h.u32(0x25).u32(u32::from(dst.0));
            hash_opt_str(h, 2, pools.get_type(*ty), ty.0);
        }
        Insn::NewInstance { dst, ty } => {
            h.u32(0x26).u32(u32::from(dst.0));
            hash_opt_str(h, 2, pools.get_type(*ty), ty.0);
        }
        Insn::NewArray { dst, len, ty } => {
            h.u32(0x27).u32(u32::from(dst.0)).u32(u32::from(len.0));
            hash_opt_str(h, 2, pools.get_type(*ty), ty.0);
        }
        Insn::CheckCast { reg, ty } => {
            h.u32(0x28).u32(u32::from(reg.0));
            hash_opt_str(h, 2, pools.get_type(*ty), ty.0);
        }
        Insn::InstanceOf { dst, src, ty } => {
            h.u32(0x29).u32(u32::from(dst.0)).u32(u32::from(src.0));
            hash_opt_str(h, 2, pools.get_type(*ty), ty.0);
        }
        Insn::ArrayLength { dst, arr } => {
            h.u32(0x2a).u32(u32::from(dst.0)).u32(u32::from(arr.0));
        }
        Insn::Aget { dst, arr, idx } => {
            h.u32(0x2b)
                .u32(u32::from(dst.0))
                .u32(u32::from(arr.0))
                .u32(u32::from(idx.0));
        }
        Insn::Aput { src, arr, idx } => {
            h.u32(0x2c)
                .u32(u32::from(src.0))
                .u32(u32::from(arr.0))
                .u32(u32::from(idx.0));
        }
        Insn::Iget { dst, obj, field } => {
            h.u32(0x2d).u32(u32::from(dst.0)).u32(u32::from(obj.0));
            hash_field_ref(h, pools, *field);
        }
        Insn::Iput { src, obj, field } => {
            h.u32(0x2e).u32(u32::from(src.0)).u32(u32::from(obj.0));
            hash_field_ref(h, pools, *field);
        }
        Insn::Sget { dst, field } => {
            h.u32(0x2f).u32(u32::from(dst.0));
            hash_field_ref(h, pools, *field);
        }
        Insn::Sput { src, field } => {
            h.u32(0x30).u32(u32::from(src.0));
            hash_field_ref(h, pools, *field);
        }
        Insn::Invoke { kind, method, args } => {
            h.u32(0x31).u32(*kind as u32);
            match pools.get_method(*method) {
                Some(m) => {
                    hash_opt_str(h, 6, pools.get_type(m.class), m.class.0);
                    hash_opt_str(h, 7, pools.get_string(m.name), m.name.0);
                    hash_proto(h, pools, m.proto);
                }
                None => {
                    h.u32(0).u32(method.0);
                }
            }
            h.u64(args.len() as u64);
            for a in args {
                h.u32(u32::from(a.0));
            }
        }
        Insn::MoveResult { dst } => {
            h.u32(0x32).u32(u32::from(dst.0));
        }
        Insn::MoveException { dst } => {
            h.u32(0x33).u32(u32::from(dst.0));
        }
        Insn::Return { src } => {
            h.u32(0x34);
            match src {
                Some(r) => h.u32(1).u32(u32::from(r.0)),
                None => h.u32(0),
            };
        }
        Insn::Throw { src } => {
            h.u32(0x35).u32(u32::from(src.0));
        }
        Insn::Goto { target } => {
            h.u32(0x36).u32(*target);
        }
        Insn::If { cond, a, b, target } => {
            h.u32(0x37)
                .u32(*cond as u32)
                .u32(u32::from(a.0))
                .u32(u32::from(b.0))
                .u32(*target);
        }
        Insn::IfZ { cond, a, target } => {
            h.u32(0x38)
                .u32(*cond as u32)
                .u32(u32::from(a.0))
                .u32(*target);
        }
        Insn::BinOp { op, dst, a, b } => {
            h.u32(0x39)
                .u32(*op as u32)
                .u32(u32::from(dst.0))
                .u32(u32::from(a.0))
                .u32(u32::from(b.0));
        }
        Insn::BinOpLit { op, dst, a, lit } => {
            h.u32(0x3a)
                .u32(*op as u32)
                .u32(u32::from(dst.0))
                .u32(u32::from(a.0))
                .u32(*lit as u32);
        }
        Insn::UnOp { op, dst, src } => {
            h.u32(0x3b)
                .u32(*op as u32)
                .u32(u32::from(dst.0))
                .u32(u32::from(src.0));
        }
        Insn::Switch { src, targets } => {
            h.u32(0x3c).u32(u32::from(src.0));
            h.u64(targets.len() as u64);
            for (k, t) in targets {
                h.u32(*k as u32).u32(*t);
            }
        }
    }
}

fn hash_code(h: &mut Fnv, pools: &Pools, code: &CodeItem) {
    h.u32(u32::from(code.registers))
        .u32(u32::from(code.ins))
        .u64(code.insns.len() as u64);
    for insn in &code.insns {
        hash_insn(h, pools, insn);
    }
    h.u64(code.tries.len() as u64);
    for t in &code.tries {
        h.u32(t.start).u32(t.end).u64(t.handlers.len() as u64);
        for handler in &t.handlers {
            match handler.exception {
                Some(ty) => hash_opt_str(h, 8, pools.get_type(ty), ty.0),
                None => {
                    h.u32(9);
                }
            }
            h.u32(handler.target);
        }
    }
}

fn hash_class(pools: &Pools, class: &ClassDef) -> u64 {
    let mut h = Fnv::new();
    hash_opt_str(&mut h, 10, pools.get_type(class.ty), class.ty.0);
    match class.superclass {
        Some(s) => hash_opt_str(&mut h, 11, pools.get_type(s), s.0),
        None => {
            h.u32(12);
        }
    }
    h.u64(class.interfaces.len() as u64);
    for &i in &class.interfaces {
        hash_opt_str(&mut h, 13, pools.get_type(i), i.0);
    }
    h.u32(class.flags.0);
    h.u64(class.fields.len() as u64);
    for f in &class.fields {
        h.u32(f.flags.0);
        match pools.get_field(f.field) {
            Some(fr) => {
                hash_opt_str(&mut h, 14, pools.get_type(fr.class), fr.class.0);
                hash_opt_str(&mut h, 15, pools.get_string(fr.name), fr.name.0);
                hash_opt_str(&mut h, 16, pools.get_type(fr.ty), fr.ty.0);
            }
            None => {
                h.u32(0).u32(f.field.0);
            }
        }
    }
    h.u64(class.methods.len() as u64);
    for m in &class.methods {
        h.u32(m.flags.0);
        match pools.get_method(m.method) {
            Some(mr) => {
                hash_opt_str(&mut h, 17, pools.get_type(mr.class), mr.class.0);
                hash_opt_str(&mut h, 18, pools.get_string(mr.name), mr.name.0);
                hash_proto(&mut h, pools, mr.proto);
            }
            None => {
                h.u32(0).u32(m.method.0);
            }
        }
        match &m.code {
            Some(code) => {
                h.u32(1);
                hash_code(&mut h, pools, code);
            }
            None => {
                h.u32(0);
            }
        }
    }
    h.finish()
}

/// Canonical fingerprint of each class in `file`, in file order.
pub fn class_fingerprints(file: &AdxFile) -> Vec<u64> {
    file.classes
        .iter()
        .map(|c| hash_class(&file.pools, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AdxBuilder;
    use crate::model::AccessFlags;

    fn two_class_file(retval: i64) -> AdxFile {
        let mut b = AdxBuilder::new();
        b.class("Lapp/A;", |c| {
            c.method("f", "()I", AccessFlags::PUBLIC, 4, |m| {
                m.const_int(m.reg(0), 7);
                m.ret(Some(m.reg(0)));
            });
        });
        b.class("Lapp/B;", |c| {
            c.method("g", "()I", AccessFlags::PUBLIC, 4, |m| {
                m.const_str(m.reg(1), "pad");
                m.const_int(m.reg(0), retval);
                m.ret(Some(m.reg(0)));
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn fingerprints_are_deterministic() {
        assert_eq!(
            class_fingerprints(&two_class_file(1)),
            class_fingerprints(&two_class_file(1))
        );
    }

    #[test]
    fn changing_one_class_changes_only_its_fingerprint() {
        let a = class_fingerprints(&two_class_file(1));
        let b = class_fingerprints(&two_class_file(2));
        assert_eq!(a[0], b[0], "untouched class keeps its fingerprint");
        assert_ne!(a[1], b[1], "edited class moves");
    }

    #[test]
    fn fingerprint_sees_through_pool_layout() {
        // Same class content, different pool index assignment: build the
        // second file with an extra class first so every shared pool
        // entry lands at a shifted index.
        let plain = {
            let mut b = AdxBuilder::new();
            b.class("Lapp/A;", |c| {
                c.method("f", "()V", AccessFlags::PUBLIC, 2, |m| {
                    m.const_str(m.reg(0), "hello");
                    m.ret(None);
                });
            });
            b.finish().unwrap()
        };
        let shifted = {
            let mut b = AdxBuilder::new();
            b.class("Lzz/Pad;", |c| {
                c.method("pad", "()V", AccessFlags::PUBLIC, 2, |m| {
                    m.const_str(m.reg(0), "other");
                    m.ret(None);
                });
            });
            b.class("Lapp/A;", |c| {
                c.method("f", "()V", AccessFlags::PUBLIC, 2, |m| {
                    m.const_str(m.reg(0), "hello");
                    m.ret(None);
                });
            });
            b.finish().unwrap()
        };
        let a = class_fingerprints(&plain);
        let s = class_fingerprints(&shifted);
        assert_eq!(a[0], s[1], "identical class, relocated pool entries");
        assert_ne!(s[0], s[1]);
    }

    #[test]
    fn incremental_fnv_matches_oneshot() {
        let mut h = Fnv::new();
        h.bytes(b"hello ").bytes(b"world");
        assert_eq!(h.finish(), crate::wire::fnv1a(b"hello world"));
    }
}
