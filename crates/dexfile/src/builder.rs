//! Ergonomic programmatic construction of [`AdxFile`]s.
//!
//! The builder is how the corpus generator, the tests, and the examples
//! author app binaries. Branch targets are expressed through [`Label`]s
//! that are patched to instruction indices when the method body finishes.
//!
//! # Examples
//!
//! ```
//! use nck_dex::builder::AdxBuilder;
//! use nck_dex::{AccessFlags, CondOp};
//!
//! let mut b = AdxBuilder::new();
//! b.class("Lcom/app/Loop;", |c| {
//!     c.method("spin", "(I)V", AccessFlags::PUBLIC, 4, |m| {
//!         let n = m.param(1).unwrap();
//!         let head = m.new_label();
//!         let done = m.new_label();
//!         m.bind(head);
//!         m.ifz(CondOp::Le, n, done);
//!         m.binop_lit(nck_dex::BinOp::Sub, n, n, 1);
//!         m.goto(head);
//!         m.bind(done);
//!         m.ret(None);
//!     });
//! });
//! let file = b.finish().unwrap();
//! assert_eq!(file.insn_count(), 4);
//! ```

use crate::insn::{BinOp, CondOp, Insn, InvokeKind, Reg, UnOp};
use crate::model::{
    AccessFlags, AdxFile, CatchHandler, ClassDef, CodeItem, FieldDef, MethodDef, TryBlock,
};
use crate::pool::{FieldIdx, MethodIdx, StringIdx, TypeIdx};
use crate::{parse_signature, AdxError, Result};

/// A forward-referenceable branch target inside a method body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// An opaque token marking the start of a try-covered region.
#[derive(Debug)]
pub struct TryScope {
    start: u32,
}

/// Top-level builder for an [`AdxFile`].
#[derive(Debug, Default)]
pub struct AdxBuilder {
    file: AdxFile,
    pending_labels: usize,
}

impl AdxBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a type descriptor.
    pub fn type_(&mut self, descriptor: &str) -> TypeIdx {
        self.file.pools.type_(descriptor)
    }

    /// Interns a string.
    pub fn string(&mut self, s: &str) -> StringIdx {
        self.file.pools.string(s)
    }

    /// Interns a method reference `class.name(sig)`.
    ///
    /// # Panics
    ///
    /// Panics when `sig` is not a valid signature; builder call sites
    /// always pass literal signatures, so this is a programming error.
    pub fn method_ref(&mut self, class: &str, name: &str, sig: &str) -> MethodIdx {
        let (params, ret) = parse_signature(sig).expect("valid method signature literal");
        let class = self.file.pools.type_(class);
        let ret = self.file.pools.type_(&ret);
        let params = params
            .iter()
            .map(|p| self.file.pools.type_(p))
            .collect::<Vec<_>>();
        let proto = self.file.pools.proto(ret, params);
        let name = self.file.pools.string(name);
        self.file.pools.method(class, proto, name)
    }

    /// Interns a field reference `class.name:ty`.
    pub fn field_ref(&mut self, class: &str, name: &str, ty: &str) -> FieldIdx {
        let class = self.file.pools.type_(class);
        let ty = self.file.pools.type_(ty);
        let name = self.file.pools.string(name);
        self.file.pools.field(class, ty, name)
    }

    /// Defines a class, configured through `f`.
    pub fn class(&mut self, descriptor: &str, f: impl FnOnce(&mut ClassBuilder<'_>)) {
        let ty = self.file.pools.type_(descriptor);
        let object = self.file.pools.type_("Ljava/lang/Object;");
        let mut cb = ClassBuilder {
            builder: self,
            class: ClassDef {
                ty,
                superclass: Some(object),
                interfaces: vec![],
                flags: AccessFlags::PUBLIC,
                fields: vec![],
                methods: vec![],
            },
            unbound: 0,
        };
        f(&mut cb);
        let (class, unbound) = (cb.class, cb.unbound);
        self.pending_labels += unbound;
        self.file.classes.push(class);
    }

    /// Finalizes the file.
    ///
    /// Fails when any method body was left with an unbound label.
    pub fn finish(self) -> Result<AdxFile> {
        if self.pending_labels > 0 {
            return Err(AdxError::UnboundLabel {
                label: self.pending_labels,
            });
        }
        Ok(self.file)
    }
}

/// Builder for one class definition.
#[derive(Debug)]
pub struct ClassBuilder<'a> {
    builder: &'a mut AdxBuilder,
    class: ClassDef,
    unbound: usize,
}

impl ClassBuilder<'_> {
    /// Sets the superclass (defaults to `Ljava/lang/Object;`).
    pub fn super_class(&mut self, descriptor: &str) {
        let ty = self.builder.file.pools.type_(descriptor);
        self.class.superclass = Some(ty);
    }

    /// Adds an implemented interface.
    pub fn interface(&mut self, descriptor: &str) {
        let ty = self.builder.file.pools.type_(descriptor);
        self.class.interfaces.push(ty);
    }

    /// Sets the class access flags.
    pub fn flags(&mut self, flags: AccessFlags) {
        self.class.flags = flags;
    }

    /// Declares an instance field on this class.
    pub fn field(&mut self, name: &str, ty: &str, flags: AccessFlags) -> FieldIdx {
        let class_desc = self
            .builder
            .file
            .pools
            .get_type(self.class.ty)
            .expect("class type interned")
            .to_owned();
        let idx = self.builder.field_ref(&class_desc, name, ty);
        self.class.fields.push(FieldDef { field: idx, flags });
        idx
    }

    /// Declares an abstract (bodiless) method.
    pub fn abstract_method(&mut self, name: &str, sig: &str, flags: AccessFlags) -> MethodIdx {
        let class_desc = self
            .builder
            .file
            .pools
            .get_type(self.class.ty)
            .expect("class type interned")
            .to_owned();
        let idx = self.builder.method_ref(&class_desc, name, sig);
        self.class.methods.push(MethodDef {
            method: idx,
            flags: flags | AccessFlags::ABSTRACT,
            code: None,
        });
        idx
    }

    /// Defines a concrete method with `registers` total frame slots.
    ///
    /// The incoming-parameter count is derived from `sig` plus one receiver
    /// slot when `flags` lacks [`AccessFlags::STATIC`]. The body is emitted
    /// through the [`CodeBuilder`] passed to `f`.
    ///
    /// # Panics
    ///
    /// Panics when `sig` is invalid or `registers` cannot hold the
    /// parameters; call sites pass literals, so this is a programming error.
    pub fn method(
        &mut self,
        name: &str,
        sig: &str,
        flags: AccessFlags,
        registers: u16,
        f: impl FnOnce(&mut CodeBuilder<'_>),
    ) -> MethodIdx {
        let class_desc = self
            .builder
            .file
            .pools
            .get_type(self.class.ty)
            .expect("class type interned")
            .to_owned();
        let (params, _) = parse_signature(sig).expect("valid method signature literal");
        let receiver = usize::from(!flags.contains(AccessFlags::STATIC));
        let ins = (params.len() + receiver) as u16;
        assert!(
            ins <= registers,
            "method {name}{sig} declares {registers} registers but needs {ins} for parameters"
        );
        let idx = self.builder.method_ref(&class_desc, name, sig);
        let mut cb = CodeBuilder {
            builder: self.builder,
            code: CodeItem {
                registers,
                ins,
                insns: vec![],
                tries: vec![],
            },
            labels: vec![],
        };
        f(&mut cb);
        let (mut code, labels) = (cb.code, cb.labels);
        let mut unbound = 0usize;
        for insn in &mut code.insns {
            insn.map_targets(|label_id| match labels.get(label_id as usize) {
                Some(Some(pc)) => *pc,
                _ => {
                    unbound += 1;
                    u32::MAX
                }
            });
        }
        for t in &mut code.tries {
            for h in &mut t.handlers {
                match labels.get(h.target as usize) {
                    Some(Some(pc)) => h.target = *pc,
                    _ => unbound += 1,
                }
            }
        }
        self.unbound += unbound;
        self.class.methods.push(MethodDef {
            method: idx,
            flags,
            code: Some(code),
        });
        idx
    }
}

/// Builder for one method body.
///
/// Every emit method appends exactly one instruction; branch-target
/// arguments are [`Label`]s created by [`CodeBuilder::new_label`] and
/// placed by [`CodeBuilder::bind`].
#[derive(Debug)]
pub struct CodeBuilder<'a> {
    builder: &'a mut AdxBuilder,
    code: CodeItem,
    labels: Vec<Option<u32>>,
}

impl CodeBuilder<'_> {
    /// Returns register `n` of the frame.
    ///
    /// # Panics
    ///
    /// Panics when `n` is outside the declared frame.
    pub fn reg(&self, n: u16) -> Reg {
        assert!(n < self.code.registers, "register v{n} out of range");
        Reg(n)
    }

    /// Returns the register holding parameter `i` (0-based, receiver first
    /// for instance methods), or `None` if out of range.
    pub fn param(&self, i: u16) -> Option<Reg> {
        self.code.param_reg(i)
    }

    /// Returns the current instruction index (where the next emit lands).
    pub fn pc(&self) -> u32 {
        self.code.insns.len() as u32
    }

    /// Creates a fresh unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current instruction index.
    ///
    /// # Panics
    ///
    /// Panics when the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let pc = self.pc();
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(pc);
    }

    fn emit(&mut self, insn: Insn) {
        self.code.insns.push(insn);
    }

    /// Emits `nop`.
    pub fn nop(&mut self) {
        self.emit(Insn::Nop);
    }

    /// Emits a register copy.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.emit(Insn::Move { dst, src });
    }

    /// Emits an integer constant load.
    pub fn const_int(&mut self, dst: Reg, value: i64) {
        self.emit(Insn::ConstInt { dst, value });
    }

    /// Emits a string constant load, interning the string.
    pub fn const_str(&mut self, dst: Reg, s: &str) {
        let idx = self.builder.string(s);
        self.emit(Insn::ConstString { dst, idx });
    }

    /// Emits a `null` load.
    pub fn const_null(&mut self, dst: Reg) {
        self.emit(Insn::ConstNull { dst });
    }

    /// Emits a class-object load.
    pub fn const_class(&mut self, dst: Reg, descriptor: &str) {
        let ty = self.builder.type_(descriptor);
        self.emit(Insn::ConstClass { dst, ty });
    }

    /// Emits an allocation of `descriptor`.
    pub fn new_instance(&mut self, dst: Reg, descriptor: &str) {
        let ty = self.builder.type_(descriptor);
        self.emit(Insn::NewInstance { dst, ty });
    }

    /// Emits an array allocation.
    pub fn new_array(&mut self, dst: Reg, len: Reg, descriptor: &str) {
        let ty = self.builder.type_(descriptor);
        self.emit(Insn::NewArray { dst, len, ty });
    }

    /// Emits a checked cast.
    pub fn check_cast(&mut self, reg: Reg, descriptor: &str) {
        let ty = self.builder.type_(descriptor);
        self.emit(Insn::CheckCast { reg, ty });
    }

    /// Emits an `instanceof` test.
    pub fn instance_of(&mut self, dst: Reg, src: Reg, descriptor: &str) {
        let ty = self.builder.type_(descriptor);
        self.emit(Insn::InstanceOf { dst, src, ty });
    }

    /// Emits an array-length read.
    pub fn array_length(&mut self, dst: Reg, arr: Reg) {
        self.emit(Insn::ArrayLength { dst, arr });
    }

    /// Emits an array element read.
    pub fn aget(&mut self, dst: Reg, arr: Reg, idx: Reg) {
        self.emit(Insn::Aget { dst, arr, idx });
    }

    /// Emits an array element write.
    pub fn aput(&mut self, src: Reg, arr: Reg, idx: Reg) {
        self.emit(Insn::Aput { src, arr, idx });
    }

    /// Emits an instance field read.
    pub fn iget(&mut self, dst: Reg, obj: Reg, class: &str, name: &str, ty: &str) {
        let field = self.builder.field_ref(class, name, ty);
        self.emit(Insn::Iget { dst, obj, field });
    }

    /// Emits an instance field write.
    pub fn iput(&mut self, src: Reg, obj: Reg, class: &str, name: &str, ty: &str) {
        let field = self.builder.field_ref(class, name, ty);
        self.emit(Insn::Iput { src, obj, field });
    }

    /// Emits a static field read.
    pub fn sget(&mut self, dst: Reg, class: &str, name: &str, ty: &str) {
        let field = self.builder.field_ref(class, name, ty);
        self.emit(Insn::Sget { dst, field });
    }

    /// Emits a static field write.
    pub fn sput(&mut self, src: Reg, class: &str, name: &str, ty: &str) {
        let field = self.builder.field_ref(class, name, ty);
        self.emit(Insn::Sput { src, field });
    }

    /// Emits a call with explicit dispatch kind.
    pub fn invoke(&mut self, kind: InvokeKind, class: &str, name: &str, sig: &str, args: &[Reg]) {
        let method = self.builder.method_ref(class, name, sig);
        self.emit(Insn::Invoke {
            kind,
            method,
            args: args.to_vec(),
        });
    }

    /// Emits a virtual call.
    pub fn invoke_virtual(&mut self, class: &str, name: &str, sig: &str, args: &[Reg]) {
        self.invoke(InvokeKind::Virtual, class, name, sig, args);
    }

    /// Emits a static call.
    pub fn invoke_static(&mut self, class: &str, name: &str, sig: &str, args: &[Reg]) {
        self.invoke(InvokeKind::Static, class, name, sig, args);
    }

    /// Emits a direct (constructor/private) call.
    pub fn invoke_direct(&mut self, class: &str, name: &str, sig: &str, args: &[Reg]) {
        self.invoke(InvokeKind::Direct, class, name, sig, args);
    }

    /// Emits an interface call.
    pub fn invoke_interface(&mut self, class: &str, name: &str, sig: &str, args: &[Reg]) {
        self.invoke(InvokeKind::Interface, class, name, sig, args);
    }

    /// Emits a superclass call.
    pub fn invoke_super(&mut self, class: &str, name: &str, sig: &str, args: &[Reg]) {
        self.invoke(InvokeKind::Super, class, name, sig, args);
    }

    /// Emits `move-result`.
    pub fn move_result(&mut self, dst: Reg) {
        self.emit(Insn::MoveResult { dst });
    }

    /// Emits `move-exception`.
    pub fn move_exception(&mut self, dst: Reg) {
        self.emit(Insn::MoveException { dst });
    }

    /// Emits a return.
    pub fn ret(&mut self, src: Option<Reg>) {
        self.emit(Insn::Return { src });
    }

    /// Emits a throw.
    pub fn throw(&mut self, src: Reg) {
        self.emit(Insn::Throw { src });
    }

    /// Emits an unconditional branch to `label`.
    pub fn goto(&mut self, label: Label) {
        self.emit(Insn::Goto {
            target: label.0 as u32,
        });
    }

    /// Emits a two-register conditional branch to `label`.
    pub fn if_(&mut self, cond: CondOp, a: Reg, b: Reg, label: Label) {
        self.emit(Insn::If {
            cond,
            a,
            b,
            target: label.0 as u32,
        });
    }

    /// Emits a compare-with-zero conditional branch to `label`.
    pub fn ifz(&mut self, cond: CondOp, a: Reg, label: Label) {
        self.emit(Insn::IfZ {
            cond,
            a,
            target: label.0 as u32,
        });
    }

    /// Emits a three-register binary operation.
    pub fn binop(&mut self, op: BinOp, dst: Reg, a: Reg, b: Reg) {
        self.emit(Insn::BinOp { op, dst, a, b });
    }

    /// Emits a binary operation with a literal right operand.
    pub fn binop_lit(&mut self, op: BinOp, dst: Reg, a: Reg, lit: i32) {
        self.emit(Insn::BinOpLit { op, dst, a, lit });
    }

    /// Emits a unary operation.
    pub fn unop(&mut self, op: UnOp, dst: Reg, src: Reg) {
        self.emit(Insn::UnOp { op, dst, src });
    }

    /// Emits a switch on `src` over `(key, label)` arms.
    pub fn switch(&mut self, src: Reg, arms: &[(i32, Label)]) {
        self.emit(Insn::Switch {
            src,
            targets: arms.iter().map(|&(k, l)| (k, l.0 as u32)).collect(),
        });
    }

    /// Opens a try-covered region at the current pc.
    pub fn begin_try(&mut self) -> TryScope {
        TryScope { start: self.pc() }
    }

    /// Closes `scope` at the current pc with the given catch clauses.
    ///
    /// Each clause is `(exception descriptor or None for catch-all, handler
    /// label)`. Handler labels may be bound later in the body.
    pub fn end_try(&mut self, scope: TryScope, handlers: &[(Option<&str>, Label)]) {
        let handlers = handlers
            .iter()
            .map(|&(desc, label)| CatchHandler {
                exception: desc.map(|d| self.builder.type_(d)),
                target: label.0 as u32,
            })
            .collect();
        self.code.tries.push(TryBlock {
            start: scope.start,
            end: self.pc(),
            handlers,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::read_adx;
    use crate::write::write_adx;

    #[test]
    fn build_simple_method() {
        let mut b = AdxBuilder::new();
        b.class("Lcom/app/A;", |c| {
            c.method("f", "()V", AccessFlags::PUBLIC, 2, |m| {
                let v = m.reg(0);
                m.const_int(v, 1);
                m.ret(None);
            });
        });
        let f = b.finish().unwrap();
        assert_eq!(f.classes.len(), 1);
        assert_eq!(f.insn_count(), 2);
        // Instance method with no params still has the receiver.
        assert_eq!(f.classes[0].methods[0].code.as_ref().unwrap().ins, 1);
    }

    #[test]
    fn static_method_has_no_receiver() {
        let mut b = AdxBuilder::new();
        b.class("Lcom/app/A;", |c| {
            c.method(
                "f",
                "(II)I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                4,
                |m| {
                    let a = m.param(0).unwrap();
                    let b_ = m.param(1).unwrap();
                    let d = m.reg(0);
                    m.binop(BinOp::Add, d, a, b_);
                    m.ret(Some(d));
                },
            );
        });
        let f = b.finish().unwrap();
        let code = f.classes[0].methods[0].code.as_ref().unwrap();
        assert_eq!(code.ins, 2);
        assert_eq!(code.param_reg(0), Some(Reg(2)));
    }

    #[test]
    fn forward_labels_are_patched() {
        let mut b = AdxBuilder::new();
        b.class("Lcom/app/A;", |c| {
            c.method("f", "(I)V", AccessFlags::PUBLIC, 4, |m| {
                let p = m.param(1).unwrap();
                let end = m.new_label();
                m.ifz(CondOp::Eq, p, end);
                m.const_int(m.reg(0), 7);
                m.bind(end);
                m.ret(None);
            });
        });
        let f = b.finish().unwrap();
        let code = f.classes[0].methods[0].code.as_ref().unwrap();
        match &code.insns[0] {
            Insn::IfZ { target, .. } => assert_eq!(*target, 2),
            other => panic!("expected ifz, got {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = AdxBuilder::new();
        b.class("Lcom/app/A;", |c| {
            c.method("f", "()V", AccessFlags::PUBLIC, 1, |m| {
                let l = m.new_label();
                m.goto(l);
            });
        });
        assert!(matches!(b.finish(), Err(AdxError::UnboundLabel { .. })));
    }

    #[test]
    fn try_catch_roundtrips_through_binary() {
        let mut b = AdxBuilder::new();
        b.class("Lcom/app/A;", |c| {
            c.method("f", "()V", AccessFlags::PUBLIC, 4, |m| {
                let handler = m.new_label();
                let done = m.new_label();
                let t = m.begin_try();
                m.invoke_virtual("Lcom/app/A;", "g", "()V", &[m.param(0).unwrap()]);
                m.end_try(t, &[(Some("Ljava/io/IOException;"), handler)]);
                m.goto(done);
                m.bind(handler);
                m.move_exception(m.reg(1));
                m.bind(done);
                m.ret(None);
            });
        });
        let f = b.finish().unwrap();
        let bytes = write_adx(&f);
        let g = read_adx(&bytes).unwrap();
        let code = g.classes[0].methods[0].code.as_ref().unwrap();
        assert_eq!(code.tries.len(), 1);
        assert_eq!(code.tries[0].start, 0);
        assert_eq!(code.tries[0].end, 1);
        assert_eq!(code.tries[0].handlers[0].target, 2);
        assert!(code.tries[0].handlers[0].exception.is_some());
    }

    #[test]
    fn fields_and_interfaces() {
        let mut b = AdxBuilder::new();
        b.class("Lcom/app/A;", |c| {
            c.super_class("Landroid/app/Activity;");
            c.interface("Landroid/view/View$OnClickListener;");
            c.field("count", "I", AccessFlags::PRIVATE);
            c.abstract_method("g", "()V", AccessFlags::PUBLIC);
        });
        let f = b.finish().unwrap();
        let cls = &f.classes[0];
        assert_eq!(cls.interfaces.len(), 1);
        assert_eq!(cls.fields.len(), 1);
        assert!(cls.methods[0].flags.contains(AccessFlags::ABSTRACT));
        assert!(cls.methods[0].code.is_none());
    }
}
