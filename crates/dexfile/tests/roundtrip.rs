//! Property-based tests: `write_adx` ∘ `read_adx` is the identity on the
//! in-memory model, and the parser never panics on corrupted inputs.

use nck_dex::builder::AdxBuilder;
use nck_dex::{read_adx, write_adx, AccessFlags, AdxFile, BinOp, CondOp, Insn, Reg, UnOp};
use proptest::prelude::*;

const REGS: u16 = 8;

/// Strategy producing a single non-branching instruction valid for a frame
/// of `REGS` registers and the pools built by `file_from_insns`.
fn arb_straightline_insn() -> impl Strategy<Value = Insn> {
    let reg = || (0..REGS).prop_map(Reg);
    prop_oneof![
        Just(Insn::Nop),
        (reg(), reg()).prop_map(|(dst, src)| Insn::Move { dst, src }),
        (reg(), any::<i64>()).prop_map(|(dst, value)| Insn::ConstInt { dst, value }),
        reg().prop_map(|dst| Insn::ConstNull { dst }),
        (reg(), reg()).prop_map(|(dst, arr)| Insn::ArrayLength { dst, arr }),
        (reg(), reg(), reg()).prop_map(|(dst, arr, idx)| Insn::Aget { dst, arr, idx }),
        (reg(), reg(), reg()).prop_map(|(src, arr, idx)| Insn::Aput { src, arr, idx }),
        (arb_binop(), reg(), reg(), reg()).prop_map(|(op, dst, a, b)| Insn::BinOp {
            op,
            dst,
            a,
            b
        }),
        (arb_binop(), reg(), reg(), any::<i32>()).prop_map(|(op, dst, a, lit)| Insn::BinOpLit {
            op,
            dst,
            a,
            lit
        }),
        (arb_unop(), reg(), reg()).prop_map(|(op, dst, src)| Insn::UnOp { op, dst, src }),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)]
}

/// Builds a one-class file whose single method body is `insns` followed by
/// a `return-void`, plus a conditional branch over the body so branches are
/// exercised too.
fn file_from_insns(insns: Vec<Insn>, strings: Vec<String>) -> AdxFile {
    let mut b = AdxBuilder::new();
    for s in &strings {
        b.string(s);
    }
    b.class("Lgen/C;", |c| {
        c.method("m", "(I)V", AccessFlags::PUBLIC, REGS, |m| {
            let end = m.new_label();
            m.ifz(CondOp::Eq, m.param(1).unwrap(), end);
            for insn in &insns {
                // Re-emit through the raw path: the builder has no generic
                // "emit", so map each variant onto its emit method.
                match insn.clone() {
                    Insn::Nop => m.nop(),
                    Insn::Move { dst, src } => m.mov(dst, src),
                    Insn::ConstInt { dst, value } => m.const_int(dst, value),
                    Insn::ConstNull { dst } => m.const_null(dst),
                    Insn::ArrayLength { dst, arr } => m.array_length(dst, arr),
                    Insn::Aget { dst, arr, idx } => m.aget(dst, arr, idx),
                    Insn::Aput { src, arr, idx } => m.aput(src, arr, idx),
                    Insn::BinOp { op, dst, a, b } => m.binop(op, dst, a, b),
                    Insn::BinOpLit { op, dst, a, lit } => m.binop_lit(op, dst, a, lit),
                    Insn::UnOp { op, dst, src } => m.unop(op, dst, src),
                    other => panic!("strategy produced unexpected insn {other:?}"),
                }
            }
            m.bind(end);
            m.ret(None);
        });
    });
    b.finish().expect("all labels bound")
}

proptest! {
    #[test]
    fn write_read_roundtrip(
        insns in proptest::collection::vec(arb_straightline_insn(), 0..64),
        strings in proptest::collection::vec("[a-zA-Z0-9/;$_.()-]{0,24}", 0..8),
    ) {
        let file = file_from_insns(insns, strings);
        let bytes = write_adx(&file);
        let parsed = read_adx(&bytes).expect("roundtrip parse");
        prop_assert_eq!(file.classes.len(), parsed.classes.len());
        prop_assert_eq!(file.pools.strings(), parsed.pools.strings());
        prop_assert_eq!(file.pools.types().len(), parsed.pools.types().len());
        let a = &file.classes[0].methods[0];
        let b = &parsed.classes[0].methods[0];
        prop_assert_eq!(a, b);
        // A second roundtrip must be byte-identical (canonical encoding).
        prop_assert_eq!(bytes.clone(), write_adx(&parsed));
        // The roundtripped file still verifies clean.
        prop_assert!(nck_dex::verify::verify(&parsed).is_empty());
    }

    #[test]
    fn parser_never_panics_on_corruption(
        insns in proptest::collection::vec(arb_straightline_insn(), 0..16),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), 1u8..255), 1..8),
    ) {
        let file = file_from_insns(insns, vec![]);
        let mut bytes = write_adx(&file);
        for (at, xor) in flips {
            let i = at.index(bytes.len());
            bytes[i] ^= xor;
        }
        // Must either parse or error — never panic. Checksum catches most.
        let _ = read_adx(&bytes);
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_adx(&bytes);
    }

    #[test]
    fn truncation_always_errors(
        insns in proptest::collection::vec(arb_straightline_insn(), 1..16),
        cut in 1usize..100,
    ) {
        let file = file_from_insns(insns, vec![]);
        let bytes = write_adx(&file);
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(read_adx(&bytes[..bytes.len() - cut]).is_err());
    }
}
