//! `nck-study`: the §2 empirical study encoded as data.
//!
//! The paper studies 90 real-world NPDs across 21 open-source Android
//! apps. This crate carries the study's artifacts — the app list
//! (Table 1, [`apps`]), the per-case records with impact and root-cause
//! classifications (Table 2/3 and Figure 4, [`dataset`]), and the library
//! design guidelines (Table 11, [`guidelines`]) — and re-derives every
//! printed distribution from the per-case records.

pub mod apps;
pub mod dataset;
pub mod guidelines;

pub use apps::{StudyApp, STUDY_APPS};
pub use dataset::{
    cause_distribution, impact_distribution, study_npds, subcause_counts, Impact, Npd, RootCause,
};
pub use guidelines::{render_table11, Guideline, GUIDELINES};
