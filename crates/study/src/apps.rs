//! The 21 Android apps of the empirical study — Table 1.

/// One studied app.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyApp {
    /// App (or system) name.
    pub name: &'static str,
    /// Play Store category.
    pub category: &'static str,
    /// Install-count bracket as printed in Table 1.
    pub installs: &'static str,
}

/// Table 1's 21 rows.
pub const STUDY_APPS: &[StudyApp] = &[
    StudyApp {
        name: "Chrome",
        category: "Communication",
        installs: ">500M",
    },
    StudyApp {
        name: "Barcode scanner",
        category: "Tools",
        installs: ">100M",
    },
    StudyApp {
        name: "Firefox",
        category: "Communication",
        installs: ">50M",
    },
    StudyApp {
        name: "Telegram",
        category: "Communication",
        installs: ">10M",
    },
    StudyApp {
        name: "K9",
        category: "Communication",
        installs: ">5M",
    },
    StudyApp {
        name: "XBMC",
        category: "Media & Video",
        installs: ">1M",
    },
    StudyApp {
        name: "Wordpress",
        category: "Social",
        installs: ">1M",
    },
    StudyApp {
        name: "Sipdroid",
        category: "Communication",
        installs: ">1M",
    },
    StudyApp {
        name: "ConnectBot",
        category: "Communication",
        installs: ">1M",
    },
    StudyApp {
        name: "NPR news",
        category: "News & Magazines",
        installs: ">1M",
    },
    StudyApp {
        name: "Csipsimple",
        category: "Communication",
        installs: ">1M",
    },
    StudyApp {
        name: "Signal private messenger",
        category: "Communication",
        installs: ">1M",
    },
    StudyApp {
        name: "ChatSecure",
        category: "Communication",
        installs: ">100K",
    },
    StudyApp {
        name: "Owncloud",
        category: "Productivity",
        installs: ">100K",
    },
    StudyApp {
        name: "GTalkSMS",
        category: "Tools",
        installs: ">50K",
    },
    StudyApp {
        name: "Yaxim",
        category: "Communication",
        installs: ">50K",
    },
    StudyApp {
        name: "Jamendo Player",
        category: "Music & Audio",
        installs: ">10K",
    },
    StudyApp {
        name: "Hacker News",
        category: "News & Magazines",
        installs: ">10K",
    },
    StudyApp {
        name: "BombusMod",
        category: "Social",
        installs: ">10K",
    },
    StudyApp {
        name: "Kontalk",
        category: "Communication",
        installs: ">10K",
    },
    StudyApp {
        name: "Android Framework",
        category: "System",
        installs: "built-in",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_one_apps() {
        assert_eq!(STUDY_APPS.len(), 21);
    }

    #[test]
    fn communication_dominates() {
        let comm = STUDY_APPS
            .iter()
            .filter(|a| a.category == "Communication")
            .count();
        assert!(comm >= 9);
    }
}
