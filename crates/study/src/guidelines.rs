//! Library design guidelines — Table 11 (§6).

/// One observation→guideline row of Table 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Guideline {
    /// The large-scale observation driving the guideline.
    pub observation: &'static str,
    /// The derived design guideline for mobile network libraries.
    pub guideline: &'static str,
    /// Whether the feature should be abstracted away (§6.1) or exposed
    /// (§6.2).
    pub exposed: bool,
}

/// Table 11's seven rows.
pub const GUIDELINES: &[Guideline] = &[
    Guideline {
        observation: "43% apps never check network connectivity",
        guideline: "Automatically check connectivity before each network request",
        exposed: false,
    },
    Guideline {
        observation: "70% apps ignore retry APIs; only 10% apps impl. customized retry",
        guideline: "Automatically retry on transient network error",
        exposed: false,
    },
    Guideline {
        observation: "Over 76% of over retries are caused by default API values",
        guideline: "Set default retries considering the request context",
        exposed: false,
    },
    Guideline {
        observation: "57% apps never show failure notifications for user-initiated requests",
        guideline: "Pre-define error message on network failure",
        exposed: false,
    },
    Guideline {
        observation: "75% of network requests miss validity checks",
        guideline: "Automatically put invalid response into error callbacks",
        exposed: false,
    },
    Guideline {
        observation: "More apps show error mesg. in explicit error callbacks than implicit ones",
        guideline: "Explicitly separate success and error network callbacks",
        exposed: true,
    },
    Guideline {
        observation: "93% apps do not check error types",
        guideline: "Expose important error types in addition to error callbacks",
        exposed: true,
    },
];

/// Renders Table 11 as aligned text.
pub fn render_table11() -> String {
    let mut out = String::new();
    for g in GUIDELINES {
        out.push_str(&format!("{:72} | {}\n", g.observation, g.guideline));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_guidelines() {
        assert_eq!(GUIDELINES.len(), 7);
    }

    #[test]
    fn five_abstracted_two_exposed() {
        assert_eq!(GUIDELINES.iter().filter(|g| !g.exposed).count(), 5);
        assert_eq!(GUIDELINES.iter().filter(|g| g.exposed).count(), 2);
    }

    #[test]
    fn table_renders() {
        let t = render_table11();
        assert!(t.contains("Automatically check connectivity"));
        assert!(t.contains("93% apps"));
    }
}
