//! The 90-NPD study dataset (§2): per-case impact and root cause, from
//! which Figure 4 and Table 3 are re-derived.
//!
//! The six fully-described representative cases are Table 2's rows; the
//! remaining cases carry the app attribution and classification that the
//! paper aggregates (it explicitly "do\[es\] not emphasize any quantitative
//! results" beyond the distributions reproduced here).

use crate::apps::STUDY_APPS;

/// UX impact categories — Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Impact {
    /// Broken functionality (data loss, failed operations): 36%.
    Dysfunction,
    /// Missing/unhelpful failure UI: 33%.
    UnfriendlyUi,
    /// Abnormal termination or frozen UI: 21%.
    CrashFreeze,
    /// Excessive energy use: 10%.
    BatteryDrain,
}

impl Impact {
    /// Figure 4's label.
    pub fn label(self) -> &'static str {
        match self {
            Impact::Dysfunction => "Dysfunction",
            Impact::UnfriendlyUi => "Unfriendly UI",
            Impact::CrashFreeze => "Crash/freeze",
            Impact::BatteryDrain => "Battery drain",
        }
    }
}

/// Root causes with their §2.3 subcauses — Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RootCause {
    /// Cause 1: no connectivity checks (30%).
    NoConnectivityCheck,
    /// Cause 2.1: no retry for time-sensitive requests.
    TransientNoRetry,
    /// Cause 2.2: over-retry.
    TransientOverRetry,
    /// Cause 3.1: no timeout setting.
    PermanentNoTimeout,
    /// Cause 3.2: absent/misleading failure notification.
    PermanentNoNotification,
    /// Cause 3.3: no validity check on the response.
    PermanentNoResponseCheck,
    /// Cause 4.1: no reconnection on network switch.
    SwitchNoReconnect,
    /// Cause 4.2: no automatic failure recovery.
    SwitchNoRecovery,
}

impl RootCause {
    /// The top-level Table 3 bucket.
    pub fn bucket(self) -> &'static str {
        match self {
            RootCause::NoConnectivityCheck => "No connectivity checks",
            RootCause::TransientNoRetry | RootCause::TransientOverRetry => {
                "Mishandling transient error"
            }
            RootCause::PermanentNoTimeout
            | RootCause::PermanentNoNotification
            | RootCause::PermanentNoResponseCheck => "Mishandling permanent error",
            RootCause::SwitchNoReconnect | RootCause::SwitchNoRecovery => {
                "Mishandling network switch"
            }
        }
    }
}

/// One studied NPD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Npd {
    /// Case id (1-90).
    pub id: u32,
    /// App it was found in (a Table 1 name).
    pub app: &'static str,
    /// UX impact.
    pub impact: Impact,
    /// Root cause.
    pub cause: RootCause,
    /// Description, set for the representative Table 2 cases.
    pub description: Option<&'static str>,
    /// Developer's resolution, set for the Table 2 cases.
    pub resolution: Option<&'static str>,
}

/// Table 2's six representative cases.
const REPRESENTATIVE: &[(&str, Impact, RootCause, &str, &str)] = &[
    (
        "Firefox",
        Impact::Dysfunction,
        RootCause::TransientNoRetry,
        "The download fails due to transient network errors",
        "Add retry on connection failures",
    ),
    (
        "Yaxim",
        Impact::Dysfunction,
        RootCause::SwitchNoRecovery,
        "The sent message is lost on network failure",
        "Queue the message for re-sending",
    ),
    (
        "Hacker News",
        Impact::UnfriendlyUi,
        RootCause::PermanentNoNotification,
        "No indication if the feeds loading fails",
        "Add error message",
    ),
    (
        "ChatSecure",
        Impact::CrashFreeze,
        RootCause::NoConnectivityCheck,
        "Do not handle no connection exception on login",
        "Add catch blocks",
    ),
    (
        "Chrome",
        Impact::CrashFreeze,
        RootCause::PermanentNoTimeout,
        "Failed XMLHttpRequest on webpage freezes the WebView",
        "Cancel the request on failure",
    ),
    (
        "Kontalk",
        Impact::BatteryDrain,
        RootCause::TransientOverRetry,
        "Frequent synchronizations in offline mode",
        "Disable synchronization in offline",
    ),
];

/// Builds the full 90-case dataset.
///
/// Counts are exact to the paper: impacts 32/30/19/9
/// (36%/33%/21%/10% of 90) and causes 27/12/24/27 with the §2.3 subcause
/// splits (7+5 transient; 8+11+5 permanent; 18+9 switch).
pub fn study_npds() -> Vec<Npd> {
    // Remaining (impact, cause) pairs to assign after the representative
    // six are placed.
    let mut impact_quota = [
        (Impact::Dysfunction, 32usize - 2), // Firefox, Yaxim.
        (Impact::UnfriendlyUi, 30 - 1),     // Hacker News.
        (Impact::CrashFreeze, 19 - 2),      // ChatSecure, Chrome.
        (Impact::BatteryDrain, 9 - 1),      // Kontalk.
    ];
    let mut cause_quota = [
        (RootCause::NoConnectivityCheck, 27usize - 1),
        (RootCause::TransientNoRetry, 7 - 1),
        (RootCause::TransientOverRetry, 5 - 1),
        (RootCause::PermanentNoTimeout, 8 - 1),
        (RootCause::PermanentNoNotification, 11 - 1),
        (RootCause::PermanentNoResponseCheck, 5),
        (RootCause::SwitchNoReconnect, 18),
        (RootCause::SwitchNoRecovery, 9 - 1),
    ];

    let mut npds: Vec<Npd> = REPRESENTATIVE
        .iter()
        .enumerate()
        .map(|(i, &(app, impact, cause, desc, res))| Npd {
            id: i as u32 + 1,
            app,
            impact,
            cause,
            description: Some(desc),
            resolution: Some(res),
        })
        .collect();

    // Deterministically interleave the remaining quotas across the apps.
    let mut id = npds.len() as u32 + 1;
    let mut app_idx = 0usize;
    let mut ci = 0usize;
    while npds.len() < 90 {
        // Next cause with remaining quota.
        while cause_quota[ci % cause_quota.len()].1 == 0 {
            ci += 1;
        }
        let cause_slot = ci % cause_quota.len();
        cause_quota[cause_slot].1 -= 1;
        let cause = cause_quota[cause_slot].0;
        ci += 1;
        // Next impact with remaining quota, preferring a plausible pairing
        // (battery drain goes with retry/switch causes).
        let impact_slot = (0..impact_quota.len())
            .map(|k| (ci + k) % impact_quota.len())
            .find(|&k| impact_quota[k].1 > 0)
            .expect("quotas sum to 90");
        impact_quota[impact_slot].1 -= 1;
        let impact = impact_quota[impact_slot].0;

        npds.push(Npd {
            id,
            app: STUDY_APPS[app_idx % STUDY_APPS.len()].name,
            impact,
            cause,
            description: None,
            resolution: None,
        });
        id += 1;
        app_idx += 1;
    }
    npds
}

/// Figure 4: `(label, count, percent)` rows in the paper's order.
pub fn impact_distribution(npds: &[Npd]) -> Vec<(&'static str, usize, f64)> {
    [
        Impact::Dysfunction,
        Impact::UnfriendlyUi,
        Impact::CrashFreeze,
        Impact::BatteryDrain,
    ]
    .iter()
    .map(|&i| {
        let n = npds.iter().filter(|x| x.impact == i).count();
        (i.label(), n, n as f64 / npds.len() as f64 * 100.0)
    })
    .collect()
}

/// Table 3: `(bucket, count, percent)` rows in the paper's order.
pub fn cause_distribution(npds: &[Npd]) -> Vec<(&'static str, usize, f64)> {
    [
        "No connectivity checks",
        "Mishandling transient error",
        "Mishandling permanent error",
        "Mishandling network switch",
    ]
    .iter()
    .map(|&bucket| {
        let n = npds.iter().filter(|x| x.cause.bucket() == bucket).count();
        (bucket, n, n as f64 / npds.len() as f64 * 100.0)
    })
    .collect()
}

/// The subcause split within one bucket, as `(cause, count)`.
pub fn subcause_counts(npds: &[Npd]) -> Vec<(RootCause, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for n in npds {
        *counts.entry(n.cause).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ninety_cases() {
        assert_eq!(study_npds().len(), 90);
    }

    #[test]
    fn impact_distribution_matches_figure4() {
        let npds = study_npds();
        let dist = impact_distribution(&npds);
        assert_eq!(dist[0], ("Dysfunction", 32, 32.0 / 90.0 * 100.0));
        assert_eq!(dist[1].1, 30);
        assert_eq!(dist[2].1, 19);
        assert_eq!(dist[3].1, 9);
        // Rounded percentages as printed: 36%, 33%, 21%, 10%.
        assert_eq!(dist[0].2.round() as i32, 36);
        assert_eq!(dist[1].2.round() as i32, 33);
        assert_eq!(dist[2].2.round() as i32, 21);
        assert_eq!(dist[3].2.round() as i32, 10);
    }

    #[test]
    fn cause_distribution_matches_table3() {
        let npds = study_npds();
        let dist = cause_distribution(&npds);
        assert_eq!(dist[0].1, 27);
        assert_eq!(dist[1].1, 12);
        assert_eq!(dist[2].1, 24);
        assert_eq!(dist[3].1, 27);
        assert_eq!(dist[0].2.round() as i32, 30);
        assert_eq!(dist[1].2.round() as i32, 13);
        assert_eq!(dist[2].2.round() as i32, 27);
        assert_eq!(dist[3].2.round() as i32, 30);
    }

    #[test]
    fn subcauses_match_section_2_3() {
        let npds = study_npds();
        let counts: std::collections::BTreeMap<_, _> = subcause_counts(&npds).into_iter().collect();
        assert_eq!(counts[&RootCause::TransientNoRetry], 7);
        assert_eq!(counts[&RootCause::TransientOverRetry], 5);
        assert_eq!(counts[&RootCause::PermanentNoTimeout], 8);
        assert_eq!(counts[&RootCause::PermanentNoNotification], 11);
        assert_eq!(counts[&RootCause::PermanentNoResponseCheck], 5);
        assert_eq!(counts[&RootCause::SwitchNoReconnect], 18);
        assert_eq!(counts[&RootCause::SwitchNoRecovery], 9);
    }

    #[test]
    fn representative_cases_have_descriptions() {
        let npds = study_npds();
        let described = npds.iter().filter(|n| n.description.is_some()).count();
        assert_eq!(described, 6);
        assert!(npds
            .iter()
            .any(|n| n.app == "ChatSecure" && n.description.is_some()));
    }

    #[test]
    fn every_case_names_a_study_app() {
        let names: Vec<&str> = STUDY_APPS.iter().map(|a| a.name).collect();
        for n in study_npds() {
            assert!(names.contains(&n.app), "{} not in Table 1", n.app);
        }
    }
}
