//! `nck-dyntest`: the dynamic-analysis baseline (§7 of the paper).
//!
//! The paper positions NChecker against run-time tools like VanarSena
//! and Caiipa, which "dynamically inject environment related faults ...
//! and file a crash report if the injected fault causes a crash", and
//! argues some NPDs — "no timeout setting" in particular — "can hardly
//! be detected by \[the\] dynamic tools" because they need a timing fault
//! model and do not manifest as crashes.
//!
//! This crate *implements* that baseline so the claim can be measured:
//! [`env::AndroidEnv`] injects network faults into apps executed by the
//! [`nck-interp`](../nck_interp/index.html) machine, and
//! [`driver::DynamicChecker`] derives findings from observed crashes,
//! hangs, silent failures, and retry storms. The
//! `dynamic_vs_static` experiment binary tabulates what each approach
//! detects.

pub mod driver;
pub mod env;

pub use driver::{DynConfig, DynFinding, DynamicChecker, Observation, RunOutcome};
pub use env::{AndroidEnv, Event, Fault, Scenario};
