//! The fault-injecting Android environment: the dynamic analogue of the
//! Network Link Conditioner plus VanarSena's fault injectors.
//!
//! Every framework/library call an app makes lands here. Network target
//! APIs consume a per-attempt fault schedule; config APIs leave marks on
//! the client objects so timeout semantics can be honoured; UI and ICC
//! calls are recorded as observable events.

use nck_interp::{Env, EnvCtx, ExtResult, Thrown, Value};
use nck_netlibs::api::Registry;
use nck_netlibs::library::Library;

/// One injected network condition, consumed per request attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The request succeeds.
    Ok,
    /// The connection fails fast (VanarSena-style web error).
    Disconnect,
    /// The connection black-holes: only apps with a configured timeout
    /// ever see an exception — the *timing* fault model the paper notes
    /// dynamic tools lack (§7).
    Stall,
    /// The server answers garbage: the response object is `null`.
    InvalidResponse,
}

/// An observable event recorded during one run.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A network request attempt through `library`.
    Request {
        /// The library used.
        library: Library,
        /// 1-based attempt number within this run.
        attempt: usize,
    },
    /// The attempt failed with a connection error.
    RequestFailed,
    /// The attempt completed.
    RequestOk,
    /// The app blocked on a stalled connection with no timeout set —
    /// an ANR in production.
    Hang,
    /// A configured timeout fired after `ms`.
    TimedOut {
        /// The configured timeout in milliseconds.
        ms: i64,
    },
    /// The app queried connectivity state.
    ConnectivityQueried,
    /// A UI alert (Toast/TextView/...) was displayed.
    UiAlert,
    /// Something was written to the log only.
    Log,
    /// An ICC send (broadcast / startActivity / startService).
    Icc,
    /// The app slept/scheduled for `ms` (retry pacing).
    Sleep {
        /// Milliseconds.
        ms: i64,
    },
}

/// The network scenario of one run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name.
    pub name: &'static str,
    /// Per-attempt faults; the last entry repeats.
    pub faults: Vec<Fault>,
    /// What the connectivity APIs report.
    pub connectivity_up: bool,
}

impl Scenario {
    /// Everything works.
    pub fn connected() -> Scenario {
        Scenario {
            name: "connected",
            faults: vec![Fault::Ok],
            connectivity_up: true,
        }
    }

    /// Airplane mode: connectivity reports down, every attempt fails.
    pub fn disconnected() -> Scenario {
        Scenario {
            name: "disconnected",
            faults: vec![Fault::Disconnect],
            connectivity_up: false,
        }
    }

    /// Poor signal: connectivity reports *up* but attempts fail — the
    /// condition that defeats the ChatSecure patch of Figure 1.
    pub fn flaky() -> Scenario {
        Scenario {
            name: "flaky",
            faults: vec![Fault::Disconnect],
            connectivity_up: true,
        }
    }

    /// Dead black-hole connection with connectivity up: exposes missing
    /// timeouts (requires the timing fault model).
    pub fn stalled() -> Scenario {
        Scenario {
            name: "stalled",
            faults: vec![Fault::Stall],
            connectivity_up: true,
        }
    }

    /// Server returns an invalid (null) response.
    pub fn invalid_response() -> Scenario {
        Scenario {
            name: "invalid-response",
            faults: vec![Fault::InvalidResponse],
            connectivity_up: true,
        }
    }

    fn fault_for(&self, attempt: usize) -> Fault {
        *self
            .faults
            .get(attempt.saturating_sub(1))
            .or(self.faults.last())
            .unwrap_or(&Fault::Ok)
    }
}

const IOE: &str = "Ljava/io/IOException;";
const STE: &str = "Ljava/net/SocketTimeoutException;";

/// Marker fields the environment leaves on client objects.
const CFG_TIMEOUT: &str = "__cfg_timeout";
const CFG_RETRIES: &str = "__cfg_retries";
const ERR_LISTENER: &str = "__err_listener";

/// The fault-injecting environment.
pub struct AndroidEnv<'r> {
    registry: &'r Registry,
    /// The active scenario.
    pub scenario: Scenario,
    /// Events observed so far.
    pub events: Vec<Event>,
    attempts: usize,
}

impl<'r> AndroidEnv<'r> {
    /// Creates an environment for one run.
    pub fn new(registry: &'r Registry, scenario: Scenario) -> AndroidEnv<'r> {
        AndroidEnv {
            registry,
            scenario,
            events: Vec::new(),
            attempts: 0,
        }
    }

    /// Number of request attempts observed.
    pub fn attempts(&self) -> usize {
        self.attempts
    }

    fn default_return(sig: &str, ctx: &mut EnvCtx<'_>, class_hint: &str) -> ExtResult {
        if sig.ends_with(")V") {
            ExtResult::Return(None)
        } else if sig.ends_with(")I") || sig.ends_with(")Z") || sig.ends_with(")J") {
            ExtResult::Return(Some(Value::Int(0)))
        } else if let Some(ret) = sig.rsplit(')').next() {
            if ret.starts_with('L') {
                ExtResult::Return(Some(ctx.alloc(ret)))
            } else {
                let _ = class_hint;
                ExtResult::Return(Some(Value::Null))
            }
        } else {
            ExtResult::Return(Some(Value::Null))
        }
    }

    fn handle_target(
        &mut self,
        ctx: &mut EnvCtx<'_>,
        library: Library,
        sig: &str,
        args: &[Value],
    ) -> ExtResult {
        self.attempts += 1;
        self.events.push(Event::Request {
            library,
            attempt: self.attempts,
        });
        let fault = self.scenario.fault_for(self.attempts);
        match fault {
            Fault::Ok => {
                self.events.push(Event::RequestOk);
                Self::default_return(sig, ctx, "response")
            }
            Fault::InvalidResponse => {
                self.events.push(Event::RequestOk);
                ExtResult::Return(if sig.ends_with(")V") {
                    None
                } else {
                    Some(Value::Null)
                })
            }
            Fault::Disconnect => {
                self.events.push(Event::RequestFailed);
                // Library-internal automatic retries: configured count on
                // the carrier, or the library default.
                let retries = {
                    let key = ctx.symbols.intern(CFG_RETRIES);
                    args.iter()
                        .find_map(|a| match a {
                            // An unset marker reads as Null; only an
                            // explicit Int overrides the library default.
                            Value::Obj(o) => match ctx.heap.get_field(*o, key) {
                                Value::Int(v) => Some(v),
                                _ => None,
                            },
                            _ => None,
                        })
                        .unwrap_or_else(|| {
                            i64::from(nck_netlibs::library::defaults(library).retries)
                        })
                };
                for _ in 0..retries.max(0) {
                    self.attempts += 1;
                    self.events.push(Event::Request {
                        library,
                        attempt: self.attempts,
                    });
                    self.events.push(Event::RequestFailed);
                }
                // Async libraries deliver the failure to a listener.
                match library {
                    Library::Volley => {
                        // `add(request)`: the listener was stashed on the
                        // request object at construction.
                        if let Some(Value::Obj(req)) = args.get(1) {
                            let key = ctx.symbols.intern(ERR_LISTENER);
                            let listener = ctx.heap.get_field(*req, key);
                            if !listener.is_null() {
                                return ExtResult::CallThen {
                                    receiver: listener,
                                    method: "onErrorResponse".to_owned(),
                                    args: vec![Value::Null],
                                    result: Some(Value::Null),
                                };
                            }
                        }
                        ExtResult::Return(Some(Value::Null))
                    }
                    Library::AndroidAsyncHttp => {
                        // `get(url, handler)`: the handler is the last arg.
                        if let Some(handler @ Value::Obj(_)) = args.last() {
                            return ExtResult::CallThen {
                                receiver: handler.clone(),
                                method: "onFailure".to_owned(),
                                args: vec![Value::Int(0), Value::Null, Value::Null, Value::Null],
                                result: Some(Value::Null),
                            };
                        }
                        ExtResult::Return(Some(Value::Null))
                    }
                    _ => ExtResult::Throw(Thrown::new(IOE, "connection failed")),
                }
            }
            Fault::Stall => {
                // Honour a configured timeout; otherwise the thread blocks.
                let key = ctx.symbols.intern(CFG_TIMEOUT);
                let configured = args.iter().find_map(|a| match a {
                    Value::Obj(o) => ctx.heap.get_field(*o, key).as_int().filter(|&v| v > 0),
                    _ => None,
                });
                match configured {
                    Some(ms) => {
                        self.events.push(Event::TimedOut { ms });
                        ExtResult::Throw(Thrown::new(STE, "read timed out"))
                    }
                    None => {
                        self.events.push(Event::Hang);
                        // Execution proceeds as if the call returned so the
                        // rest of the run stays observable; the Hang event
                        // is the finding.
                        Self::default_return(sig, ctx, "response")
                    }
                }
            }
        }
    }
}

impl Env for AndroidEnv<'_> {
    fn call_external(
        &mut self,
        ctx: &mut EnvCtx<'_>,
        class: &str,
        name: &str,
        sig: &str,
        args: &[Value],
    ) -> ExtResult {
        // Network target APIs.
        if let Some(t) = self.registry.target(class, name) {
            return self.handle_target(ctx, t.library, sig, args);
        }

        // Config APIs: leave a timeout mark on the carrier object.
        if let Some(cfg) = self.registry.config(class, name) {
            if cfg.kind.is_timeout() {
                let key = ctx.symbols.intern(CFG_TIMEOUT);
                let ms = args
                    .iter()
                    .find_map(|a| match a {
                        Value::Int(v) if *v > 0 => Some(*v),
                        _ => None,
                    })
                    .unwrap_or(10_000);
                for a in args {
                    if let Value::Obj(o) = a {
                        ctx.heap.set_field(*o, key, Value::Int(ms));
                    }
                }
            }
            // Retry configuration: mark the carrier with the count.
            if cfg.kind.is_retry() {
                let key = ctx.symbols.intern(CFG_RETRIES);
                let count = cfg
                    .kind
                    .retry_count_arg()
                    .and_then(|i| args.get(1 + i).and_then(Value::as_int))
                    .unwrap_or(1);
                for a in args {
                    if let Value::Obj(o) = a {
                        ctx.heap.set_field(*o, key, Value::Int(count));
                    }
                }
            }
            // `setRetryPolicy(req, policy)`: copy the policy's marks onto
            // the request.
            if name == "setRetryPolicy" {
                if let (Some(Value::Obj(req)), Some(Value::Obj(pol))) = (args.first(), args.get(1))
                {
                    for marker in [CFG_TIMEOUT, CFG_RETRIES] {
                        let key = ctx.symbols.intern(marker);
                        let v = ctx.heap.get_field(*pol, key);
                        if !v.is_null() {
                            ctx.heap.set_field(*req, key, v);
                        }
                    }
                }
                return ExtResult::Return(Some(args.first().cloned().unwrap_or(Value::Null)));
            }
            return Self::default_return(sig, ctx, class);
        }

        // Connectivity APIs.
        if self.registry.is_connectivity_check(class, name) {
            self.events.push(Event::ConnectivityQueried);
            return match name {
                "getActiveNetworkInfo" | "getNetworkInfo" => {
                    if self.scenario.connectivity_up {
                        ExtResult::Return(Some(ctx.alloc("Landroid/net/NetworkInfo;")))
                    } else {
                        ExtResult::Return(Some(Value::Null))
                    }
                }
                _ => ExtResult::Return(Some(Value::Int(i64::from(self.scenario.connectivity_up)))),
            };
        }

        // Volley request construction: stash the error listener.
        if name == "<init>" && class.starts_with("Lcom/android/volley/") {
            if let Some(Value::Obj(req)) = args.first() {
                if let Some(listener @ Value::Obj(_)) =
                    args.iter().skip(1).find(|a| matches!(a, Value::Obj(_)))
                {
                    let key = ctx.symbols.intern(ERR_LISTENER);
                    ctx.heap.set_field(*req, key, listener.clone());
                }
            }
            return ExtResult::Return(None);
        }

        // UI alerts.
        if nck_android::ui::is_alert_call(class, name) {
            self.events.push(Event::UiAlert);
            return Self::default_return(sig, ctx, class);
        }

        // Logging.
        if class == "Landroid/util/Log;" {
            self.events.push(Event::Log);
            return ExtResult::Return(Some(Value::Int(0)));
        }

        // ICC.
        if matches!(
            name,
            "sendBroadcast" | "sendOrderedBroadcast" | "startActivity" | "startService"
        ) {
            self.events.push(Event::Icc);
            return Self::default_return(sig, ctx, class);
        }

        // Pacing.
        if name == "sleep" || name == "postDelayed" || name == "scheduleTask" {
            let ms = args.iter().find_map(|a| a.as_int()).unwrap_or(0);
            self.events.push(Event::Sleep { ms });
            return Self::default_return(sig, ctx, class);
        }

        Self::default_return(sig, ctx, class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_fault_schedules_repeat_the_tail() {
        let s = Scenario {
            name: "t",
            faults: vec![Fault::Disconnect, Fault::Ok],
            connectivity_up: true,
        };
        assert_eq!(s.fault_for(1), Fault::Disconnect);
        assert_eq!(s.fault_for(2), Fault::Ok);
        assert_eq!(s.fault_for(9), Fault::Ok);
    }

    #[test]
    fn presets_are_consistent() {
        assert!(Scenario::connected().connectivity_up);
        assert!(!Scenario::disconnected().connectivity_up);
        // Flaky: connectivity up, requests fail — the Figure 1 trap.
        let f = Scenario::flaky();
        assert!(f.connectivity_up);
        assert_eq!(f.fault_for(1), Fault::Disconnect);
    }
}
