//! The dynamic checker driver: runs every framework entry point of an
//! app under each network scenario and derives findings from the
//! observed behaviour — the VanarSena/Caiipa approach (§7 of the paper).

use crate::env::{AndroidEnv, Event, Scenario};
use nck_android::apk::Apk;
use nck_android::entrypoints::{entry_points, EntryPoint};
use nck_interp::{ExecError, Machine, Outcome, Thrown, Value};
use nck_ir::body::{MethodId, Program};
use nck_netlibs::api::Registry;

/// How one entry-point run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Returned normally.
    Completed,
    /// An uncaught exception escaped — a crash the user would see.
    Crashed(Thrown),
    /// The step budget ran out — a spin loop (Figure 2's reconnect bug).
    SpinLoop,
}

/// One observed run.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The entry point driven.
    pub entry: EntryPoint,
    /// The scenario it ran under.
    pub scenario: &'static str,
    /// The outcome.
    pub outcome: RunOutcome,
    /// Everything the environment saw.
    pub events: Vec<Event>,
}

impl Observation {
    /// Number of request attempts in this run.
    pub fn attempts(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Request { .. }))
            .count()
    }

    fn has(&self, pred: impl Fn(&Event) -> bool) -> bool {
        self.events.iter().any(pred)
    }
}

/// A dynamically detected problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DynFinding {
    /// The app crashed under a network fault.
    Crash,
    /// The app would block forever (missing timeout; needs the timing
    /// fault model / `stalled` scenario).
    Hang,
    /// A user-facing request failed with no UI notification.
    SilentFailure,
    /// More than three attempts for one logical request.
    ExcessiveRetry,
    /// The run span the step budget retrying (reconnect loop).
    SpinLoop,
}

impl DynFinding {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            DynFinding::Crash => "crash",
            DynFinding::Hang => "hang (no timeout)",
            DynFinding::SilentFailure => "silent failure",
            DynFinding::ExcessiveRetry => "excessive retry",
            DynFinding::SpinLoop => "reconnect spin loop",
        }
    }
}

/// Configuration of the dynamic checker.
#[derive(Debug, Clone)]
pub struct DynConfig {
    /// Scenarios to run. VanarSena-style tools only inject fail-fast web
    /// errors ([`Scenario::disconnected`]/[`Scenario::flaky`]); the
    /// `stalled` scenario is the timing fault model the paper notes they
    /// lack.
    pub scenarios: Vec<Scenario>,
    /// Report crashes only (VanarSena files "a crash report if the
    /// injected fault causes a crash").
    pub crash_only: bool,
    /// Interpreter step budget per run.
    pub step_limit: u64,
}

impl DynConfig {
    /// VanarSena-style: fail-fast fault injection, crash reports only.
    pub fn vanarsena() -> DynConfig {
        DynConfig {
            scenarios: vec![
                Scenario::connected(),
                Scenario::disconnected(),
                Scenario::flaky(),
                Scenario::invalid_response(),
            ],
            crash_only: true,
            step_limit: 50_000,
        }
    }

    /// Everything this reproduction's dynamic checker can do.
    pub fn full() -> DynConfig {
        DynConfig {
            scenarios: vec![
                Scenario::connected(),
                Scenario::disconnected(),
                Scenario::flaky(),
                Scenario::stalled(),
                Scenario::invalid_response(),
            ],
            crash_only: false,
            step_limit: 50_000,
        }
    }
}

/// The dynamic checker.
pub struct DynamicChecker {
    registry: Registry,
    /// Configuration.
    pub config: DynConfig,
}

impl DynamicChecker {
    /// Creates a checker with the given configuration.
    pub fn new(config: DynConfig) -> DynamicChecker {
        DynamicChecker {
            registry: Registry::standard(),
            config,
        }
    }

    /// Runs every entry point of `apk` under every scenario.
    pub fn observe(&self, apk: &Apk) -> Result<Vec<Observation>, nck_ir::LiftError> {
        let program = nck_ir::lift_file(&apk.adx)?;
        Ok(self.observe_program(&program, &apk.manifest))
    }

    /// Runs every entry point of a lifted program.
    pub fn observe_program(
        &self,
        program: &Program,
        manifest: &nck_android::manifest::Manifest,
    ) -> Vec<Observation> {
        let entries = entry_points(program, manifest);
        let mut out = Vec::new();
        for scenario in &self.config.scenarios {
            for entry in &entries {
                let env = AndroidEnv::new(&self.registry, scenario.clone());
                let mut machine =
                    Machine::new(program, env).with_step_limit(self.config.step_limit);
                let outcome = self.drive(&mut machine, program, entry.method);
                let events = std::mem::take(&mut machine.env.events);
                out.push(Observation {
                    entry: *entry,
                    scenario: scenario.name,
                    outcome,
                    events,
                });
            }
        }
        out
    }

    fn drive(
        &self,
        machine: &mut Machine<'_, AndroidEnv<'_>>,
        program: &Program,
        method: MethodId,
    ) -> RunOutcome {
        // Frame: a fresh receiver of the entry's class plus nulls for the
        // declared parameters.
        let m = program.method(method);
        let receiver = Value::Obj(machine.heap.alloc(m.key.class));
        let sig = program.symbols.resolve(m.key.sig).to_owned();
        let nparams = nck_dex::parse_signature(&sig)
            .map(|(p, _)| p.len())
            .unwrap_or(0);
        let mut args = vec![receiver];
        args.extend(std::iter::repeat_with(|| Value::Null).take(nparams));

        match machine.call(method, args) {
            Ok(Outcome::Returned(_)) => RunOutcome::Completed,
            Ok(Outcome::Threw(t)) => RunOutcome::Crashed(t),
            Err(ExecError::StepLimit) => RunOutcome::SpinLoop,
            Err(ExecError::BadState(_)) => RunOutcome::Completed,
        }
    }

    /// Derives findings from a set of observations.
    pub fn findings(&self, observations: &[Observation]) -> Vec<(DynFinding, &'static str)> {
        let mut out = Vec::new();
        for o in observations {
            match &o.outcome {
                RunOutcome::Crashed(_) => out.push((DynFinding::Crash, o.scenario)),
                RunOutcome::SpinLoop => {
                    if !self.config.crash_only {
                        out.push((DynFinding::SpinLoop, o.scenario));
                    }
                }
                RunOutcome::Completed => {}
            }
            if self.config.crash_only {
                continue;
            }
            if o.has(|e| matches!(e, Event::Hang)) {
                out.push((DynFinding::Hang, o.scenario));
            }
            if o.entry.is_user_context()
                && o.has(|e| matches!(e, Event::RequestFailed))
                && !o.has(|e| matches!(e, Event::UiAlert))
                && matches!(o.outcome, RunOutcome::Completed)
            {
                out.push((DynFinding::SilentFailure, o.scenario));
            }
            if o.attempts() > 3 {
                out.push((DynFinding::ExcessiveRetry, o.scenario));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_appgen::spec::{
        AppSpec, ConnCheck, Notification, Origin, RequestSpec, RespCheck, RetryShape,
    };
    use nck_netlibs::library::Library;

    fn observe(
        spec: &AppSpec,
        config: DynConfig,
    ) -> (Vec<Observation>, Vec<(DynFinding, &'static str)>) {
        let apk = nck_appgen::generate(spec);
        let checker = DynamicChecker::new(config);
        let obs = checker.observe(&apk).unwrap();
        let findings = checker.findings(&obs);
        (obs, findings)
    }

    fn kinds(findings: &[(DynFinding, &'static str)]) -> Vec<DynFinding> {
        let mut v: Vec<DynFinding> = findings.iter().map(|&(k, _)| k).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn unchecked_response_crashes_dynamically() {
        let mut r = RequestSpec::new(Library::OkHttp, Origin::UserClick);
        r.response = RespCheck::Unchecked;
        r.notification = Notification::Alert;
        let spec = AppSpec::new("com.dyn.crash", vec![r]);
        let (_, findings) = observe(&spec, DynConfig::vanarsena());
        assert!(kinds(&findings).contains(&DynFinding::Crash));
    }

    #[test]
    fn checked_response_does_not_crash() {
        let mut r = RequestSpec::new(Library::OkHttp, Origin::UserClick);
        r.response = RespCheck::Checked;
        r.notification = Notification::Alert;
        r.set_timeout = true;
        let spec = AppSpec::new("com.dyn.ok", vec![r]);
        let (_, findings) = observe(&spec, DynConfig::vanarsena());
        assert!(!kinds(&findings).contains(&DynFinding::Crash));
    }

    #[test]
    fn missing_timeout_is_invisible_to_vanarsena_but_not_to_stall() {
        // No timeout configured; requests otherwise handled.
        let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
        r.set_timeout = false;
        r.notification = Notification::Alert;
        r.conn_check = ConnCheck::Guarding;
        let spec = AppSpec::new("com.dyn.hang", vec![r]);

        let (_, vanarsena) = observe(&spec, DynConfig::vanarsena());
        assert!(!kinds(&vanarsena).contains(&DynFinding::Hang));

        let (_, full) = observe(&spec, DynConfig::full());
        assert!(kinds(&full).contains(&DynFinding::Hang));
    }

    #[test]
    fn configured_timeout_prevents_the_hang() {
        let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
        r.set_timeout = true;
        r.notification = Notification::Alert;
        let spec = AppSpec::new("com.dyn.timeout", vec![r]);
        let (obs, findings) = observe(&spec, DynConfig::full());
        assert!(!kinds(&findings).contains(&DynFinding::Hang));
        // The stalled scenario must instead record a TimedOut event...
        let stalled: Vec<_> = obs.iter().filter(|o| o.scenario == "stalled").collect();
        assert!(stalled
            .iter()
            .any(|o| o.events.iter().any(|e| matches!(e, Event::TimedOut { .. }))));
    }

    #[test]
    fn silent_failure_is_observed_in_flaky_mode() {
        let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
        r.notification = Notification::Missing;
        r.set_timeout = true;
        let spec = AppSpec::new("com.dyn.silent", vec![r]);
        let (_, findings) = observe(&spec, DynConfig::full());
        assert!(kinds(&findings).contains(&DynFinding::SilentFailure));

        // Crash-only mode (VanarSena) misses it.
        let (_, vanarsena) = observe(&spec, DynConfig::vanarsena());
        assert!(!kinds(&vanarsena).contains(&DynFinding::SilentFailure));
    }

    #[test]
    fn reconnect_loop_spins_to_the_step_limit() {
        let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
        r.custom_retry = Some(RetryShape::SuccessExit);
        r.notification = Notification::Alert;
        let spec = AppSpec::new("com.dyn.spin", vec![r]);
        let (_, findings) = observe(&spec, DynConfig::full());
        let k = kinds(&findings);
        assert!(
            k.contains(&DynFinding::SpinLoop) || k.contains(&DynFinding::ExcessiveRetry),
            "{k:?}"
        );
    }

    #[test]
    fn volley_error_listener_is_driven() {
        // Volley + alert in the error listener: under disconnection the
        // CallThen machinery must reach onErrorResponse and show the UI.
        let mut r = RequestSpec::new(Library::Volley, Origin::UserClick);
        r.notification = Notification::Alert;
        r.set_timeout = true;
        r.set_retries = Some(1);
        let spec = AppSpec::new("com.dyn.volley", vec![r]);
        let (obs, findings) = observe(&spec, DynConfig::full());
        let disc: Vec<_> = obs
            .iter()
            .filter(|o| o.scenario == "disconnected" && o.attempts() > 0)
            .collect();
        assert!(!disc.is_empty());
        assert!(disc
            .iter()
            .any(|o| o.events.iter().any(|e| matches!(e, Event::UiAlert))));
        assert!(!kinds(&findings).contains(&DynFinding::SilentFailure));
    }
}
