//! The `nchecker` command-line tool: analyze an APK bundle and print the
//! warning reports (§4.6, Figure 7).
//!
//! ```text
//! nchecker [--summary|--json] [--strict] [--no-interproc] <app.apk>...
//! ```

use nchecker::{CheckerConfig, NChecker};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: nchecker [--summary|--json] [--strict] [--no-interproc] <app.apk>...");
    eprintln!();
    eprintln!("Statically analyzes ADX app bundles for network programming defects.");
    eprintln!("  --summary       print one line per app instead of full reports");
    eprintln!("  --json          print one JSON document per app");
    eprintln!("  --strict        require connectivity checks to be control conditions");
    eprintln!("  --interproc     enable the summary engine (the default)");
    eprintln!("  --no-interproc  ablate the interprocedural summary engine");
    ExitCode::from(2)
}

const FLAGS: &[&str] = &[
    "--summary",
    "--json",
    "--strict",
    "--interproc",
    "--no-interproc",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let summary = args.iter().any(|a| a == "--summary");
    let json = args.iter().any(|a| a == "--json");
    let strict = args.iter().any(|a| a == "--strict");
    // Last occurrence wins when both interproc flags are given.
    let interproc = !matches!(
        args.iter()
            .rev()
            .find(|a| *a == "--interproc" || *a == "--no-interproc"),
        Some(a) if a == "--no-interproc"
    );
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        return usage();
    }
    if args
        .iter()
        .any(|a| a.starts_with("--") && !FLAGS.contains(&a.as_str()))
    {
        return usage();
    }

    let checker = NChecker::with_config(CheckerConfig {
        strict_connectivity: strict,
        interproc,
        ..CheckerConfig::default()
    });
    let mut failures = 0usize;
    for path in paths {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
                continue;
            }
        };
        match checker.analyze_bytes(&bytes) {
            Ok(report) => {
                if json {
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&nchecker::app_report_to_json(&report))
                            .expect("report serializes")
                    );
                } else if summary {
                    println!(
                        "{path}: {} ({} requests, {} defects)",
                        report.stats.package,
                        report.stats.requests,
                        report.defects.len()
                    );
                } else {
                    println!(
                        "=== {} ({} defects) ===",
                        report.stats.package,
                        report.defects.len()
                    );
                    for d in &report.defects {
                        println!("{}", d.render());
                    }
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
