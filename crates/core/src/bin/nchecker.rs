//! The `nchecker` command-line tool: analyze an APK bundle and print the
//! warning reports (§4.6, Figure 7).
//!
//! ```text
//! nchecker [--summary|--json] [--strict] [--no-interproc] [--keep-going]
//!          [--trace] [--metrics] [--quiet|-v|-vv] <app.apk>...
//! ```
//!
//! Exit codes: `0` all apps analyzed cleanly, `1` at least one app failed
//! to analyze, `2` usage error, `3` every app analyzed but at least one
//! was degraded (some methods skipped as unanalyzable).

use nchecker::{CheckerConfig, NChecker};
use nck_obs::{Events, Level, Metrics, Obs, Tracer};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nchecker [--summary|--json] [--strict] [--no-interproc] [--keep-going] \
         [--trace] [--metrics] [--quiet|-v|-vv] <app.apk>..."
    );
    eprintln!();
    eprintln!("Statically analyzes ADX app bundles for network programming defects.");
    eprintln!("  --summary       print one line per app instead of full reports");
    eprintln!("  --json          print one JSON document per app");
    eprintln!("  --strict        require connectivity checks to be control conditions");
    eprintln!("  --interproc     enable the summary engine (the default)");
    eprintln!("  --no-interproc  ablate the interprocedural summary engine");
    eprintln!("  --keep-going, -k  continue analyzing remaining apps after a failure");
    eprintln!("  --trace         record per-phase spans; tree printed to stderr");
    eprintln!("  --metrics       record pipeline metrics (embedded in --json output)");
    eprintln!("  --quiet, -q     suppress all diagnostics on stderr");
    eprintln!("  -v, -vv         raise diagnostic verbosity to info / debug");
    eprintln!();
    eprintln!("exit codes: 0 clean, 1 analysis failure, 2 usage, 3 degraded");
    ExitCode::from(2)
}

const FLAGS: &[&str] = &[
    "--summary",
    "--json",
    "--strict",
    "--interproc",
    "--no-interproc",
    "--keep-going",
    "-k",
    "--trace",
    "--metrics",
    "--quiet",
    "-q",
    "-v",
    "-vv",
];

const EXIT_FAILED: u8 = 1;
const EXIT_DEGRADED: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let summary = args.iter().any(|a| a == "--summary");
    let json = args.iter().any(|a| a == "--json");
    let strict = args.iter().any(|a| a == "--strict");
    let keep_going = args.iter().any(|a| a == "--keep-going" || a == "-k");
    let trace = args.iter().any(|a| a == "--trace");
    let metrics = args.iter().any(|a| a == "--metrics");
    let quiet = args.iter().any(|a| a == "--quiet" || a == "-q");
    let verbose = args.iter().any(|a| a == "-v");
    let very_verbose = args.iter().any(|a| a == "-vv");
    // Last occurrence wins when both interproc flags are given.
    let interproc = !matches!(
        args.iter()
            .rev()
            .find(|a| *a == "--interproc" || *a == "--no-interproc"),
        Some(a) if a == "--no-interproc"
    );
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if paths.is_empty() {
        return usage();
    }
    if args
        .iter()
        .any(|a| a.starts_with('-') && !FLAGS.contains(&a.as_str()))
    {
        return usage();
    }

    let events = if quiet {
        Events::silent()
    } else if very_verbose {
        Events::at(Level::Debug)
    } else if verbose {
        Events::at(Level::Info)
    } else {
        Events::default()
    };
    let mut checker = NChecker::with_config(CheckerConfig {
        strict_connectivity: strict,
        interproc,
        ..CheckerConfig::default()
    });
    checker.obs = Obs {
        tracer: if trace {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        },
        // --trace implies metrics: the span tree and counters describe
        // the same run and are cheap to record together.
        metrics: if metrics || trace {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        },
        events: events.clone(),
    };

    let mut failures = 0usize;
    let mut degraded = 0usize;
    for path in paths {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                events.error(&format!("{path}: {e}"));
                failures += 1;
                if keep_going {
                    continue;
                }
                return ExitCode::from(EXIT_FAILED);
            }
        };
        events.debug(&format!("{path}: read {} bytes", bytes.len()));
        // analyze_bytes_checked contains panics from adversarial inputs
        // so one bad bundle cannot take down a multi-app invocation.
        match checker.analyze_bytes_checked(&bytes) {
            Ok(report) => {
                events.info(&format!(
                    "{path}: {} requests, {} defects",
                    report.stats.requests,
                    report.defects.len()
                ));
                if report.degraded() {
                    degraded += 1;
                    events.warn(&format!(
                        "{path}: degraded analysis, {} method(s) skipped",
                        report.skipped_methods.len()
                    ));
                    for s in &report.skipped_methods {
                        events.debug(&format!(
                            "{path}: skipped {} [{}]: {}",
                            s.method, s.cause, s.detail
                        ));
                    }
                }
                if json {
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&nchecker::app_report_to_json(&report))
                            .expect("report serializes")
                    );
                } else if summary {
                    println!(
                        "{path}: {} ({} requests, {} defects{})",
                        report.stats.package,
                        report.stats.requests,
                        report.defects.len(),
                        if report.degraded() { ", degraded" } else { "" }
                    );
                } else {
                    println!(
                        "=== {} ({} defects) ===",
                        report.stats.package,
                        report.defects.len()
                    );
                    for d in &report.defects {
                        println!("{}", d.render());
                    }
                }
                // Observability output goes to stderr so stdout stays
                // machine-parseable under --json.
                if let Some(t) = &report.trace {
                    eprintln!("--- trace: {} ---", report.stats.package);
                    eprint!("{}", t.render());
                }
                if !json {
                    if let Some(m) = &report.metrics {
                        eprintln!("--- metrics: {} ---", report.stats.package);
                        eprint!("{}", m.render());
                    }
                }
            }
            Err(e) => {
                events.error(&format!("{path}: {e}"));
                failures += 1;
                if !keep_going {
                    return ExitCode::from(EXIT_FAILED);
                }
            }
        }
    }
    if failures > 0 {
        ExitCode::from(EXIT_FAILED)
    } else if degraded > 0 {
        ExitCode::from(EXIT_DEGRADED)
    } else {
        ExitCode::SUCCESS
    }
}
