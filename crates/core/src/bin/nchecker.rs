//! The `nchecker` command-line tool: analyze an APK bundle and print the
//! warning reports (§4.6, Figure 7).
//!
//! ```text
//! nchecker [--summary|--json] [--strict] [--no-interproc]
//!          [--trace] [--metrics] [--quiet|-v|-vv] <app.apk>...
//! ```

use nchecker::{CheckerConfig, NChecker};
use nck_obs::{Events, Level, Metrics, Obs, Tracer};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nchecker [--summary|--json] [--strict] [--no-interproc] [--trace] [--metrics] \
         [--quiet|-v|-vv] <app.apk>..."
    );
    eprintln!();
    eprintln!("Statically analyzes ADX app bundles for network programming defects.");
    eprintln!("  --summary       print one line per app instead of full reports");
    eprintln!("  --json          print one JSON document per app");
    eprintln!("  --strict        require connectivity checks to be control conditions");
    eprintln!("  --interproc     enable the summary engine (the default)");
    eprintln!("  --no-interproc  ablate the interprocedural summary engine");
    eprintln!("  --trace         record per-phase spans; tree printed to stderr");
    eprintln!("  --metrics       record pipeline metrics (embedded in --json output)");
    eprintln!("  --quiet, -q     suppress all diagnostics on stderr");
    eprintln!("  -v, -vv         raise diagnostic verbosity to info / debug");
    ExitCode::from(2)
}

const FLAGS: &[&str] = &[
    "--summary",
    "--json",
    "--strict",
    "--interproc",
    "--no-interproc",
    "--trace",
    "--metrics",
    "--quiet",
    "-q",
    "-v",
    "-vv",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let summary = args.iter().any(|a| a == "--summary");
    let json = args.iter().any(|a| a == "--json");
    let strict = args.iter().any(|a| a == "--strict");
    let trace = args.iter().any(|a| a == "--trace");
    let metrics = args.iter().any(|a| a == "--metrics");
    let quiet = args.iter().any(|a| a == "--quiet" || a == "-q");
    let verbose = args.iter().any(|a| a == "-v");
    let very_verbose = args.iter().any(|a| a == "-vv");
    // Last occurrence wins when both interproc flags are given.
    let interproc = !matches!(
        args.iter()
            .rev()
            .find(|a| *a == "--interproc" || *a == "--no-interproc"),
        Some(a) if a == "--no-interproc"
    );
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if paths.is_empty() {
        return usage();
    }
    if args
        .iter()
        .any(|a| a.starts_with('-') && !FLAGS.contains(&a.as_str()))
    {
        return usage();
    }

    let events = if quiet {
        Events::silent()
    } else if very_verbose {
        Events::at(Level::Debug)
    } else if verbose {
        Events::at(Level::Info)
    } else {
        Events::default()
    };
    let mut checker = NChecker::with_config(CheckerConfig {
        strict_connectivity: strict,
        interproc,
        ..CheckerConfig::default()
    });
    checker.obs = Obs {
        tracer: if trace {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        },
        // --trace implies metrics: the span tree and counters describe
        // the same run and are cheap to record together.
        metrics: if metrics || trace {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        },
        events: events.clone(),
    };

    let mut failures = 0usize;
    for path in paths {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                events.error(&format!("{path}: {e}"));
                failures += 1;
                continue;
            }
        };
        events.debug(&format!("{path}: read {} bytes", bytes.len()));
        match checker.analyze_bytes(&bytes) {
            Ok(report) => {
                events.info(&format!(
                    "{path}: {} requests, {} defects",
                    report.stats.requests,
                    report.defects.len()
                ));
                if json {
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&nchecker::app_report_to_json(&report))
                            .expect("report serializes")
                    );
                } else if summary {
                    println!(
                        "{path}: {} ({} requests, {} defects)",
                        report.stats.package,
                        report.stats.requests,
                        report.defects.len()
                    );
                } else {
                    println!(
                        "=== {} ({} defects) ===",
                        report.stats.package,
                        report.defects.len()
                    );
                    for d in &report.defects {
                        println!("{}", d.render());
                    }
                }
                // Observability output goes to stderr so stdout stays
                // machine-parseable under --json.
                if let Some(t) = &report.trace {
                    eprintln!("--- trace: {} ---", report.stats.package);
                    eprint!("{}", t.render());
                }
                if !json {
                    if let Some(m) = &report.metrics {
                        eprintln!("--- metrics: {} ---", report.stats.package);
                        eprint!("{}", m.render());
                    }
                }
            }
            Err(e) => {
                events.error(&format!("{path}: {e}"));
                failures += 1;
            }
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
