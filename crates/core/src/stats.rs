//! Corpus-level aggregation of per-app results: the rows of Tables 6
//! and 8 and the CDF series of Figures 8 and 9.

use crate::checker::AppStats;

/// One row of Table 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6Row {
    /// NPD cause label.
    pub cause: &'static str,
    /// Evaluation condition (which apps the row is computed over).
    pub condition: &'static str,
    /// Number of evaluated apps.
    pub evaluated: usize,
    /// Number of buggy apps.
    pub buggy: usize,
}

impl Table6Row {
    /// Buggy percentage, rounded like the paper prints it.
    pub fn percent(&self) -> f64 {
        if self.evaluated == 0 {
            0.0
        } else {
            self.buggy as f64 / self.evaluated as f64 * 100.0
        }
    }
}

/// One row of Table 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Table8Row {
    /// Behaviour label.
    pub behaviour: &'static str,
    /// Apps showing it, over the retry-capable population.
    pub apps: usize,
    /// The retry-capable population size.
    pub population: usize,
    /// Of the buggy apps, the fraction caused purely by library defaults.
    pub default_caused_percent: f64,
}

/// Aggregated corpus statistics.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    apps: Vec<AppStats>,
}

impl CorpusStats {
    /// Creates an empty aggregation.
    pub fn new() -> CorpusStats {
        CorpusStats::default()
    }

    /// Adds one app's results.
    pub fn add(&mut self, stats: AppStats) {
        self.apps.push(stats);
    }

    /// Number of aggregated apps.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Returns `true` when nothing has been aggregated.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Apps with at least one detected defect of any kind.
    pub fn buggy_apps(&self) -> usize {
        self.apps
            .iter()
            .filter(|a| {
                a.requests_missing_conn > 0
                    || a.requests_missing_timeout > 0
                    || a.requests_missing_retry > 0
                    || a.user_requests_missing_notification > 0
                    || a.responses_missing_check > 0
                    || a.no_retry_activity > 0
                    || a.over_retry_service > 0
                    || a.over_retry_post > 0
            })
            .count()
    }

    /// Total defects across all kinds (the paper's headline 4180).
    pub fn total_defects(&self) -> usize {
        self.apps
            .iter()
            .map(|a| {
                a.requests_missing_conn
                    + a.requests_missing_timeout
                    + a.requests_missing_retry
                    + a.user_requests_missing_notification
                    + a.responses_missing_check
                    + a.no_retry_activity
                    + a.over_retry_service
                    + a.over_retry_post
                    + (a.typed_error_callbacks - a.typed_error_callbacks_checked)
            })
            .sum()
    }

    /// Computes Table 6.
    pub fn table6(&self) -> Vec<Table6Row> {
        let all = self.apps.len();
        let retry_apps: Vec<&AppStats> = self
            .apps
            .iter()
            .filter(|a| a.retry_capable_requests > 0)
            .collect();
        let user_apps: Vec<&AppStats> = self.apps.iter().filter(|a| a.user_requests > 0).collect();
        let resp_apps: Vec<&AppStats> = self
            .apps
            .iter()
            .filter(|a| a.libraries.iter().any(|l| l.has_response_check_api()))
            .collect();

        vec![
            Table6Row {
                cause: "Missed conn. checks",
                condition: "All apps",
                evaluated: all,
                buggy: self
                    .apps
                    .iter()
                    .filter(|a| a.requests > 0 && a.requests_missing_conn == a.requests)
                    .count(),
            },
            Table6Row {
                cause: "Missed timeout APIs",
                condition: "Use libs that have timeout APIs",
                evaluated: all,
                buggy: self
                    .apps
                    .iter()
                    .filter(|a| a.requests > 0 && a.requests_missing_timeout == a.requests)
                    .count(),
            },
            Table6Row {
                cause: "Missed retry APIs",
                condition: "Use libs that have retry APIs",
                evaluated: retry_apps.len(),
                buggy: retry_apps
                    .iter()
                    .filter(|a| a.requests_missing_retry == a.retry_capable_requests)
                    .count(),
            },
            Table6Row {
                cause: "Over retries",
                condition: "Use libs that have retry APIs",
                evaluated: retry_apps.len(),
                buggy: retry_apps
                    .iter()
                    .filter(|a| a.over_retry_service > 0 || a.over_retry_post > 0)
                    .count(),
            },
            Table6Row {
                cause: "Missed failure notifications",
                condition: "Include user initiated requests",
                evaluated: user_apps.len(),
                buggy: user_apps
                    .iter()
                    .filter(|a| a.user_requests_missing_notification == a.user_requests)
                    .count(),
            },
            Table6Row {
                cause: "Missed response checks",
                condition: "Use libs that have resp. check APIs",
                evaluated: resp_apps.len(),
                buggy: resp_apps
                    .iter()
                    .filter(|a| a.responses_missing_check > 0)
                    .count(),
            },
        ]
    }

    /// Computes Table 8 over the retry-capable apps.
    pub fn table8(&self) -> Vec<Table8Row> {
        let retry_apps: Vec<&AppStats> = self
            .apps
            .iter()
            .filter(|a| a.retry_capable_requests > 0)
            .collect();
        let population = retry_apps.len();
        let pct = |part: usize, whole: usize| {
            if whole == 0 {
                0.0
            } else {
                part as f64 / whole as f64 * 100.0
            }
        };

        let no_retry = retry_apps
            .iter()
            .filter(|a| a.no_retry_activity > 0)
            .count();
        let over_svc: Vec<&&AppStats> = retry_apps
            .iter()
            .filter(|a| a.over_retry_service > 0)
            .collect();
        let over_svc_default = over_svc
            .iter()
            .filter(|a| a.over_retry_service_default == a.over_retry_service)
            .count();
        let over_post: Vec<&&AppStats> = retry_apps
            .iter()
            .filter(|a| a.over_retry_post > 0)
            .collect();
        let over_post_default = over_post
            .iter()
            .filter(|a| a.over_retry_post_default == a.over_retry_post)
            .count();

        vec![
            Table8Row {
                behaviour: "No retry in Activities",
                apps: no_retry,
                population,
                default_caused_percent: 0.0,
            },
            Table8Row {
                behaviour: "Over retry in Services",
                apps: over_svc.len(),
                population,
                default_caused_percent: pct(over_svc_default, over_svc.len()),
            },
            Table8Row {
                behaviour: "Over retry in POST requests",
                apps: over_post.len(),
                population,
                default_caused_percent: pct(over_post_default, over_post.len()),
            },
        ]
    }

    /// Figure 8 (red line): per-app ratio of requests missing the
    /// connectivity check, over apps that check at least once but not
    /// always. Sorted ascending, ready for CDF plotting.
    pub fn conn_miss_ratios(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .apps
            .iter()
            .filter(|a| a.requests > 0 && a.requests_missing_conn < a.requests)
            .map(|a| a.requests_missing_conn as f64 / a.requests as f64)
            .collect();
        out.sort_by(f64::total_cmp);
        out
    }

    /// Figure 8 (blue line): the analogous timeout ratios.
    pub fn timeout_miss_ratios(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .apps
            .iter()
            .filter(|a| a.requests > 0 && a.requests_missing_timeout < a.requests)
            .map(|a| a.requests_missing_timeout as f64 / a.requests as f64)
            .collect();
        out.sort_by(f64::total_cmp);
        out
    }

    /// Figure 9: per-app ratio of user requests missing the failure
    /// notification, over apps that notify at least once but not always.
    pub fn notification_miss_ratios(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .apps
            .iter()
            .filter(|a| {
                a.user_requests > 0 && a.user_requests_missing_notification < a.user_requests
            })
            .map(|a| a.user_requests_missing_notification as f64 / a.user_requests as f64)
            .collect();
        out.sort_by(f64::total_cmp);
        out
    }

    /// §5.2.3: notification rates split by explicit vs implicit callback
    /// paths, as `(explicit_rate, implicit_rate)` over requests.
    pub fn notification_by_callback_kind(&self) -> (f64, f64) {
        let (mut en, mut ed, mut inn, mut ind) = (0usize, 0usize, 0usize, 0usize);
        for a in &self.apps {
            en += a.user_requests_explicit_cb_notified;
            ed += a.user_requests_explicit_cb;
            inn += a.user_requests_implicit_cb_notified;
            ind += a.user_requests_implicit_cb;
        }
        let rate = |n: usize, d: usize| if d == 0 { 0.0 } else { n as f64 / d as f64 };
        (rate(en, ed), rate(inn, ind))
    }

    /// §5.2.3: fraction of typed-error callbacks that ignore the error
    /// object (the paper's 93%).
    pub fn error_type_ignored_rate(&self) -> f64 {
        let (mut n, mut d) = (0usize, 0usize);
        for a in &self.apps {
            d += a.typed_error_callbacks;
            n += a.typed_error_callbacks - a.typed_error_callbacks_checked;
        }
        if d == 0 {
            0.0
        } else {
            n as f64 / d as f64
        }
    }

    /// §5.2.4: fraction of responses missing validity checks.
    pub fn response_miss_rate(&self) -> f64 {
        let (mut n, mut d) = (0usize, 0usize);
        for a in &self.apps {
            d += a.responses;
            n += a.responses_missing_check;
        }
        if d == 0 {
            0.0
        } else {
            n as f64 / d as f64
        }
    }

    /// §5.2.1: fraction of apps with customized retry loops.
    pub fn custom_retry_rate(&self) -> f64 {
        if self.apps.is_empty() {
            return 0.0;
        }
        self.apps
            .iter()
            .filter(|a| a.custom_retry_loops > 0)
            .count() as f64
            / self.apps.len() as f64
    }

    /// Renders a CDF as `(x, fraction ≤ x)` steps for plotting.
    pub fn cdf(sorted_ratios: &[f64]) -> Vec<(f64, f64)> {
        let n = sorted_ratios.len();
        sorted_ratios
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::AppStats;

    fn app(requests: usize, missing_conn: usize) -> AppStats {
        AppStats {
            requests,
            requests_missing_conn: missing_conn,
            ..AppStats::default()
        }
    }

    #[test]
    fn never_vs_partial_conn_classification() {
        let mut c = CorpusStats::new();
        c.add(app(4, 4)); // Never checks.
        c.add(app(4, 2)); // Partial.
        c.add(app(4, 0)); // Always checks.
        let t6 = c.table6();
        assert_eq!(t6[0].buggy, 1);
        assert_eq!(t6[0].evaluated, 3);
        let ratios = c.conn_miss_ratios();
        assert_eq!(ratios, vec![0.0, 0.5]);
    }

    #[test]
    fn cdf_steps() {
        let cdf = CorpusStats::cdf(&[0.2, 0.5, 1.0]);
        assert_eq!(cdf.len(), 3);
        assert!((cdf[0].1 - 1.0 / 3.0).abs() < 1e-9);
        assert!((cdf[2].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn total_defects_sums_every_kind() {
        let mut c = CorpusStats::new();
        c.add(AppStats {
            requests: 3,
            requests_missing_conn: 2,
            requests_missing_timeout: 1,
            user_requests_missing_notification: 1,
            typed_error_callbacks: 2,
            typed_error_callbacks_checked: 1,
            ..AppStats::default()
        });
        assert_eq!(c.total_defects(), 5);
        assert_eq!(c.buggy_apps(), 1);
    }

    #[test]
    fn empty_corpus_is_harmless() {
        let c = CorpusStats::new();
        assert!(c.is_empty());
        assert_eq!(c.buggy_apps(), 0);
        assert_eq!(c.response_miss_rate(), 0.0);
        assert_eq!(c.custom_retry_rate(), 0.0);
        let t8 = c.table8();
        assert_eq!(t8[0].population, 0);
    }
}
