//! Machine-readable (JSON) export of analysis results, for CI
//! integration and the CLI's `--json` mode.

use crate::checker::{AppReport, AppStats};
use crate::report::{DefectKind, Evidence, OverRetryContext, Report};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// A stable machine-readable identifier for a defect kind.
pub fn kind_id(kind: DefectKind) -> &'static str {
    match kind {
        DefectKind::MissedConnectivityCheck => "missed-connectivity-check",
        DefectKind::MissedTimeout => "missed-timeout",
        DefectKind::MissedRetry => "missed-retry",
        DefectKind::NoRetryInActivity => "no-retry-in-activity",
        DefectKind::OverRetry {
            context: OverRetryContext::Service,
            ..
        } => "over-retry-in-service",
        DefectKind::OverRetry {
            context: OverRetryContext::Post,
            ..
        } => "over-retry-in-post",
        DefectKind::MissedFailureNotification => "missed-failure-notification",
        DefectKind::NoErrorTypeCheck => "no-error-type-check",
        DefectKind::MissedResponseCheck => "missed-response-check",
    }
}

/// Serializes one evidence item of a defect's provenance chain.
pub fn evidence_to_json(e: &Evidence) -> Value {
    let kind = match e {
        Evidence::Request { .. } => "request",
        Evidence::CallEdge { .. } => "call-edge",
        Evidence::IrFact { .. } => "ir-fact",
        Evidence::SummaryFact { .. } => "summary-fact",
        Evidence::Absence { .. } => "absence",
    };
    json!({
        "kind": kind,
        "method": e.method().map(str::to_owned),
        "detail": e.render(),
    })
}

/// Serializes one warning report.
pub fn report_to_json(r: &Report) -> Value {
    let default_caused = match r.kind {
        DefectKind::OverRetry { default_caused, .. } => Some(default_caused),
        _ => None,
    };
    json!({
        "kind": kind_id(r.kind),
        "library": r.library.name(),
        "impact": r.kind.impact(),
        "location": {
            "class": r.location.class,
            "method": r.location.method,
            "stmt": r.location.stmt,
        },
        "message": r.message,
        "context": r.context,
        "call_stack": r.call_stack,
        "fix": r.fix,
        "default_caused": default_caused,
        "provenance": r.provenance.iter().map(evidence_to_json).collect::<Vec<_>>(),
    })
}

/// Serializes per-app statistics.
///
/// Only *semantic* per-app facts appear here. Engine-internal workload
/// numbers (the `summary_*` cache counters) live under the optional
/// `"metrics"` key instead: they describe how much work the engine did,
/// which legitimately differs between full and targeted analysis even
/// when the findings are identical, so keeping them out of `stats`
/// keeps the default report byte-comparable across modes.
pub fn stats_to_json(s: &AppStats) -> Value {
    json!({
        "package": s.package,
        "libraries": s.libraries.iter().map(|l| l.name()).collect::<Vec<_>>(),
        "requests": s.requests,
        "requests_missing_conn": s.requests_missing_conn,
        "requests_missing_timeout": s.requests_missing_timeout,
        "retry_capable_requests": s.retry_capable_requests,
        "requests_missing_retry": s.requests_missing_retry,
        "user_requests": s.user_requests,
        "user_requests_missing_notification": s.user_requests_missing_notification,
        "responses": s.responses,
        "responses_missing_check": s.responses_missing_check,
        "custom_retry_loops": s.custom_retry_loops,
        "no_retry_activity": s.no_retry_activity,
        "over_retry_service": s.over_retry_service,
        "over_retry_post": s.over_retry_post,
    })
}

/// Serializes the observability payload placed under the `"metrics"`
/// key of an app report. The key itself is only emitted when the run
/// recorded a metrics snapshot (see [`app_report_to_json`]).
///
/// Schema (version 1):
///
/// ```text
/// {
///   "schema": 1,
///   "summary_cache": { "methods", "sccs", "largest_scc",
///                      "const_returns", "field_consts", "hits" },
///   "counters":   { "<name>": u64, ... },
///   "gauges":     { "<name>": i64, ... },
///   "histograms": { "<name>": { "bounds": [u64], "counts": [u64],
///                               "sum": u64, "count": u64 }, ... }
/// }
/// ```
pub fn metrics_to_json(r: &AppReport) -> Value {
    let s = &r.stats;
    let mut obj = match json!({
        "schema": 1,
        "summary_cache": {
            "methods": s.summary_methods,
            "sccs": s.summary_sccs,
            "largest_scc": s.summary_largest_scc,
            "const_returns": s.summary_const_returns,
            "field_consts": s.summary_field_consts,
            "hits": s.summary_hits,
        },
    }) {
        Value::Object(m) => m,
        _ => unreachable!(),
    };
    if let Some(snap) = &r.metrics {
        obj.insert(
            "counters".to_owned(),
            Value::Object(
                snap.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), json!(v)))
                    .collect::<BTreeMap<_, _>>(),
            ),
        );
        obj.insert(
            "gauges".to_owned(),
            Value::Object(
                snap.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), json!(v.value)))
                    .collect::<BTreeMap<_, _>>(),
            ),
        );
        obj.insert(
            "histograms".to_owned(),
            Value::Object(
                snap.histograms
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            json!({
                                "bounds": h.bounds,
                                "counts": h.counts,
                                "sum": h.sum,
                                "count": h.count,
                            }),
                        )
                    })
                    .collect::<BTreeMap<_, _>>(),
            ),
        );
    }
    Value::Object(obj)
}

/// Serializes a full app report.
///
/// The `"metrics"` key appears only when the run recorded a snapshot
/// (`r.metrics` is set): engine workload numbers are mode- and
/// cache-dependent, so a default (metrics-off) report stays
/// byte-identical between full and targeted analysis.
pub fn app_report_to_json(r: &AppReport) -> Value {
    let mut obj = match json!({
        "stats": stats_to_json(&r.stats),
        "defects": r.defects.iter().map(report_to_json).collect::<Vec<_>>(),
        "degraded": r.degraded(),
        "skipped_methods": r
            .skipped_methods
            .iter()
            .map(|s| {
                json!({
                    "method": s.method,
                    "cause": s.cause.to_string(),
                    "detail": s.detail,
                })
            })
            .collect::<Vec<_>>(),
    }) {
        Value::Object(m) => m,
        _ => unreachable!(),
    };
    if r.metrics.is_some() {
        obj.insert("metrics".to_owned(), metrics_to_json(r));
    }
    Value::Object(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Location;
    use nck_netlibs::library::Library;

    fn sample_report() -> Report {
        Report {
            kind: DefectKind::OverRetry {
                context: OverRetryContext::Post,
                default_caused: true,
            },
            library: Library::Volley,
            location: Location {
                class: "com.app.Main".into(),
                method: "onCreate".into(),
                stmt: 12,
            },
            message: "POST retried".into(),
            context: "user".into(),
            call_stack: vec!["a".into(), "b".into()],
            fix: "disable".into(),
            provenance: vec![
                Evidence::Request {
                    method: "Lcom/app/Main;.onCreate".into(),
                    stmt: 12,
                    api: "RequestQueue.add".into(),
                },
                Evidence::Absence {
                    what: "retry limit".into(),
                    scanned: 2,
                },
            ],
        }
    }

    #[test]
    fn report_json_has_stable_ids() {
        let v = report_to_json(&sample_report());
        assert_eq!(v["kind"], "over-retry-in-post");
        assert_eq!(v["default_caused"], true);
        assert_eq!(v["location"]["stmt"], 12);
        assert_eq!(v["library"], "Volley");
    }

    #[test]
    fn report_json_carries_provenance() {
        let v = report_to_json(&sample_report());
        let prov = v["provenance"].as_array().unwrap();
        assert_eq!(prov.len(), 2);
        assert_eq!(prov[0]["kind"], "request");
        assert_eq!(prov[0]["method"], "Lcom/app/Main;.onCreate");
        assert_eq!(prov[1]["kind"], "absence");
        assert_eq!(prov[1]["method"], Value::Null);
    }

    #[test]
    fn app_report_json_metrics_key_tracks_snapshot() {
        let mut report = AppReport::default();
        report.stats.summary_methods = 7;
        report.stats.summary_hits = 3;
        // Without a snapshot: no metrics key, and no workload counters
        // anywhere in the stats (they are engine-internal).
        let v = app_report_to_json(&report);
        assert!(
            v.get("metrics").is_none(),
            "metrics absent without snapshot"
        );
        assert!(v["stats"].get("summary_methods").is_none());
        // With a snapshot: schema, summary_cache, counters, gauges, and
        // histograms all appear.
        let m = nck_obs::Metrics::enabled();
        m.inc("parse.classes", 4);
        m.gauge("summary.largest_scc", 2);
        m.observe("summary.scc_size", 2);
        report.metrics = Some(m.snapshot());
        let v = app_report_to_json(&report);
        assert_eq!(v["metrics"]["schema"], 1);
        assert_eq!(v["metrics"]["summary_cache"]["methods"], 7);
        assert_eq!(v["metrics"]["summary_cache"]["hits"], 3);
        assert_eq!(v["metrics"]["counters"]["parse.classes"], 4);
        assert_eq!(v["metrics"]["gauges"]["summary.largest_scc"], 2);
        assert_eq!(v["metrics"]["histograms"]["summary.scc_size"]["count"], 1);
    }

    #[test]
    fn app_report_json_carries_degradation() {
        use crate::checker::{AnalysisSkip, SkipCause};
        let mut report = AppReport::default();
        let v = app_report_to_json(&report);
        assert_eq!(v["degraded"], false);
        assert_eq!(v["skipped_methods"].as_array().unwrap().len(), 0);
        report.skipped_methods.push(AnalysisSkip {
            method: "Lapp/Main;.broken".into(),
            cause: SkipCause::Verify,
            detail: "register out of frame".into(),
        });
        let v = app_report_to_json(&report);
        assert_eq!(v["degraded"], true);
        assert_eq!(v["skipped_methods"][0]["method"], "Lapp/Main;.broken");
        assert_eq!(v["skipped_methods"][0]["cause"], "verify");
        assert_eq!(v["skipped_methods"][0]["detail"], "register out of frame");
    }

    #[test]
    fn kind_ids_are_distinct() {
        use std::collections::BTreeSet;
        let all = [
            DefectKind::MissedConnectivityCheck,
            DefectKind::MissedTimeout,
            DefectKind::MissedRetry,
            DefectKind::NoRetryInActivity,
            DefectKind::OverRetry {
                context: OverRetryContext::Service,
                default_caused: false,
            },
            DefectKind::OverRetry {
                context: OverRetryContext::Post,
                default_caused: false,
            },
            DefectKind::MissedFailureNotification,
            DefectKind::NoErrorTypeCheck,
            DefectKind::MissedResponseCheck,
        ];
        let ids: BTreeSet<_> = all.iter().map(|&k| kind_id(k)).collect();
        assert_eq!(ids.len(), all.len());
    }

    #[test]
    fn app_report_roundtrips_through_serde() {
        let mut report = AppReport::default();
        report.stats.package = "com.x".into();
        report.defects.push(sample_report());
        let v = app_report_to_json(&report);
        let text = serde_json::to_string(&v).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["stats"]["package"], "com.x");
        assert_eq!(back["defects"].as_array().unwrap().len(), 1);
    }
}
