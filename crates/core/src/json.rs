//! Machine-readable (JSON) export of analysis results, for CI
//! integration and the CLI's `--json` mode.

use crate::checker::{AppReport, AppStats};
use crate::report::{DefectKind, OverRetryContext, Report};
use serde_json::{json, Value};

/// A stable machine-readable identifier for a defect kind.
pub fn kind_id(kind: DefectKind) -> &'static str {
    match kind {
        DefectKind::MissedConnectivityCheck => "missed-connectivity-check",
        DefectKind::MissedTimeout => "missed-timeout",
        DefectKind::MissedRetry => "missed-retry",
        DefectKind::NoRetryInActivity => "no-retry-in-activity",
        DefectKind::OverRetry {
            context: OverRetryContext::Service,
            ..
        } => "over-retry-in-service",
        DefectKind::OverRetry {
            context: OverRetryContext::Post,
            ..
        } => "over-retry-in-post",
        DefectKind::MissedFailureNotification => "missed-failure-notification",
        DefectKind::NoErrorTypeCheck => "no-error-type-check",
        DefectKind::MissedResponseCheck => "missed-response-check",
    }
}

/// Serializes one warning report.
pub fn report_to_json(r: &Report) -> Value {
    let default_caused = match r.kind {
        DefectKind::OverRetry { default_caused, .. } => Some(default_caused),
        _ => None,
    };
    json!({
        "kind": kind_id(r.kind),
        "library": r.library.name(),
        "impact": r.kind.impact(),
        "location": {
            "class": r.location.class,
            "method": r.location.method,
            "stmt": r.location.stmt,
        },
        "message": r.message,
        "context": r.context,
        "call_stack": r.call_stack,
        "fix": r.fix,
        "default_caused": default_caused,
    })
}

/// Serializes per-app statistics.
pub fn stats_to_json(s: &AppStats) -> Value {
    json!({
        "package": s.package,
        "libraries": s.libraries.iter().map(|l| l.name()).collect::<Vec<_>>(),
        "requests": s.requests,
        "requests_missing_conn": s.requests_missing_conn,
        "requests_missing_timeout": s.requests_missing_timeout,
        "retry_capable_requests": s.retry_capable_requests,
        "requests_missing_retry": s.requests_missing_retry,
        "user_requests": s.user_requests,
        "user_requests_missing_notification": s.user_requests_missing_notification,
        "responses": s.responses,
        "responses_missing_check": s.responses_missing_check,
        "custom_retry_loops": s.custom_retry_loops,
        "no_retry_activity": s.no_retry_activity,
        "over_retry_service": s.over_retry_service,
        "over_retry_post": s.over_retry_post,
        "summary_methods": s.summary_methods,
        "summary_sccs": s.summary_sccs,
        "summary_const_returns": s.summary_const_returns,
        "summary_hits": s.summary_hits,
    })
}

/// Serializes a full app report.
pub fn app_report_to_json(r: &AppReport) -> Value {
    json!({
        "stats": stats_to_json(&r.stats),
        "defects": r.defects.iter().map(report_to_json).collect::<Vec<_>>(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Location;
    use nck_netlibs::library::Library;

    fn sample_report() -> Report {
        Report {
            kind: DefectKind::OverRetry {
                context: OverRetryContext::Post,
                default_caused: true,
            },
            library: Library::Volley,
            location: Location {
                class: "com.app.Main".into(),
                method: "onCreate".into(),
                stmt: 12,
            },
            message: "POST retried".into(),
            context: "user".into(),
            call_stack: vec!["a".into(), "b".into()],
            fix: "disable".into(),
        }
    }

    #[test]
    fn report_json_has_stable_ids() {
        let v = report_to_json(&sample_report());
        assert_eq!(v["kind"], "over-retry-in-post");
        assert_eq!(v["default_caused"], true);
        assert_eq!(v["location"]["stmt"], 12);
        assert_eq!(v["library"], "Volley");
    }

    #[test]
    fn kind_ids_are_distinct() {
        use std::collections::BTreeSet;
        let all = [
            DefectKind::MissedConnectivityCheck,
            DefectKind::MissedTimeout,
            DefectKind::MissedRetry,
            DefectKind::NoRetryInActivity,
            DefectKind::OverRetry {
                context: OverRetryContext::Service,
                default_caused: false,
            },
            DefectKind::OverRetry {
                context: OverRetryContext::Post,
                default_caused: false,
            },
            DefectKind::MissedFailureNotification,
            DefectKind::NoErrorTypeCheck,
            DefectKind::MissedResponseCheck,
        ];
        let ids: BTreeSet<_> = all.iter().map(|&k| kind_id(k)).collect();
        assert_eq!(ids.len(), all.len());
    }

    #[test]
    fn app_report_roundtrips_through_serde() {
        let mut report = AppReport::default();
        report.stats.package = "com.x".into();
        report.defects.push(sample_report());
        let v = app_report_to_json(&report);
        let text = serde_json::to_string(&v).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["stats"]["package"], "com.x");
        assert_eq!(back["defects"].as_array().unwrap().len(), 1);
    }
}
