//! Failure-notification analysis (§4.4.3, step 3 of Figure 5).
//!
//! Maps a user-initiated request to its completion callback, then checks
//! whether the callback (or anything it reaches on the UI path) calls one
//! of the alert classes; for Volley, additionally checks whether the
//! typed error object is consulted.

use crate::context::AnalyzedApp;
use crate::reach::RequestSite;
use nck_android::ui::is_alert_call;
use nck_ir::body::{IdentityKind, MethodId, Rvalue, Stmt};
use std::collections::{BTreeSet, VecDeque};

/// The notification findings for one request site.
#[derive(Debug, Clone)]
pub struct NotificationFinding {
    /// The callback method that was examined, when one was found.
    pub callback: Option<MethodId>,
    /// `true` when the library offers an explicit error callback and the
    /// app implements it.
    pub explicit_error_callback: bool,
    /// `true` when a failure notification (alert-class call) is reachable
    /// from the callback.
    pub notified: bool,
    /// For libraries exposing typed errors (Volley): whether the callback
    /// consults the error object. `None` when not applicable.
    pub error_types_checked: Option<bool>,
}

/// Returns `true` when `class` implements or extends `base` within the
/// program's knowledge.
fn implements(app: &AnalyzedApp<'_>, class: nck_ir::Symbol, base: &str) -> bool {
    app.program
        .hierarchy(class)
        .iter()
        .chain(app.program.all_interfaces(class).iter())
        .any(|&s| app.program.symbols.resolve(s) == base)
}

/// Finds the error callback method associated with `site`.
fn find_callback(app: &AnalyzedApp<'_>, site: &RequestSite) -> (Option<MethodId>, bool) {
    let Some(spec) = app.registry.error_callback(site.library()) else {
        return (None, false);
    };

    // Candidate classes implementing the callback interface and defining
    // the callback method.
    let mut candidates: Vec<(nck_ir::Symbol, MethodId)> = Vec::new();
    for class in &app.program.classes {
        if !implements(app, class.name, spec.interface) {
            continue;
        }
        for &mid in &class.methods {
            let m = app.program.method(mid);
            if app.program.symbols.resolve(m.key.name) == spec.method && m.body.is_some() {
                candidates.push((class.name, mid));
            }
        }
    }
    if candidates.is_empty() {
        return (None, false);
    }

    // Prefer a candidate instantiated in the request's method, or the
    // request method's own class (AsyncTask onPostExecute pattern).
    let site_class = app.program.method(site.method).key.class;
    let body = app.body(site.method);
    let instantiated: BTreeSet<nck_ir::Symbol> = body
        .iter()
        .filter_map(|(_, s)| match s {
            Stmt::Assign {
                rvalue: Rvalue::New { ty },
                ..
            } => Some(*ty),
            _ => None,
        })
        .collect();
    let chosen = candidates
        .iter()
        .find(|(cls, _)| instantiated.contains(cls))
        .or_else(|| candidates.iter().find(|(cls, _)| *cls == site_class))
        .or_else(|| candidates.first().filter(|_| candidates.len() == 1));
    match chosen {
        Some(&(_, mid)) => (Some(mid), true),
        None => (None, false),
    }
}

/// Returns `true` when an alert-class call is reachable from `start`
/// within `depth` call-graph hops.
fn alert_reachable(app: &AnalyzedApp<'_>, start: MethodId, depth: usize) -> bool {
    let mut seen = BTreeSet::from([start]);
    let mut queue = VecDeque::from([(start, 0usize)]);
    while let Some((m, d)) = queue.pop_front() {
        if let Some(body) = &app.program.method(m).body {
            for (_, stmt) in body.iter() {
                let Some(inv) = stmt.invoke_expr() else {
                    continue;
                };
                let class = app.program.symbols.resolve(inv.callee.class);
                let name = app.program.symbols.resolve(inv.callee.name);
                if is_alert_call(class, name) {
                    return true;
                }
            }
        }
        if d < depth {
            for e in app.callgraph.callees(m) {
                if seen.insert(e.callee) {
                    queue.push_back((e.callee, d + 1));
                }
            }
        }
    }
    false
}

/// Returns `true` when the callback's first declared parameter (the error
/// object) is used beyond its identity binding.
fn error_param_used(app: &AnalyzedApp<'_>, callback: MethodId) -> bool {
    let Some(body) = &app.program.method(callback).body else {
        return false;
    };
    let Some(param_local) = body.iter().find_map(|(_, s)| match s {
        Stmt::Identity {
            local,
            kind: IdentityKind::Param(0),
        } => Some(*local),
        _ => None,
    }) else {
        return false;
    };
    body.iter()
        .any(|(_, s)| !matches!(s, Stmt::Identity { .. }) && s.uses().contains(&param_local))
}

/// Analyzes the failure notification for `site`.
pub fn check_notification(app: &AnalyzedApp<'_>, site: &RequestSite) -> NotificationFinding {
    let (callback, explicit) = find_callback(app, site);
    let notified = match callback {
        Some(cb) => alert_reachable(app, cb, 3),
        None => {
            // Synchronous request with no callback interface: the
            // notification lives in the sending method or in a direct
            // caller (the request may sit in a helper like `trySend`).
            alert_reachable(app, site.method, 3)
                || app
                    .callgraph
                    .callers(site.method)
                    .iter()
                    .any(|e| alert_reachable(app, e.caller, 3))
        }
    };
    let error_types_checked = match (callback, app.registry.error_callback(site.library())) {
        (Some(cb), Some(spec)) if spec.exposes_error_types => Some(error_param_used(app, cb)),
        _ => None,
    };
    NotificationFinding {
        callback,
        explicit_error_callback: explicit,
        notified,
        error_types_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AnalyzedApp;
    use crate::reach::find_request_sites;
    use nck_android::manifest::{ComponentKind, Manifest};
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;
    use nck_ir::lift_file;
    use nck_netlibs::api::Registry;

    fn registry() -> &'static Registry {
        use std::sync::OnceLock;
        static R: OnceLock<Registry> = OnceLock::new();
        R.get_or_init(Registry::standard)
    }

    fn app_of(build: impl FnOnce(&mut AdxBuilder)) -> AnalyzedApp<'static> {
        let mut b = AdxBuilder::new();
        build(&mut b);
        let program = lift_file(&b.finish().unwrap()).unwrap();
        let mut manifest = Manifest::new("app");
        manifest.component("Lapp/Main;", ComponentKind::Activity);
        AnalyzedApp::new(manifest, program, registry())
    }

    const ERR_LISTENER: &str = "Lcom/android/volley/Response$ErrorListener;";
    const ON_ERR_SIG: &str = "(Lcom/android/volley/VolleyError;)V";

    fn volley_app(
        listener_body: impl FnOnce(&mut nck_dex::builder::CodeBuilder<'_>),
    ) -> AnalyzedApp<'static> {
        app_of(move |b| {
            b.class("Lapp/Main$Err;", |c| {
                c.interface(ERR_LISTENER);
                c.method(
                    "onErrorResponse",
                    ON_ERR_SIG,
                    AccessFlags::PUBLIC,
                    6,
                    listener_body,
                );
            });
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    8,
                    |m| {
                        let q = m.reg(0);
                        let req = m.reg(1);
                        let l = m.reg(2);
                        m.invoke_static(
                            "Lcom/android/volley/toolbox/Volley;",
                            "newRequestQueue",
                            "()Lcom/android/volley/RequestQueue;",
                            &[],
                        );
                        m.move_result(q);
                        m.new_instance(l, "Lapp/Main$Err;");
                        m.invoke_direct("Lapp/Main$Err;", "<init>", "()V", &[l]);
                        m.new_instance(req, "Lcom/android/volley/toolbox/StringRequest;");
                        m.const_int(m.reg(3), 0);
                        m.invoke_direct(
                            "Lcom/android/volley/toolbox/StringRequest;",
                            "<init>",
                            "(ILcom/android/volley/Response$ErrorListener;)V",
                            &[req, m.reg(3), l],
                        );
                        m.invoke_virtual(
                            "Lcom/android/volley/RequestQueue;",
                            "add",
                            "(Lcom/android/volley/Request;)Lcom/android/volley/Request;",
                            &[q, req],
                        );
                        m.ret(None);
                    },
                );
            });
        })
    }

    #[test]
    fn toast_in_error_callback_counts_as_notified() {
        let app = volley_app(|m| {
            let t = m.reg(0);
            m.invoke_static(
                "Landroid/widget/Toast;",
                "makeText",
                "(Ljava/lang/String;)Landroid/widget/Toast;",
                &[m.reg(1)],
            );
            m.move_result(t);
            m.invoke_virtual("Landroid/widget/Toast;", "show", "()V", &[t]);
            m.ret(None);
        });
        let sites = find_request_sites(&app);
        assert_eq!(sites.len(), 1);
        let f = check_notification(&app, &sites[0]);
        assert!(f.explicit_error_callback);
        assert!(f.notified);
        // The error param was never consulted.
        assert_eq!(f.error_types_checked, Some(false));
    }

    #[test]
    fn silent_error_callback_is_flagged() {
        let app = volley_app(|m| {
            // Only logs; no UI notification.
            m.invoke_static(
                "Landroid/util/Log;",
                "d",
                "(Ljava/lang/String;Ljava/lang/String;)I",
                &[m.reg(0), m.reg(1)],
            );
            m.move_result(m.reg(2));
            m.ret(None);
        });
        let sites = find_request_sites(&app);
        let f = check_notification(&app, &sites[0]);
        assert!(f.explicit_error_callback);
        assert!(!f.notified);
    }

    #[test]
    fn error_type_usage_detected() {
        let app = volley_app(|m| {
            let err = m.param(1).unwrap();
            let t = m.reg(0);
            // Consults the error object...
            m.invoke_virtual(
                "Lcom/android/volley/VolleyError;",
                "getMessage",
                "()Ljava/lang/String;",
                &[err],
            );
            m.move_result(m.reg(1));
            // ...and shows it.
            m.invoke_static(
                "Landroid/widget/Toast;",
                "makeText",
                "(Ljava/lang/String;)Landroid/widget/Toast;",
                &[m.reg(1)],
            );
            m.move_result(t);
            m.invoke_virtual("Landroid/widget/Toast;", "show", "()V", &[t]);
            m.ret(None);
        });
        let sites = find_request_sites(&app);
        let f = check_notification(&app, &sites[0]);
        assert!(f.notified);
        assert_eq!(f.error_types_checked, Some(true));
    }

    #[test]
    fn async_task_on_post_execute_is_the_callback() {
        // Native HttpURLConnection request inside doInBackground; the
        // notification site is onPostExecute of the same task class.
        let app = app_of(|b| {
            b.class("Lapp/FetchTask;", |c| {
                c.super_class("Landroid/os/AsyncTask;");
                c.method(
                    "doInBackground",
                    "([Ljava/lang/Object;)Ljava/lang/Object;",
                    AccessFlags::PUBLIC,
                    8,
                    |m| {
                        let conn = m.reg(0);
                        m.new_instance(conn, "Ljava/net/HttpURLConnection;");
                        m.invoke_direct("Ljava/net/HttpURLConnection;", "<init>", "()V", &[conn]);
                        m.invoke_virtual(
                            "Ljava/net/HttpURLConnection;",
                            "getInputStream",
                            "()Ljava/io/InputStream;",
                            &[conn],
                        );
                        m.move_result(m.reg(1));
                        m.const_null(m.reg(2));
                        m.ret(Some(m.reg(2)));
                    },
                );
                c.method(
                    "onPostExecute",
                    "(Ljava/lang/Object;)V",
                    AccessFlags::PUBLIC,
                    6,
                    |m| {
                        let tv = m.reg(0);
                        m.new_instance(tv, "Landroid/widget/TextView;");
                        m.invoke_direct("Landroid/widget/TextView;", "<init>", "()V", &[tv]);
                        m.invoke_virtual(
                            "Landroid/widget/TextView;",
                            "setText",
                            "(Ljava/lang/String;)V",
                            &[tv, m.reg(1)],
                        );
                        m.ret(None);
                    },
                );
            });
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    6,
                    |m| {
                        m.new_instance(m.reg(0), "Lapp/FetchTask;");
                        m.invoke_direct("Lapp/FetchTask;", "<init>", "()V", &[m.reg(0)]);
                        m.invoke_virtual(
                            "Lapp/FetchTask;",
                            "execute",
                            "([Ljava/lang/Object;)Landroid/os/AsyncTask;",
                            &[m.reg(0), m.reg(1)],
                        );
                        m.ret(None);
                    },
                );
            });
        });
        let sites = find_request_sites(&app);
        assert_eq!(sites.len(), 1);
        let f = check_notification(&app, &sites[0]);
        assert!(f.callback.is_some());
        assert!(f.notified, "TextView.setText in onPostExecute notifies");
    }
}
