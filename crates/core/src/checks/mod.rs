//! The four NPD analyses of §4.4: request-setting APIs, parameter checks,
//! failure notification, and invalid-response checks.

pub mod config;
pub mod connectivity;
pub mod notification;
pub mod response;

pub use config::{check_config, check_config_with, SiteConfig};
pub use connectivity::{
    is_guarded, is_guarded_strict, is_guarded_strict_with, is_guarded_with,
    methods_invoking_connectivity, methods_observing_connectivity,
};
pub use notification::{check_notification, NotificationFinding};
pub use response::{check_response, check_response_with, ResponseFinding};
