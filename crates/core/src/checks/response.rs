//! Invalid-response analysis (§4.4.4, step 4 of Figure 5).
//!
//! Taints the response object at the request's result, propagates it
//! forward, and requires every body-reading use to be dominated by a
//! validity check — a null test on the response or a response-checking
//! API such as OkHttp's `isSuccessful()`.

use crate::context::AnalyzedApp;
use crate::reach::RequestSite;
use nck_dataflow::taint::{object_flow, FlowOptions, ObjectFlow};
use nck_ir::body::{InvokeExpr, LocalId, MethodId, Operand, Stmt, StmtId};

/// The response-check findings for one request site.
#[derive(Debug, Clone)]
pub struct ResponseFinding {
    /// The local holding the response object.
    pub response_local: LocalId,
    /// Statements that read the response.
    pub uses: Vec<StmtId>,
    /// Uses not dominated by any validity check.
    pub unchecked_uses: Vec<StmtId>,
}

/// Analyzes the response usage of `site`.
///
/// Returns `None` when the target does not produce a checkable response
/// (async delivery, or a library without response-check APIs — the paper
/// evaluates this check only on "apps that use libs that have resp. check
/// APIs", Table 6).
pub fn check_response(app: &AnalyzedApp<'_>, site: &RequestSite) -> Option<ResponseFinding> {
    check_response_with(app, site, true)
}

/// [`check_response`] with explicit configuration: `interproc` lets a
/// call that hands the response to an app helper count as a validity
/// check when the helper's summary proves it checks that argument.
pub fn check_response_with(
    app: &AnalyzedApp<'_>,
    site: &RequestSite,
    interproc: bool,
) -> Option<ResponseFinding> {
    if !site.library().has_response_check_api() {
        return None;
    }
    let body = app.body(site.method);
    let ma = app.analysis(site.method);
    // The response must be captured synchronously.
    let response_local = match body.stmt(site.stmt) {
        Stmt::Assign { local, .. } => *local,
        _ => return None,
    };

    // No fluent aliasing here: `resp = call.execute()` must not drag the
    // client/call objects into the response's alias set, or their config
    // calls would read as unchecked "uses".
    let flow = object_flow(
        body,
        response_local,
        FlowOptions {
            fluent_returns: false,
            through_fields: true,
        },
    );

    let mut checks: Vec<StmtId> = Vec::new();
    let mut uses: Vec<StmtId> = Vec::new();
    for (sid, stmt) in body.iter() {
        if sid == site.stmt {
            continue;
        }
        match stmt {
            // Null tests on any alias of the response.
            Stmt::If { a, b, .. } => {
                let a_resp = a.as_local().is_some_and(|l| flow.locals.contains(&l));
                let b_null = matches!(b, Operand::Null | Operand::IntConst(0));
                let b_resp = b.as_local().is_some_and(|l| flow.locals.contains(&l));
                let a_null = matches!(a, Operand::Null | Operand::IntConst(0));
                if (a_resp && b_null) || (b_resp && a_null) {
                    checks.push(sid);
                }
            }
            _ => {
                let Some(inv) = stmt.invoke_expr() else {
                    continue;
                };
                // Interprocedural: passing the response to an app helper
                // whose summary proves it validity-checks that argument
                // position counts as a check at this site.
                if interproc && callee_checks_flow_arg(app, site.method, sid, inv, &flow) {
                    checks.push(sid);
                    continue;
                }
                let Some(Operand::Local(recv)) = inv.receiver() else {
                    continue;
                };
                if !flow.locals.contains(&recv) {
                    continue;
                }
                let class = app.program.symbols.resolve(inv.callee.class);
                let name = app.program.symbols.resolve(inv.callee.name);
                if app.registry.response_check(class, name).is_some() {
                    checks.push(sid);
                } else if name != "<init>" {
                    uses.push(sid);
                }
            }
        }
    }

    let unchecked_uses = uses
        .iter()
        .copied()
        .filter(|&u| !checks.iter().any(|&c| ma.doms().dominates(c, u)))
        .collect();

    Some(ResponseFinding {
        response_local,
        uses,
        unchecked_uses,
    })
}

/// Does every explicit callee of the invoke at `stmt` check some
/// argument position that carries an alias of the response?
fn callee_checks_flow_arg(
    app: &AnalyzedApp<'_>,
    method: MethodId,
    stmt: StmtId,
    inv: &InvokeExpr,
    flow: &ObjectFlow,
) -> bool {
    let positions: Vec<usize> = inv
        .args
        .iter()
        .enumerate()
        .filter(|(_, op)| op.as_local().is_some_and(|l| flow.locals.contains(&l)))
        .map(|(j, _)| j)
        .collect();
    if positions.is_empty() {
        return false;
    }
    let callees: Vec<usize> = app
        .callgraph
        .callees(method)
        .iter()
        .filter(|e| e.stmt == stmt && !e.implicit)
        .map(|e| e.callee.0 as usize)
        .collect();
    if callees.is_empty() {
        return false;
    }
    let summaries = app.summaries();
    positions
        .iter()
        .any(|&j| callees.iter().all(|&c| summaries.summary(c).checks_arg(j)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AnalyzedApp;
    use crate::reach::find_request_sites;
    use nck_android::manifest::{ComponentKind, Manifest};
    use nck_dex::builder::AdxBuilder;
    use nck_dex::{AccessFlags, CondOp};
    use nck_ir::lift_file;
    use nck_netlibs::api::Registry;

    fn registry() -> &'static Registry {
        use std::sync::OnceLock;
        static R: OnceLock<Registry> = OnceLock::new();
        R.get_or_init(Registry::standard)
    }

    const CALL: &str = "Lcom/squareup/okhttp/Call;";
    const RESP: &str = "Lcom/squareup/okhttp/Response;";
    const EXEC_SIG: &str = "()Lcom/squareup/okhttp/Response;";

    fn app_of(emit: impl FnOnce(&mut nck_dex::builder::CodeBuilder<'_>)) -> AnalyzedApp<'static> {
        let mut b = AdxBuilder::new();
        b.class("Lapp/Main;", |c| {
            c.super_class("Landroid/app/Activity;");
            c.method(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                AccessFlags::PUBLIC,
                10,
                emit,
            );
        });
        let program = lift_file(&b.finish().unwrap()).unwrap();
        let mut manifest = Manifest::new("app");
        manifest.component("Lapp/Main;", ComponentKind::Activity);
        AnalyzedApp::new(manifest, program, registry())
    }

    fn emit_call(m: &mut nck_dex::builder::CodeBuilder<'_>) -> nck_dex::Reg {
        let call = m.reg(0);
        let resp = m.reg(1);
        m.new_instance(call, CALL);
        m.invoke_direct(CALL, "<init>", "()V", &[call]);
        m.invoke_virtual(CALL, "execute", EXEC_SIG, &[call]);
        m.move_result(resp);
        resp
    }

    #[test]
    fn unchecked_body_read_is_flagged() {
        let app = app_of(|m| {
            let resp = emit_call(m);
            m.invoke_virtual(RESP, "body", "()Ljava/lang/String;", &[resp]);
            m.move_result(m.reg(2));
            m.ret(None);
        });
        let sites = find_request_sites(&app);
        assert_eq!(sites.len(), 1);
        let f = check_response(&app, &sites[0]).unwrap();
        assert_eq!(f.uses.len(), 1);
        assert_eq!(f.unchecked_uses.len(), 1);
    }

    #[test]
    fn is_successful_guard_clears_the_use() {
        let app = app_of(|m| {
            let resp = emit_call(m);
            let ok = m.reg(2);
            let done = m.new_label();
            m.invoke_virtual(RESP, "isSuccessful", "()Z", &[resp]);
            m.move_result(ok);
            m.ifz(CondOp::Eq, ok, done);
            m.invoke_virtual(RESP, "body", "()Ljava/lang/String;", &[resp]);
            m.move_result(m.reg(3));
            m.bind(done);
            m.ret(None);
        });
        let sites = find_request_sites(&app);
        let f = check_response(&app, &sites[0]).unwrap();
        assert_eq!(f.uses.len(), 1);
        assert!(f.unchecked_uses.is_empty());
    }

    #[test]
    fn null_check_guard_clears_the_use() {
        let app = app_of(|m| {
            let resp = emit_call(m);
            let done = m.new_label();
            m.ifz(CondOp::Eq, resp, done); // if (resp == null) skip.
            m.invoke_virtual(RESP, "body", "()Ljava/lang/String;", &[resp]);
            m.move_result(m.reg(2));
            m.bind(done);
            m.ret(None);
        });
        let sites = find_request_sites(&app);
        let f = check_response(&app, &sites[0]).unwrap();
        assert!(f.unchecked_uses.is_empty());
    }

    #[test]
    fn check_that_does_not_dominate_does_not_clear() {
        // The check sits on only one of two paths to the use.
        let app = app_of(|m| {
            let resp = emit_call(m);
            let skip_check = m.new_label();
            let use_site = m.new_label();
            let flag = m.reg(4);
            m.ifz(CondOp::Ne, flag, skip_check);
            m.invoke_virtual(RESP, "isSuccessful", "()Z", &[resp]);
            m.move_result(m.reg(2));
            m.goto(use_site);
            m.bind(skip_check);
            m.nop();
            m.bind(use_site);
            m.invoke_virtual(RESP, "body", "()Ljava/lang/String;", &[resp]);
            m.move_result(m.reg(3));
            m.ret(None);
        });
        let sites = find_request_sites(&app);
        let f = check_response(&app, &sites[0]).unwrap();
        assert_eq!(
            f.unchecked_uses.len(),
            1,
            "non-dominating check is not a guard"
        );
    }

    #[test]
    fn discarded_response_is_not_checked() {
        let app = app_of(|m| {
            let call = m.reg(0);
            m.new_instance(call, CALL);
            m.invoke_direct(CALL, "<init>", "()V", &[call]);
            m.invoke_virtual(CALL, "execute", EXEC_SIG, &[call]);
            // Result discarded entirely.
            m.ret(None);
        });
        let sites = find_request_sites(&app);
        assert!(check_response(&app, &sites[0]).is_none());
    }

    #[test]
    fn volley_is_exempt() {
        let app = app_of(|m| {
            let q = m.reg(0);
            let req = m.reg(1);
            m.invoke_static(
                "Lcom/android/volley/toolbox/Volley;",
                "newRequestQueue",
                "()Lcom/android/volley/RequestQueue;",
                &[],
            );
            m.move_result(q);
            m.new_instance(req, "Lcom/android/volley/toolbox/StringRequest;");
            m.const_int(m.reg(2), 0);
            m.invoke_direct(
                "Lcom/android/volley/toolbox/StringRequest;",
                "<init>",
                "(ILjava/lang/String;)V",
                &[req, m.reg(2), m.reg(3)],
            );
            m.invoke_virtual(
                "Lcom/android/volley/RequestQueue;",
                "add",
                "(Lcom/android/volley/Request;)Lcom/android/volley/Request;",
                &[q, req],
            );
            m.move_result(m.reg(4));
            m.ret(None);
        });
        let sites = find_request_sites(&app);
        assert!(check_response(&app, &sites[0]).is_none());
    }
}
