//! Config-API analysis (§4.4.1 taint step + §4.4.2 parameters).
//!
//! For each request, taint the config carrier (the HTTP client object, or
//! the request object for Volley), propagate backward to its creation and
//! forward through aliases (including fields), collect the config APIs
//! invoked on it, and recover parameter values by constant propagation.

use crate::context::AnalyzedApp;
use crate::reach::{carrier_flow, RequestSite};
use nck_dataflow::taint::{object_flow, FlowOptions, ObjectFlow};
use nck_dataflow::CVal;
use nck_ir::body::{Body, FieldKey, MethodId, Operand, Rvalue, Stmt, StmtId};
use nck_netlibs::api::ConfigKind;
use nck_netlibs::library::{defaults, Library};
use std::collections::BTreeSet;

/// The config-API findings for one request site.
#[derive(Debug, Clone, Default)]
pub struct SiteConfig {
    /// Timeout config API invoked on the carrier.
    pub has_timeout: bool,
    /// Retry config API invoked on the carrier.
    pub has_retry_config: bool,
    /// A retry-exception-class API invoked (Async HTTP).
    pub has_retry_exception: bool,
    /// The effective retry count in force for the request: configured
    /// value when known, library default otherwise; `None` when a retry
    /// API was invoked with a statically unknown count.
    pub effective_retries: Option<u32>,
    /// `true` when the effective count comes from the library default.
    pub retry_default_used: bool,
    /// Every `(method, stmt)` recognized as a config call for this site.
    pub config_calls: Vec<(MethodId, StmtId)>,
}

/// One recognized config call.
#[derive(Debug, Clone, Copy)]
struct ConfigCall {
    method: MethodId,
    stmt: StmtId,
    kind: ConfigKind,
    /// Constant retry count argument, when the kind carries one.
    retry_count: Option<i64>,
}

/// Recovers an operand's constant int through the interprocedural
/// summaries when intraprocedural constant propagation fails: every
/// reaching definition must resolve — a constant-returning helper call
/// (`setMaxRetries(getRetryCount())`) or a load of a field only ever
/// stored one constant — and all resolved values must agree.
fn operand_int_via_summaries(
    app: &AnalyzedApp<'_>,
    method: MethodId,
    body: &Body,
    at: StmtId,
    op: Operand,
) -> Option<i64> {
    let local = op.as_local()?;
    let ma = app.analysis(method);
    let summaries = app.summaries();
    let defs = ma.rd().reaching(at, local);
    if defs.is_empty() {
        return None;
    }
    let mut joined = CVal::Undef;
    for d in defs {
        let v = match body.stmt(d) {
            Stmt::Assign {
                rvalue: Rvalue::Invoke(_),
                ..
            } => {
                // Join the constant returns over the explicit callees.
                let mut v = CVal::Undef;
                let mut any = false;
                for e in app
                    .callgraph
                    .callees(method)
                    .iter()
                    .filter(|e| e.stmt == d && !e.implicit)
                {
                    any = true;
                    v = v.join(summaries.summary(e.callee.0 as usize).const_return);
                }
                if any {
                    v
                } else {
                    CVal::NonConst
                }
            }
            Stmt::Assign {
                rvalue: Rvalue::InstanceField { field, .. } | Rvalue::StaticField { field },
                ..
            } => summaries.field_const(field),
            _ => CVal::NonConst,
        };
        joined = joined.join(v);
    }
    joined.as_int()
}

fn match_config_calls(
    app: &AnalyzedApp<'_>,
    method: MethodId,
    body: &Body,
    flow: &ObjectFlow,
    library: Library,
    interproc: bool,
    out: &mut Vec<ConfigCall>,
) {
    let ma = app.analysis(method);
    for (call, stmt) in body.iter() {
        let Some(inv) = stmt.invoke_expr() else {
            continue;
        };
        let class = app.program.symbols.resolve(inv.callee.class);
        let name = app.program.symbols.resolve(inv.callee.name);
        let Some(cfg) = app.registry.config(class, name) else {
            continue;
        };
        if cfg.library != library {
            continue;
        }
        // The call configures the carrier when the carrier is the receiver
        // — or, for static helpers like Apache's
        // `HttpConnectionParams.setSoTimeout(params, v)`, any argument.
        let in_flow =
            |op: &nck_ir::Operand| op.as_local().is_some_and(|l| flow.locals.contains(&l));
        let relevant = if inv.kind.has_receiver() {
            inv.args.first().is_some_and(&in_flow)
        } else {
            inv.args.iter().any(in_flow)
        };
        if !relevant {
            continue;
        }
        let offset = usize::from(inv.kind.has_receiver());
        let retry_count = cfg.kind.retry_count_arg().and_then(|arg| {
            inv.args.get(offset + arg).and_then(|&op| {
                ma.cp().operand_value(call, op).as_int().or_else(|| {
                    interproc
                        .then(|| operand_int_via_summaries(app, method, body, call, op))
                        .flatten()
                })
            })
        });
        out.push(ConfigCall {
            method,
            stmt: call,
            kind: cfg.kind,
            retry_count,
        });
    }
}

/// Collects config calls on objects held in `fields` across every method
/// of the app (the carrier escaped into a field, e.g. `mConnection`).
fn config_calls_via_fields(
    app: &AnalyzedApp<'_>,
    fields: &BTreeSet<FieldKey>,
    library: Library,
    skip_method: MethodId,
    interproc: bool,
    out: &mut Vec<ConfigCall>,
) {
    if fields.is_empty() {
        return;
    }
    for (mid, m) in app.program.iter_methods() {
        if mid == skip_method {
            continue;
        }
        let Some(body) = &m.body else { continue };
        // Seed locals that load or store any of the carrier fields.
        let mut seeds = Vec::new();
        for (_, stmt) in body.iter() {
            match stmt {
                Stmt::Assign {
                    local,
                    rvalue: Rvalue::InstanceField { field, .. } | Rvalue::StaticField { field },
                } if fields.contains(field) => seeds.push(*local),
                Stmt::StoreInstanceField { field, value, .. }
                | Stmt::StoreStaticField { field, value }
                    if fields.contains(field) =>
                {
                    if let Some(l) = value.as_local() {
                        seeds.push(l);
                    }
                }
                _ => {}
            }
        }
        seeds.sort_unstable();
        seeds.dedup();
        for seed in seeds {
            let flow = object_flow(body, seed, FlowOptions::default());
            match_config_calls(app, mid, body, &flow, library, interproc, out);
        }
    }
}

/// For Volley: a `setRetryPolicy` on the request means the policy object's
/// `DefaultRetryPolicy(timeout, retries, backoff)` constructor carries the
/// actual values; find it in the same method.
fn volley_policy_calls(
    app: &AnalyzedApp<'_>,
    method: MethodId,
    body: &Body,
    interproc: bool,
    out: &mut Vec<ConfigCall>,
) {
    let ma = app.analysis(method);
    for (sid, stmt) in body.iter() {
        let Some(inv) = stmt.invoke_expr() else {
            continue;
        };
        let class = app.program.symbols.resolve(inv.callee.class);
        let name = app.program.symbols.resolve(inv.callee.name);
        if class != "Lcom/android/volley/DefaultRetryPolicy;" || name != "<init>" {
            continue;
        }
        let retry_count = inv.args.get(2).and_then(|&op| {
            // Receiver, timeoutMs, maxRetries.
            ma.cp().operand_value(sid, op).as_int().or_else(|| {
                interproc
                    .then(|| operand_int_via_summaries(app, method, body, sid, op))
                    .flatten()
            })
        });
        out.push(ConfigCall {
            method,
            stmt: sid,
            kind: ConfigKind::TimeoutAndRetry {
                timeout_arg: 0,
                count_arg: 1,
            },
            retry_count,
        });
    }
}

/// Analyzes the config APIs in force for `site`, resolving parameter
/// values through the interprocedural summaries by default; see
/// [`check_config_with`].
pub fn check_config(app: &AnalyzedApp<'_>, site: &RequestSite) -> SiteConfig {
    check_config_with(app, site, true)
}

/// [`check_config`] with explicit configuration: `interproc` enables
/// resolving config parameters through constant-returning helpers and
/// app-wide field constants when local constant propagation fails.
pub fn check_config_with(app: &AnalyzedApp<'_>, site: &RequestSite, interproc: bool) -> SiteConfig {
    let body = app.body(site.method);
    let library = site.library();
    let mut calls = Vec::new();

    if let Some(flow) = carrier_flow(body, site.stmt, &site.target) {
        match_config_calls(
            app,
            site.method,
            body,
            &flow,
            library,
            interproc,
            &mut calls,
        );
        config_calls_via_fields(
            app,
            &flow.fields,
            library,
            site.method,
            interproc,
            &mut calls,
        );
        if library == Library::Volley
            && calls
                .iter()
                .any(|c| matches!(c.kind, ConfigKind::Retry { .. }))
        {
            volley_policy_calls(app, site.method, body, interproc, &mut calls);
        }
    }

    let mut sc = SiteConfig::default();
    let mut configured_count: Option<Option<i64>> = None; // Some(None) = set but unknown.
    for call in &calls {
        if call.kind.is_timeout() {
            sc.has_timeout = true;
        }
        if call.kind.is_retry() {
            sc.has_retry_config = true;
            if call.kind.retry_count_arg().is_some() {
                configured_count = Some(call.retry_count);
            } else if configured_count.is_none() {
                // A retry API without a literal count (setRetryPolicy,
                // setRetryOnConnectionFailure): enabled but count unknown.
                configured_count = Some(None);
            }
        }
        if matches!(call.kind, ConfigKind::RetryException) {
            sc.has_retry_exception = true;
        }
        sc.config_calls.push((call.method, call.stmt));
    }

    match configured_count {
        Some(Some(n)) => {
            sc.effective_retries = Some(n.max(0) as u32);
            sc.retry_default_used = false;
        }
        Some(None) => {
            sc.effective_retries = None;
            sc.retry_default_used = false;
        }
        None => {
            sc.effective_retries = Some(defaults(library).retries);
            sc.retry_default_used = true;
        }
    }
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AnalyzedApp;
    use crate::reach::find_request_sites;
    use nck_android::manifest::{ComponentKind, Manifest};
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;
    use nck_ir::lift_file;
    use nck_netlibs::api::Registry;

    fn registry() -> &'static Registry {
        use std::sync::OnceLock;
        static R: OnceLock<Registry> = OnceLock::new();
        R.get_or_init(Registry::standard)
    }

    const BASIC: &str = "Lcom/turbomanage/httpclient/BasicHttpClient;";
    const GET_SIG: &str = "(Ljava/lang/String;Lcom/turbomanage/httpclient/ParameterMap;)Lcom/turbomanage/httpclient/HttpResponse;";

    fn app_of(build: impl FnOnce(&mut AdxBuilder)) -> AnalyzedApp<'static> {
        let mut b = AdxBuilder::new();
        build(&mut b);
        let program = lift_file(&b.finish().unwrap()).unwrap();
        let mut manifest = Manifest::new("app");
        manifest.component("Lapp/Main;", ComponentKind::Activity);
        AnalyzedApp::new(manifest, program, registry())
    }

    #[test]
    fn fully_configured_basic_client() {
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    8,
                    |m| {
                        let cl = m.reg(0);
                        let v = m.reg(1);
                        m.new_instance(cl, BASIC);
                        m.invoke_direct(BASIC, "<init>", "()V", &[cl]);
                        m.const_int(v, 5000);
                        m.invoke_virtual(BASIC, "setReadTimeout", "(I)V", &[cl, v]);
                        m.const_int(v, 3);
                        m.invoke_virtual(BASIC, "setMaxRetries", "(I)V", &[cl, v]);
                        m.invoke_virtual(BASIC, "get", GET_SIG, &[cl, m.reg(2), m.reg(3)]);
                        m.move_result(m.reg(4));
                        m.ret(None);
                    },
                );
            });
        });
        let sites = find_request_sites(&app);
        let sc = check_config(&app, &sites[0]);
        assert!(sc.has_timeout);
        assert!(sc.has_retry_config);
        assert_eq!(sc.effective_retries, Some(3));
        assert!(!sc.retry_default_used);
    }

    #[test]
    fn unconfigured_client_uses_library_defaults() {
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    8,
                    |m| {
                        let cl = m.reg(0);
                        m.new_instance(cl, "Lcom/loopj/android/http/AsyncHttpClient;");
                        m.invoke_direct("Lcom/loopj/android/http/AsyncHttpClient;", "<init>", "()V", &[cl]);
                        m.invoke_virtual(
                            "Lcom/loopj/android/http/AsyncHttpClient;",
                            "get",
                            "(Ljava/lang/String;Lcom/loopj/android/http/ResponseHandlerInterface;)Lcom/loopj/android/http/RequestHandle;",
                            &[cl, m.reg(1), m.reg(2)],
                        );
                        m.ret(None);
                    },
                );
            });
        });
        let sites = find_request_sites(&app);
        let sc = check_config(&app, &sites[0]);
        assert!(!sc.has_timeout);
        assert!(!sc.has_retry_config);
        // Async HTTP defaults to 5 retries — the over-retry trap.
        assert_eq!(sc.effective_retries, Some(5));
        assert!(sc.retry_default_used);
    }

    #[test]
    fn config_through_field_is_found() {
        // onCreate stores the client into a field and configures it in a
        // helper; the request is sent in onResume via the field.
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    8,
                    |m| {
                        let this = m.param(0).unwrap();
                        let cl = m.reg(0);
                        let v = m.reg(1);
                        m.new_instance(cl, BASIC);
                        m.invoke_direct(BASIC, "<init>", "()V", &[cl]);
                        m.const_int(v, 8000);
                        m.invoke_virtual(BASIC, "setReadTimeout", "(I)V", &[cl, v]);
                        m.iput(cl, this, "Lapp/Main;", "client", BASIC);
                        m.ret(None);
                    },
                );
                c.method("onResume", "()V", AccessFlags::PUBLIC, 8, |m| {
                    let this = m.param(0).unwrap();
                    let cl = m.reg(0);
                    m.iget(cl, this, "Lapp/Main;", "client", BASIC);
                    m.invoke_virtual(BASIC, "get", GET_SIG, &[cl, m.reg(1), m.reg(2)]);
                    m.move_result(m.reg(3));
                    m.ret(None);
                });
            });
        });
        let sites = find_request_sites(&app);
        assert_eq!(sites.len(), 1);
        let sc = check_config(&app, &sites[0]);
        assert!(sc.has_timeout, "cross-method config via field must be seen");
    }

    #[test]
    fn volley_retry_policy_constant_recovered() {
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    10,
                    |m| {
                        let q = m.reg(0);
                        let req = m.reg(1);
                        let pol = m.reg(2);
                        let t = m.reg(3);
                        let n = m.reg(4);
                        let f = m.reg(5);
                        m.invoke_static(
                            "Lcom/android/volley/toolbox/Volley;",
                            "newRequestQueue",
                            "()Lcom/android/volley/RequestQueue;",
                            &[],
                        );
                        m.move_result(q);
                        m.new_instance(req, "Lcom/android/volley/toolbox/StringRequest;");
                        m.const_int(m.reg(6), 0);
                        m.invoke_direct(
                            "Lcom/android/volley/toolbox/StringRequest;",
                            "<init>",
                            "(ILjava/lang/String;)V",
                            &[req, m.reg(6), m.reg(7)],
                        );
                        m.new_instance(pol, "Lcom/android/volley/DefaultRetryPolicy;");
                        m.const_int(t, 5000);
                        m.const_int(n, 2);
                        m.const_int(f, 1);
                        m.invoke_direct(
                            "Lcom/android/volley/DefaultRetryPolicy;",
                            "<init>",
                            "(IIF)V",
                            &[pol, t, n, f],
                        );
                        m.invoke_virtual(
                            "Lcom/android/volley/Request;",
                            "setRetryPolicy",
                            "(Lcom/android/volley/RetryPolicy;)Lcom/android/volley/Request;",
                            &[req, pol],
                        );
                        m.invoke_virtual(
                            "Lcom/android/volley/RequestQueue;",
                            "add",
                            "(Lcom/android/volley/Request;)Lcom/android/volley/Request;",
                            &[q, req],
                        );
                        m.ret(None);
                    },
                );
            });
        });
        let sites = find_request_sites(&app);
        assert_eq!(sites.len(), 1);
        let sc = check_config(&app, &sites[0]);
        assert!(sc.has_retry_config);
        assert!(sc.has_timeout, "DefaultRetryPolicy carries the timeout");
        assert_eq!(sc.effective_retries, Some(2));
    }

    #[test]
    fn setting_wrong_object_does_not_count() {
        // Configure a *different* client than the one used for the
        // request: must not count.
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    10,
                    |m| {
                        let used = m.reg(0);
                        let other = m.reg(1);
                        let v = m.reg(2);
                        m.new_instance(used, BASIC);
                        m.invoke_direct(BASIC, "<init>", "()V", &[used]);
                        m.new_instance(other, BASIC);
                        m.invoke_direct(BASIC, "<init>", "()V", &[other]);
                        m.const_int(v, 5000);
                        m.invoke_virtual(BASIC, "setReadTimeout", "(I)V", &[other, v]);
                        m.invoke_virtual(BASIC, "get", GET_SIG, &[used, m.reg(3), m.reg(4)]);
                        m.move_result(m.reg(5));
                        m.ret(None);
                    },
                );
            });
        });
        let sites = find_request_sites(&app);
        let sc = check_config(&app, &sites[0]);
        assert!(
            !sc.has_timeout,
            "config on an unrelated object must not count"
        );
    }
}
