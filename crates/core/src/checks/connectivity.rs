//! Connectivity-check analysis (§4.4.1, step 1 of Figure 5).
//!
//! "For each path from the entry point to the target API, NChecker checks
//! if there is connectivity checking API invoked on the path."
//!
//! The check is deliberately *path-insensitive*, like the paper's: a
//! connectivity API invoked somewhere before the request counts as a
//! guard even when its result is never used as a control condition —
//! which is exactly the source of the 5 known false negatives in Table 9.
//! Conversely a check living in another component (reached only through
//! inter-component communication) is invisible, producing the Table 9
//! false positives.

use crate::context::AnalyzedApp;
use crate::reach::RequestSite;
use nck_ir::body::{MethodId, StmtId};
use std::collections::{BTreeSet, VecDeque};

/// Returns the methods of the app that invoke any connectivity API.
pub fn methods_invoking_connectivity(app: &AnalyzedApp<'_>) -> BTreeSet<MethodId> {
    let mut out = BTreeSet::new();
    for (mid, m) in app.program.iter_methods() {
        let Some(body) = &m.body else { continue };
        for (_, stmt) in body.iter() {
            let Some(inv) = stmt.invoke_expr() else {
                continue;
            };
            let class = app.program.symbols.resolve(inv.callee.class);
            let name = app.program.symbols.resolve(inv.callee.name);
            if app.registry.is_connectivity_check(class, name) {
                out.insert(mid);
                break;
            }
        }
    }
    out
}

/// Returns the methods that *observe* connectivity according to the
/// interprocedural summaries: they invoke a connectivity API directly or
/// through any chain of app helpers (`isOnline()`-style wrappers). A
/// strict superset of [`methods_invoking_connectivity`].
pub fn methods_observing_connectivity(app: &AnalyzedApp<'_>) -> BTreeSet<MethodId> {
    let summaries = app.summaries();
    app.program
        .iter_methods()
        .filter(|(id, m)| m.body.is_some() && summaries.summary(id.0 as usize).calls_source)
        .map(|(id, _)| id)
        .collect()
}

/// Returns `true` when the call at `stmt` in `method` resolves (via
/// explicit edges) to at least one app method whose summary satisfies
/// `pred`.
fn callee_summary_matches(
    app: &AnalyzedApp<'_>,
    method: MethodId,
    stmt: StmtId,
    pred: impl Fn(&nck_dataflow::interproc::MethodSummary) -> bool,
) -> bool {
    let summaries = app.summaries();
    app.callgraph
        .callees(method)
        .iter()
        .filter(|e| e.stmt == stmt && !e.implicit)
        .any(|e| pred(summaries.summary(e.callee.0 as usize)))
}

/// Returns the set of methods from which `target` is reachable in the
/// call graph (inclusive).
fn methods_reaching(app: &AnalyzedApp<'_>, target: MethodId) -> BTreeSet<MethodId> {
    let mut seen = BTreeSet::from([target]);
    let mut queue = VecDeque::from([target]);
    while let Some(m) = queue.pop_front() {
        for e in app.callgraph.callers(m) {
            if seen.insert(e.caller) {
                queue.push_back(e.caller);
            }
        }
    }
    seen
}

/// Returns `true` when a connectivity check inside `method` can reach
/// `site` along CFG edges (i.e. occurs "before" the request). With
/// `interproc`, a call to an app helper that transitively performs a
/// connectivity check counts as a check statement too.
fn guarded_intra(app: &AnalyzedApp<'_>, method: MethodId, site: StmtId, interproc: bool) -> bool {
    let body = app.body(method);
    let ma = app.analysis(method);
    let checks: Vec<StmtId> = body
        .iter()
        .filter(|(id, stmt)| {
            stmt.invoke_expr().is_some_and(|inv| {
                let class = app.program.symbols.resolve(inv.callee.class);
                let name = app.program.symbols.resolve(inv.callee.name);
                app.registry.is_connectivity_check(class, name)
                    || (interproc && callee_summary_matches(app, method, *id, |s| s.calls_source))
            })
        })
        .map(|(id, _)| id)
        .collect();
    if checks.is_empty() {
        return false;
    }
    // Forward reachability from each check to the request site.
    for check in checks {
        let mut seen = vec![false; body.len()];
        let mut stack = vec![check];
        seen[check.index()] = true;
        while let Some(s) = stack.pop() {
            if s == site {
                return true;
            }
            for t in ma.cfg.succs(s, false) {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
    }
    false
}

/// Strict (path-sensitive) variant: the request must be transitively
/// *control-dependent* on a branch whose condition derives from a
/// connectivity API result.
///
/// This is the fix for the paper's five known false negatives (§5.3):
/// the default analysis treats a connectivity API call whose result is
/// ignored as a guard; this one does not.
///
/// Defaults to interprocedural summaries and an unbounded caller walk;
/// see [`is_guarded_strict_with`] for the ablation knobs.
pub fn is_guarded_strict(app: &AnalyzedApp<'_>, site: &RequestSite) -> bool {
    is_guarded_strict_with(app, site, true, None)
}

/// [`is_guarded_strict`] with explicit configuration: `interproc`
/// enables summary-based guard recognition (`if (isOnline())` wrappers),
/// and `caller_depth` optionally restores the historical bounded caller
/// recursion (`Some(3)`) instead of the exhaustive visited-set walk.
pub fn is_guarded_strict_with(
    app: &AnalyzedApp<'_>,
    site: &RequestSite,
    interproc: bool,
    caller_depth: Option<usize>,
) -> bool {
    match caller_depth {
        Some(depth) => strict_rec(app, site.method, site.stmt, depth, interproc),
        None => {
            // Exhaustive caller walk: visit each (method, call-site)
            // pair once, so recursion and diamond caller graphs cost
            // nothing extra and no guard is missed by a depth cutoff.
            let mut seen: BTreeSet<(MethodId, StmtId)> = BTreeSet::new();
            let mut work = vec![(site.method, site.stmt)];
            while let Some((method, stmt)) = work.pop() {
                if !seen.insert((method, stmt)) {
                    continue;
                }
                if guarded_by_conn_branch(app, method, stmt, interproc) {
                    return true;
                }
                for e in app.callgraph.callers(method) {
                    work.push((e.caller, e.stmt));
                }
            }
            false
        }
    }
}

fn strict_rec(
    app: &AnalyzedApp<'_>,
    method: MethodId,
    stmt: StmtId,
    depth: usize,
    interproc: bool,
) -> bool {
    if guarded_by_conn_branch(app, method, stmt, interproc) {
        return true;
    }
    if depth == 0 {
        return false;
    }
    // The guarding branch may live in a caller, dominating the call that
    // leads to the request.
    app.callgraph
        .callers(method)
        .iter()
        .any(|e| strict_rec(app, e.caller, e.stmt, depth - 1, interproc))
}

/// Returns `true` when `stmt` is transitively control-dependent on an
/// `if` whose condition data-derives from a connectivity API result
/// within `method`. With `interproc`, results of app helpers whose
/// summaries return connectivity-derived values count as connectivity
/// definitions too.
fn guarded_by_conn_branch(
    app: &AnalyzedApp<'_>,
    method: MethodId,
    stmt: StmtId,
    interproc: bool,
) -> bool {
    use nck_dataflow::slice::{backward_slice, SliceKind};
    let body = app.body(method);
    let ma = app.analysis(method);

    // Connectivity-result definitions: direct API results, plus (with
    // summaries) results of guard wrappers like `isOnline()`.
    let conn_defs: BTreeSet<StmtId> = body
        .iter()
        .filter(|(id, s)| {
            matches!(s, nck_ir::Stmt::Assign { .. })
                && s.invoke_expr().is_some_and(|inv| {
                    let class = app.program.symbols.resolve(inv.callee.class);
                    let name = app.program.symbols.resolve(inv.callee.name);
                    app.registry.is_connectivity_check(class, name)
                        || (interproc
                            && callee_summary_matches(app, method, *id, |s| {
                                s.returns_connectivity()
                            }))
                })
        })
        .map(|(id, _)| id)
        .collect();
    if conn_defs.is_empty() {
        return false;
    }

    // Branches whose condition derives from a connectivity result.
    let guard_branches: BTreeSet<StmtId> = body
        .iter()
        .filter(|(id, s)| {
            matches!(s, nck_ir::Stmt::If { .. } | nck_ir::Stmt::Switch { .. }) && {
                let slice = backward_slice(body, ma.rd(), ma.cdeps(), *id, SliceKind::Data);
                slice.iter().any(|d| conn_defs.contains(d))
            }
        })
        .map(|(id, _)| id)
        .collect();
    if guard_branches.is_empty() {
        return false;
    }

    // Transitive control dependence of the request on a guard branch,
    // over the exception-free CFG (exceptional edges would make the
    // request "depend" on every throwing call before it).
    let mut seen = BTreeSet::new();
    let mut work = vec![stmt];
    while let Some(s) = work.pop() {
        if !seen.insert(s) {
            continue;
        }
        for &dep in ma.cdeps_normal().deps_of(s) {
            if guard_branches.contains(&dep) {
                return true;
            }
            work.push(dep);
        }
    }
    false
}

/// Decides whether `site` is guarded by a connectivity check on some
/// entry-to-request path. Defaults to summary-aware guard recognition;
/// see [`is_guarded_with`].
pub fn is_guarded(
    app: &AnalyzedApp<'_>,
    site: &RequestSite,
    conn_methods: &BTreeSet<MethodId>,
) -> bool {
    is_guarded_with(app, site, conn_methods, true)
}

/// [`is_guarded`] with explicit configuration. `conn_methods` is the set
/// of connectivity-checking methods the caller considers (typically
/// [`methods_observing_connectivity`] when `interproc` is on, or
/// [`methods_invoking_connectivity`] when off).
pub fn is_guarded_with(
    app: &AnalyzedApp<'_>,
    site: &RequestSite,
    conn_methods: &BTreeSet<MethodId>,
    interproc: bool,
) -> bool {
    // Same-method check must occur before the request in the CFG.
    if conn_methods.contains(&site.method) && guarded_intra(app, site.method, site.stmt, interproc)
    {
        return true;
    }
    // Otherwise: any method on an entry→site call path that invokes a
    // connectivity API counts (path-insensitive interprocedural check).
    let to_site = methods_reaching(app, site.method);
    for &e in &site.entries {
        let from_entry = &app.entry_reach[e];
        for &m in conn_methods {
            if m != site.method && from_entry.contains(m) && to_site.contains(&m) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AnalyzedApp;
    use crate::reach::find_request_sites;
    use nck_android::manifest::{ComponentKind, Manifest};
    use nck_dex::builder::AdxBuilder;
    use nck_dex::{AccessFlags, CondOp};
    use nck_ir::lift_file;
    use nck_netlibs::api::Registry;

    fn registry() -> &'static Registry {
        use std::sync::OnceLock;
        static R: OnceLock<Registry> = OnceLock::new();
        R.get_or_init(Registry::standard)
    }

    const BASIC: &str = "Lcom/turbomanage/httpclient/BasicHttpClient;";
    const GET_SIG: &str = "(Ljava/lang/String;Lcom/turbomanage/httpclient/ParameterMap;)Lcom/turbomanage/httpclient/HttpResponse;";

    fn emit_request(m: &mut nck_dex::builder::CodeBuilder<'_>) {
        let cl = m.reg(0);
        m.new_instance(cl, BASIC);
        m.invoke_direct(BASIC, "<init>", "()V", &[cl]);
        m.invoke_virtual(BASIC, "get", GET_SIG, &[cl, m.reg(1), m.reg(2)]);
        m.ret(None);
    }

    fn app_of(build: impl FnOnce(&mut AdxBuilder)) -> AnalyzedApp<'static> {
        let mut b = AdxBuilder::new();
        build(&mut b);
        let program = lift_file(&b.finish().unwrap()).unwrap();
        let mut manifest = Manifest::new("app");
        manifest.component("Lapp/Main;", ComponentKind::Activity);
        AnalyzedApp::new(manifest, program, registry())
    }

    #[test]
    fn unguarded_request_is_flagged() {
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    6,
                    emit_request,
                );
            });
        });
        let sites = find_request_sites(&app);
        let conn = methods_invoking_connectivity(&app);
        assert!(!is_guarded(&app, &sites[0], &conn));
    }

    #[test]
    fn check_before_request_guards() {
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    8,
                    |m| {
                        let cm = m.reg(3);
                        let info = m.reg(4);
                        let ok = m.reg(5);
                        let done = m.new_label();
                        m.new_instance(cm, "Landroid/net/ConnectivityManager;");
                        m.invoke_direct(
                            "Landroid/net/ConnectivityManager;",
                            "<init>",
                            "()V",
                            &[cm],
                        );
                        m.invoke_virtual(
                            "Landroid/net/ConnectivityManager;",
                            "getActiveNetworkInfo",
                            "()Landroid/net/NetworkInfo;",
                            &[cm],
                        );
                        m.move_result(info);
                        m.invoke_virtual(
                            "Landroid/net/NetworkInfo;",
                            "isConnected",
                            "()Z",
                            &[info],
                        );
                        m.move_result(ok);
                        m.ifz(CondOp::Eq, ok, done);
                        emit_request_inner(m);
                        m.bind(done);
                        m.ret(None);
                    },
                );
            });
        });
        let sites = find_request_sites(&app);
        assert_eq!(sites.len(), 1);
        let conn = methods_invoking_connectivity(&app);
        assert!(is_guarded(&app, &sites[0], &conn));
    }

    fn emit_request_inner(m: &mut nck_dex::builder::CodeBuilder<'_>) {
        let cl = m.reg(0);
        m.new_instance(cl, BASIC);
        m.invoke_direct(BASIC, "<init>", "()V", &[cl]);
        m.invoke_virtual(BASIC, "get", GET_SIG, &[cl, m.reg(1), m.reg(2)]);
    }

    #[test]
    fn check_after_request_does_not_guard() {
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    8,
                    |m| {
                        emit_request_inner(m);
                        let cm = m.reg(3);
                        m.new_instance(cm, "Landroid/net/ConnectivityManager;");
                        m.invoke_direct(
                            "Landroid/net/ConnectivityManager;",
                            "<init>",
                            "()V",
                            &[cm],
                        );
                        m.invoke_virtual(
                            "Landroid/net/ConnectivityManager;",
                            "getActiveNetworkInfo",
                            "()Landroid/net/NetworkInfo;",
                            &[cm],
                        );
                        m.move_result(m.reg(4));
                        m.ret(None);
                    },
                );
            });
        });
        let sites = find_request_sites(&app);
        let conn = methods_invoking_connectivity(&app);
        assert!(!is_guarded(&app, &sites[0], &conn));
    }

    #[test]
    fn check_in_caller_guards_interprocedurally() {
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    8,
                    |m| {
                        let cm = m.reg(3);
                        m.new_instance(cm, "Landroid/net/ConnectivityManager;");
                        m.invoke_direct(
                            "Landroid/net/ConnectivityManager;",
                            "<init>",
                            "()V",
                            &[cm],
                        );
                        m.invoke_virtual(
                            "Landroid/net/ConnectivityManager;",
                            "getActiveNetworkInfo",
                            "()Landroid/net/NetworkInfo;",
                            &[cm],
                        );
                        m.move_result(m.reg(4));
                        m.invoke_virtual("Lapp/Main;", "send", "()V", &[m.param(0).unwrap()]);
                        m.ret(None);
                    },
                );
                c.method("send", "()V", AccessFlags::PUBLIC, 6, emit_request);
            });
        });
        let sites = find_request_sites(&app);
        let conn = methods_invoking_connectivity(&app);
        assert!(is_guarded(&app, &sites[0], &conn));
    }

    #[test]
    fn check_off_path_does_not_guard() {
        // The connectivity check lives in a method never on the
        // entry→request path (models the inter-component FP of Table 9).
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    6,
                    emit_request,
                );
                c.method("unrelatedCheck", "()V", AccessFlags::PUBLIC, 6, |m| {
                    let cm = m.reg(0);
                    m.new_instance(cm, "Landroid/net/ConnectivityManager;");
                    m.invoke_direct("Landroid/net/ConnectivityManager;", "<init>", "()V", &[cm]);
                    m.invoke_virtual(
                        "Landroid/net/ConnectivityManager;",
                        "getActiveNetworkInfo",
                        "()Landroid/net/NetworkInfo;",
                        &[cm],
                    );
                    m.move_result(m.reg(1));
                    m.ret(None);
                });
            });
        });
        let sites = find_request_sites(&app);
        let conn = methods_invoking_connectivity(&app);
        assert_eq!(conn.len(), 1);
        assert!(!is_guarded(&app, &sites[0], &conn));
    }

    #[test]
    fn paper_fn_check_without_control_condition_still_guards() {
        // The app calls the connectivity API but ignores its result — a
        // real NPD the path-insensitive analysis misses (Table 9 FN).
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    8,
                    |m| {
                        let cm = m.reg(3);
                        m.new_instance(cm, "Landroid/net/ConnectivityManager;");
                        m.invoke_direct(
                            "Landroid/net/ConnectivityManager;",
                            "<init>",
                            "()V",
                            &[cm],
                        );
                        m.invoke_virtual(
                            "Landroid/net/ConnectivityManager;",
                            "getActiveNetworkInfo",
                            "()Landroid/net/NetworkInfo;",
                            &[cm],
                        );
                        m.move_result(m.reg(4));
                        // Result ignored; request sent unconditionally.
                        emit_request_inner(m);
                        m.ret(None);
                    },
                );
            });
        });
        let sites = find_request_sites(&app);
        let conn = methods_invoking_connectivity(&app);
        assert!(
            is_guarded(&app, &sites[0], &conn),
            "path-insensitivity: treated as guarded"
        );
    }

    /// `onCreate` guards the request with `if (w1())`, where `w1..wD`
    /// forward to each other and only `wD` touches the connectivity APIs.
    fn wrapper_chain_app(depth: usize) -> AnalyzedApp<'static> {
        app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    8,
                    |m| {
                        let ok = m.reg(5);
                        let skip = m.new_label();
                        m.invoke_virtual("Lapp/Main;", "w1", "()Z", &[m.param(0).unwrap()]);
                        m.move_result(ok);
                        m.ifz(CondOp::Eq, ok, skip);
                        emit_request_inner(m);
                        m.bind(skip);
                        m.ret(None);
                    },
                );
                for i in 1..depth {
                    let next = format!("w{}", i + 1);
                    c.method(&format!("w{i}"), "()Z", AccessFlags::PUBLIC, 4, move |m| {
                        m.invoke_virtual("Lapp/Main;", &next, "()Z", &[m.param(0).unwrap()]);
                        m.move_result(m.reg(0));
                        m.ret(Some(m.reg(0)));
                    });
                }
                c.method(&format!("w{depth}"), "()Z", AccessFlags::PUBLIC, 6, |m| {
                    let cm = m.reg(0);
                    let info = m.reg(1);
                    let ok = m.reg(2);
                    let offline = m.new_label();
                    m.new_instance(cm, "Landroid/net/ConnectivityManager;");
                    m.invoke_direct("Landroid/net/ConnectivityManager;", "<init>", "()V", &[cm]);
                    m.invoke_virtual(
                        "Landroid/net/ConnectivityManager;",
                        "getActiveNetworkInfo",
                        "()Landroid/net/NetworkInfo;",
                        &[cm],
                    );
                    m.move_result(info);
                    m.ifz(CondOp::Eq, info, offline);
                    m.invoke_virtual("Landroid/net/NetworkInfo;", "isConnected", "()Z", &[info]);
                    m.move_result(ok);
                    m.ret(Some(ok));
                    m.bind(offline);
                    m.const_int(ok, 0);
                    m.ret(Some(ok));
                });
            });
        })
    }

    #[test]
    fn guard_wrappers_guard_at_depths_one_through_five() {
        for depth in 1..=5 {
            let app = wrapper_chain_app(depth);
            let sites = find_request_sites(&app);
            assert_eq!(sites.len(), 1, "depth {depth}");
            let observing = methods_observing_connectivity(&app);
            assert!(
                is_guarded(&app, &sites[0], &observing),
                "summaries see through the wrapper chain at depth {depth}"
            );
            assert!(
                is_guarded_strict(&app, &sites[0]),
                "the strict check accepts the wrapper-derived branch at depth {depth}"
            );
        }
    }

    #[test]
    fn guard_wrappers_defeat_the_method_local_analysis() {
        for depth in 1..=5 {
            let app = wrapper_chain_app(depth);
            let sites = find_request_sites(&app);
            let invoking = methods_invoking_connectivity(&app);
            assert!(
                !is_guarded_with(&app, &sites[0], &invoking, false),
                "without summaries the wrapper is invisible at depth {depth}"
            );
            assert!(
                !is_guarded_strict_with(&app, &sites[0], false, Some(3)),
                "the bounded local strict walk misses the wrapper at depth {depth}"
            );
        }
    }
}
