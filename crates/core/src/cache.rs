//! Content-addressed analysis cache entries.
//!
//! One [`AppCacheEntry`] holds everything a later analysis of an
//! *updated version of the same app* can soundly reuse, keyed by
//! content: the bundle fingerprint for whole-report reuse, per-class
//! fingerprints for prefix replay of verify/lift/per-method dataflow,
//! and per-method call-resolution fingerprints plus the round-0 summary
//! snapshot for seeded interprocedural computation. Entries are only
//! ever written for *clean* (non-degraded) analyses: a degraded run has
//! skipped methods whose behaviour is unknown, which is no foundation to
//! replay anything on.
//!
//! The entry also carries the analysis-configuration fingerprint
//! ([`config_fingerprint`]): toggling any checker or bumping
//! [`ANALYSIS_VERSION`] changes the key, so stale semantics can never be
//! replayed into a differently-configured run.

use crate::checker::{AppReport, CheckerConfig};
use crate::context::MethodAnalysis;
use nck_dataflow::interproc::SummarySeed;
use nck_dex::fingerprint::Fnv;
use nck_ir::body::MethodId;
use nck_ir::lift::LiftSeed;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Version of the analysis semantics. Bump whenever a checker, the
/// lifter, the summary engine, or the report format changes meaning, so
/// persisted cache tiers from older builds miss instead of replaying
/// stale results.
pub const ANALYSIS_VERSION: u32 = 1;

/// Fingerprint of the analysis configuration: every [`CheckerConfig`]
/// toggle plus [`ANALYSIS_VERSION`]. Two runs may share cached results
/// only when these match.
pub fn config_fingerprint(config: &CheckerConfig) -> u64 {
    let mut h = Fnv::new();
    h.u32(ANALYSIS_VERSION);
    for (name, on) in [
        ("connectivity", config.connectivity),
        ("timeout", config.timeout),
        ("retry", config.retry),
        ("retry_params", config.retry_params),
        ("notification", config.notification),
        ("response", config.response),
        ("custom_retry", config.custom_retry),
        ("icc", config.icc),
        ("strict_connectivity", config.strict_connectivity),
        ("interproc", config.interproc),
        ("targeted", config.targeted),
    ] {
        h.str(name).u32(u32::from(on));
    }
    match config.strict_caller_depth {
        Some(d) => h.str("strict_caller_depth").u64(d as u64),
        None => h.str("strict_caller_depth_none"),
    };
    h.finish()
}

/// Everything one clean analysis run leaves behind for the next version
/// of the same app.
///
/// Targeted-mode runs write *minimal* entries: only the fingerprints and
/// the report are populated (whole-report reuse), since replaying a lift
/// seed would materialize full bodies and silently forfeit the mode's
/// savings. The `Default` impl exists for exactly that shape.
#[derive(Debug, Clone, Default)]
pub struct AppCacheEntry {
    /// FNV-1a of the raw bundle bytes: an exact match (plus config
    /// match) short-circuits to the cached report.
    pub bundle_fp: u64,
    /// The configuration fingerprint this entry was computed under.
    pub config_fp: u64,
    /// Canonical per-class content fingerprints
    /// ([`nck_dex::class_fingerprints`]), in file order.
    pub class_fps: Vec<u64>,
    /// Lift replay data for the class prefix.
    pub lift_seed: LiftSeed,
    /// Per-method call-resolution fingerprints
    /// ([`crate::context::callee_fingerprints`]).
    pub callee_fps: Vec<u64>,
    /// Per-method dataflow artifacts, shared by `Arc` so reuse is a
    /// pointer copy. Memory-tier only: these are derived wholly from the
    /// replayed bodies and are cheap to recompute relative to their
    /// serialized size.
    pub analyses: BTreeMap<MethodId, Arc<MethodAnalysis>>,
    /// Round-0 interprocedural summary snapshot.
    pub summary_seed: SummarySeed,
    /// The finished (unsealed: no trace/metrics) report.
    pub report: AppReport,
}

impl AppCacheEntry {
    /// Approximate resident size of this entry, in bytes.
    ///
    /// Structural accounting, not deep measurement: each retained
    /// artifact class is charged a calibrated per-item cost (a
    /// `MethodAnalysis` holds a CFG plus per-statement dataflow facts; a
    /// lift-seed class holds replayable bodies; a report defect carries
    /// strings and a provenance chain). The absolute numbers are rough
    /// by design — what matters for a byte-budgeted LRU is that an app
    /// with 50× the methods is charged ~50× the bytes, so one batch of
    /// huge apps cannot hide behind an entry-count cap.
    pub fn approx_bytes(&self) -> usize {
        const ENTRY_OVERHEAD: usize = 512;
        const PER_CLASS: usize = 384; // lift-seed share: replayable class body
        const PER_METHOD_ANALYSIS: usize = 4096; // CFG + per-stmt dataflow facts
        const PER_CALLEE_FP: usize = 16;
        const PER_DEFECT: usize = 768; // message, fix, call stack, provenance
        const PER_SKIP: usize = 256;
        ENTRY_OVERHEAD
            + self.class_fps.len() * PER_CLASS
            + self.callee_fps.len() * PER_CALLEE_FP
            + self.analyses.len() * PER_METHOD_ANALYSIS
            + self.report.defects.len() * PER_DEFECT
            + self.report.skipped_methods.len() * PER_SKIP
    }
}

/// What an incremental analysis actually reused, for hit-rate reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReuseStats {
    /// The whole cached report was returned (identical bundle + config).
    pub whole_report: bool,
    /// Classes in the analyzed bundle.
    pub classes_total: usize,
    /// Leading classes replayed from the cache (verify + lift skipped).
    pub classes_reused: usize,
    /// Methods with bodies in the analyzed bundle.
    pub methods_total: usize,
    /// Per-method dataflow artifact sets reused.
    pub analyses_reused: usize,
    /// Summary slots seeded clean from the previous run.
    pub summaries_clean: usize,
    /// Summary slots recomputed.
    pub summaries_dirty: usize,
    /// The analysis degraded, so nothing was reused or written back.
    pub degraded: bool,
}

impl ReuseStats {
    /// Fraction of classes whose verify/lift/dataflow work was reused,
    /// in `[0, 1]`. Whole-report hits count as full reuse.
    pub fn class_hit_rate(&self) -> f64 {
        if self.whole_report {
            return 1.0;
        }
        if self.classes_total == 0 {
            return 0.0;
        }
        self.classes_reused as f64 / self.classes_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_fingerprint_is_sensitive_to_every_toggle() {
        let base = CheckerConfig::default();
        let fp = config_fingerprint(&base);
        assert_eq!(fp, config_fingerprint(&base), "deterministic");

        let mut variants: Vec<CheckerConfig> = Vec::new();
        macro_rules! flip {
            ($($field:ident),*) => {
                $( {
                    let mut c = base;
                    c.$field = !c.$field;
                    variants.push(c);
                } )*
            };
        }
        flip!(
            connectivity,
            timeout,
            retry,
            retry_params,
            notification,
            response,
            custom_retry,
            icc,
            strict_connectivity,
            interproc,
            targeted
        );
        let mut c = base;
        c.strict_caller_depth = Some(3);
        variants.push(c);

        let mut fps: Vec<u64> = variants.iter().map(config_fingerprint).collect();
        fps.push(fp);
        let distinct: std::collections::BTreeSet<u64> = fps.iter().copied().collect();
        assert_eq!(distinct.len(), fps.len(), "every toggle moves the key");
    }

    #[test]
    fn approx_bytes_scales_with_retained_artifacts() {
        let empty = AppCacheEntry::default();
        assert!(empty.approx_bytes() > 0, "overhead is always charged");
        let big = AppCacheEntry {
            class_fps: vec![0; 100],
            callee_fps: vec![0; 50],
            ..AppCacheEntry::default()
        };
        assert!(big.approx_bytes() > empty.approx_bytes());
        let bigger = AppCacheEntry {
            class_fps: vec![0; 10_000],
            ..AppCacheEntry::default()
        };
        assert!(
            bigger.approx_bytes() > 50 * empty.approx_bytes(),
            "size scales with artifact counts, not entry count"
        );
    }

    #[test]
    fn hit_rate_edges() {
        let mut s = ReuseStats::default();
        assert_eq!(s.class_hit_rate(), 0.0);
        s.whole_report = true;
        assert_eq!(s.class_hit_rate(), 1.0);
        let s = ReuseStats {
            classes_total: 10,
            classes_reused: 9,
            ..ReuseStats::default()
        };
        assert!((s.class_hit_rate() - 0.9).abs() < 1e-9);
    }
}
