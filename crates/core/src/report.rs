//! Warning reports (§4.6, Figure 7).
//!
//! Each detected NPD yields a report with five parts: the NPD information
//! (problematic API + location), its UX impact, the request context, the
//! call stack from an entry point, and a context-aware fix suggestion —
//! the ingredients the user study showed let inexperienced developers fix
//! defects in under two minutes.

use nck_netlibs::library::Library;

/// Context of an over-retry defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverRetryContext {
    /// Retrying a background-service request wastes energy and data.
    Service,
    /// Auto-retrying a non-idempotent POST violates HTTP/1.1.
    Post,
}

/// The defect categories NChecker reports (Table 6 + Table 8 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectKind {
    /// No connectivity check guards the request (§2.3 cause 1).
    MissedConnectivityCheck,
    /// No timeout API invoked for the request (§2.3 cause 3.1).
    MissedTimeout,
    /// No retry API ever invoked for the request (§2.3 cause 2).
    MissedRetry,
    /// A time-sensitive (user-initiated) request with retries disabled and
    /// no custom retry logic (§2.3 cause 2.1).
    NoRetryInActivity,
    /// Retries enabled where they should not be (§2.3 cause 2.2).
    OverRetry {
        /// Where the over-retry bites.
        context: OverRetryContext,
        /// `true` when the library's default caused it (developer never
        /// invoked the retry API).
        default_caused: bool,
    },
    /// No failure notification in the request's user-facing callback
    /// (§2.3 cause 3.2).
    MissedFailureNotification,
    /// The error callback ignores the typed error object (§4.2 pattern 3).
    NoErrorTypeCheck,
    /// The response is used without a validity check (§2.3 cause 3.3).
    MissedResponseCheck,
}

impl DefectKind {
    /// Short label as used in the evaluation tables.
    pub fn label(self) -> &'static str {
        match self {
            DefectKind::MissedConnectivityCheck => "Missed conn. checks",
            DefectKind::MissedTimeout => "Missed timeout APIs",
            DefectKind::MissedRetry => "Missed retry APIs",
            DefectKind::NoRetryInActivity => "No retry in Activities",
            DefectKind::OverRetry {
                context: OverRetryContext::Service,
                ..
            } => "Over retry in Services",
            DefectKind::OverRetry {
                context: OverRetryContext::Post,
                ..
            } => "Over retry in POST requests",
            DefectKind::MissedFailureNotification => "Missed failure notifications",
            DefectKind::NoErrorTypeCheck => "No error type check",
            DefectKind::MissedResponseCheck => "Missed response checks",
        }
    }

    /// The negative UX this defect causes (report item 2).
    pub fn impact(self) -> &'static str {
        match self {
            DefectKind::MissedConnectivityCheck => "Bad UX, battery life",
            DefectKind::MissedTimeout => "App hang / freeze on dead connections",
            DefectKind::MissedRetry | DefectKind::NoRetryInActivity => {
                "Dysfunction under transient network errors"
            }
            DefectKind::OverRetry { .. } => "Battery drain, wasted mobile data",
            DefectKind::MissedFailureNotification => "Silent failure, unfriendly UI",
            DefectKind::NoErrorTypeCheck => "Cannot react per error cause",
            DefectKind::MissedResponseCheck => "Crash on invalid/null response",
        }
    }
}

/// Where a defect sits in the app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    /// Declaring class (dotted form for readability).
    pub class: String,
    /// Method name.
    pub method: String,
    /// Statement index (the "line" of our IR).
    pub stmt: u32,
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}, line {} ({})", self.class, self.stmt, self.method)
    }
}

/// One link in a defect's evidence chain: the concrete analysis fact
/// that led NChecker to report the defect. Together the chain explains
/// *why* the warning fired — which request, which call-graph edges the
/// analysis walked, which IR statements and summary facts it consulted,
/// and what it looked for but did not find.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Evidence {
    /// The network request the defect is about.
    Request {
        /// Method containing the request statement.
        method: String,
        /// Statement index of the request.
        stmt: u32,
        /// The invoked library API, `Class.name` form.
        api: String,
    },
    /// A call-graph edge the analysis followed from an entry point.
    CallEdge {
        /// Calling method.
        caller: String,
        /// Called method.
        callee: String,
        /// Call-site statement index in the caller.
        stmt: u32,
    },
    /// A statement-level IR fact.
    IrFact {
        /// Method the statement belongs to.
        method: String,
        /// Statement index.
        stmt: u32,
        /// What the statement shows.
        what: String,
    },
    /// A fact proved by an interprocedural method summary.
    SummaryFact {
        /// The summarized method.
        method: String,
        /// The proven fact.
        what: String,
    },
    /// Something the analysis searched for and did not find.
    Absence {
        /// What was missing.
        what: String,
        /// How many candidates were examined before concluding absence.
        scanned: usize,
    },
}

impl Evidence {
    /// Renders the evidence item as one human-readable line.
    pub fn render(&self) -> String {
        match self {
            Evidence::Request { method, stmt, api } => {
                format!("request {api} at {method}:{stmt}")
            }
            Evidence::CallEdge {
                caller,
                callee,
                stmt,
            } => format!("call edge {caller} -> {callee} (stmt {stmt})"),
            Evidence::IrFact { method, stmt, what } => format!("{method}:{stmt}: {what}"),
            Evidence::SummaryFact { method, what } => format!("summary({method}): {what}"),
            Evidence::Absence { what, scanned } => {
                format!("not found: {what} ({scanned} candidates examined)")
            }
        }
    }

    /// The app method this evidence names, when it names one.
    pub fn method(&self) -> Option<&str> {
        match self {
            Evidence::Request { method, .. }
            | Evidence::IrFact { method, .. }
            | Evidence::SummaryFact { method, .. } => Some(method),
            Evidence::CallEdge { caller, .. } => Some(caller),
            Evidence::Absence { .. } => None,
        }
    }
}

/// One NChecker warning (Figure 7).
#[derive(Debug, Clone)]
pub struct Report {
    /// Defect category.
    pub kind: DefectKind,
    /// The library whose API is misused.
    pub library: Library,
    /// Where.
    pub location: Location,
    /// NPD information: the problematic API usage.
    pub message: String,
    /// Request context: user-initiated or background.
    pub context: String,
    /// Call stack from an entry point to the request.
    pub call_stack: Vec<String>,
    /// Fix suggestion.
    pub fix: String,
    /// Evidence chain: the analysis facts behind this warning.
    pub provenance: Vec<Evidence>,
}

impl Report {
    /// Renders the report in the Figure 7 layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("NPD Information\n");
        out.push_str(&format!("  {}! at {}\n", self.message, self.location));
        out.push_str("NPD impact\n");
        out.push_str(&format!("  {}\n", self.kind.impact()));
        out.push_str("Network request context\n");
        out.push_str(&format!("  {}\n", self.context));
        out.push_str("Network request call stack\n");
        for (i, frame) in self.call_stack.iter().enumerate() {
            let indent = "-".repeat(i.min(4));
            out.push_str(&format!("  {indent}> ({frame})\n"));
        }
        out.push_str("Fix Suggestion\n");
        out.push_str(&format!("  {}\n", self.fix));
        if !self.provenance.is_empty() {
            out.push_str("Evidence\n");
            for e in &self.provenance {
                out.push_str(&format!("  - {}\n", e.render()));
            }
        }
        out
    }
}

/// Builds the fix suggestion text for a defect, considering context
/// (report item 5).
pub fn fix_suggestion(kind: DefectKind, library: Library, user_initiated: bool) -> String {
    match kind {
        DefectKind::MissedConnectivityCheck => {
            let base = "Use getActiveNetworkInfo() to check connectivity before the request.";
            if user_initiated {
                format!("{base} Show error message if no connection.")
            } else {
                format!("{base} Cache and stop the operation to save energy.")
            }
        }
        DefectKind::MissedTimeout => format!(
            "Add a timeout API of {library} to set the timeout value explicitly; the default \
             blocking behavior can wait minutes for a TCP timeout."
        ),
        DefectKind::MissedRetry => {
            format!("Add a retry API of {library} to set retry times for transient network errors.")
        }
        DefectKind::NoRetryInActivity => {
            "Enable retry for this user-initiated request so transient errors are bypassed \
             and the response is delivered timely."
                .to_owned()
        }
        DefectKind::OverRetry {
            context,
            default_caused,
        } => {
            let what = match context {
                OverRetryContext::Service => {
                    "Disable retry for this background request to save energy and mobile data"
                }
                OverRetryContext::Post => {
                    "Disable automatic retry for this POST request: HTTP/1.1 forbids \
                     auto-retrying non-idempotent methods"
                }
            };
            if default_caused {
                format!("{what}. Add the retry API and set retry times to 0 — the library default enables retries.")
            } else {
                format!("{what}.")
            }
        }
        DefectKind::MissedFailureNotification => {
            "Add an error message (e.g. Toast) in the error callback according to the error \
             status so the user can tell a network failure from missing content."
                .to_owned()
        }
        DefectKind::NoErrorTypeCheck => {
            "Examine the error object passed to the error callback to pinpoint the cause \
             (e.g. show a retry button for NoConnectionError, re-authenticate on 401)."
                .to_owned()
        }
        DefectKind::MissedResponseCheck => {
            "Add a null check and status check on the response before reading its body.".to_owned()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_all_sections() {
        let r = Report {
            kind: DefectKind::MissedConnectivityCheck,
            library: Library::BasicHttpClient,
            location: Location {
                class: "OpenGTSClient".into(),
                method: "sendHttp".into(),
                stmt: 115,
            },
            message: "Missing network connectivity check before HttpClient.get()".into(),
            context: "Request made by user. Need to notify users if connection is unavailable."
                .into(),
            call_stack: vec![
                "GpsMainActivity: 756".into(),
                "OpenGTSHelper: 43".into(),
                "OpenGTSClient: 91".into(),
                "OpenGTSClient: 115".into(),
            ],
            fix: fix_suggestion(
                DefectKind::MissedConnectivityCheck,
                Library::BasicHttpClient,
                true,
            ),
            provenance: vec![
                Evidence::Request {
                    method: "LOpenGTSClient;.sendHttp".into(),
                    stmt: 115,
                    api: "HttpClient.get".into(),
                },
                Evidence::Absence {
                    what: "connectivity check guarding the request".into(),
                    scanned: 4,
                },
            ],
        };
        let text = r.render();
        assert!(text.contains("NPD Information"));
        assert!(text.contains("NPD impact"));
        assert!(text.contains("Bad UX, battery life"));
        assert!(text.contains("call stack"));
        assert!(text.contains("GpsMainActivity: 756"));
        assert!(text.contains("Show error message if no connection"));
        // The evidence section trails the Figure 7 sections.
        let fix_at = text.find("Fix Suggestion").unwrap();
        let ev_at = text.find("Evidence").unwrap();
        assert!(ev_at > fix_at);
        assert!(text.contains("request HttpClient.get at LOpenGTSClient;.sendHttp:115"));
        assert!(text.contains("not found: connectivity check"));
    }

    #[test]
    fn evidence_names_methods() {
        let e = Evidence::CallEdge {
            caller: "La/Main;.onCreate".into(),
            callee: "La/Helper;.run".into(),
            stmt: 3,
        };
        assert_eq!(e.method(), Some("La/Main;.onCreate"));
        assert!(e.render().contains("->"));
        let a = Evidence::Absence {
            what: "x".into(),
            scanned: 0,
        };
        assert_eq!(a.method(), None);
    }

    #[test]
    fn fix_suggestions_are_context_aware() {
        let user = fix_suggestion(DefectKind::MissedConnectivityCheck, Library::Volley, true);
        let bg = fix_suggestion(DefectKind::MissedConnectivityCheck, Library::Volley, false);
        assert!(user.contains("error message"));
        assert!(bg.contains("save energy"));
    }

    #[test]
    fn over_retry_labels_distinguish_contexts() {
        let a = DefectKind::OverRetry {
            context: OverRetryContext::Service,
            default_caused: true,
        };
        let b = DefectKind::OverRetry {
            context: OverRetryContext::Post,
            default_caused: false,
        };
        assert_ne!(a.label(), b.label());
        assert!(fix_suggestion(a, Library::AndroidAsyncHttp, false).contains("library default"));
        assert!(!fix_suggestion(b, Library::Volley, true).contains("library default"));
    }
}
