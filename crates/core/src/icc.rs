//! Inter-component communication (ICC) analysis — the paper's stated
//! future work (§4.7: "we plan to integrate NChecker with IccTA").
//!
//! The Table 9 false positives all stem from flows NChecker cannot see:
//! a connectivity check in one component guarding an activity started
//! through an `Intent`, and an error broadcast displayed by another
//! activity. This module models the three `Context` ICC primitives and
//! resolves explicit intent targets, letting the connectivity and
//! notification checks cross component boundaries when
//! [`CheckerConfig::icc`](crate::checker::CheckerConfig) is enabled.

use crate::context::AnalyzedApp;
use nck_dataflow::taint::{object_flow, FlowOptions};
use nck_ir::body::{MethodId, Operand, StmtId};
use nck_ir::symbols::Symbol;
use std::collections::BTreeSet;

/// The kind of an ICC send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IccKind {
    /// `Context.startActivity(Intent)`.
    StartActivity,
    /// `Context.startService(Intent)`.
    StartService,
    /// `Context.sendBroadcast(Intent)`.
    SendBroadcast,
}

impl IccKind {
    fn of(name: &str) -> Option<IccKind> {
        match name {
            "startActivity" => Some(IccKind::StartActivity),
            "startService" => Some(IccKind::StartService),
            "sendBroadcast" | "sendOrderedBroadcast" => Some(IccKind::SendBroadcast),
            _ => None,
        }
    }
}

/// One ICC send site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IccSend {
    /// Sending method.
    pub method: MethodId,
    /// The `startActivity`/... call statement.
    pub stmt: StmtId,
    /// Which primitive.
    pub kind: IccKind,
    /// The explicit intent target (component class symbol), when the
    /// intent was constructed with a class literal.
    pub target: Option<Symbol>,
}

/// Resolves the explicit target of the intent passed at `stmt`'s last
/// argument: follows the intent object back to its construction and
/// looks for a class constant handed to `<init>`, `setClass`, or
/// `setComponent`.
fn resolve_target(app: &AnalyzedApp<'_>, method: MethodId, stmt: StmtId) -> Option<Symbol> {
    let body = app.body(method);
    let inv = body.stmt(stmt).invoke_expr()?;
    let intent_local = inv.args.last()?.as_local()?;
    let flow = object_flow(
        body,
        intent_local,
        FlowOptions {
            fluent_returns: true,
            through_fields: true,
        },
    );
    let ma = app.analysis(method);
    for &call in &flow.invoked_on {
        let cinv = body.stmt(call).invoke_expr()?;
        let name = app.program.symbols.resolve(cinv.callee.name);
        if !matches!(
            name,
            "<init>" | "setClass" | "setComponent" | "setClassName"
        ) {
            continue;
        }
        // The class literal usually travels through a register: chase the
        // reaching definitions of each argument.
        for op in cinv.args.iter().skip(1) {
            match op {
                Operand::ClassConst(ty) => return Some(*ty),
                Operand::Local(l) => {
                    for def in ma.rd().reaching(call, *l) {
                        if let nck_ir::Stmt::Assign {
                            rvalue: nck_ir::Rvalue::Use(Operand::ClassConst(ty)),
                            ..
                        } = body.stmt(def)
                        {
                            return Some(*ty);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Finds every ICC send in the app.
pub fn find_icc_sends(app: &AnalyzedApp<'_>) -> Vec<IccSend> {
    let mut out = Vec::new();
    for (mid, m) in app.program.iter_methods() {
        let Some(body) = &m.body else { continue };
        for (sid, stmt) in body.iter() {
            let Some(inv) = stmt.invoke_expr() else {
                continue;
            };
            let name = app.program.symbols.resolve(inv.callee.name);
            let Some(kind) = IccKind::of(name) else {
                continue;
            };
            let target = resolve_target(app, mid, sid);
            out.push(IccSend {
                method: mid,
                stmt: sid,
                kind,
                target,
            });
        }
    }
    out
}

/// Returns the component classes whose launch is guarded by a
/// connectivity check: an ICC send with an explicit target, issued from
/// a method that invokes a connectivity API at a point that reaches the
/// send.
pub fn conn_guarded_components(
    app: &AnalyzedApp<'_>,
    sends: &[IccSend],
    conn_methods: &BTreeSet<MethodId>,
) -> BTreeSet<Symbol> {
    let mut out = BTreeSet::new();
    for send in sends {
        let Some(target) = send.target else { continue };
        if !conn_methods.contains(&send.method) {
            continue;
        }
        // The check must be able to reach the send in the CFG.
        let body = app.body(send.method);
        let ma = app.analysis(send.method);
        let guarded = body.iter().any(|(cid, cstmt)| {
            let Some(inv) = cstmt.invoke_expr() else {
                return false;
            };
            let class = app.program.symbols.resolve(inv.callee.class);
            let name = app.program.symbols.resolve(inv.callee.name);
            if !app.registry.is_connectivity_check(class, name) {
                return false;
            }
            // Forward reachability from check to send.
            let mut seen = vec![false; body.len()];
            let mut stack = vec![cid];
            seen[cid.index()] = true;
            while let Some(s) = stack.pop() {
                if s == send.stmt {
                    return true;
                }
                for t in ma.cfg.succs(s, false) {
                    if !seen[t.index()] {
                        seen[t.index()] = true;
                        stack.push(t);
                    }
                }
            }
            false
        });
        if guarded {
            out.insert(target);
        }
    }
    out
}

/// Returns `true` when an ICC send is reachable from `start` within
/// `depth` call-graph hops (the error-broadcast side of the
/// notification FP idiom).
pub fn icc_send_reachable(
    app: &AnalyzedApp<'_>,
    sends: &[IccSend],
    start: MethodId,
    depth: usize,
) -> bool {
    let send_methods: BTreeSet<MethodId> = sends.iter().map(|s| s.method).collect();
    let mut seen = BTreeSet::from([start]);
    let mut queue = std::collections::VecDeque::from([(start, 0usize)]);
    while let Some((m, d)) = queue.pop_front() {
        if send_methods.contains(&m) {
            return true;
        }
        if d < depth {
            for e in app.callgraph.callees(m) {
                if seen.insert(e.callee) {
                    queue.push_back((e.callee, d + 1));
                }
            }
        }
    }
    false
}

/// Returns `true` when some declared component shows a UI alert in one
/// of its lifecycle entry points — the "another activity displays the
/// error" half of the notification FP idiom.
pub fn some_component_displays_alert(app: &AnalyzedApp<'_>) -> bool {
    use nck_android::ui::is_alert_call;
    for entry in &app.entries {
        if entry.kind != nck_android::entrypoints::EntryKind::Lifecycle {
            continue;
        }
        let Some(body) = &app.program.method(entry.method).body else {
            continue;
        };
        for (_, stmt) in body.iter() {
            if let Some(inv) = stmt.invoke_expr() {
                let class = app.program.symbols.resolve(inv.callee.class);
                let name = app.program.symbols.resolve(inv.callee.name);
                if is_alert_call(class, name) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AnalyzedApp;
    use nck_android::manifest::{ComponentKind, Manifest};
    use nck_dex::builder::AdxBuilder;
    use nck_dex::{AccessFlags, CondOp};
    use nck_ir::lift_file;
    use nck_netlibs::api::Registry;

    fn registry() -> &'static Registry {
        use std::sync::OnceLock;
        static R: OnceLock<Registry> = OnceLock::new();
        R.get_or_init(Registry::standard)
    }

    fn app_of(build: impl FnOnce(&mut AdxBuilder), manifest: Manifest) -> AnalyzedApp<'static> {
        let mut b = AdxBuilder::new();
        build(&mut b);
        let program = lift_file(&b.finish().unwrap()).unwrap();
        AnalyzedApp::new(manifest, program, registry())
    }

    #[test]
    fn targeted_start_activity_is_resolved() {
        let mut manifest = Manifest::new("app");
        manifest.component("Lapp/Gate;", ComponentKind::Receiver);
        let app = app_of(
            |b| {
                b.class("Lapp/Gate;", |c| {
                    c.super_class("Landroid/content/BroadcastReceiver;");
                    c.method(
                        "onReceive",
                        "(Landroid/content/Context;Landroid/content/Intent;)V",
                        AccessFlags::PUBLIC,
                        8,
                        |m| {
                            let i = m.reg(0);
                            let cls = m.reg(1);
                            m.new_instance(i, "Landroid/content/Intent;");
                            m.const_class(cls, "Lapp/Main;");
                            m.invoke_direct(
                                "Landroid/content/Intent;",
                                "<init>",
                                "(Ljava/lang/Class;)V",
                                &[i, cls],
                            );
                            m.invoke_virtual(
                                "Landroid/content/Context;",
                                "startActivity",
                                "(Landroid/content/Intent;)V",
                                &[m.param(1).unwrap(), i],
                            );
                            m.ret(None);
                        },
                    );
                });
            },
            manifest,
        );
        let sends = find_icc_sends(&app);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].kind, IccKind::StartActivity);
        assert_eq!(
            sends[0]
                .target
                .map(|t| app.program.symbols.resolve(t).to_owned()),
            Some("Lapp/Main;".to_owned())
        );
    }

    #[test]
    fn untargeted_broadcast_has_no_target() {
        let app = app_of(
            |b| {
                b.class("Lapp/A;", |c| {
                    c.method("f", "()V", AccessFlags::PUBLIC, 8, |m| {
                        let i = m.reg(0);
                        m.new_instance(i, "Landroid/content/Intent;");
                        m.invoke_direct("Landroid/content/Intent;", "<init>", "()V", &[i]);
                        m.invoke_virtual(
                            "Landroid/content/Context;",
                            "sendBroadcast",
                            "(Landroid/content/Intent;)V",
                            &[m.param(0).unwrap(), i],
                        );
                        m.ret(None);
                    });
                });
            },
            Manifest::new("app"),
        );
        let sends = find_icc_sends(&app);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].kind, IccKind::SendBroadcast);
        assert!(sends[0].target.is_none());
    }

    #[test]
    fn conn_guarded_component_requires_check_before_send() {
        let mut manifest = Manifest::new("app");
        manifest.component("Lapp/Gate;", ComponentKind::Receiver);
        let app = app_of(
            |b| {
                b.class("Lapp/Gate;", |c| {
                    c.super_class("Landroid/content/BroadcastReceiver;");
                    c.method(
                        "onReceive",
                        "(Landroid/content/Context;Landroid/content/Intent;)V",
                        AccessFlags::PUBLIC,
                        12,
                        |m| {
                            let cm = m.reg(0);
                            let info = m.reg(1);
                            let ok = m.reg(2);
                            let skip = m.new_label();
                            m.new_instance(cm, "Landroid/net/ConnectivityManager;");
                            m.invoke_direct(
                                "Landroid/net/ConnectivityManager;",
                                "<init>",
                                "()V",
                                &[cm],
                            );
                            m.invoke_virtual(
                                "Landroid/net/ConnectivityManager;",
                                "getActiveNetworkInfo",
                                "()Landroid/net/NetworkInfo;",
                                &[cm],
                            );
                            m.move_result(info);
                            m.invoke_virtual(
                                "Landroid/net/NetworkInfo;",
                                "isConnected",
                                "()Z",
                                &[info],
                            );
                            m.move_result(ok);
                            m.ifz(CondOp::Eq, ok, skip);
                            let i = m.reg(3);
                            let cls = m.reg(4);
                            m.new_instance(i, "Landroid/content/Intent;");
                            m.const_class(cls, "Lapp/Main;");
                            m.invoke_direct(
                                "Landroid/content/Intent;",
                                "<init>",
                                "(Ljava/lang/Class;)V",
                                &[i, cls],
                            );
                            m.invoke_virtual(
                                "Landroid/content/Context;",
                                "startActivity",
                                "(Landroid/content/Intent;)V",
                                &[m.param(1).unwrap(), i],
                            );
                            m.bind(skip);
                            m.ret(None);
                        },
                    );
                });
            },
            manifest,
        );
        let sends = find_icc_sends(&app);
        let conn = crate::checks::methods_invoking_connectivity(&app);
        let guarded = conn_guarded_components(&app, &sends, &conn);
        assert_eq!(guarded.len(), 1);
        assert_eq!(
            app.program.symbols.resolve(*guarded.iter().next().unwrap()),
            "Lapp/Main;"
        );
    }
}
