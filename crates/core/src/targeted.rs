//! The relevance slice for targeted analysis (BackDroid-style
//! demand-driven search, see DESIGN.md "Targeted analysis").
//!
//! Given a *skeleton* program — every body a stub preserving exactly the
//! call, field, and allocation surface — the slice computes the set of
//! methods whose full bodies the checkers can possibly consult:
//!
//! 1. **Seeds**: methods that invoke any registry-relevant API (request
//!    targets, config setters, response checks, connectivity checks),
//!    plus implementors of registry callback interfaces (their bodies
//!    are read directly by the notification checker, without any
//!    call-graph edge leading into them).
//! 2. **Backward closure**: transitive callers of every seed — these are
//!    the entry paths, guard helpers, and retry wrappers the checkers
//!    walk from a request site toward its entry points.
//! 3. **Forward closure**: transitive callees of everything so far — the
//!    summary engine folds callee facts (constant returns, argument
//!    checks, connectivity observation) into any sliced method.
//! 4. **Field fixpoint**: for every field a sliced method *loads*, the
//!    methods that *store* it (and their forward closures) join the
//!    slice, so field-carried constants (`summaries.field_const`)
//!    resolve exactly as in a whole-app run. Iterated until no new
//!    fields appear.
//!
//! Everything outside the slice keeps its stub body: the call graph and
//! the summary fixpoint still traverse it (stubs preserve invokes), but
//! no checker ever reads one of its non-call statements.

use crate::callgraph::CallGraph;
use nck_ir::body::{FieldKey, MethodId, Program, Rvalue, Stmt};
use nck_netlibs::api::Registry;
use std::collections::BTreeSet;

/// Adds `ids` and everything transitively reachable along `next` edges.
fn closure(
    slice: &mut BTreeSet<MethodId>,
    roots: impl IntoIterator<Item = MethodId>,
    next: impl Fn(MethodId) -> Vec<MethodId>,
) {
    let mut work: Vec<MethodId> = roots.into_iter().collect();
    while let Some(m) = work.pop() {
        if !slice.insert(m) {
            continue;
        }
        work.extend(next(m));
    }
}

/// Seed methods: direct relevant-API invokers plus callback implementors.
fn seeds(program: &Program, registry: &Registry) -> BTreeSet<MethodId> {
    let mut out = BTreeSet::new();

    for (id, m) in program.iter_methods() {
        let Some(body) = &m.body else { continue };
        let invokes_relevant = body.stmts.iter().filter_map(Stmt::invoke_expr).any(|inv| {
            let class = program.symbols.resolve(inv.callee.class);
            let name = program.symbols.resolve(inv.callee.name);
            registry.is_relevant_api(class, name)
        });
        if invokes_relevant {
            out.insert(id);
        }
    }

    // Callback implementors, matched the way the notification checker
    // finds them: by method name within classes whose hierarchy or
    // interface set includes the spec interface.
    for class in &program.classes {
        let implemented: BTreeSet<&str> = program
            .hierarchy(class.name)
            .into_iter()
            .chain(program.all_interfaces(class.name))
            .map(|s| program.symbols.resolve(s))
            .collect();
        let specs: Vec<&str> = registry
            .callbacks()
            .iter()
            .filter(|c| implemented.contains(c.interface))
            .map(|c| c.method)
            .collect();
        if specs.is_empty() {
            continue;
        }
        for &id in &class.methods {
            let m = program.method(id);
            if m.body.is_some() && specs.contains(&program.symbols.resolve(m.key.name)) {
                out.insert(id);
            }
        }
    }

    out
}

/// Fields loaded by any method in `slice`.
fn loaded_fields(program: &Program, slice: &BTreeSet<MethodId>) -> BTreeSet<FieldKey> {
    let mut out = BTreeSet::new();
    for &id in slice {
        let Some(body) = &program.method(id).body else {
            continue;
        };
        for stmt in &body.stmts {
            if let Stmt::Assign {
                rvalue: Rvalue::InstanceField { field, .. } | Rvalue::StaticField { field },
                ..
            } = stmt
            {
                out.insert(*field);
            }
        }
    }
    out
}

/// Whether `id`'s body stores into any field in `fields`.
fn stores_into(program: &Program, id: MethodId, fields: &BTreeSet<FieldKey>) -> bool {
    let Some(body) = &program.method(id).body else {
        return false;
    };
    body.stmts.iter().any(|s| match s {
        Stmt::StoreInstanceField { field, .. } | Stmt::StoreStaticField { field, .. } => {
            fields.contains(field)
        }
        _ => false,
    })
}

/// Computes the defect-relevant method slice of a skeleton `program`.
///
/// `callgraph` must be built over the same program; since stubs preserve
/// the whole invoke and type-hint surface, it is identical to the graph
/// a whole-app lift would produce.
pub fn relevance_slice(
    program: &Program,
    registry: &Registry,
    callgraph: &CallGraph,
) -> BTreeSet<MethodId> {
    let mut slice = BTreeSet::new();
    let roots = seeds(program, registry);

    // Backward closure: transitive callers.
    closure(&mut slice, roots.iter().copied(), |m| {
        callgraph.callers(m).iter().map(|e| e.caller).collect()
    });
    // Forward closure: transitive callees of everything so far.
    let members: Vec<MethodId> = slice.iter().copied().collect();
    let mut forward = BTreeSet::new();
    closure(&mut forward, members, |m| {
        callgraph.callees(m).iter().map(|e| e.callee).collect()
    });
    slice.extend(forward);

    // Field-constant fixpoint.
    let mut known_fields = BTreeSet::new();
    loop {
        let fields = loaded_fields(program, &slice);
        let fresh: BTreeSet<FieldKey> = fields.difference(&known_fields).copied().collect();
        if fresh.is_empty() {
            break;
        }
        known_fields.extend(fresh.iter().copied());
        let storers: Vec<MethodId> = program
            .iter_methods()
            .filter(|(id, _)| !slice.contains(id) && stores_into(program, *id, &fresh))
            .map(|(id, _)| id)
            .collect();
        let mut grown = BTreeSet::new();
        closure(&mut grown, storers, |m| {
            callgraph.callees(m).iter().map(|e| e.callee).collect()
        });
        slice.extend(grown);
    }

    slice
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;

    fn slice_of(file: &nck_dex::AdxFile) -> (Program, BTreeSet<String>) {
        let (program, skips, _) = nck_ir::lift_file_skeleton(file, &|_| None);
        assert!(skips.is_empty());
        let cg = CallGraph::build(&program);
        let slice = relevance_slice(&program, &Registry::standard(), &cg);
        let names: BTreeSet<String> = slice
            .iter()
            .map(|&id| {
                program
                    .symbols
                    .resolve(program.method(id).key.name)
                    .to_owned()
            })
            .collect();
        (program, names)
    }

    #[test]
    fn slice_covers_callers_and_callees_but_not_bystanders() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/Main;", |c| {
            c.super_class("Ljava/lang/Object;");
            // entry -> request -> helper; bystander untouched.
            c.method(
                "entry",
                "()V",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                2,
                |m| {
                    m.invoke_static("Lapp/Main;", "request", "()V", &[]);
                    m.ret(None);
                },
            );
            c.method(
                "request",
                "()V",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                4,
                |m| {
                    m.new_instance(m.reg(0), "Ljava/net/HttpURLConnection;");
                    m.invoke_virtual(
                        "Ljava/net/HttpURLConnection;",
                        "getInputStream",
                        "()Ljava/io/InputStream;",
                        &[m.reg(0)],
                    );
                    m.move_result(m.reg(1));
                    m.invoke_static("Lapp/Main;", "helper", "()I", &[]);
                    m.move_result(m.reg(2));
                    m.ret(None);
                },
            );
            c.method(
                "helper",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                2,
                |m| {
                    m.const_int(m.reg(0), 5);
                    m.ret(Some(m.reg(0)));
                },
            );
            c.method(
                "bystander",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                2,
                |m| {
                    m.const_int(m.reg(0), 1);
                    m.ret(Some(m.reg(0)));
                },
            );
        });
        let file = b.finish().unwrap();
        let (_, names) = slice_of(&file);
        assert!(names.contains("request"), "seed");
        assert!(names.contains("entry"), "backward closure");
        assert!(names.contains("helper"), "forward closure");
        assert!(!names.contains("bystander"), "untouched code stays out");
    }

    #[test]
    fn field_fixpoint_pulls_in_storing_methods() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/Cfg;", |c| {
            c.super_class("Ljava/lang/Object;");
            c.field("retries", "I", AccessFlags::PUBLIC | AccessFlags::STATIC);
            // request loads the field; init (otherwise unreachable from
            // the slice) stores it.
            c.method(
                "request",
                "()V",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                4,
                |m| {
                    m.new_instance(m.reg(0), "Ljava/net/HttpURLConnection;");
                    m.invoke_virtual(
                        "Ljava/net/HttpURLConnection;",
                        "getInputStream",
                        "()Ljava/io/InputStream;",
                        &[m.reg(0)],
                    );
                    m.move_result(m.reg(1));
                    m.sget(m.reg(2), "Lapp/Cfg;", "retries", "I");
                    m.ret(None);
                },
            );
            c.method(
                "init",
                "()V",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                2,
                |m| {
                    m.const_int(m.reg(0), 3);
                    m.sput(m.reg(0), "Lapp/Cfg;", "retries", "I");
                    m.ret(None);
                },
            );
        });
        let file = b.finish().unwrap();
        let (_, names) = slice_of(&file);
        assert!(names.contains("request"));
        assert!(names.contains("init"), "field stores join the slice");
    }

    #[test]
    fn no_network_program_has_an_empty_slice() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/Quiet;", |c| {
            c.super_class("Ljava/lang/Object;");
            c.method(
                "work",
                "()I",
                AccessFlags::PUBLIC | AccessFlags::STATIC,
                2,
                |m| {
                    m.const_int(m.reg(0), 7);
                    m.ret(Some(m.reg(0)));
                },
            );
        });
        let file = b.finish().unwrap();
        let (_, names) = slice_of(&file);
        assert!(names.is_empty());
    }
}
