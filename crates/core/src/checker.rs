//! The NChecker driver: binary in, warning reports out.

use crate::checks::{
    check_config_with, check_notification, check_response_with, is_guarded_strict_with,
    is_guarded_with, methods_invoking_connectivity, methods_observing_connectivity,
};
use crate::context::AnalyzedApp;
use crate::icc::{
    conn_guarded_components, find_icc_sends, icc_send_reachable, some_component_displays_alert,
};
use crate::reach::{find_request_sites, RequestSite};
use crate::report::{fix_suggestion, DefectKind, Evidence, Location, OverRetryContext, Report};
use crate::retry::{covered_by_retry, find_retry_loops};
use nck_android::apk::{Apk, ApkError};
use nck_dex::verify::{VerifyError, VerifyScope};
use nck_ir::lift::LiftError;
use nck_netlibs::api::Registry;
use nck_netlibs::library::Library;
use nck_obs::{MetricsSnapshot, Obs, PipelineTrace};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// Which analyses to run.
#[derive(Debug, Clone, Copy)]
pub struct CheckerConfig {
    /// Check connectivity guards (§4.4.1).
    pub connectivity: bool,
    /// Check timeout config APIs (§4.4.1).
    pub timeout: bool,
    /// Check retry config APIs (§4.4.1).
    pub retry: bool,
    /// Check retry parameters against the request context (§4.4.2).
    pub retry_params: bool,
    /// Check failure notifications (§4.4.3).
    pub notification: bool,
    /// Check response validity (§4.4.4).
    pub response: bool,
    /// Identify customized retry loops (§4.5); disabling this is the
    /// ablation of the loop rules.
    pub custom_retry: bool,
    /// Model inter-component communication (the paper's §4.7 future
    /// work): connectivity guards and error displays may cross component
    /// boundaries, removing the Table 9 false positives.
    pub icc: bool,
    /// Require connectivity checks to be *control conditions* of the
    /// request (path-sensitive), removing the Table 9 known false
    /// negatives. Off by default, as in the paper.
    pub strict_connectivity: bool,
    /// Use the interprocedural summary engine: guard wrappers,
    /// config-value helpers, and response checks through app helpers.
    /// Disabling this is the ablation of the summary engine, reverting
    /// to the method-local analyses.
    pub interproc: bool,
    /// Demand-driven targeted mode: prescan the constant pool against
    /// the registry, skip bundles that reference no relevant API, and
    /// lift only the relevance slice in full (everything else gets a
    /// stub body). Report-equivalent to a whole-app run — see DESIGN.md
    /// "Targeted analysis". Ignored when `icc` is on (the ICC model
    /// reads bodies the slice does not cover).
    pub targeted: bool,
    /// Bound the strict connectivity check's caller walk to this depth
    /// instead of the default unbounded visited-set traversal. Only
    /// meaningful with `strict_connectivity`; kept for ablation.
    pub strict_caller_depth: Option<usize>,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            connectivity: true,
            timeout: true,
            retry: true,
            retry_params: true,
            notification: true,
            response: true,
            custom_retry: true,
            icc: false,
            strict_connectivity: false,
            interproc: true,
            targeted: false,
            strict_caller_depth: None,
        }
    }
}

/// Per-app aggregate statistics, the raw material of Tables 6 and 8 and
/// Figures 8 and 9.
#[derive(Debug, Clone, Default)]
pub struct AppStats {
    /// Package name.
    pub package: String,
    /// Libraries the app's requests go through.
    pub libraries: BTreeSet<Library>,
    /// Entry-reachable request sites.
    pub requests: usize,
    /// Requests without a connectivity guard.
    pub requests_missing_conn: usize,
    /// Requests without a timeout config.
    pub requests_missing_timeout: usize,
    /// Requests through retry-capable libraries.
    pub retry_capable_requests: usize,
    /// Of those, requests with no retry config and no custom retry loop.
    pub requests_missing_retry: usize,
    /// User-initiated requests.
    pub user_requests: usize,
    /// User-initiated requests without failure notification.
    pub user_requests_missing_notification: usize,
    /// User requests whose library path has an explicit error callback
    /// implemented in the app.
    pub user_requests_explicit_cb: usize,
    /// Of those, notified ones.
    pub user_requests_explicit_cb_notified: usize,
    /// User requests on the implicit (Handler/onPostExecute) path.
    pub user_requests_implicit_cb: usize,
    /// Of those, notified ones.
    pub user_requests_implicit_cb_notified: usize,
    /// Error callbacks that expose typed errors (Volley).
    pub typed_error_callbacks: usize,
    /// Of those, callbacks that consult the error object.
    pub typed_error_callbacks_checked: usize,
    /// Checkable (synchronously captured) responses.
    pub responses: usize,
    /// Responses used without a validity check.
    pub responses_missing_check: usize,
    /// Customized retry loops found.
    pub custom_retry_loops: usize,
    /// User requests with retries disabled (cause 2.1).
    pub no_retry_activity: usize,
    /// Background requests with retries enabled (cause 2.2a).
    pub over_retry_service: usize,
    /// ... of which caused by library defaults.
    pub over_retry_service_default: usize,
    /// POST requests with retries enabled (cause 2.2b).
    pub over_retry_post: usize,
    /// ... of which caused by library defaults.
    pub over_retry_post_default: usize,
    /// Methods summarized by the interprocedural engine.
    pub summary_methods: usize,
    /// Call-graph SCCs condensed during summary computation.
    pub summary_sccs: usize,
    /// Methods whose summary proves a constant return.
    pub summary_const_returns: usize,
    /// Size of the largest SCC condensed during summary computation.
    pub summary_largest_scc: usize,
    /// Static fields the summary engine proved write-once constant.
    pub summary_field_consts: usize,
    /// Summary-cache lookups served during checking.
    pub summary_hits: usize,
}

/// Which pipeline stage dropped a method from the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipCause {
    /// Structural verification rejected the method body.
    Verify,
    /// The lifter could not translate the method body.
    Lift,
}

impl std::fmt::Display for SkipCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SkipCause::Verify => "verify",
            SkipCause::Lift => "lift",
        })
    }
}

/// One method the pipeline skipped while degrading per-method: the rest
/// of the app was analyzed normally, but nothing is known about this
/// method's behaviour (so no defect is reported *inside* it, and checks
/// that would have needed its body err on the side of the surrounding
/// evidence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisSkip {
    /// Rendered `class.name(sig)` identity.
    pub method: String,
    /// Which stage gave up on the method.
    pub cause: SkipCause,
    /// Human-readable failure detail.
    pub detail: String,
}

/// The complete analysis result for one app.
#[derive(Debug, Clone, Default)]
pub struct AppReport {
    /// Aggregate statistics.
    pub stats: AppStats,
    /// Individual warning reports.
    pub defects: Vec<Report>,
    /// Methods dropped by per-method degradation (empty on well-formed
    /// inputs). A non-empty list means the report is *incomplete*, not
    /// wrong: defects listed are real, but the skipped methods were not
    /// examined.
    pub skipped_methods: Vec<AnalysisSkip>,
    /// Phase-level span tree of the run, when tracing was enabled.
    pub trace: Option<PipelineTrace>,
    /// Metrics recorded during the run, when metrics were enabled.
    pub metrics: Option<MetricsSnapshot>,
}

impl AppReport {
    /// Number of defects of `kind`-matching label (exact enum match for
    /// non-parameterized kinds).
    pub fn count(&self, kind: DefectKind) -> usize {
        self.defects.iter().filter(|d| d.kind == kind).count()
    }

    /// Returns `true` when any defect of the given label family exists.
    pub fn has(&self, kind: DefectKind) -> bool {
        self.count(kind) > 0
    }

    /// Returns `true` when the analysis degraded (some methods skipped).
    pub fn degraded(&self) -> bool {
        !self.skipped_methods.is_empty()
    }
}

/// Errors from analyzing an app container.
#[derive(Debug)]
pub enum AnalyzeError {
    /// The container failed to parse.
    Apk(ApkError),
    /// The bytecode failed to lift.
    Lift(LiftError),
    /// Structural verification found damage wider than a single method
    /// (class- or file-scoped), leaving no sound way to analyze the app.
    Verify(Vec<VerifyError>),
    /// A panic escaped the pipeline and was contained by
    /// [`NChecker::analyze_bytes_checked`]. Always a bug: the pipeline
    /// is meant to return typed errors on any input.
    Panic(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Apk(e) => write!(f, "apk: {e}"),
            AnalyzeError::Lift(e) => write!(f, "lift: {e}"),
            AnalyzeError::Verify(errs) => match errs.first() {
                Some(first) if errs.len() > 1 => {
                    write!(f, "verify: {first} (+{} more)", errs.len() - 1)
                }
                Some(first) => write!(f, "verify: {first}"),
                None => write!(f, "verify: structural verification failed"),
            },
            AnalyzeError::Panic(msg) => write!(f, "panic contained in analysis: {msg}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// The NChecker tool.
#[derive(Debug, Default)]
pub struct NChecker {
    registry: Registry,
    /// Analysis toggles.
    pub config: CheckerConfig,
    /// Observability template. Disabled by default; each analyzed app
    /// mints fresh sinks from it via [`Obs::fresh`], so span trees and
    /// metrics stay per-app even under a parallel corpus runner.
    pub obs: Obs,
}

/// Attaches the finished trace and metrics snapshot to a report. Every
/// live span guard must be dropped before this runs.
fn seal(mut report: AppReport, obs: &Obs) -> AppReport {
    if obs.tracer.is_enabled() {
        report.trace = Some(obs.tracer.finish());
    }
    if obs.metrics.is_enabled() {
        report.metrics = Some(obs.metrics.snapshot());
    }
    report
}

impl NChecker {
    /// Creates a checker with the standard registry and all analyses on.
    pub fn new() -> NChecker {
        NChecker::default()
    }

    /// Creates a checker with specific toggles.
    pub fn with_config(config: CheckerConfig) -> NChecker {
        NChecker {
            registry: Registry::standard(),
            config,
            obs: Obs::disabled(),
        }
    }

    /// Analyzes a serialized APK container.
    ///
    /// Binaries from the wild are routinely truncated, corrupted, or
    /// adversarial, so the full pipeline behind this entry point is
    /// fault-tolerant: parse failures and class-level structural damage
    /// return typed errors, while per-method damage *degrades* — the
    /// offending methods are skipped and recorded on
    /// [`AppReport::skipped_methods`], and the rest of the app is
    /// analyzed normally.
    pub fn analyze_bytes(&self, bytes: &[u8]) -> Result<AppReport, AnalyzeError> {
        let obs = self.obs.fresh();
        let report = {
            let _app = obs.tracer.span("app");
            let apk = {
                let _s = obs.tracer.span("parse");
                Apk::from_bytes_obs(bytes, &obs.metrics).map_err(AnalyzeError::Apk)?
            };
            self.analyze_apk_with(&apk, &obs)?
        };
        Ok(seal(report, &obs))
    }

    /// [`NChecker::analyze_bytes`] with a panic-containment backstop.
    ///
    /// The pipeline is designed to return typed errors on any input, and
    /// the fuzz harness holds it to that; this wrapper is the defence in
    /// depth for a corpus run that must survive its worst input even if a
    /// panic slips through, converting it into [`AnalyzeError::Panic`]
    /// instead of unwinding through the caller.
    pub fn analyze_bytes_checked(&self, bytes: &[u8]) -> Result<AppReport, AnalyzeError> {
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.analyze_bytes(bytes)));
        match result {
            Ok(r) => r,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                Err(AnalyzeError::Panic(msg))
            }
        }
    }

    /// Analyzes a serialized bundle, reusing everything `prev` can
    /// soundly offer and returning the replay material for the *next*
    /// version alongside the report.
    ///
    /// Reuse has three rungs, each gated by content fingerprints:
    ///
    /// 1. **Whole report** — identical bundle bytes and configuration:
    ///    the cached report is returned verbatim.
    /// 2. **Class prefix** — the longest leading run of classes whose
    ///    content fingerprints match skips per-class verification,
    ///    replays the lift, reuses per-method dataflow artifacts, and
    ///    seeds the interprocedural summaries (changed methods, plus any
    ///    replayed method whose call resolution drifted, are recomputed
    ///    transitively through the call-graph dirty set).
    /// 3. **Nothing** — no entry, config mismatch, or a degraded app.
    ///
    /// Checkers always run in full: their evidence inspects global state
    /// (entry reachability, scanned-loop counts, call-graph paths) that
    /// per-method caching cannot soundly slice. The returned entry is
    /// `None` exactly when there is nothing safe to cache: the analysis
    /// degraded (skipped methods mean unknown behaviour — such apps also
    /// never *read* the cache beyond rung 1, which requires bytes
    /// identical to a previously *clean* run), or rung 1 hit (the old
    /// entry is still current).
    pub fn analyze_bytes_reusing(
        &self,
        bytes: &[u8],
        prev: Option<&crate::cache::AppCacheEntry>,
    ) -> Result<
        (
            AppReport,
            Option<crate::cache::AppCacheEntry>,
            crate::cache::ReuseStats,
        ),
        AnalyzeError,
    > {
        self.analyze_bytes_reusing_fp(bytes, nck_dex::wire::fnv1a(bytes), prev)
    }

    /// [`Checker::analyze_bytes_reusing`] with the bundle fingerprint
    /// supplied by the caller. The service hashes each bundle exactly
    /// once per lookup (the same fingerprint gates both cache tiers) and
    /// threads it through here instead of re-hashing per rung.
    /// `bundle_fp` must be `fnv1a(bytes)`; anything else would record a
    /// cache entry that can never be matched — or worse, matched
    /// wrongly.
    pub fn analyze_bytes_reusing_fp(
        &self,
        bytes: &[u8],
        bundle_fp: u64,
        prev: Option<&crate::cache::AppCacheEntry>,
    ) -> Result<
        (
            AppReport,
            Option<crate::cache::AppCacheEntry>,
            crate::cache::ReuseStats,
        ),
        AnalyzeError,
    > {
        use crate::cache::{config_fingerprint, AppCacheEntry, ReuseStats};
        use crate::context::AppReuse;

        debug_assert_eq!(bundle_fp, nck_dex::wire::fnv1a(bytes));
        let obs = self.obs.fresh();
        let config_fp = config_fingerprint(&self.config);
        if let Some(p) = prev {
            if p.bundle_fp == bundle_fp && p.config_fp == config_fp {
                let stats = ReuseStats {
                    whole_report: true,
                    classes_total: p.class_fps.len(),
                    classes_reused: p.class_fps.len(),
                    ..ReuseStats::default()
                };
                return Ok((seal(p.report.clone(), &obs), None, stats));
            }
        }
        // A seed computed under different analysis semantics is useless.
        let prev = prev.filter(|p| p.config_fp == config_fp);

        // Targeted mode only participates in rung 1 (whole-report
        // reuse): class-prefix replay materializes *full* lifted bodies,
        // which would silently re-run the whole-app pipeline and forfeit
        // the prescan/slice savings. Targeted entries therefore carry
        // only the report; their seed fields stay empty.
        if self.config.targeted {
            let report = {
                let _app = obs.tracer.span("app");
                let apk = {
                    let _s = obs.tracer.span("parse");
                    Apk::from_bytes_obs(bytes, &obs.metrics).map_err(AnalyzeError::Apk)?
                };
                self.analyze_apk_with(&apk, &obs)?
            };
            let stats = ReuseStats {
                degraded: report.degraded(),
                ..ReuseStats::default()
            };
            let entry = (!report.degraded()).then(|| AppCacheEntry {
                bundle_fp,
                config_fp,
                report: report.clone(),
                ..AppCacheEntry::default()
            });
            return Ok((seal(report, &obs), entry, stats));
        }

        let mut stats = ReuseStats::default();
        let (report, entry) = {
            let _app = obs.tracer.span("app");
            let apk = {
                let _s = obs.tracer.span("parse");
                Apk::from_bytes_obs(bytes, &obs.metrics).map_err(AnalyzeError::Apk)?
            };
            let class_fps = {
                let _s = obs.tracer.span("class_fps");
                nck_dex::class_fingerprints(&apk.adx)
            };
            let prefix = prev.map_or(0, |p| p.lift_seed.common_prefix(&class_fps));
            stats.classes_total = class_fps.len();

            // Skip per-class verification only for prefix classes: they
            // were verified clean by the run that recorded the seed
            // (degraded runs never write entries).
            let skip: Vec<bool> = (0..class_fps.len()).map(|i| i < prefix).collect();
            let verify_errors = {
                let s = obs.tracer.span("verify");
                let errs = nck_dex::verify::verify_with_skip(&apk.adx, &skip);
                s.add_items(errs.len() as u64);
                errs
            };
            if !verify_errors.is_empty() {
                // Degraded (or unanalyzable) input: take the cold path in
                // full — its per-method degradation policy applies — and
                // write nothing back.
                stats.degraded = true;
                let report = self.analyze_apk_with(&apk, &obs)?;
                return Ok((seal(report, &obs), None, stats));
            }

            let lifted = {
                let _s = obs.tracer.span("lift");
                nck_ir::lift::lift_file_seeded(&apk.adx, &class_fps, prev.map(|p| &p.lift_seed))
                    .map_err(AnalyzeError::Lift)?
            };
            let nck_ir::lift::SeededLift {
                program,
                seed: lift_seed,
                reused_classes,
                reused_methods,
            } = lifted;
            stats.classes_reused = reused_classes;
            stats.methods_total = program.methods.iter().filter(|m| m.body.is_some()).count();

            let reuse = prev.map(|p| AppReuse {
                analyses: &p.analyses,
                reused_methods: &reused_methods,
                callee_fps: &p.callee_fps,
                summary_seed: &p.summary_seed,
            });
            let app = AnalyzedApp::new_reusing(
                apk.manifest.clone(),
                program,
                &self.registry,
                reuse,
                &obs,
            );
            let ctx = app.reuse_stats();
            stats.analyses_reused = ctx.analyses_reused;
            stats.summaries_clean = ctx.summaries_clean;
            stats.summaries_dirty = ctx.summaries_dirty;

            let report = self.analyze_with(&app, &obs);
            let entry = AppCacheEntry {
                bundle_fp,
                config_fp,
                class_fps,
                lift_seed,
                callee_fps: app.callee_fps().to_vec(),
                analyses: app.analyses_arc().clone(),
                summary_seed: app.summary_seed().clone(),
                report: report.clone(),
            };
            (report, entry)
        };
        Ok((seal(report, &obs), Some(entry), stats))
    }

    /// Analyzes a parsed APK bundle.
    pub fn analyze_apk(&self, apk: &Apk) -> Result<AppReport, AnalyzeError> {
        let obs = self.obs.fresh();
        let report = {
            let _app = obs.tracer.span("app");
            self.analyze_apk_with(apk, &obs)?
        };
        Ok(seal(report, &obs))
    }

    fn analyze_apk_with(&self, apk: &Apk, obs: &Obs) -> Result<AppReport, AnalyzeError> {
        // Structural verification between parse and lift: the lifter and
        // every downstream analysis assume in-range registers, branch
        // targets, and pool references; nothing downstream re-checks.
        let verify_errors = {
            let s = obs.tracer.span("verify");
            let errs = nck_dex::verify::verify(&apk.adx);
            s.add_items(errs.len() as u64);
            errs
        };
        if obs.metrics.is_enabled() {
            obs.metrics.inc("verify.errors", verify_errors.len() as u64);
        }
        // Degradation policy: method-scoped damage skips just that
        // method; anything wider (class/file scope) is unanalyzable.
        let wide: Vec<VerifyError> = verify_errors
            .iter()
            .filter(|e| e.scope != VerifyScope::Method)
            .cloned()
            .collect();
        if !wide.is_empty() {
            return Err(AnalyzeError::Verify(wide));
        }
        let mut bad_methods: BTreeMap<String, String> = BTreeMap::new();
        for e in &verify_errors {
            bad_methods
                .entry(e.method.clone())
                .or_insert_with(|| e.to_string());
        }

        if self.config.targeted {
            if self.config.icc {
                // The restriction stands (the ICC model reads component
                // bodies the relevance slice does not cover), but the
                // fallback must leave a trace instead of silently
                // dropping the flag.
                obs.metrics.inc("targeted.fallback_icc", 1);
                obs.events.warn(
                    "targeted mode is ignored with icc enabled: falling back to \
                     whole-app analysis (the ICC model reads bodies outside the \
                     relevance slice)",
                );
            } else {
                return self.analyze_apk_targeted(apk, &bad_methods, obs);
            }
        }

        let (program, lift_skips) = {
            let _s = obs.tracer.span("lift");
            let (program, skips) =
                nck_ir::lift_file_lenient(&apk.adx, &|name| bad_methods.get(name).cloned());
            if obs.metrics.is_enabled() {
                obs.metrics
                    .inc("lift.classes", program.classes.len() as u64);
                obs.metrics.inc(
                    "lift.methods",
                    program.methods.iter().filter(|m| m.body.is_some()).count() as u64,
                );
                obs.metrics.inc(
                    "lift.bodiless",
                    program.methods.iter().filter(|m| m.body.is_none()).count() as u64,
                );
                obs.metrics.inc(
                    "lift.stmts",
                    program
                        .methods
                        .iter()
                        .filter_map(|m| m.body.as_ref())
                        .map(|b| b.stmts.len() as u64)
                        .sum(),
                );
            }
            (program, skips)
        };
        let skipped_methods: Vec<AnalysisSkip> = lift_skips
            .into_iter()
            .map(|s| {
                let cause = if bad_methods.contains_key(&s.method) {
                    SkipCause::Verify
                } else {
                    SkipCause::Lift
                };
                AnalysisSkip {
                    method: s.method,
                    cause,
                    detail: s.reason,
                }
            })
            .collect();
        if !skipped_methods.is_empty() {
            if obs.metrics.is_enabled() {
                obs.metrics
                    .inc("analyze.skipped_methods", skipped_methods.len() as u64);
            }
            obs.events.warn(&format!(
                "{}: degraded analysis, {} method(s) skipped (first: {})",
                apk.manifest.package,
                skipped_methods.len(),
                skipped_methods[0].method
            ));
            for s in &skipped_methods {
                obs.events
                    .debug(&format!("skipped {} [{}]: {}", s.method, s.cause, s.detail));
            }
        }

        let app = AnalyzedApp::new_with_obs(apk.manifest.clone(), program, &self.registry, obs);
        let mut report = self.analyze_with(&app, obs);
        report.skipped_methods = skipped_methods;
        Ok(report)
    }

    /// The demand-driven pipeline behind [`CheckerConfig::targeted`]:
    /// constant-pool prescan, skeleton lift, relevance slice, on-demand
    /// full lift of the slice, then the unchanged checkers.
    ///
    /// Equivalence to the whole-app pipeline is structural, not
    /// best-effort: stub bodies preserve exactly the statement numbering
    /// and the call/field/allocation surface the call graph and summary
    /// engine read, and every method whose *other* statements any
    /// checker can consult is in the slice and re-lifted in full (see
    /// `targeted.rs` and DESIGN.md). The differential suite holds the
    /// JSON reports byte-identical across both modes.
    ///
    /// `bad_methods` are the per-method structural-verification verdicts
    /// the caller already computed; they drive the same degradation
    /// policy as the whole-app lift.
    fn analyze_apk_targeted(
        &self,
        apk: &Apk,
        bad_methods: &BTreeMap<String, String>,
        obs: &Obs,
    ) -> Result<AppReport, AnalyzeError> {
        let scan = {
            let s = obs.tracer.span("prescan");
            let scan = nck_dex::prescan(&apk.adx, &|class, name| {
                self.registry.is_relevant_api(class, name)
            });
            s.add_items(scan.relevant_refs.len() as u64);
            scan
        };
        if obs.metrics.is_enabled() {
            obs.metrics
                .inc("targeted.relevant_refs", scan.relevant_refs.len() as u64);
            obs.metrics.inc(
                "targeted.touching_classes",
                scan.touching_classes.len() as u64,
            );
        }

        // Fast path: nothing in the pool names a relevant API and no
        // method failed verification, so a whole-app run provably finds
        // zero request sites, zero defects, and zero skips — emit that
        // report without lifting a single instruction.
        if !scan.touches_network() && bad_methods.is_empty() {
            if obs.metrics.is_enabled() {
                obs.metrics.inc("targeted.prescan_skipped", 1);
                obs.metrics.inc(
                    "targeted.methods_total",
                    apk.adx.concrete_methods().count() as u64,
                );
            }
            let mut report = AppReport::default();
            report.stats.package = apk.manifest.package.clone();
            return Ok(report);
        }

        let (mut program, lift_skips, origins) = {
            let _s = obs.tracer.span("lift");
            nck_ir::lift_file_skeleton(&apk.adx, &|name| bad_methods.get(name).cloned())
        };
        let slice = {
            let s = obs.tracer.span("slice");
            let callgraph = crate::callgraph::CallGraph::build(&program);
            let slice = crate::targeted::relevance_slice(&program, &self.registry, &callgraph);
            s.add_items(slice.len() as u64);
            slice
        };
        let mut all_skips = lift_skips;
        {
            let _s = obs.tracer.span("relift");
            let ids: Vec<nck_ir::body::MethodId> = slice.iter().copied().collect();
            nck_ir::relift_methods(&apk.adx, &mut program, &origins, &ids, &mut all_skips);
        }
        if obs.metrics.is_enabled() {
            obs.metrics
                .inc("targeted.slice_methods", slice.len() as u64);
            obs.metrics.inc(
                "targeted.methods_total",
                program.methods.iter().filter(|m| m.body.is_some()).count() as u64,
            );
            obs.metrics.inc(
                "targeted.methods_lifted",
                slice
                    .iter()
                    .filter(|&&id| program.method(id).body.is_some())
                    .count() as u64,
            );
        }

        let skipped_methods: Vec<AnalysisSkip> = all_skips
            .into_iter()
            .map(|s| {
                let cause = if bad_methods.contains_key(&s.method) {
                    SkipCause::Verify
                } else {
                    SkipCause::Lift
                };
                AnalysisSkip {
                    method: s.method,
                    cause,
                    detail: s.reason,
                }
            })
            .collect();
        if !skipped_methods.is_empty() {
            if obs.metrics.is_enabled() {
                obs.metrics
                    .inc("analyze.skipped_methods", skipped_methods.len() as u64);
            }
            obs.events.warn(&format!(
                "{}: degraded analysis, {} method(s) skipped (first: {})",
                apk.manifest.package,
                skipped_methods.len(),
                skipped_methods[0].method
            ));
            for s in &skipped_methods {
                obs.events
                    .debug(&format!("skipped {} [{}]: {}", s.method, s.cause, s.detail));
            }
        }

        let app = AnalyzedApp::new_with_obs(apk.manifest.clone(), program, &self.registry, obs);
        let mut report = self.analyze_with(&app, obs);
        report.skipped_methods = skipped_methods;
        Ok(report)
    }

    /// Runs all configured analyses over an already-built context.
    pub fn analyze(&self, app: &AnalyzedApp<'_>) -> AppReport {
        let obs = self.obs.fresh();
        let report = self.analyze_with(app, &obs);
        seal(report, &obs)
    }

    fn analyze_with(&self, app: &AnalyzedApp<'_>, obs: &Obs) -> AppReport {
        let _checkers = obs.tracer.span("checkers");
        let sites = {
            let s = obs.tracer.span("find_sites");
            let sites = find_request_sites(app);
            s.add_items(sites.len() as u64);
            sites
        };
        let conn_methods = {
            let s = obs.tracer.span("conn_methods");
            let set = if self.config.interproc {
                methods_observing_connectivity(app)
            } else {
                methods_invoking_connectivity(app)
            };
            s.add_items(set.len() as u64);
            set
        };
        let retry_loops = {
            let s = obs.tracer.span("retry_loops");
            let loops = if self.config.custom_retry {
                find_retry_loops(app)
            } else {
                Vec::new()
            };
            s.add_items(loops.len() as u64);
            loops
        };
        let icc_span = self.config.icc.then(|| obs.tracer.span("icc"));
        let icc_sends = if self.config.icc {
            find_icc_sends(app)
        } else {
            Vec::new()
        };
        let icc_guarded = if self.config.icc {
            conn_guarded_components(app, &icc_sends, &conn_methods)
        } else {
            Default::default()
        };
        let icc_alert_component = self.config.icc && some_component_displays_alert(app);
        drop(icc_span);

        if obs.metrics.is_enabled() {
            obs.metrics.inc("check.sites", sites.len() as u64);
            obs.metrics
                .inc("check.conn_methods", conn_methods.len() as u64);
            obs.metrics
                .inc("check.retry_loops", retry_loops.len() as u64);
        }
        let timing = obs.tracer.is_enabled();
        let mut t_conn = Duration::ZERO;
        let mut t_config = Duration::ZERO;
        let mut t_params = Duration::ZERO;
        let mut t_notif = Duration::ZERO;
        let mut t_resp = Duration::ZERO;

        let mut report = AppReport::default();
        report.stats.package = app.manifest.package.clone();
        report.stats.custom_retry_loops = retry_loops.len();

        for site in &sites {
            let stats = &mut report.stats;
            stats.requests += 1;
            stats.libraries.insert(site.library());
            let location = self.location_of(app, site);
            let call_stack = self.call_stack_of(app, site);
            let context = if site.user_initiated {
                "Request made by user. Need to notify users if connection is unavailable."
                    .to_owned()
            } else if site.background {
                "Request made by background service. Cache and stop the operation to save \
                 energy and mobile data."
                    .to_owned()
            } else {
                "Request context unknown.".to_owned()
            };
            let api = format!(
                "{}.{}",
                app.program
                    .symbols
                    .resolve(app.program.method(site.method).key.class),
                site.target.api.name
            );
            let site_method = app.display_method(site.method);

            // Every defect's evidence chain starts from the request
            // itself and the call-graph path that reaches it.
            let mut base_ev = vec![Evidence::Request {
                method: site_method.clone(),
                stmt: site.stmt.0,
                api: api.clone(),
            }];
            if let Some(&entry_idx) = site.entries.first() {
                if let Some(path) = app
                    .callgraph
                    .path(app.entries[entry_idx].method, site.method)
                {
                    for edge in path.iter().take(3) {
                        base_ev.push(Evidence::CallEdge {
                            caller: app.display_method(edge.caller),
                            callee: app.display_method(edge.callee),
                            stmt: edge.stmt.0,
                        });
                    }
                }
            }

            let push = |report: &mut AppReport,
                        kind: DefectKind,
                        message: String,
                        extra: Vec<Evidence>| {
                let fix = fix_suggestion(kind, site.library(), site.user_initiated);
                let mut provenance = base_ev.clone();
                provenance.extend(extra);
                if obs.metrics.is_enabled() {
                    obs.metrics
                        .inc(&format!("defects.{}", crate::json::kind_id(kind)), 1);
                }
                report.defects.push(Report {
                    kind,
                    library: site.library(),
                    location: location.clone(),
                    message,
                    context: context.clone(),
                    call_stack: call_stack.clone(),
                    fix,
                    provenance,
                });
            };

            // §4.4.1 — connectivity. ICC-aware mode also accepts a guard
            // in the component that launched this one.
            let t0 = timing.then(Instant::now);
            let icc_conn_guard = self.config.icc
                && site.entries.iter().any(|&e| {
                    app.entries[e]
                        .component
                        .is_some_and(|c| icc_guarded.contains(&c))
                });
            let conn_ok = if self.config.strict_connectivity {
                is_guarded_strict_with(
                    app,
                    site,
                    self.config.interproc,
                    self.config.strict_caller_depth,
                )
            } else {
                is_guarded_with(app, site, &conn_methods, self.config.interproc)
            } || icc_conn_guard;
            if self.config.connectivity && !conn_ok {
                report.stats.requests_missing_conn += 1;
                let mut ev = vec![Evidence::Absence {
                    what: "connectivity check guarding the request".into(),
                    scanned: site
                        .entries
                        .iter()
                        .map(|&e| app.entry_reach[e].len())
                        .max()
                        .unwrap_or(0),
                }];
                if let Some(&m) = conn_methods.iter().next() {
                    ev.push(Evidence::SummaryFact {
                        method: app.display_method(m),
                        what: "observes a connectivity API but does not guard this request".into(),
                    });
                }
                push(
                    &mut report,
                    DefectKind::MissedConnectivityCheck,
                    format!(
                        "Missing network connectivity check before {}",
                        site.target.api.name
                    ),
                    ev,
                );
            }
            if let Some(t0) = t0 {
                t_conn += t0.elapsed();
            }

            // §4.4.1 — config APIs.
            let t0 = timing.then(Instant::now);
            let sc = check_config_with(app, site, self.config.interproc);
            let custom = covered_by_retry(app, &retry_loops, site);
            // IR facts for the config calls the taint analysis attributed
            // to this request's carrier object, shared by the config and
            // parameter checks below.
            let config_call_ev: Vec<Evidence> = sc
                .config_calls
                .iter()
                .take(3)
                .map(|&(m, s)| Evidence::IrFact {
                    method: app.display_method(m),
                    stmt: s.0,
                    what: "config API call on the request object".into(),
                })
                .collect();
            if self.config.timeout && !sc.has_timeout {
                report.stats.requests_missing_timeout += 1;
                let mut ev = vec![Evidence::Absence {
                    what: format!("timeout config API call for {api}"),
                    scanned: sc.config_calls.len(),
                }];
                ev.extend(config_call_ev.iter().cloned());
                push(
                    &mut report,
                    DefectKind::MissedTimeout,
                    format!("No timeout set for network request {api}"),
                    ev,
                );
            }
            if site.library().has_retry_api() {
                report.stats.retry_capable_requests += 1;
                if self.config.retry && !sc.has_retry_config && !custom {
                    report.stats.requests_missing_retry += 1;
                    let ev = vec![Evidence::Absence {
                        what: format!("retry config API call or custom retry loop for {api}"),
                        scanned: sc.config_calls.len() + retry_loops.len(),
                    }];
                    push(
                        &mut report,
                        DefectKind::MissedRetry,
                        format!("No retry policy set for network request {api}"),
                        ev,
                    );
                }
            }
            if let Some(t0) = t0 {
                t_config += t0.elapsed();
            }

            // §4.4.2 — parameters in context. The paper evaluates retry
            // behaviour only for apps "that use libraries with retry
            // APIs" (Table 8, 91 apps).
            let t0 = timing.then(Instant::now);
            if self.config.retry_params && site.library().has_retry_api() {
                // `None` means a retry API was invoked with an unknown
                // count: retries are enabled.
                let retries_enabled = sc.effective_retries.map(|n| n > 0).unwrap_or(true);
                // How the analysis resolved the retry behaviour, shared
                // by the three parameter-in-context defects.
                let retry_fact = if sc.retry_default_used {
                    "library default retry policy in force (no retry API call found)".to_owned()
                } else {
                    match sc.effective_retries {
                        Some(n) => format!("retry count resolved to the constant {n}"),
                        None => "retry API invoked with a non-constant count".to_owned(),
                    }
                };
                let mut retry_prov = vec![Evidence::SummaryFact {
                    method: site_method.clone(),
                    what: retry_fact,
                }];
                retry_prov.extend(config_call_ev.iter().cloned());
                if site.user_initiated && !retries_enabled && !custom {
                    report.stats.no_retry_activity += 1;
                    push(
                        &mut report,
                        DefectKind::NoRetryInActivity,
                        "Time-sensitive user request performed without retry on transient errors"
                            .to_owned(),
                        retry_prov.clone(),
                    );
                }
                if site.background && retries_enabled {
                    report.stats.over_retry_service += 1;
                    if sc.retry_default_used {
                        report.stats.over_retry_service_default += 1;
                    }
                    push(
                        &mut report,
                        DefectKind::OverRetry {
                            context: OverRetryContext::Service,
                            default_caused: sc.retry_default_used,
                        },
                        "Background service request retries on failure, wasting energy".to_owned(),
                        retry_prov.clone(),
                    );
                }
                // When the default is in force, it only bites POSTs if the
                // library's default retry policy covers non-idempotent
                // methods (Volley and Async HTTP do; Basic does not).
                let post_retries = if sc.retry_default_used {
                    retries_enabled
                        && nck_netlibs::library::defaults(site.library()).retries_apply_to_post
                } else {
                    retries_enabled
                };
                if site.is_post() && post_retries {
                    report.stats.over_retry_post += 1;
                    if sc.retry_default_used {
                        report.stats.over_retry_post_default += 1;
                    }
                    push(
                        &mut report,
                        DefectKind::OverRetry {
                            context: OverRetryContext::Post,
                            default_caused: sc.retry_default_used,
                        },
                        "Non-idempotent POST request is automatically retried".to_owned(),
                        retry_prov.clone(),
                    );
                }
            }
            if let Some(t0) = t0 {
                t_params += t0.elapsed();
            }

            // §4.4.3 — failure notification (user requests only; "the
            // error message is only helpful when the user initiates the
            // request").
            let t0 = timing.then(Instant::now);
            if self.config.notification && site.user_initiated {
                report.stats.user_requests += 1;
                let nf = check_notification(app, site);
                if nf.explicit_error_callback {
                    report.stats.user_requests_explicit_cb += 1;
                    if nf.notified {
                        report.stats.user_requests_explicit_cb_notified += 1;
                    }
                } else {
                    report.stats.user_requests_implicit_cb += 1;
                    if nf.notified {
                        report.stats.user_requests_implicit_cb_notified += 1;
                    }
                }
                let icc_notified = self.config.icc
                    && !nf.notified
                    && icc_alert_component
                    && icc_send_reachable(app, &icc_sends, nf.callback.unwrap_or(site.method), 3);
                if !nf.notified && !icc_notified {
                    report.stats.user_requests_missing_notification += 1;
                    let mut ev = vec![match nf.callback {
                        Some(cb) => Evidence::SummaryFact {
                            method: app.display_method(cb),
                            what: "error callback contains no user-visible notification call"
                                .into(),
                        },
                        None => Evidence::Absence {
                            what: "explicit error callback for the request".into(),
                            scanned: 0,
                        },
                    }];
                    ev.push(Evidence::Absence {
                        what: "failure notification (Toast/dialog/setText) on the error path"
                            .into(),
                        scanned: 1,
                    });
                    push(
                        &mut report,
                        DefectKind::MissedFailureNotification,
                        "No failure notification shown to the user when the request fails"
                            .to_owned(),
                        ev,
                    );
                }
                if let Some(checked) = nf.error_types_checked {
                    report.stats.typed_error_callbacks += 1;
                    if checked {
                        report.stats.typed_error_callbacks_checked += 1;
                    } else {
                        let ev = vec![Evidence::SummaryFact {
                            method: app.display_method(nf.callback.unwrap_or(site.method)),
                            what: "typed error parameter never consulted in the callback body"
                                .into(),
                        }];
                        push(
                            &mut report,
                            DefectKind::NoErrorTypeCheck,
                            "Error callback ignores the typed error object".to_owned(),
                            ev,
                        );
                    }
                }
            } else if site.user_initiated {
                report.stats.user_requests += 1;
            }
            if let Some(t0) = t0 {
                t_notif += t0.elapsed();
            }

            // §4.4.4 — response validity.
            let t0 = timing.then(Instant::now);
            if self.config.response {
                if let Some(rf) = check_response_with(app, site, self.config.interproc) {
                    if !rf.uses.is_empty() {
                        report.stats.responses += 1;
                        if !rf.unchecked_uses.is_empty() {
                            report.stats.responses_missing_check += 1;
                            let mut ev: Vec<Evidence> = rf
                                .unchecked_uses
                                .iter()
                                .take(3)
                                .map(|u| Evidence::IrFact {
                                    method: site_method.clone(),
                                    stmt: u.0,
                                    what: "response value used without a dominating validity check"
                                        .into(),
                                })
                                .collect();
                            ev.push(Evidence::Absence {
                                what: "null/validity check dominating the response use".into(),
                                scanned: rf.uses.len(),
                            });
                            push(
                                &mut report,
                                DefectKind::MissedResponseCheck,
                                "Response used without a validity/null check".to_owned(),
                                ev,
                            );
                        }
                    }
                }
            }
            if let Some(t0) = t0 {
                t_resp += t0.elapsed();
            }
        }

        if timing {
            let n = sites.len() as u64;
            obs.tracer.record("connectivity", t_conn, n);
            obs.tracer.record("config", t_config, n);
            obs.tracer.record("retry_params", t_params, n);
            obs.tracer
                .record("notification", t_notif, report.stats.user_requests as u64);
            obs.tracer
                .record("response", t_resp, report.stats.responses as u64);
        }
        if obs.metrics.is_enabled() {
            obs.metrics
                .inc("check.defects", report.defects.len() as u64);
        }

        let sstats = app.summaries().stats();
        report.stats.summary_methods = sstats.methods;
        report.stats.summary_sccs = sstats.sccs;
        report.stats.summary_const_returns = sstats.const_returns;
        report.stats.summary_largest_scc = sstats.largest_scc;
        report.stats.summary_field_consts = sstats.field_consts;
        report.stats.summary_hits = app.summaries().hits();

        report
    }

    fn location_of(&self, app: &AnalyzedApp<'_>, site: &RequestSite) -> Location {
        let key = app.program.method(site.method).key;
        Location {
            class: nck_ir::Type::parse(app.program.symbols.resolve(key.class))
                .map(|t| t.pretty())
                .unwrap_or_else(|| app.program.symbols.resolve(key.class).to_owned()),
            method: app.program.symbols.resolve(key.name).to_owned(),
            stmt: site.stmt.0,
        }
    }

    fn call_stack_of(&self, app: &AnalyzedApp<'_>, site: &RequestSite) -> Vec<String> {
        let Some(&entry_idx) = site.entries.first() else {
            return vec![];
        };
        let entry = &app.entries[entry_idx];
        let mut frames = Vec::new();
        let fmt = |m: nck_ir::MethodId, s: u32| {
            let key = app.program.method(m).key;
            format!(
                "{}.{}: {s}",
                nck_ir::Type::parse(app.program.symbols.resolve(key.class))
                    .map(|t| t.pretty())
                    .unwrap_or_default(),
                app.program.symbols.resolve(key.name)
            )
        };
        if let Some(path) = app.callgraph.path(entry.method, site.method) {
            for e in &path {
                frames.push(fmt(e.caller, e.stmt.0));
            }
        }
        frames.push(fmt(site.method, site.stmt.0));
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_android::manifest::{ComponentKind, Manifest};
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;

    const BASIC: &str = "Lcom/turbomanage/httpclient/BasicHttpClient;";
    const GET_SIG: &str = "(Ljava/lang/String;Lcom/turbomanage/httpclient/ParameterMap;)Lcom/turbomanage/httpclient/HttpResponse;";

    fn naive_apk() -> Apk {
        let mut b = AdxBuilder::new();
        b.class("Lapp/Main;", |c| {
            c.super_class("Landroid/app/Activity;");
            c.method(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                AccessFlags::PUBLIC,
                8,
                |m| {
                    let cl = m.reg(0);
                    m.new_instance(cl, BASIC);
                    m.invoke_direct(BASIC, "<init>", "()V", &[cl]);
                    m.invoke_virtual(BASIC, "get", GET_SIG, &[cl, m.reg(1), m.reg(2)]);
                    m.move_result(m.reg(3));
                    m.invoke_virtual(
                        "Lcom/turbomanage/httpclient/HttpResponse;",
                        "getBodyAsString",
                        "()Ljava/lang/String;",
                        &[m.reg(3)],
                    );
                    m.move_result(m.reg(4));
                    m.ret(None);
                },
            );
        });
        let mut manifest = Manifest::new("com.example.naive");
        manifest
            .permission("android.permission.INTERNET")
            .component("Lapp/Main;", ComponentKind::Activity);
        Apk::new(manifest, b.finish().unwrap())
    }

    #[test]
    fn naive_app_triggers_the_figure5_defects() {
        let checker = NChecker::new();
        let report = checker.analyze_apk(&naive_apk()).unwrap();
        assert_eq!(report.stats.requests, 1);
        assert!(report.has(DefectKind::MissedConnectivityCheck));
        assert!(report.has(DefectKind::MissedTimeout));
        assert!(report.has(DefectKind::MissedRetry));
        assert!(report.has(DefectKind::MissedFailureNotification));
        // BasicHttpClient has no response-check API annotated, so no
        // response defect here.
        assert!(!report.has(DefectKind::MissedResponseCheck));
        // Every defect report renders.
        for d in &report.defects {
            let text = d.render();
            assert!(text.contains("Fix Suggestion"));
            assert!(text.contains("call stack"));
        }
    }

    #[test]
    fn analyze_bytes_roundtrip() {
        let checker = NChecker::new();
        let bytes = naive_apk().to_bytes();
        let report = checker.analyze_bytes(&bytes).unwrap();
        assert_eq!(report.stats.package, "com.example.naive");
        assert!(!report.defects.is_empty());
    }

    #[test]
    fn toggles_disable_checks() {
        let checker = NChecker::with_config(CheckerConfig {
            connectivity: false,
            timeout: false,
            ..CheckerConfig::default()
        });
        let report = checker.analyze_apk(&naive_apk()).unwrap();
        assert!(!report.has(DefectKind::MissedConnectivityCheck));
        assert!(!report.has(DefectKind::MissedTimeout));
        assert!(report.has(DefectKind::MissedRetry));
    }

    #[test]
    fn call_stack_starts_at_the_entry() {
        let checker = NChecker::new();
        let report = checker.analyze_apk(&naive_apk()).unwrap();
        let d = &report.defects[0];
        assert!(d.call_stack[0].contains("onCreate"));
    }

    /// Grafts a method whose body references a register outside its own
    /// frame onto an otherwise healthy app.
    fn apk_with_one_broken_method() -> Apk {
        let mut apk = naive_apk();
        let adx = &mut apk.adx;
        let class_ty = adx.pools.type_("Lapp/Main;");
        let void = adx.pools.type_("V");
        let proto = adx.pools.proto(void, vec![]);
        let name = adx.pools.string("broken");
        let method = adx.pools.method(class_ty, proto, name);
        let class = adx
            .classes
            .iter_mut()
            .find(|c| c.ty == class_ty)
            .expect("Lapp/Main; exists");
        class.methods.push(nck_dex::MethodDef {
            method,
            flags: AccessFlags::PUBLIC,
            code: Some(nck_dex::CodeItem {
                registers: 1,
                ins: 0,
                insns: vec![
                    nck_dex::Insn::Move {
                        dst: nck_dex::Reg(9),
                        src: nck_dex::Reg(0),
                    },
                    nck_dex::Insn::Return { src: None },
                ],
                tries: vec![],
            }),
        });
        apk
    }

    #[test]
    fn method_scoped_damage_degrades_instead_of_failing() {
        let checker = NChecker::new();
        let report = checker.analyze_apk(&apk_with_one_broken_method()).unwrap();
        // The damaged method is skipped and recorded...
        assert!(report.degraded());
        assert_eq!(report.skipped_methods.len(), 1);
        let skip = &report.skipped_methods[0];
        assert!(skip.method.contains("broken"), "skip: {skip:?}");
        assert_eq!(skip.cause, SkipCause::Verify);
        // ...while the healthy entry point still yields its defects.
        assert_eq!(report.stats.requests, 1);
        assert!(report.has(DefectKind::MissedConnectivityCheck));
    }

    #[test]
    fn class_scoped_damage_is_a_typed_error() {
        let mut apk = naive_apk();
        // A dangling superclass reference poisons resolution for the
        // whole class, not just one method.
        apk.adx.classes[0].superclass = Some(nck_dex::TypeIdx(999));
        let err = NChecker::new().analyze_apk(&apk).unwrap_err();
        match err {
            AnalyzeError::Verify(errs) => {
                assert!(errs.iter().all(|e| e.scope != VerifyScope::Method));
            }
            other => panic!("expected AnalyzeError::Verify, got {other}"),
        }
    }

    #[test]
    fn healthy_apps_report_no_skips() {
        let report = NChecker::new().analyze_apk(&naive_apk()).unwrap();
        assert!(!report.degraded());
        assert!(report.skipped_methods.is_empty());
    }
}
