//! Request-site discovery, reachability, and context classification
//! (§4.4, §4.4.2).
//!
//! NChecker "first performs reachability analysis and determines if there
//! exist a target API which can be reached by the entry point"; it then
//! classifies each request as user-initiated (reached from an Activity
//! entry) or background (reached from a Service), and determines the HTTP
//! method (POST detection) via the target API, argument types, or constant
//! propagation.

use crate::context::AnalyzedApp;
use nck_dataflow::taint::{object_flow, FlowOptions, ObjectFlow};
use nck_ir::body::{Body, LocalId, MethodId, StmtId};
use nck_netlibs::api::{volley_method_constant, HttpMethod, MethodDetermination, TargetApi};
use nck_netlibs::library::Library;

/// One network request call site with its classification.
#[derive(Debug, Clone)]
pub struct RequestSite {
    /// The method containing the call.
    pub method: MethodId,
    /// The call statement.
    pub stmt: StmtId,
    /// The matched target API.
    pub target: TargetApi,
    /// Statically determined HTTP method, when known.
    pub http_method: Option<HttpMethod>,
    /// Indices into [`AnalyzedApp::entries`] of entries reaching the site.
    pub entries: Vec<usize>,
    /// `true` when some reaching entry is user-triggered.
    pub user_initiated: bool,
    /// `true` when some reaching entry belongs to a Service.
    pub background: bool,
}

impl RequestSite {
    /// Returns `true` for POST requests.
    pub fn is_post(&self) -> bool {
        self.http_method == Some(HttpMethod::Post)
    }

    /// The library the request goes through.
    pub fn library(&self) -> Library {
        self.target.library
    }
}

/// Returns the local carrying the configuration for a request: the request
/// object for Volley (`add(request)`), otherwise the client receiver.
pub fn config_carrier_local(body: &Body, stmt: StmtId, target: &TargetApi) -> Option<LocalId> {
    let inv = body.stmt(stmt).invoke_expr()?;
    let op = if target.library == Library::Volley {
        // Receiver is the queue; the request object is the first argument.
        *inv.args.get(1)?
    } else {
        // The client receiver for instance calls; the first argument is
        // the best available carrier for static ones.
        *inv.args.first()?
    };
    op.as_local()
}

/// Computes the object flow of a request's config carrier.
pub fn carrier_flow(body: &Body, stmt: StmtId, target: &TargetApi) -> Option<ObjectFlow> {
    let seed = config_carrier_local(body, stmt, target)?;
    Some(object_flow(body, seed, FlowOptions::default()))
}

fn str_of<'a>(app: &'a AnalyzedApp<'_>, sym: nck_ir::Symbol) -> &'a str {
    app.program.symbols.resolve(sym)
}

/// Determines the HTTP method of the request at `stmt`.
fn http_method_of(
    app: &AnalyzedApp<'_>,
    method: MethodId,
    stmt: StmtId,
    target: &TargetApi,
) -> Option<HttpMethod> {
    let body = app.body(method);
    let ma = app.analysis(method);
    let inv = body.stmt(stmt).invoke_expr()?;
    let recv_offset = usize::from(inv.kind.has_receiver());
    match target.method {
        MethodDetermination::Always(m) => Some(m),
        MethodDetermination::ByIntArg { arg } => {
            // Volley: the request object's constructor's first int arg is
            // the Request.Method constant.
            let flow = carrier_flow(body, stmt, target)?;
            for &call in &flow.invoked_on {
                let cinv = body.stmt(call).invoke_expr()?;
                if str_of(app, cinv.callee.name) != "<init>" {
                    continue;
                }
                if let Some(op) = cinv.args.get(1 + arg) {
                    if let Some(v) = ma.cp().operand_value(call, *op).as_int() {
                        return volley_method_constant(v);
                    }
                }
            }
            None
        }
        MethodDetermination::ByArgType { arg } => {
            let op = inv.args.get(recv_offset + arg)?;
            let local = op.as_local()?;
            let ty = body.locals.get(local.0 as usize)?.ty?;
            let name = str_of(app, ty);
            if name.contains("HttpPost") {
                Some(HttpMethod::Post)
            } else if name.contains("HttpGet") {
                Some(HttpMethod::Get)
            } else if name.contains("HttpPut") {
                Some(HttpMethod::Put)
            } else if name.contains("HttpDelete") {
                Some(HttpMethod::Delete)
            } else {
                None
            }
        }
        MethodDetermination::ByConfigApi => {
            // setRequestMethod("POST") on the tainted client.
            let flow = carrier_flow(body, stmt, target)?;
            for &call in &flow.invoked_on {
                let cinv = body.stmt(call).invoke_expr()?;
                if str_of(app, cinv.callee.name) != "setRequestMethod" {
                    continue;
                }
                let arg = cinv.args.get(1)?;
                if let Some(s) = ma.cp().operand_value(call, *arg).as_str() {
                    return match str_of(app, s) {
                        "POST" => Some(HttpMethod::Post),
                        "GET" => Some(HttpMethod::Get),
                        "PUT" => Some(HttpMethod::Put),
                        "DELETE" => Some(HttpMethod::Delete),
                        "HEAD" => Some(HttpMethod::Head),
                        _ => None,
                    };
                }
            }
            // HttpURLConnection defaults to GET when never set.
            Some(HttpMethod::Get)
        }
        MethodDetermination::Unknown => None,
    }
}

/// Finds every entry-reachable request site in the app.
pub fn find_request_sites(app: &AnalyzedApp<'_>) -> Vec<RequestSite> {
    let mut sites = Vec::new();
    for (mid, m) in app.program.iter_methods() {
        let Some(body) = &m.body else { continue };
        for (sid, stmt) in body.iter() {
            let Some(inv) = stmt.invoke_expr() else {
                continue;
            };
            let class = str_of(app, inv.callee.class);
            let name = str_of(app, inv.callee.name);
            let Some(target) = app.registry.target(class, name) else {
                continue;
            };
            let entries = app.entries_reaching(mid);
            if entries.is_empty() {
                // Dead code: no framework path triggers it.
                continue;
            }
            let user_initiated = entries.iter().any(|&e| app.entries[e].is_user_context());
            let background = entries.iter().any(|&e| {
                app.entries[e].component_kind == nck_android::manifest::ComponentKind::Service
            });
            let target = *target;
            let http_method = http_method_of(app, mid, sid, &target);
            sites.push(RequestSite {
                method: mid,
                stmt: sid,
                target,
                http_method,
                entries,
                user_initiated,
                background,
            });
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AnalyzedApp;
    use nck_android::manifest::{ComponentKind, Manifest};
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;
    use nck_ir::lift_file;
    use nck_netlibs::api::Registry;

    fn registry() -> &'static Registry {
        use std::sync::OnceLock;
        static R: OnceLock<Registry> = OnceLock::new();
        R.get_or_init(Registry::standard)
    }

    fn analyze(build: impl FnOnce(&mut AdxBuilder), manifest: Manifest) -> AnalyzedApp<'static> {
        let mut b = AdxBuilder::new();
        build(&mut b);
        let program = lift_file(&b.finish().unwrap()).unwrap();
        AnalyzedApp::new(manifest, program, registry())
    }

    #[test]
    fn activity_request_is_user_initiated() {
        let mut manifest = Manifest::new("app");
        manifest.component("Lapp/Main;", ComponentKind::Activity);
        let app = analyze(
            |b| {
                b.class("Lapp/Main;", |c| {
                    c.super_class("Landroid/app/Activity;");
                    c.method(
                        "onCreate",
                        "(Landroid/os/Bundle;)V",
                        AccessFlags::PUBLIC,
                        6,
                        |m| {
                            let cl = m.reg(0);
                            m.new_instance(cl, "Lcom/turbomanage/httpclient/BasicHttpClient;");
                            m.invoke_direct(
                                "Lcom/turbomanage/httpclient/BasicHttpClient;",
                                "<init>",
                                "()V",
                                &[cl],
                            );
                            m.invoke_virtual(
                                "Lcom/turbomanage/httpclient/BasicHttpClient;",
                                "get",
                                "(Ljava/lang/String;Lcom/turbomanage/httpclient/ParameterMap;)Lcom/turbomanage/httpclient/HttpResponse;",
                                &[cl, m.reg(1), m.reg(2)],
                            );
                            m.move_result(m.reg(3));
                            m.ret(None);
                        },
                    );
                });
            },
            manifest,
        );
        let sites = find_request_sites(&app);
        assert_eq!(sites.len(), 1);
        let s = &sites[0];
        assert!(s.user_initiated);
        assert!(!s.background);
        assert_eq!(s.http_method, Some(HttpMethod::Get));
        assert_eq!(s.library(), Library::BasicHttpClient);
    }

    #[test]
    fn service_request_is_background() {
        let mut manifest = Manifest::new("app");
        manifest.component("Lapp/Sync;", ComponentKind::Service);
        let app = analyze(
            |b| {
                b.class("Lapp/Sync;", |c| {
                    c.super_class("Landroid/app/Service;");
                    c.method("onCreate", "()V", AccessFlags::PUBLIC, 6, |m| {
                        let cl = m.reg(0);
                        m.new_instance(cl, "Lcom/loopj/android/http/AsyncHttpClient;");
                        m.invoke_direct(
                            "Lcom/loopj/android/http/AsyncHttpClient;",
                            "<init>",
                            "()V",
                            &[cl],
                        );
                        m.invoke_virtual(
                            "Lcom/loopj/android/http/AsyncHttpClient;",
                            "post",
                            "(Ljava/lang/String;Lcom/loopj/android/http/ResponseHandlerInterface;)Lcom/loopj/android/http/RequestHandle;",
                            &[cl, m.reg(1), m.reg(2)],
                        );
                        m.ret(None);
                    });
                });
            },
            manifest,
        );
        let sites = find_request_sites(&app);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].background);
        assert!(!sites[0].user_initiated);
        assert!(sites[0].is_post());
    }

    #[test]
    fn unreachable_request_is_skipped() {
        let manifest = Manifest::new("app");
        let app = analyze(
            |b| {
                b.class("Lapp/Dead;", |c| {
                    c.method("never", "()V", AccessFlags::PUBLIC, 6, |m| {
                        let cl = m.reg(0);
                        m.new_instance(cl, "Lcom/turbomanage/httpclient/BasicHttpClient;");
                        m.invoke_direct(
                            "Lcom/turbomanage/httpclient/BasicHttpClient;",
                            "<init>",
                            "()V",
                            &[cl],
                        );
                        m.invoke_virtual(
                            "Lcom/turbomanage/httpclient/BasicHttpClient;",
                            "get",
                            "(Ljava/lang/String;Lcom/turbomanage/httpclient/ParameterMap;)Lcom/turbomanage/httpclient/HttpResponse;",
                            &[cl, m.reg(1), m.reg(2)],
                        );
                        m.ret(None);
                    });
                });
            },
            manifest,
        );
        assert!(find_request_sites(&app).is_empty());
    }

    #[test]
    fn volley_post_detected_via_constructor_constant() {
        let mut manifest = Manifest::new("app");
        manifest.component("Lapp/Main;", ComponentKind::Activity);
        let app = analyze(
            |b| {
                b.class("Lapp/Main;", |c| {
                    c.super_class("Landroid/app/Activity;");
                    c.method(
                        "onCreate",
                        "(Landroid/os/Bundle;)V",
                        AccessFlags::PUBLIC,
                        8,
                        |m| {
                            let q = m.reg(0);
                            let req = m.reg(1);
                            let method = m.reg(2);
                            m.invoke_static(
                                "Lcom/android/volley/toolbox/Volley;",
                                "newRequestQueue",
                                "()Lcom/android/volley/RequestQueue;",
                                &[],
                            );
                            m.move_result(q);
                            m.new_instance(req, "Lcom/android/volley/toolbox/StringRequest;");
                            m.const_int(method, 1); // Request.Method.POST.
                            m.invoke_direct(
                                "Lcom/android/volley/toolbox/StringRequest;",
                                "<init>",
                                "(ILjava/lang/String;)V",
                                &[req, method, m.reg(3)],
                            );
                            m.invoke_virtual(
                                "Lcom/android/volley/RequestQueue;",
                                "add",
                                "(Lcom/android/volley/Request;)Lcom/android/volley/Request;",
                                &[q, req],
                            );
                            m.ret(None);
                        },
                    );
                });
            },
            manifest,
        );
        let sites = find_request_sites(&app);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].is_post());
        assert_eq!(sites[0].library(), Library::Volley);
    }

    #[test]
    fn http_url_connection_set_request_method_post() {
        let mut manifest = Manifest::new("app");
        manifest.component("Lapp/Main;", ComponentKind::Activity);
        let app = analyze(
            |b| {
                b.class("Lapp/Main;", |c| {
                    c.super_class("Landroid/app/Activity;");
                    c.method(
                        "onCreate",
                        "(Landroid/os/Bundle;)V",
                        AccessFlags::PUBLIC,
                        8,
                        |m| {
                            let conn = m.reg(0);
                            let s = m.reg(1);
                            m.new_instance(conn, "Ljava/net/HttpURLConnection;");
                            m.invoke_direct(
                                "Ljava/net/HttpURLConnection;",
                                "<init>",
                                "()V",
                                &[conn],
                            );
                            m.const_str(s, "POST");
                            m.invoke_virtual(
                                "Ljava/net/HttpURLConnection;",
                                "setRequestMethod",
                                "(Ljava/lang/String;)V",
                                &[conn, s],
                            );
                            m.invoke_virtual(
                                "Ljava/net/HttpURLConnection;",
                                "getInputStream",
                                "()Ljava/io/InputStream;",
                                &[conn],
                            );
                            m.move_result(m.reg(2));
                            m.ret(None);
                        },
                    );
                });
            },
            manifest,
        );
        let sites = find_request_sites(&app);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].is_post());
    }
}
