//! Android-aware call-graph construction (the FlowDroid role).
//!
//! Class-hierarchy-analysis edges for explicit calls, plus implicit
//! framework edges: `AsyncTask.execute` → `doInBackground`/`onPostExecute`,
//! `Thread.start` → `run`, `Handler.post(Runnable)` → `run` (§4.4, the
//! running example's dashed "callback" arrow in Figure 5).

use nck_android::callbacks::implicit_edges_for;
use nck_dataflow::{tarjan_sccs, BitSet};
use nck_ir::body::{MethodId, MethodKey, Operand, Program, StmtId};
use nck_ir::symbols::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// One call edge: a statement in a caller resolving to a callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// The calling method.
    pub caller: MethodId,
    /// The call statement within the caller.
    pub stmt: StmtId,
    /// The resolved callee.
    pub callee: MethodId,
    /// `true` for framework-mediated (implicit) edges.
    pub implicit: bool,
}

/// The program call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Outgoing edges per caller.
    out_edges: BTreeMap<MethodId, Vec<CallEdge>>,
    /// Incoming edges per callee.
    in_edges: BTreeMap<MethodId, Vec<CallEdge>>,
}

/// A read-only set of methods backed by a shared bitset.
///
/// Entry-reach sets used to be one `BTreeSet<MethodId>` per entry point,
/// recomputed by an independent BFS each. Entries whose methods sit in the
/// same call-graph component now share a single allocation via `Arc`, and
/// membership tests are O(1) bit probes.
#[derive(Debug, Clone)]
pub struct MethodSet {
    bits: Arc<BitSet>,
}

impl MethodSet {
    /// `true` when `m` is in the set.
    pub fn contains(&self, m: MethodId) -> bool {
        self.bits.contains(m.0 as usize)
    }

    /// Number of methods in the set.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.bits.iter().map(|i| MethodId(i as u32))
    }
}

/// Resolves a virtual/interface call key to program methods via CHA:
/// the statically named class (walking supertypes for inherited
/// implementations) plus every program subclass overriding the method.
fn resolve_virtual(program: &Program, key: MethodKey) -> Vec<MethodId> {
    let mut out = Vec::new();
    // Walk up from the static receiver class for an inherited definition.
    for cls in program.hierarchy(key.class) {
        if let Some(id) = program.lookup_method(MethodKey { class: cls, ..key }) {
            out.push(id);
            break;
        }
    }
    // Every subclass of the static class that defines the method.
    for class in &program.classes {
        if class.name == key.class {
            continue;
        }
        let is_sub = program.hierarchy(class.name).contains(&key.class)
            || program.all_interfaces(class.name).contains(&key.class);
        if !is_sub {
            continue;
        }
        if let Some(id) = program.lookup_method(MethodKey {
            class: class.name,
            ..key
        }) {
            out.push(id);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Returns `true` when `class`'s hierarchy (within the program, ending at
/// the first framework type) contains `base`.
fn extends(program: &Program, class: Symbol, base: &str) -> bool {
    program
        .hierarchy(class)
        .iter()
        .chain(program.all_interfaces(class).iter())
        .any(|&s| program.symbols.resolve(s) == base)
}

impl CallGraph {
    /// Builds the call graph of `program`.
    pub fn build(program: &Program) -> CallGraph {
        let mut cg = CallGraph::default();
        // CHA resolution walks every program class per query; apps invoke
        // the same (class, name, sig) key from many sites, so memoize the
        // resolution per key for the duration of the build.
        let mut virt_cache: HashMap<MethodKey, Vec<MethodId>> = HashMap::new();

        for (caller, method) in program.iter_methods() {
            let Some(body) = &method.body else { continue };
            for (stmt_id, stmt) in body.iter() {
                let Some(inv) = stmt.invoke_expr() else {
                    continue;
                };
                let key = inv.callee;

                // Explicit edges.
                let callees: Vec<MethodId> = match inv.kind {
                    nck_dex::InvokeKind::Static | nck_dex::InvokeKind::Direct => {
                        program.lookup_method(key).into_iter().collect()
                    }
                    nck_dex::InvokeKind::Super => {
                        // Look strictly above the caller's class.
                        let mut found = None;
                        for cls in program.hierarchy(method.key.class).into_iter().skip(1) {
                            if let Some(id) = program.lookup_method(MethodKey { class: cls, ..key })
                            {
                                found = Some(id);
                                break;
                            }
                        }
                        found.into_iter().collect()
                    }
                    nck_dex::InvokeKind::Virtual | nck_dex::InvokeKind::Interface => virt_cache
                        .entry(key)
                        .or_insert_with(|| resolve_virtual(program, key))
                        .clone(),
                };
                for callee in callees {
                    cg.add_edge(CallEdge {
                        caller,
                        stmt: stmt_id,
                        callee,
                        implicit: false,
                    });
                }

                // Implicit framework edges.
                let name = program.symbols.resolve(key.name);
                for rule in implicit_edges_for(name) {
                    let flow_class: Option<Symbol> = if rule.via_argument {
                        // The flow target is the first non-receiver arg;
                        // use its local's type hint.
                        let arg_pos = usize::from(inv.kind.has_receiver());
                        inv.args.get(arg_pos).and_then(|op| match op {
                            Operand::Local(l) => body.locals.get(l.0 as usize)?.ty,
                            _ => None,
                        })
                    } else {
                        Some(key.class)
                    };
                    let Some(flow_class) = flow_class else {
                        continue;
                    };
                    // The receiver (or argument) class must extend the
                    // rule's trigger class.
                    let trigger_matches = if rule.via_argument {
                        // For Runnable-like arguments, require the target
                        // class to define `run` etc.; the interface check
                        // is implicit in the lookup below.
                        true
                    } else {
                        extends(program, flow_class, rule.trigger_class)
                            || program.symbols.resolve(flow_class) == rule.trigger_class
                    };
                    if !trigger_matches {
                        continue;
                    }
                    for &(tname, tsig) in rule.targets {
                        // Look for the target on the flow class or any
                        // superclass defined in the program.
                        for cls in program.hierarchy(flow_class) {
                            let Some(name_sym) = program.symbols.get(tname) else {
                                continue;
                            };
                            let Some(sig_sym) = program.symbols.get(tsig) else {
                                continue;
                            };
                            let tkey = MethodKey {
                                class: cls,
                                name: name_sym,
                                sig: sig_sym,
                            };
                            if let Some(callee) = program.lookup_method(tkey) {
                                cg.add_edge(CallEdge {
                                    caller,
                                    stmt: stmt_id,
                                    callee,
                                    implicit: true,
                                });
                                break;
                            }
                        }
                    }
                }
            }
        }

        cg
    }

    fn add_edge(&mut self, edge: CallEdge) {
        // CHA and the implicit-edge rules can derive the same edge more
        // than once (e.g. a target reachable both as an override and an
        // inherited definition); keep the edge lists duplicate-free so
        // downstream traversals never visit a callee twice per site.
        let out = self.out_edges.entry(edge.caller).or_default();
        if out.contains(&edge) {
            return;
        }
        out.push(edge);
        self.in_edges.entry(edge.callee).or_default().push(edge);
    }

    /// Outgoing edges of `caller`.
    pub fn callees(&self, caller: MethodId) -> &[CallEdge] {
        self.out_edges
            .get(&caller)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Incoming edges of `callee`.
    pub fn callers(&self, callee: MethodId) -> &[CallEdge] {
        self.in_edges.get(&callee).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Callees of one specific call statement, yielded lazily (no
    /// per-query allocation).
    pub fn callees_at(
        &self,
        caller: MethodId,
        stmt: StmtId,
    ) -> impl Iterator<Item = MethodId> + '_ {
        self.callees(caller)
            .iter()
            .filter(move |e| e.stmt == stmt)
            .map(|e| e.callee)
    }

    /// Methods reachable from `entry` (inclusive).
    pub fn reachable_from(&self, entry: MethodId) -> BTreeSet<MethodId> {
        let mut seen = BTreeSet::from([entry]);
        let mut queue = VecDeque::from([entry]);
        while let Some(m) = queue.pop_front() {
            for e in self.callees(m) {
                if seen.insert(e.callee) {
                    queue.push_back(e.callee);
                }
            }
        }
        seen
    }

    /// Reachable-method sets for every entry at once (each inclusive of
    /// its entry), replacing one independent BFS per entry.
    ///
    /// The graph is condensed with Tarjan (components emitted
    /// callees-first), then per-component reach bitsets are built
    /// bottom-up: reach(c) = members(c) ∪ ⋃ reach(callee components).
    /// All methods of one SCC are mutually reachable, so every entry in a
    /// component — and every entry in distinct components with identical
    /// closures — shares the same `Arc`'d bitset.
    pub fn entry_reach_sets(&self, entries: &[MethodId], n_methods: usize) -> Vec<MethodSet> {
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n_methods];
        for (caller, edges) in &self.out_edges {
            let slot = &mut succs[caller.0 as usize];
            slot.extend(edges.iter().map(|e| e.callee.0 as usize));
            slot.sort_unstable();
            slot.dedup();
        }
        let components = tarjan_sccs(n_methods, &succs);
        let mut comp_of = vec![0usize; n_methods];
        for (ci, comp) in components.iter().enumerate() {
            for &m in comp {
                comp_of[m] = ci;
            }
        }
        // Callees-first emission order means every callee component's
        // reach set exists by the time its callers are processed.
        let mut reach: Vec<Arc<BitSet>> = Vec::with_capacity(components.len());
        for (ci, comp) in components.iter().enumerate() {
            let mut callee_comps: Vec<usize> = comp
                .iter()
                .flat_map(|&m| succs[m].iter().map(|&t| comp_of[t]))
                .filter(|&cj| cj != ci)
                .collect();
            callee_comps.sort_unstable();
            callee_comps.dedup();
            let mut bits = BitSet::new(n_methods);
            for &m in comp {
                bits.insert(m);
            }
            for cj in callee_comps {
                bits.union_with(&reach[cj]);
            }
            reach.push(Arc::new(bits));
        }
        entries
            .iter()
            .map(|e| MethodSet {
                bits: Arc::clone(&reach[comp_of[e.0 as usize]]),
            })
            .collect()
    }

    /// Finds one call path `entry → ... → target` as a list of edges, BFS
    /// (shortest by hops). Returns `None` when unreachable.
    pub fn path(&self, entry: MethodId, target: MethodId) -> Option<Vec<CallEdge>> {
        if entry == target {
            return Some(vec![]);
        }
        let mut parent: HashMap<MethodId, CallEdge> = HashMap::new();
        let mut queue = VecDeque::from([entry]);
        let mut seen = BTreeSet::from([entry]);
        while let Some(m) = queue.pop_front() {
            for &e in self.callees(m) {
                if seen.insert(e.callee) {
                    parent.insert(e.callee, e);
                    if e.callee == target {
                        let mut path = vec![e];
                        let mut cur = m;
                        while cur != entry {
                            let pe = parent[&cur];
                            path.push(pe);
                            cur = pe.caller;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(e.callee);
                }
            }
        }
        None
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.out_edges.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;
    use nck_ir::lift_file;

    fn program_of(build: impl FnOnce(&mut AdxBuilder)) -> Program {
        let mut b = AdxBuilder::new();
        build(&mut b);
        lift_file(&b.finish().unwrap()).unwrap()
    }

    fn method_named(p: &Program, class: &str, name: &str) -> MethodId {
        p.iter_methods()
            .find(|(_, m)| {
                p.symbols.resolve(m.key.class) == class && p.symbols.resolve(m.key.name) == name
            })
            .map(|(id, _)| id)
            .unwrap_or_else(|| panic!("no method {class}.{name}"))
    }

    #[test]
    fn direct_call_edges() {
        let p = program_of(|b| {
            b.class("La/A;", |c| {
                c.method("f", "()V", AccessFlags::PUBLIC, 2, |m| {
                    m.invoke_virtual("La/A;", "g", "()V", &[m.param(0).unwrap()]);
                    m.ret(None);
                });
                c.method("g", "()V", AccessFlags::PUBLIC, 1, |m| m.ret(None));
            });
        });
        let cg = CallGraph::build(&p);
        let f = method_named(&p, "La/A;", "f");
        let g = method_named(&p, "La/A;", "g");
        assert_eq!(cg.callees(f).len(), 1);
        assert_eq!(cg.callees(f)[0].callee, g);
        assert_eq!(cg.callers(g).len(), 1);
        assert!(cg.reachable_from(f).contains(&g));
    }

    #[test]
    fn virtual_dispatch_includes_overrides() {
        let p = program_of(|b| {
            b.class("La/Base;", |c| {
                c.method("work", "()V", AccessFlags::PUBLIC, 1, |m| m.ret(None));
            });
            b.class("La/Derived;", |c| {
                c.super_class("La/Base;");
                c.method("work", "()V", AccessFlags::PUBLIC, 1, |m| m.ret(None));
            });
            b.class("La/User;", |c| {
                c.method("use", "()V", AccessFlags::PUBLIC, 2, |m| {
                    // Static type Base: CHA must include Derived.work too.
                    m.invoke_virtual("La/Base;", "work", "()V", &[m.reg(0)]);
                    m.ret(None);
                });
            });
        });
        let cg = CallGraph::build(&p);
        let use_ = method_named(&p, "La/User;", "use");
        assert_eq!(cg.callees(use_).len(), 2);
    }

    #[test]
    fn inherited_method_resolves_to_superclass_definition() {
        let p = program_of(|b| {
            b.class("La/Base;", |c| {
                c.method("work", "()V", AccessFlags::PUBLIC, 1, |m| m.ret(None));
            });
            b.class("La/Derived;", |c| {
                c.super_class("La/Base;");
                c.method("other", "()V", AccessFlags::PUBLIC, 1, |m| m.ret(None));
            });
            b.class("La/User;", |c| {
                c.method("use", "()V", AccessFlags::PUBLIC, 2, |m| {
                    m.invoke_virtual("La/Derived;", "work", "()V", &[m.reg(0)]);
                    m.ret(None);
                });
            });
        });
        let cg = CallGraph::build(&p);
        let use_ = method_named(&p, "La/User;", "use");
        let base_work = method_named(&p, "La/Base;", "work");
        assert_eq!(cg.callees(use_).len(), 1);
        assert_eq!(cg.callees(use_)[0].callee, base_work);
    }

    #[test]
    fn async_task_execute_adds_implicit_edges() {
        let p = program_of(|b| {
            b.class("Lapp/FetchTask;", |c| {
                c.super_class("Landroid/os/AsyncTask;");
                c.method(
                    "doInBackground",
                    "([Ljava/lang/Object;)Ljava/lang/Object;",
                    AccessFlags::PUBLIC,
                    4,
                    |m| {
                        m.const_null(m.reg(0));
                        m.ret(Some(m.reg(0)));
                    },
                );
                c.method(
                    "onPostExecute",
                    "(Ljava/lang/Object;)V",
                    AccessFlags::PUBLIC,
                    4,
                    |m| m.ret(None),
                );
            });
            b.class("Lapp/Main;", |c| {
                c.method(
                    "onClick",
                    "(Landroid/view/View;)V",
                    AccessFlags::PUBLIC,
                    4,
                    |m| {
                        m.new_instance(m.reg(0), "Lapp/FetchTask;");
                        m.invoke_direct("Lapp/FetchTask;", "<init>", "()V", &[m.reg(0)]);
                        m.invoke_virtual(
                            "Lapp/FetchTask;",
                            "execute",
                            "([Ljava/lang/Object;)Landroid/os/AsyncTask;",
                            &[m.reg(0), m.reg(1)],
                        );
                        m.ret(None);
                    },
                );
            });
        });
        let cg = CallGraph::build(&p);
        let onclick = method_named(&p, "Lapp/Main;", "onClick");
        let dib = method_named(&p, "Lapp/FetchTask;", "doInBackground");
        let ope = method_named(&p, "Lapp/FetchTask;", "onPostExecute");
        let reach = cg.reachable_from(onclick);
        assert!(reach.contains(&dib), "execute() must reach doInBackground");
        assert!(reach.contains(&ope), "execute() must reach onPostExecute");
        assert!(cg
            .callees(onclick)
            .iter()
            .any(|e| e.implicit && e.callee == dib));
    }

    #[test]
    fn handler_post_flows_to_runnable_run() {
        let p = program_of(|b| {
            b.class("Lapp/Job;", |c| {
                c.interface("Ljava/lang/Runnable;");
                c.method("run", "()V", AccessFlags::PUBLIC, 1, |m| m.ret(None));
            });
            b.class("Lapp/Main;", |c| {
                c.method("go", "()V", AccessFlags::PUBLIC, 4, |m| {
                    m.new_instance(m.reg(0), "Landroid/os/Handler;");
                    m.invoke_direct("Landroid/os/Handler;", "<init>", "()V", &[m.reg(0)]);
                    m.new_instance(m.reg(1), "Lapp/Job;");
                    m.invoke_direct("Lapp/Job;", "<init>", "()V", &[m.reg(1)]);
                    m.invoke_virtual(
                        "Landroid/os/Handler;",
                        "post",
                        "(Ljava/lang/Runnable;)Z",
                        &[m.reg(0), m.reg(1)],
                    );
                    m.ret(None);
                });
            });
        });
        let cg = CallGraph::build(&p);
        let go = method_named(&p, "Lapp/Main;", "go");
        let run = method_named(&p, "Lapp/Job;", "run");
        assert!(cg.reachable_from(go).contains(&run));
    }

    #[test]
    fn edges_are_deduplicated_per_site() {
        // Base defines run(); Job overrides it AND inherits the slot, so
        // naive CHA resolution can surface Job.run twice for one call.
        let p = program_of(|b| {
            b.class("La/Base;", |c| {
                c.method("run", "()V", AccessFlags::PUBLIC, 1, |m| m.ret(None));
            });
            b.class("La/Job;", |c| {
                c.super_class("La/Base;");
                c.method("run", "()V", AccessFlags::PUBLIC, 1, |m| m.ret(None));
            });
            b.class("La/User;", |c| {
                c.method("use", "()V", AccessFlags::PUBLIC, 2, |m| {
                    m.invoke_virtual("La/Base;", "run", "()V", &[m.reg(0)]);
                    m.invoke_virtual("La/Base;", "run", "()V", &[m.reg(0)]);
                    m.ret(None);
                });
            });
        });
        let cg = CallGraph::build(&p);
        let use_ = method_named(&p, "La/User;", "use");
        let mut seen = std::collections::BTreeSet::new();
        for e in cg.callees(use_) {
            assert!(
                seen.insert((e.stmt, e.callee, e.implicit)),
                "duplicate edge at {:?} -> {:?}",
                e.stmt,
                e.callee
            );
        }
        // Each of the two call sites resolves to both implementations.
        let first_site = cg.callees(use_)[0].stmt;
        assert_eq!(cg.callees_at(use_, first_site).count(), 2);
    }

    #[test]
    fn path_reconstruction() {
        let p = program_of(|b| {
            b.class("La/A;", |c| {
                c.method("a", "()V", AccessFlags::PUBLIC, 2, |m| {
                    m.invoke_virtual("La/A;", "b", "()V", &[m.param(0).unwrap()]);
                    m.ret(None);
                });
                c.method("b", "()V", AccessFlags::PUBLIC, 2, |m| {
                    m.invoke_virtual("La/A;", "c", "()V", &[m.param(0).unwrap()]);
                    m.ret(None);
                });
                c.method("c", "()V", AccessFlags::PUBLIC, 1, |m| m.ret(None));
            });
        });
        let cg = CallGraph::build(&p);
        let a = method_named(&p, "La/A;", "a");
        let c = method_named(&p, "La/A;", "c");
        let path = cg.path(a, c).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].caller, a);
        assert_eq!(path[1].callee, c);
        assert!(cg.path(c, a).is_none());
    }
}
