//! Customized retry-loop identification (§4.5, Figure 6).
//!
//! Retry loops are distinguished from ordinary request loops by their exit
//! conditions: either (a) an unconditional exit that only executes when
//! the request succeeds (unreachable from the catch block, Figure 6(b)),
//! or (b) a conditional exit whose condition data-depends — directly
//! (Figure 6(c)) or through a callee's return value (Figure 6(d)) — on
//! statements in a catch block.

use crate::context::AnalyzedApp;
use crate::reach::RequestSite;
use nck_dataflow::slice::{backward_slice, SliceKind};
use nck_ir::body::{Body, MethodId, Rvalue, Stmt, StmtId};
use nck_ir::cfg::Cfg;
use nck_ir::loops::NaturalLoop;
use std::collections::{BTreeSet, VecDeque};

/// Why a loop was classified as a retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryKind {
    /// Unconditional exit unreachable from the catch block (Figure 6(b)).
    SuccessExit,
    /// Conditional exit data-dependent on the catch block (Figure 6(c)).
    CatchCondition,
    /// Conditional exit dependent on a callee whose return value depends
    /// on its own catch block (Figure 6(d)).
    InterprocCatchCondition,
}

/// One identified customized retry loop.
#[derive(Debug, Clone)]
pub struct RetryLoop {
    /// The containing method.
    pub method: MethodId,
    /// The loop header statement.
    pub header: StmtId,
    /// All statements of the loop.
    pub body: BTreeSet<StmtId>,
    /// Why it is a retry loop.
    pub kind: RetryKind,
}

/// Computes the statements reachable from the catch handlers that lie
/// inside `scope` (or the whole body when `scope` is `None`), without
/// passing through `stop` (the loop header).
fn catch_region(
    body: &Body,
    cfg: &Cfg,
    scope: Option<&NaturalLoop>,
    stop: Option<StmtId>,
) -> BTreeSet<StmtId> {
    let mut region = BTreeSet::new();
    for trap in &body.traps {
        let h = trap.handler;
        if let Some(l) = scope {
            if !l.contains(h) {
                continue;
            }
        }
        let mut queue = VecDeque::from([h]);
        while let Some(s) = queue.pop_front() {
            if Some(s) == stop {
                continue;
            }
            if let Some(l) = scope {
                if !l.contains(s) {
                    continue;
                }
            }
            if !region.insert(s) {
                continue;
            }
            for t in cfg.succs(s, false) {
                queue.push_back(t);
            }
        }
    }
    region
}

/// Returns `true` when some `return v` of `method` data-depends on its own
/// catch block (the Figure 6(d) callee shape: `success = false` in catch).
fn return_depends_on_catch(app: &AnalyzedApp<'_>, method: MethodId) -> bool {
    let Some(body) = &app.program.method(method).body else {
        return false;
    };
    if body.traps.is_empty() {
        return false;
    }
    let ma = app.analysis(method);
    let region = catch_region(body, &ma.cfg, None, None);
    if region.is_empty() {
        return false;
    }
    body.iter()
        .filter(|(_, s)| matches!(s, Stmt::Return { value: Some(_) }))
        .any(|(id, _)| {
            let slice = backward_slice(body, ma.rd(), ma.cdeps(), id, SliceKind::Data);
            slice.iter().any(|s| region.contains(s))
        })
}

/// Methods from which a target API call is reachable (inclusive of the
/// methods containing the calls).
fn methods_reaching_targets(app: &AnalyzedApp<'_>) -> BTreeSet<MethodId> {
    let mut seeds = BTreeSet::new();
    for (mid, m) in app.program.iter_methods() {
        let Some(body) = &m.body else { continue };
        for (_, stmt) in body.iter() {
            if let Some(inv) = stmt.invoke_expr() {
                let class = app.program.symbols.resolve(inv.callee.class);
                let name = app.program.symbols.resolve(inv.callee.name);
                if app.registry.target(class, name).is_some() {
                    seeds.insert(mid);
                    break;
                }
            }
        }
    }
    // Reverse closure over the call graph.
    let mut out = seeds.clone();
    let mut queue: VecDeque<MethodId> = seeds.into_iter().collect();
    while let Some(m) = queue.pop_front() {
        for e in app.callgraph.callers(m) {
            if out.insert(e.caller) {
                queue.push_back(e.caller);
            }
        }
    }
    out
}

/// Finds every customized retry loop in the app.
pub fn find_retry_loops(app: &AnalyzedApp<'_>) -> Vec<RetryLoop> {
    let reach_targets = methods_reaching_targets(app);
    let mut out = Vec::new();

    for (mid, m) in app.program.iter_methods() {
        let Some(body) = &m.body else { continue };
        let ma = app.analysis(mid);
        for l in ma.loops() {
            // Step 1: the loop must (transitively) issue a request.
            let issues_request = l.body.iter().any(|&s| {
                let Some(inv) = body.stmt(s).invoke_expr() else {
                    return false;
                };
                let class = app.program.symbols.resolve(inv.callee.class);
                let name = app.program.symbols.resolve(inv.callee.name);
                if app.registry.target(class, name).is_some() {
                    return true;
                }
                app.callgraph
                    .callees_at(mid, s)
                    .any(|c| reach_targets.contains(&c))
            });
            if !issues_request {
                continue;
            }

            let region = catch_region(body, &ma.cfg, Some(l), Some(l.header));
            let exits = l.exits(body, &ma.cfg);

            // Rule (a): an unconditional exit unreachable from the catch
            // block, with a catch present inside the loop.
            let success_exit = !region.is_empty()
                && exits
                    .iter()
                    .any(|e| !e.conditional && !region.contains(&e.from));

            // Rule (b): a conditional exit whose condition data-depends on
            // the catch block, directly or through a callee.
            let mut catch_condition = false;
            let mut interproc = false;
            for e in exits.iter().filter(|e| e.conditional) {
                let slice = backward_slice(body, ma.rd(), ma.cdeps(), e.from, SliceKind::Data);
                if !region.is_empty() && slice.iter().any(|s| s != &e.from && region.contains(s)) {
                    catch_condition = true;
                    break;
                }
                // Figure 6(d): dependence through a callee's return value.
                for &s in &slice {
                    if let Stmt::Assign {
                        rvalue: Rvalue::Invoke(_),
                        ..
                    } = body.stmt(s)
                    {
                        if app
                            .callgraph
                            .callees_at(mid, s)
                            .any(|c| return_depends_on_catch(app, c))
                        {
                            interproc = true;
                        }
                    }
                }
                if interproc {
                    break;
                }
            }

            let kind = if catch_condition {
                RetryKind::CatchCondition
            } else if success_exit {
                RetryKind::SuccessExit
            } else if interproc {
                RetryKind::InterprocCatchCondition
            } else {
                continue; // An ordinary loop over requests.
            };

            out.push(RetryLoop {
                method: mid,
                header: l.header,
                body: l.body.clone(),
                kind,
            });
        }
    }
    out
}

/// Returns `true` when `site` is covered by a customized retry loop: the
/// call sits inside one, or a retry loop transitively calls into the
/// site's method.
pub fn covered_by_retry(app: &AnalyzedApp<'_>, loops: &[RetryLoop], site: &RequestSite) -> bool {
    for l in loops {
        if l.method == site.method && l.body.contains(&site.stmt) {
            return true;
        }
        // A loop elsewhere that calls a method reaching the site's method.
        for &s in &l.body {
            for callee in app.callgraph.callees_at(l.method, s) {
                if callee == site.method
                    || app.callgraph.reachable_from(callee).contains(&site.method)
                {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AnalyzedApp;
    use nck_android::manifest::{ComponentKind, Manifest};
    use nck_dex::builder::AdxBuilder;
    use nck_dex::{AccessFlags, CondOp};
    use nck_ir::lift_file;
    use nck_netlibs::api::Registry;

    fn registry() -> &'static Registry {
        use std::sync::OnceLock;
        static R: OnceLock<Registry> = OnceLock::new();
        R.get_or_init(Registry::standard)
    }

    const BASIC: &str = "Lcom/turbomanage/httpclient/BasicHttpClient;";
    const GET_SIG: &str = "(Ljava/lang/String;Lcom/turbomanage/httpclient/ParameterMap;)Lcom/turbomanage/httpclient/HttpResponse;";

    fn app_of(build: impl FnOnce(&mut AdxBuilder)) -> AnalyzedApp<'static> {
        let mut b = AdxBuilder::new();
        build(&mut b);
        let program = lift_file(&b.finish().unwrap()).unwrap();
        let mut manifest = Manifest::new("app");
        manifest.component("Lapp/Main;", ComponentKind::Activity);
        AnalyzedApp::new(manifest, program, registry())
    }

    /// Figure 6(b): `for(;;) { try { send(request); return; } catch {} }`.
    #[test]
    fn firefox_style_success_exit_loop() {
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    8,
                    |m| {
                        let cl = m.reg(0);
                        m.new_instance(cl, BASIC);
                        m.invoke_direct(BASIC, "<init>", "()V", &[cl]);
                        let head = m.new_label();
                        let handler = m.new_label();
                        m.bind(head);
                        let t = m.begin_try();
                        m.invoke_virtual(BASIC, "get", GET_SIG, &[cl, m.reg(1), m.reg(2)]);
                        m.move_result(m.reg(3));
                        m.ret(None); // Success: leave the method.
                        m.end_try(t, &[(Some("Ljava/io/IOException;"), handler)]);
                        m.bind(handler);
                        m.move_exception(m.reg(4));
                        m.goto(head);
                    },
                );
            });
        });
        let loops = find_retry_loops(&app);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].kind, RetryKind::SuccessExit);
    }

    /// Figure 6(c): `while(retry) { try { send } catch { retry = f() } }`.
    #[test]
    fn volley_style_catch_condition_loop() {
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    10,
                    |m| {
                        let cl = m.reg(0);
                        let retry = m.reg(1);
                        m.new_instance(cl, BASIC);
                        m.invoke_direct(BASIC, "<init>", "()V", &[cl]);
                        m.const_int(retry, 1);
                        let head = m.new_label();
                        let handler = m.new_label();
                        let done = m.new_label();
                        m.bind(head);
                        m.ifz(CondOp::Eq, retry, done); // Exit condition uses retry.
                        let t = m.begin_try();
                        m.invoke_virtual(BASIC, "get", GET_SIG, &[cl, m.reg(2), m.reg(3)]);
                        m.move_result(m.reg(4));
                        m.end_try(t, &[(Some("Ljava/io/IOException;"), handler)]);
                        m.goto(done);
                        m.bind(handler);
                        m.move_exception(m.reg(5));
                        // retry = shouldRetry()
                        m.invoke_virtual(
                            "Lapp/Main;",
                            "shouldRetry",
                            "()Z",
                            &[m.param(0).unwrap()],
                        );
                        m.move_result(retry);
                        m.goto(head);
                        m.bind(done);
                        m.ret(None);
                    },
                );
                c.method("shouldRetry", "()Z", AccessFlags::PUBLIC, 2, |m| {
                    m.const_int(m.reg(0), 0);
                    m.ret(Some(m.reg(0)));
                });
            });
        });
        let loops = find_retry_loops(&app);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].kind, RetryKind::CatchCondition);
    }

    /// Figure 6(d): `while(!success) { success = send(req); }` with the
    /// catch inside the callee.
    #[test]
    fn okhttp_style_interproc_loop() {
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    8,
                    |m| {
                        let success = m.reg(0);
                        m.const_int(success, 0);
                        let head = m.new_label();
                        let done = m.new_label();
                        m.bind(head);
                        m.ifz(CondOp::Ne, success, done);
                        m.invoke_virtual("Lapp/Main;", "send", "()Z", &[m.param(0).unwrap()]);
                        m.move_result(success);
                        m.goto(head);
                        m.bind(done);
                        m.ret(None);
                    },
                );
                c.method("send", "()Z", AccessFlags::PUBLIC, 8, |m| {
                    let ok = m.reg(0);
                    let cl = m.reg(1);
                    let handler = m.new_label();
                    let out = m.new_label();
                    m.const_int(ok, 1);
                    m.new_instance(cl, BASIC);
                    m.invoke_direct(BASIC, "<init>", "()V", &[cl]);
                    let t = m.begin_try();
                    m.invoke_virtual(BASIC, "get", GET_SIG, &[cl, m.reg(2), m.reg(3)]);
                    m.move_result(m.reg(4));
                    m.end_try(t, &[(Some("Ljava/io/IOException;"), handler)]);
                    m.goto(out);
                    m.bind(handler);
                    m.move_exception(m.reg(5));
                    m.const_int(ok, 0); // success = false in catch.
                    m.bind(out);
                    m.ret(Some(ok));
                });
            });
        });
        let loops = find_retry_loops(&app);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].kind, RetryKind::InterprocCatchCondition);
    }

    /// A loop sending a sequence of requests (no dependence on failure)
    /// must NOT be classified as a retry loop.
    #[test]
    fn sequence_loop_is_not_a_retry_loop() {
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    10,
                    |m| {
                        let cl = m.reg(0);
                        let i = m.reg(1);
                        let n = m.reg(2);
                        m.new_instance(cl, BASIC);
                        m.invoke_direct(BASIC, "<init>", "()V", &[cl]);
                        m.const_int(i, 0);
                        m.const_int(n, 10);
                        let head = m.new_label();
                        let done = m.new_label();
                        m.bind(head);
                        m.if_(CondOp::Ge, i, n, done);
                        m.invoke_virtual(BASIC, "get", GET_SIG, &[cl, m.reg(3), m.reg(4)]);
                        m.move_result(m.reg(5));
                        m.binop_lit(nck_dex::BinOp::Add, i, i, 1);
                        m.goto(head);
                        m.bind(done);
                        m.ret(None);
                    },
                );
            });
        });
        let loops = find_retry_loops(&app);
        assert!(loops.is_empty(), "iteration over requests is not retry");
    }

    /// A loop with no request inside is ignored even if it has catches.
    #[test]
    fn non_request_loop_is_ignored() {
        let app = app_of(|b| {
            b.class("Lapp/Main;", |c| {
                c.super_class("Landroid/app/Activity;");
                c.method(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    AccessFlags::PUBLIC,
                    8,
                    |m| {
                        let head = m.new_label();
                        let handler = m.new_label();
                        m.bind(head);
                        let t = m.begin_try();
                        m.invoke_virtual("Lapp/Main;", "compute", "()V", &[m.param(0).unwrap()]);
                        m.ret(None);
                        m.end_try(t, &[(None, handler)]);
                        m.bind(handler);
                        m.move_exception(m.reg(0));
                        m.goto(head);
                    },
                );
                c.method("compute", "()V", AccessFlags::PUBLIC, 2, |m| m.ret(None));
            });
        });
        assert!(find_retry_loops(&app).is_empty());
    }
}
