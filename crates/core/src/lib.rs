//! `nchecker`: detection of network programming defects (NPDs) in mobile
//! app binaries — the Rust reproduction of *NChecker: Saving Mobile App
//! Developers from Network Disruptions* (EuroSys 2016).
//!
//! The pipeline mirrors the paper's (§4): parse the app binary, lift to a
//! 3-address IR, build an Android-lifecycle-aware call graph
//! ([`callgraph`]), discover entry-reachable request sites and classify
//! their contexts ([`reach`]), then run four analyses —
//!
//! 1. request-setting APIs: connectivity guards
//!    ([`checks::connectivity`]) and timeout/retry config via object-flow
//!    taint ([`checks::config`]);
//! 2. improper API parameters in context ([`checker`] §4.4.2);
//! 3. failure notification in callbacks ([`checks::notification`]);
//! 4. invalid-response checks ([`checks::response`]) —
//!
//! plus customized retry-loop identification ([`retry`], §4.5), and emit
//! Figure 7-style warning reports ([`report`]).
//!
//! # Examples
//!
//! ```
//! use nchecker::{DefectKind, NChecker};
//! use nck_android::apk::Apk;
//! use nck_android::manifest::{ComponentKind, Manifest};
//! use nck_dex::builder::AdxBuilder;
//! use nck_dex::AccessFlags;
//!
//! // An Activity that fires a request with no checks at all.
//! let mut b = AdxBuilder::new();
//! b.class("Lapp/Main;", |c| {
//!     c.super_class("Landroid/app/Activity;");
//!     c.method("onCreate", "(Landroid/os/Bundle;)V", AccessFlags::PUBLIC, 8, |m| {
//!         let cl = m.reg(0);
//!         m.new_instance(cl, "Lcom/turbomanage/httpclient/BasicHttpClient;");
//!         m.invoke_direct("Lcom/turbomanage/httpclient/BasicHttpClient;", "<init>", "()V", &[cl]);
//!         m.invoke_virtual(
//!             "Lcom/turbomanage/httpclient/BasicHttpClient;",
//!             "get",
//!             "(Ljava/lang/String;Lcom/turbomanage/httpclient/ParameterMap;)Lcom/turbomanage/httpclient/HttpResponse;",
//!             &[cl, m.reg(1), m.reg(2)],
//!         );
//!         m.move_result(m.reg(3));
//!         m.ret(None);
//!     });
//! });
//! let mut manifest = Manifest::new("com.example");
//! manifest.component("Lapp/Main;", ComponentKind::Activity);
//! let apk = Apk::new(manifest, b.finish().unwrap());
//!
//! let report = NChecker::new().analyze_apk(&apk).unwrap();
//! assert!(report.has(DefectKind::MissedConnectivityCheck));
//! assert!(report.has(DefectKind::MissedTimeout));
//! ```

pub mod cache;
pub mod callgraph;
pub mod checker;
pub mod checks;
pub mod context;
pub mod icc;
pub mod json;
pub mod reach;
pub mod report;
pub mod retry;
pub mod stats;
pub mod targeted;

pub use cache::{config_fingerprint, AppCacheEntry, ReuseStats, ANALYSIS_VERSION};
pub use callgraph::{CallEdge, CallGraph};
pub use checker::{
    AnalysisSkip, AnalyzeError, AppReport, AppStats, CheckerConfig, NChecker, SkipCause,
};
pub use context::{callee_fingerprints, AnalyzedApp, AppReuse, ContextReuse, MethodAnalysis};
pub use icc::{find_icc_sends, IccKind, IccSend};
pub use json::{
    app_report_to_json, evidence_to_json, kind_id, metrics_to_json, report_to_json, stats_to_json,
};
pub use reach::{find_request_sites, RequestSite};
pub use report::{fix_suggestion, DefectKind, Evidence, Location, OverRetryContext, Report};
pub use retry::{covered_by_retry, find_retry_loops, RetryKind, RetryLoop};
pub use stats::{CorpusStats, Table6Row, Table8Row};
pub use targeted::relevance_slice;
