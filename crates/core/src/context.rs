//! The per-app analysis context shared by all checkers: lifted program,
//! entry points, call graph, and per-method dataflow results.

use crate::callgraph::CallGraph;
use nck_android::entrypoints::{entry_points, EntryPoint};
use nck_android::manifest::Manifest;
use nck_dataflow::interproc::{CallKind, MethodInput, Summaries};
use nck_dataflow::{ConstProp, ControlDeps, ReachingDefs};
use nck_ir::body::{Body, MethodId, Program};
use nck_ir::cfg::Cfg;
use nck_ir::dom::{dominators, post_dominators, DomTree};
use nck_ir::loops::{natural_loops, NaturalLoop};
use nck_netlibs::api::Registry;
use nck_obs::Obs;
use std::collections::{BTreeMap, BTreeSet};

/// All dataflow artifacts of one method body, computed once.
#[derive(Debug)]
pub struct MethodAnalysis {
    /// Statement-level CFG.
    pub cfg: Cfg,
    /// Reaching definitions.
    pub rd: ReachingDefs,
    /// Constant propagation.
    pub cp: ConstProp,
    /// Dominator tree.
    pub doms: DomTree,
    /// Post-dominator tree.
    pub pdoms: DomTree,
    /// Control dependences.
    pub cdeps: ControlDeps,
    /// Control dependences over the exception-free CFG (used by the
    /// strict connectivity check: "is the request control-dependent on a
    /// branch?" is only meaningful without exceptional edges).
    pub cdeps_normal: ControlDeps,
    /// Natural loops.
    pub loops: Vec<NaturalLoop>,
}

impl MethodAnalysis {
    /// Computes everything for `body`.
    pub fn compute(body: &Body) -> MethodAnalysis {
        let cfg = Cfg::build(body);
        let rd = ReachingDefs::compute(body, &cfg);
        let cp = ConstProp::compute(body, &cfg);
        let doms = dominators(&cfg);
        let pdoms = post_dominators(&cfg);
        let cdeps = ControlDeps::compute(&cfg, &pdoms);
        let normal = cfg.normal_only();
        let pdoms_normal = post_dominators(&normal);
        let cdeps_normal = ControlDeps::compute(&normal, &pdoms_normal);
        let loops = natural_loops(&cfg, &doms);
        MethodAnalysis {
            cfg,
            rd,
            cp,
            doms,
            pdoms,
            cdeps,
            cdeps_normal,
            loops,
        }
    }
}

/// The fully analyzed app every checker consumes.
#[derive(Debug)]
pub struct AnalyzedApp<'r> {
    /// The manifest the APK carried.
    pub manifest: Manifest,
    /// The lifted program.
    pub program: Program,
    /// The annotation registry in force.
    pub registry: &'r Registry,
    /// Framework entry points.
    pub entries: Vec<EntryPoint>,
    /// The call graph.
    pub callgraph: CallGraph,
    /// Per-entry reachable method sets (parallel to `entries`).
    pub entry_reach: Vec<BTreeSet<MethodId>>,
    analyses: BTreeMap<MethodId, MethodAnalysis>,
    summaries: Summaries,
}

impl<'r> AnalyzedApp<'r> {
    /// Lifts, builds the call graph, discovers entry points, and runs the
    /// per-method dataflow analyses.
    pub fn new(manifest: Manifest, program: Program, registry: &'r Registry) -> AnalyzedApp<'r> {
        AnalyzedApp::new_with_obs(manifest, program, registry, &Obs::disabled())
    }

    /// Like [`AnalyzedApp::new`], recording per-phase spans and metrics
    /// into `obs`.
    pub fn new_with_obs(
        manifest: Manifest,
        program: Program,
        registry: &'r Registry,
        obs: &Obs,
    ) -> AnalyzedApp<'r> {
        let _ctx = obs.tracer.span("context");
        let entries = {
            let s = obs.tracer.span("entry_points");
            let entries = entry_points(&program, &manifest);
            s.add_items(entries.len() as u64);
            entries
        };
        let callgraph = {
            let _s = obs.tracer.span("callgraph");
            CallGraph::build(&program)
        };
        let entry_reach = {
            let _s = obs.tracer.span("entry_reach");
            entries
                .iter()
                .map(|e| callgraph.reachable_from(e.method))
                .collect()
        };
        let analyses: BTreeMap<MethodId, MethodAnalysis> = {
            let s = obs.tracer.span("method_analyses");
            let analyses: BTreeMap<MethodId, MethodAnalysis> = program
                .iter_methods()
                .filter_map(|(id, m)| {
                    m.body
                        .as_ref()
                        .map(|body| (id, MethodAnalysis::compute(body)))
                })
                .collect();
            s.add_items(analyses.len() as u64);
            analyses
        };
        let summaries = {
            let _s = obs.tracer.span("summaries");
            compute_summaries(&program, &callgraph, registry, &analyses, obs)
        };
        if obs.metrics.is_enabled() {
            obs.metrics.inc("context.entries", entries.len() as u64);
            obs.metrics
                .inc("context.methods_analyzed", analyses.len() as u64);
        }
        AnalyzedApp {
            manifest,
            program,
            registry,
            entries,
            callgraph,
            entry_reach,
            analyses,
            summaries,
        }
    }

    /// The interprocedural method summaries, computed once per app.
    /// Method indices are dense: `MethodId(i)` ↔ summary index `i`.
    pub fn summaries(&self) -> &Summaries {
        &self.summaries
    }

    /// The dataflow artifacts of `method`.
    ///
    /// # Panics
    ///
    /// Panics when `method` has no body.
    pub fn analysis(&self, method: MethodId) -> &MethodAnalysis {
        self.analyses
            .get(&method)
            .expect("analysis requested for a bodiless method")
    }

    /// The body of `method`.
    ///
    /// # Panics
    ///
    /// Panics when `method` has no body.
    pub fn body(&self, method: MethodId) -> &Body {
        self.program
            .method(method)
            .body
            .as_ref()
            .expect("body requested for a bodiless method")
    }

    /// Indices into [`Self::entries`] of the entry points that reach
    /// `method`.
    pub fn entries_reaching(&self, method: MethodId) -> Vec<usize> {
        self.entry_reach
            .iter()
            .enumerate()
            .filter(|(_, set)| set.contains(&method))
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders `method` as `Lcls;.name(sig)`.
    pub fn display_method(&self, method: MethodId) -> String {
        self.program
            .display_method_key(self.program.method(method).key)
    }
}

/// Computes per-method summaries, classifying each call site against the
/// API registry (connectivity APIs are sources, response-validity APIs
/// are check sinks) and the explicit call-graph edges (app-internal
/// callees). Everything else — framework calls, implicit edges — stays
/// opaque to keep the summaries conservative.
fn compute_summaries(
    program: &Program,
    callgraph: &CallGraph,
    registry: &Registry,
    analyses: &BTreeMap<MethodId, MethodAnalysis>,
    obs: &Obs,
) -> Summaries {
    let inputs: Vec<MethodInput<'_>> = program
        .methods
        .iter()
        .map(|m| MethodInput {
            body: m.body.as_ref(),
            is_static: m.flags.contains(nck_dex::AccessFlags::STATIC),
        })
        .collect();
    // Reuse the per-method CFGs the analysis context just built.
    let cfgs: Vec<Option<&Cfg>> = (0..inputs.len())
        .map(|i| analyses.get(&MethodId(i as u32)).map(|a| &a.cfg))
        .collect();
    Summaries::compute_with_cfgs_obs(
        &inputs,
        &cfgs,
        |m, stmt, inv| {
            let class = program.symbols.resolve(inv.callee.class);
            let name = program.symbols.resolve(inv.callee.name);
            if registry.is_connectivity_check(class, name) {
                return CallKind::Source;
            }
            if registry.response_check(class, name).is_some() {
                return CallKind::CheckSink;
            }
            let callees: Vec<usize> = callgraph
                .callees(MethodId(m as u32))
                .iter()
                .filter(|e| e.stmt == stmt && !e.implicit)
                .map(|e| e.callee.0 as usize)
                .collect();
            if callees.is_empty() {
                CallKind::Opaque
            } else {
                CallKind::Callees(callees)
            }
        },
        obs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_android::manifest::ComponentKind;
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;
    use nck_ir::lift_file;

    #[test]
    fn analyzed_app_wires_everything() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/Main;", |c| {
            c.super_class("Landroid/app/Activity;");
            c.method(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                AccessFlags::PUBLIC,
                4,
                |m| {
                    m.invoke_virtual("Lapp/Main;", "helper", "()V", &[m.param(0).unwrap()]);
                    m.ret(None);
                },
            );
            c.method("helper", "()V", AccessFlags::PUBLIC, 2, |m| m.ret(None));
        });
        let program = lift_file(&b.finish().unwrap()).unwrap();
        let mut manifest = Manifest::new("app");
        manifest.component("Lapp/Main;", ComponentKind::Activity);
        let registry = Registry::standard();
        let app = AnalyzedApp::new(manifest, program, &registry);
        assert_eq!(app.entries.len(), 1);
        let helper = app
            .program
            .iter_methods()
            .find(|(_, m)| app.program.symbols.resolve(m.key.name) == "helper")
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(app.entries_reaching(helper).len(), 1);
        // Method analyses exist for both bodies.
        let _ = app.analysis(helper);
    }
}
