//! The per-app analysis context shared by all checkers: lifted program,
//! entry points, call graph, and per-method dataflow results.

use crate::callgraph::{CallGraph, MethodSet};
use nck_android::entrypoints::{entry_points, EntryPoint};
use nck_android::manifest::Manifest;
use nck_dataflow::interproc::{CallKind, MethodInput, Summaries, SummarySeed};
use nck_dataflow::{ConstProp, ControlDeps, ReachingDefs};
use nck_dex::fingerprint::Fnv;
use nck_ir::body::{Body, MethodId, Program};
use nck_ir::cfg::Cfg;
use nck_ir::dom::{dominators, post_dominators, DomTree};
use nck_ir::loops::{natural_loops, NaturalLoop};
use nck_netlibs::api::Registry;
use nck_obs::Obs;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};

/// Minimum number of method bodies to analyze before fanning out to
/// threads; below this, spawn overhead beats the parallelism.
const PAR_MIN_METHODS: usize = 64;

/// Worker count for intra-app parallel phases, capped so one large app
/// cannot monopolize a shared service host.
fn par_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// All dataflow artifacts of one method body.
///
/// Only the CFG is computed eagerly: every consumer (including the
/// summary engine) needs it. The remaining artifacts initialize lazily
/// on first access — most methods are never touched by a checker beyond
/// their summary, so the old eager-everything constructor spent the bulk
/// of the `method_analyses` phase on results nobody read. `OnceLock`
/// keeps the struct `Sync`, so lazily-initialized analyses still share
/// across threads and across incremental runs via `Arc`.
#[derive(Debug)]
pub struct MethodAnalysis {
    body: Arc<Body>,
    /// Statement-level CFG.
    pub cfg: Cfg,
    rd: OnceLock<ReachingDefs>,
    cp: OnceLock<ConstProp>,
    doms: OnceLock<DomTree>,
    pdoms: OnceLock<DomTree>,
    cdeps: OnceLock<ControlDeps>,
    cdeps_normal: OnceLock<ControlDeps>,
    loops: OnceLock<Vec<NaturalLoop>>,
}

impl MethodAnalysis {
    /// Builds the CFG for `body` and sets up lazy slots for the rest.
    pub fn compute(body: &Arc<Body>) -> MethodAnalysis {
        let cfg = Cfg::build(body);
        MethodAnalysis {
            body: Arc::clone(body),
            cfg,
            rd: OnceLock::new(),
            cp: OnceLock::new(),
            doms: OnceLock::new(),
            pdoms: OnceLock::new(),
            cdeps: OnceLock::new(),
            cdeps_normal: OnceLock::new(),
            loops: OnceLock::new(),
        }
    }

    /// Reaching definitions.
    pub fn rd(&self) -> &ReachingDefs {
        self.rd
            .get_or_init(|| ReachingDefs::compute(&self.body, &self.cfg))
    }

    /// Constant propagation.
    pub fn cp(&self) -> &ConstProp {
        self.cp
            .get_or_init(|| ConstProp::compute(&self.body, &self.cfg))
    }

    /// Dominator tree.
    pub fn doms(&self) -> &DomTree {
        self.doms.get_or_init(|| dominators(&self.cfg))
    }

    /// Post-dominator tree.
    pub fn pdoms(&self) -> &DomTree {
        self.pdoms.get_or_init(|| post_dominators(&self.cfg))
    }

    /// Control dependences.
    pub fn cdeps(&self) -> &ControlDeps {
        self.cdeps
            .get_or_init(|| ControlDeps::compute(&self.cfg, self.pdoms()))
    }

    /// Control dependences over the exception-free CFG (used by the
    /// strict connectivity check: "is the request control-dependent on a
    /// branch?" is only meaningful without exceptional edges).
    pub fn cdeps_normal(&self) -> &ControlDeps {
        self.cdeps_normal.get_or_init(|| {
            let normal = self.cfg.normal_only();
            let pdoms_normal = post_dominators(&normal);
            ControlDeps::compute(&normal, &pdoms_normal)
        })
    }

    /// Natural loops.
    pub fn loops(&self) -> &[NaturalLoop] {
        self.loops.get_or_init(|| {
            // A CFG with only forward edges is a DAG: no loops, and no
            // need to build the dominator tree to prove it.
            if !self.cfg.has_backward_edge() {
                return Vec::new();
            }
            natural_loops(&self.cfg, self.doms())
        })
    }
}

/// Prior-run artifacts the context constructor may reuse for methods the
/// lift replayed unchanged. All reuse is gated per method: a method id is
/// only consulted when it appears in `reused_methods`, whose bodies are
/// literal clones of the recording run's.
pub struct AppReuse<'a> {
    /// Previous run's per-method dataflow artifacts.
    pub analyses: &'a BTreeMap<MethodId, Arc<MethodAnalysis>>,
    /// Method ids whose bodies were replayed byte-identically.
    pub reused_methods: &'a [MethodId],
    /// Previous run's per-method call-resolution fingerprints
    /// ([`callee_fingerprints`]); a mismatch dirties the method's summary
    /// even though its own body is unchanged (a call it makes may resolve
    /// differently in the new version).
    pub callee_fps: &'a [u64],
    /// Previous run's round-0 summary snapshot.
    pub summary_seed: &'a SummarySeed,
}

/// How much prior work the context constructor actually reused.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContextReuse {
    /// Method analyses cloned from the previous run.
    pub analyses_reused: usize,
    /// Method analyses recomputed.
    pub analyses_computed: usize,
    /// Summary indices seeded clean from the previous run.
    pub summaries_clean: usize,
    /// Summary indices recomputed (body changed, new, or callee drift).
    pub summaries_dirty: usize,
}

/// The fully analyzed app every checker consumes.
#[derive(Debug)]
pub struct AnalyzedApp<'r> {
    /// The manifest the APK carried.
    pub manifest: Manifest,
    /// The lifted program.
    pub program: Program,
    /// The annotation registry in force.
    pub registry: &'r Registry,
    /// Framework entry points.
    pub entries: Vec<EntryPoint>,
    /// The call graph.
    pub callgraph: CallGraph,
    /// Per-entry reachable method sets (parallel to `entries`). Entries
    /// in the same call-graph component share one underlying bitset.
    pub entry_reach: Vec<MethodSet>,
    analyses: BTreeMap<MethodId, Arc<MethodAnalysis>>,
    summaries: Summaries,
    summary_seed: SummarySeed,
    callee_fps: Vec<u64>,
    reuse: ContextReuse,
}

impl<'r> AnalyzedApp<'r> {
    /// Lifts, builds the call graph, discovers entry points, and runs the
    /// per-method dataflow analyses.
    pub fn new(manifest: Manifest, program: Program, registry: &'r Registry) -> AnalyzedApp<'r> {
        AnalyzedApp::new_with_obs(manifest, program, registry, &Obs::disabled())
    }

    /// Like [`AnalyzedApp::new`], recording per-phase spans and metrics
    /// into `obs`.
    pub fn new_with_obs(
        manifest: Manifest,
        program: Program,
        registry: &'r Registry,
        obs: &Obs,
    ) -> AnalyzedApp<'r> {
        AnalyzedApp::new_reusing(manifest, program, registry, None, obs)
    }

    /// Like [`AnalyzedApp::new_with_obs`], but reusing prior-run
    /// artifacts for methods the incremental lift replayed unchanged.
    ///
    /// Entry points, the call graph, and entry reachability are always
    /// rebuilt: they are whole-program properties whose inputs (method
    /// ids, resolution targets) can shift under any class change, and
    /// they are cheap relative to the per-method dataflow they guard.
    pub fn new_reusing(
        manifest: Manifest,
        program: Program,
        registry: &'r Registry,
        reuse: Option<AppReuse<'_>>,
        obs: &Obs,
    ) -> AnalyzedApp<'r> {
        let _ctx = obs.tracer.span("context");
        let entries = {
            let s = obs.tracer.span("entry_points");
            let entries = entry_points(&program, &manifest);
            s.add_items(entries.len() as u64);
            entries
        };
        let callgraph = {
            let _s = obs.tracer.span("callgraph");
            CallGraph::build(&program)
        };
        let entry_reach: Vec<MethodSet> = {
            let _s = obs.tracer.span("entry_reach");
            let entry_methods: Vec<MethodId> = entries.iter().map(|e| e.method).collect();
            callgraph.entry_reach_sets(&entry_methods, program.methods.len())
        };
        let callee_fps = callee_fingerprints(&program, &callgraph);
        let mut stats = ContextReuse::default();
        let reused: BTreeSet<MethodId> = reuse
            .as_ref()
            .map(|r| r.reused_methods.iter().copied().collect())
            .unwrap_or_default();
        let analyses: BTreeMap<MethodId, Arc<MethodAnalysis>> = {
            let s = obs.tracer.span("method_analyses");
            let mut analyses: BTreeMap<MethodId, Arc<MethodAnalysis>> = BTreeMap::new();
            let mut to_compute: Vec<(MethodId, &Arc<Body>)> = Vec::new();
            for (id, m) in program.iter_methods() {
                let Some(body) = m.body.as_ref() else {
                    continue;
                };
                if reused.contains(&id) {
                    if let Some(prev) = reuse.as_ref().and_then(|r| r.analyses.get(&id)) {
                        stats.analyses_reused += 1;
                        analyses.insert(id, Arc::clone(prev));
                        continue;
                    }
                }
                stats.analyses_computed += 1;
                to_compute.push((id, body));
            }
            // Per-method analyses are independent, so fan the batch out
            // over striped worker threads when there is enough of it to
            // amortize spawning. Results land in a `BTreeMap`, so the
            // map's contents — and everything downstream — are identical
            // to the sequential order.
            let workers = par_workers();
            if workers > 1 && to_compute.len() >= PAR_MIN_METHODS {
                let items = &to_compute;
                let computed: Vec<(MethodId, Arc<MethodAnalysis>)> = crossbeam::scope(|sc| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            sc.spawn(move |_| {
                                items
                                    .iter()
                                    .skip(w)
                                    .step_by(workers)
                                    .map(|&(id, body)| {
                                        (id, Arc::new(MethodAnalysis::compute(body)))
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("method-analysis worker panicked"))
                        .collect()
                })
                .expect("method-analysis scope");
                analyses.extend(computed);
            } else {
                for (id, body) in to_compute {
                    analyses.insert(id, Arc::new(MethodAnalysis::compute(body)));
                }
            }
            s.add_items(analyses.len() as u64);
            analyses
        };
        let (summaries, summary_seed) = {
            let _s = obs.tracer.span("summaries");
            let seed_input = reuse.as_ref().map(|r| {
                let n = program.methods.len();
                let mut dirty: BTreeSet<usize> = (0..n)
                    .filter(|&i| !reused.contains(&MethodId(i as u32)))
                    .collect();
                // A replayed body whose calls now resolve differently is
                // just as dirty as a changed one.
                for (i, &fp) in callee_fps.iter().enumerate() {
                    if reused.contains(&MethodId(i as u32))
                        && r.callee_fps.get(i).copied() != Some(fp)
                    {
                        dirty.insert(i);
                    }
                }
                (r.summary_seed, dirty)
            });
            stats.summaries_dirty = seed_input
                .as_ref()
                .map_or(program.methods.len(), |(_, d)| d.len());
            stats.summaries_clean = program.methods.len() - stats.summaries_dirty;
            compute_summaries(
                &program,
                &callgraph,
                registry,
                &analyses,
                seed_input.as_ref().map(|(s, d)| (*s, d)),
                obs,
            )
        };
        if obs.metrics.is_enabled() {
            obs.metrics.inc("context.entries", entries.len() as u64);
            obs.metrics
                .inc("context.methods_analyzed", analyses.len() as u64);
        }
        AnalyzedApp {
            manifest,
            program,
            registry,
            entries,
            callgraph,
            entry_reach,
            analyses,
            summaries,
            summary_seed,
            callee_fps,
            reuse: stats,
        }
    }

    /// The interprocedural method summaries, computed once per app.
    /// Method indices are dense: `MethodId(i)` ↔ summary index `i`.
    pub fn summaries(&self) -> &Summaries {
        &self.summaries
    }

    /// The round-0 summary snapshot, the seed for the next version's
    /// incremental summary computation.
    pub fn summary_seed(&self) -> &SummarySeed {
        &self.summary_seed
    }

    /// Per-method call-resolution fingerprints for this run (dense,
    /// parallel to `program.methods`).
    pub fn callee_fps(&self) -> &[u64] {
        &self.callee_fps
    }

    /// The full per-method analysis map, shareable with a cache.
    pub fn analyses_arc(&self) -> &BTreeMap<MethodId, Arc<MethodAnalysis>> {
        &self.analyses
    }

    /// How much prior work this context reused.
    pub fn reuse_stats(&self) -> ContextReuse {
        self.reuse
    }

    /// The dataflow artifacts of `method`.
    ///
    /// # Panics
    ///
    /// Panics when `method` has no body.
    pub fn analysis(&self, method: MethodId) -> &MethodAnalysis {
        self.analyses
            .get(&method)
            .expect("analysis requested for a bodiless method")
    }

    /// The body of `method`.
    ///
    /// # Panics
    ///
    /// Panics when `method` has no body.
    pub fn body(&self, method: MethodId) -> &Body {
        self.program
            .method(method)
            .body
            .as_ref()
            .expect("body requested for a bodiless method")
    }

    /// Indices into [`Self::entries`] of the entry points that reach
    /// `method`.
    pub fn entries_reaching(&self, method: MethodId) -> Vec<usize> {
        self.entry_reach
            .iter()
            .enumerate()
            .filter(|(_, set)| set.contains(method))
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders `method` as `Lcls;.name(sig)`.
    pub fn display_method(&self, method: MethodId) -> String {
        self.program
            .display_method_key(self.program.method(method).key)
    }
}

/// Computes per-method summaries, classifying each call site against the
/// API registry (connectivity APIs are sources, response-validity APIs
/// are check sinks) and the explicit call-graph edges (app-internal
/// callees). Everything else — framework calls, implicit edges — stays
/// opaque to keep the summaries conservative.
fn compute_summaries(
    program: &Program,
    callgraph: &CallGraph,
    registry: &Registry,
    analyses: &BTreeMap<MethodId, Arc<MethodAnalysis>>,
    seed: Option<(&SummarySeed, &BTreeSet<usize>)>,
    obs: &Obs,
) -> (Summaries, SummarySeed) {
    let inputs: Vec<MethodInput<'_>> = program
        .methods
        .iter()
        .map(|m| MethodInput {
            body: m.body.as_deref(),
            is_static: m.flags.contains(nck_dex::AccessFlags::STATIC),
        })
        .collect();
    // Reuse the per-method CFGs the analysis context just built.
    let cfgs: Vec<Option<&Cfg>> = (0..inputs.len())
        .map(|i| analyses.get(&MethodId(i as u32)).map(|a| &a.cfg))
        .collect();
    Summaries::compute_incremental(
        &inputs,
        &cfgs,
        |m, stmt, inv| {
            let class = program.symbols.resolve(inv.callee.class);
            let name = program.symbols.resolve(inv.callee.name);
            if registry.is_connectivity_check(class, name) {
                return CallKind::Source;
            }
            if registry.response_check(class, name).is_some() {
                return CallKind::CheckSink;
            }
            let callees: Vec<usize> = callgraph
                .callees(MethodId(m as u32))
                .iter()
                .filter(|e| e.stmt == stmt && !e.implicit)
                .map(|e| e.callee.0 as usize)
                .collect();
            if callees.is_empty() {
                CallKind::Opaque
            } else {
                CallKind::Callees(callees)
            }
        },
        seed,
        obs,
    )
}

/// Per-method fingerprints of *how this run resolved each method's
/// calls*: explicit and implicit call-graph edges in edge order, with
/// callee identity taken from its resolved key strings (stable across
/// versions) rather than its `MethodId` (not stable past the first
/// changed class).
///
/// A replayed method body is only as reusable as its call resolution: if
/// an update makes a previously opaque call resolve to a real callee (or
/// retargets one), the caller's summary context changed even though its
/// bytecode did not. Comparing these fingerprints across versions is how
/// the incremental path notices.
pub fn callee_fingerprints(program: &Program, callgraph: &CallGraph) -> Vec<u64> {
    program
        .methods
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let mut h = Fnv::new();
            for edge in callgraph.callees(MethodId(i as u32)) {
                let key = program.method(edge.callee).key;
                h.u32(edge.stmt.0)
                    .u32(u32::from(edge.implicit))
                    .str(program.symbols.resolve(key.class))
                    .str(program.symbols.resolve(key.name))
                    .str(program.symbols.resolve(key.sig));
            }
            h.finish()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_android::manifest::ComponentKind;
    use nck_dex::builder::AdxBuilder;
    use nck_dex::AccessFlags;
    use nck_ir::lift_file;

    #[test]
    fn analyzed_app_wires_everything() {
        let mut b = AdxBuilder::new();
        b.class("Lapp/Main;", |c| {
            c.super_class("Landroid/app/Activity;");
            c.method(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                AccessFlags::PUBLIC,
                4,
                |m| {
                    m.invoke_virtual("Lapp/Main;", "helper", "()V", &[m.param(0).unwrap()]);
                    m.ret(None);
                },
            );
            c.method("helper", "()V", AccessFlags::PUBLIC, 2, |m| m.ret(None));
        });
        let program = lift_file(&b.finish().unwrap()).unwrap();
        let mut manifest = Manifest::new("app");
        manifest.component("Lapp/Main;", ComponentKind::Activity);
        let registry = Registry::standard();
        let app = AnalyzedApp::new(manifest, program, &registry);
        assert_eq!(app.entries.len(), 1);
        let helper = app
            .program
            .iter_methods()
            .find(|(_, m)| app.program.symbols.resolve(m.key.name) == "helper")
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(app.entries_reaching(helper).len(), 1);
        // Method analyses exist for both bodies.
        let _ = app.analysis(helper);
    }
}
