//! Every defect NChecker reports must explain itself: a non-empty
//! evidence chain that names at least one method that really exists in
//! the analyzed app. Runs the checker over the 16-app interprocedural
//! suite, whose helper-mediated idioms exercise every evidence variant.

use nchecker::{Evidence, NChecker};
use nck_appgen::interproc_suite::interproc_apps;
use std::collections::BTreeSet;

/// All `Lcls;.name(sig)` method renderings of one generated app.
fn app_methods(apk: &nck_android::apk::Apk) -> BTreeSet<String> {
    let program = nck_ir::lift_file(&apk.adx).expect("suite app lifts");
    program
        .iter_methods()
        .map(|(_, m)| program.display_method_key(m.key))
        .collect()
}

#[test]
fn every_defect_carries_provenance_naming_a_real_method() {
    let checker = NChecker::new();
    let specs = interproc_apps();
    assert!(!specs.is_empty());
    let mut defects_seen = 0usize;
    for spec in &specs {
        let apk = nck_appgen::generate(spec);
        let methods = app_methods(&apk);
        let report = checker.analyze_apk(&apk).expect("suite app analyzes");
        for d in &report.defects {
            defects_seen += 1;
            assert!(
                !d.provenance.is_empty(),
                "{}: defect {:?} has an empty evidence chain",
                spec.package,
                d.kind
            );
            // The chain always opens with the request itself.
            assert!(
                matches!(d.provenance[0], Evidence::Request { .. }),
                "{}: defect {:?} does not start from the request",
                spec.package,
                d.kind
            );
            let named: Vec<&str> = d.provenance.iter().filter_map(|e| e.method()).collect();
            assert!(
                named.iter().any(|m| methods.contains(*m)),
                "{}: defect {:?} names no real app method (named: {:?})",
                spec.package,
                d.kind,
                named
            );
            // Rendering the report must surface the evidence section.
            let text = d.render();
            assert!(text.contains("Evidence"), "render lost the evidence");
        }
    }
    assert!(defects_seen > 0, "suite produced no defects to validate");
}

#[test]
fn provenance_survives_json_export() {
    let checker = NChecker::new();
    // Some suite apps are the defect-free halves of Table 9 pairs; pick
    // the first one that actually warns.
    let report = interproc_apps()
        .iter()
        .map(|spec| {
            let apk = nck_appgen::generate(spec);
            checker.analyze_apk(&apk).expect("suite app analyzes")
        })
        .find(|r| !r.defects.is_empty())
        .expect("some suite app has defects");
    let v = nchecker::app_report_to_json(&report);
    for d in v["defects"].as_array().expect("defects array") {
        let prov = d["provenance"].as_array().expect("provenance array");
        assert!(!prov.is_empty());
        assert_eq!(prov[0]["kind"], "request");
        assert!(prov[0]["detail"].as_str().unwrap().starts_with("request "));
    }
}
