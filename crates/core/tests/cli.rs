//! Tests of the `nchecker` command-line binary.

use nck_appgen::spec::{AppSpec, Origin, RequestSpec};
use nck_netlibs::library::Library;

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("nck-cli-{name}-{}", std::process::id()))
}

#[test]
fn summary_mode_prints_one_line_per_app() {
    let spec = AppSpec::new(
        "com.test.cli",
        vec![RequestSpec::new(
            Library::BasicHttpClient,
            Origin::UserClick,
        )],
    );
    let path = temp_path("ok.apk");
    nck_appgen::generate(&spec).save(&path).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--summary")
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("com.test.cli"), "{stdout}");
    assert!(stdout.contains("defects"), "{stdout}");
}

#[test]
fn full_mode_prints_reports() {
    let spec = AppSpec::new(
        "com.test.cli2",
        vec![RequestSpec::new(Library::Volley, Origin::UserClick)],
    );
    let path = temp_path("full.apk");
    nck_appgen::generate(&spec).save(&path).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fix Suggestion"), "{stdout}");
}

#[test]
fn bad_file_fails() {
    let path = temp_path("bad.apk");
    std::fs::write(&path, b"not an apk").unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
}

#[test]
fn no_arguments_shows_usage() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .output()
        .expect("cli runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn json_mode_emits_valid_json() {
    let spec = AppSpec::new(
        "com.test.json",
        vec![RequestSpec::new(
            Library::BasicHttpClient,
            Origin::UserClick,
        )],
    );
    let path = temp_path("json.apk");
    nck_appgen::generate(&spec).save(&path).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--json")
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"kind\""), "{stdout}");
    assert!(stdout.contains("missed-connectivity-check"), "{stdout}");
    assert!(
        stdout.contains("\"package\": \"com.test.json\""),
        "{stdout}"
    );
}
