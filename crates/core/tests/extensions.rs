//! Tests of the future-work extensions: ICC analysis and strict
//! (path-sensitive) connectivity checking.

use nchecker::{CheckerConfig, DefectKind, NChecker};
use nck_appgen::spec::{AppSpec, ConnCheck, Notification, Origin, RequestSpec};
use nck_netlibs::library::Library;

fn icc_checker() -> NChecker {
    NChecker::with_config(CheckerConfig {
        icc: true,
        ..CheckerConfig::default()
    })
}

fn strict_checker() -> NChecker {
    NChecker::with_config(CheckerConfig {
        strict_connectivity: true,
        ..CheckerConfig::default()
    })
}

#[test]
fn icc_clears_the_intercomponent_connectivity_fp() {
    let mut r = RequestSpec::new(Library::HttpUrlConnection, Origin::UserClick);
    r.conn_check = ConnCheck::InterComponent;
    r.notification = Notification::Alert;
    let spec = AppSpec::new("com.ext.iccconn", vec![r]);
    let apk = nck_appgen::generate(&spec);

    // Paper-default: false positive.
    let default = NChecker::new().analyze_apk(&apk).unwrap();
    assert!(default.has(DefectKind::MissedConnectivityCheck));

    // ICC-aware: the guard in the launching receiver is seen.
    let icc = icc_checker().analyze_apk(&apk).unwrap();
    assert!(!icc.has(DefectKind::MissedConnectivityCheck));
}

#[test]
fn icc_clears_the_broadcast_notification_fp() {
    let mut r = RequestSpec::new(Library::HttpUrlConnection, Origin::UserClick);
    r.conn_check = ConnCheck::Guarding;
    r.notification = Notification::InterComponent;
    let spec = AppSpec::new("com.ext.iccnotif", vec![r]);
    let apk = nck_appgen::generate(&spec);

    let default = NChecker::new().analyze_apk(&apk).unwrap();
    assert!(default.has(DefectKind::MissedFailureNotification));

    let icc = icc_checker().analyze_apk(&apk).unwrap();
    assert!(!icc.has(DefectKind::MissedFailureNotification));
}

#[test]
fn icc_does_not_excuse_genuinely_missing_checks() {
    // A truly unguarded request stays flagged even with ICC on.
    let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
    r.conn_check = ConnCheck::Missing;
    let spec = AppSpec::new("com.ext.iccmiss", vec![r]);
    let apk = nck_appgen::generate(&spec);
    let icc = icc_checker().analyze_apk(&apk).unwrap();
    assert!(icc.has(DefectKind::MissedConnectivityCheck));
}

#[test]
fn strict_mode_catches_the_unused_result_fn() {
    let mut r = RequestSpec::new(Library::HttpUrlConnection, Origin::UserClick);
    r.conn_check = ConnCheck::UnusedResult;
    r.notification = Notification::Alert;
    let spec = AppSpec::new("com.ext.strictfn", vec![r]);
    let apk = nck_appgen::generate(&spec);

    // Paper-default: the check's mere presence silences the warning (FN).
    let default = NChecker::new().analyze_apk(&apk).unwrap();
    assert!(!default.has(DefectKind::MissedConnectivityCheck));

    // Strict: the result must be a control condition of the request.
    let strict = strict_checker().analyze_apk(&apk).unwrap();
    assert!(strict.has(DefectKind::MissedConnectivityCheck));
}

#[test]
fn strict_mode_still_accepts_real_guards() {
    let mut r = RequestSpec::new(Library::BasicHttpClient, Origin::UserClick);
    r.conn_check = ConnCheck::Guarding;
    r.notification = Notification::Alert;
    r.set_timeout = true;
    r.set_retries = Some(2);
    let spec = AppSpec::new("com.ext.strictok", vec![r]);
    let apk = nck_appgen::generate(&spec);
    let strict = strict_checker().analyze_apk(&apk).unwrap();
    assert!(!strict.has(DefectKind::MissedConnectivityCheck));
}

#[test]
fn strict_guard_in_caller_is_recognized() {
    // Guard in onClick; the request in a native task's doInBackground:
    // the guarded branch dominates the execute() call one level up.
    let mut r = RequestSpec::new(Library::HttpUrlConnection, Origin::UserClick);
    r.conn_check = ConnCheck::Guarding;
    r.notification = Notification::Alert;
    let spec = AppSpec::new("com.ext.strictcaller", vec![r]);
    let apk = nck_appgen::generate(&spec);
    let strict = strict_checker().analyze_apk(&apk).unwrap();
    assert!(!strict.has(DefectKind::MissedConnectivityCheck));
}

#[test]
fn both_extensions_reach_perfect_table9_accuracy() {
    let table = nck_appgen::opensource::evaluate_accuracy_with(CheckerConfig {
        icc: true,
        strict_connectivity: true,
        ..CheckerConfig::default()
    });
    let (c, f, n) =
        nck_appgen::opensource::Table9Row::ALL
            .iter()
            .fold((0, 0, 0), |(c, f, n), row| {
                let a = table[row];
                (c + a.correct, f + a.fp, n + a.known_fn)
            });
    assert_eq!((c, f, n), (135, 0, 0));
}

#[test]
fn targeted_with_icc_falls_back_loudly_and_equivalently() {
    // `targeted + icc` falls back to whole-app analysis — but the
    // fallback must be visible: a `targeted.fallback_icc` counter (and
    // a warning event), never a silently dropped flag.
    let mut r = RequestSpec::new(Library::Volley, Origin::UserClick);
    r.conn_check = ConnCheck::InterComponent;
    let spec = AppSpec::new("com.ext.iccfallback", vec![r]);
    let apk = nck_appgen::generate(&spec);

    let mut both = NChecker::with_config(CheckerConfig {
        icc: true,
        targeted: true,
        ..CheckerConfig::default()
    });
    both.obs.metrics = nck_obs::Metrics::enabled();
    let mut report = both.analyze_apk(&apk).unwrap();
    let metrics = report.metrics.as_ref().expect("metrics were enabled");
    assert_eq!(
        metrics.counters.get("targeted.fallback_icc"),
        Some(&1),
        "fallback must bump targeted.fallback_icc"
    );
    assert!(
        !metrics.counters.contains_key("targeted.methods_lifted"),
        "the targeted pipeline must not have run"
    );

    // And the result is exactly the icc-only result (metrics stripped:
    // they are observability, not analysis output).
    report.metrics = None;
    let icc_only = icc_checker().analyze_apk(&apk).unwrap();
    assert_eq!(
        serde_json::to_string(&nchecker::app_report_to_json(&report)).unwrap(),
        serde_json::to_string(&nchecker::app_report_to_json(&icc_only)).unwrap()
    );
}
