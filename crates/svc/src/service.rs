//! The batch analysis service: worker pool + analysis cache + checker.
//!
//! One [`AnalysisService`] owns a configured checker template, a
//! two-tier [`AnalysisStore`], and a pool size; callers feed it keyed
//! bundles (the key is the app's stable identity across versions —
//! package name, file path, corpus index) and get reports plus reuse
//! statistics back. Feeding it a *new version* of a previously analyzed
//! key is the incremental path: unchanged class prefixes replay, dirty
//! methods recompute, and the report is byte-identical to a cold run.
//!
//! Degraded apps (any skipped method) bypass the cache write path
//! entirely: their entries would record unknown behaviour as replayable
//! truth.

use crate::delta::{diff_reports, DeltaReport};
use crate::pool::run_pool;
use crate::store::{AnalysisStore, RenderCell};
use nchecker::cache::{config_fingerprint, AppCacheEntry, ReuseStats};
use nchecker::{AnalyzeError, AppReport, CheckerConfig, NChecker};
use nck_obs::Obs;
use std::path::PathBuf;
use std::sync::Arc;

/// One analyzed app: the report (or failure) plus what the cache did.
#[derive(Debug)]
pub struct AppOutcome {
    /// The analysis result.
    pub report: Result<AppReport, AnalyzeError>,
    /// Cache/reuse accounting for this app.
    pub reuse: ReuseStats,
    /// The defect delta against the previous version of this key, when
    /// the key was seen before (either cache tier) and the bundle
    /// changed. `None` on first submission, identical resubmission
    /// (whole-report reuse — nothing changed), failure, and degraded
    /// runs (an incomplete report would produce phantom "fixes").
    pub delta: Option<DeltaReport>,
    /// Render-memoization cell for this outcome's report, shared with
    /// the memory-tier entry it came from (or was recorded as). A
    /// consumer that serializes reports deterministically — the daemon,
    /// whose per-app obs is always disabled — renders through it once
    /// and serves the cached bytes on every later hit. `None` when the
    /// report is not resident (failure, degraded, cache disabled).
    pub rendered: Option<Arc<RenderCell>>,
}

/// Aggregate cache accounting for a batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchCacheStats {
    /// Apps served whole from the cache (memory or disk tier).
    pub hits: usize,
    /// Apps analyzed (fully or partially) this run.
    pub misses: usize,
    /// Classes replayed from cached prefixes, across all apps.
    pub classes_reused: usize,
    /// Classes analyzed, across all apps.
    pub classes_total: usize,
    /// Apps that degraded and bypassed the cache.
    pub degraded: usize,
}

impl BatchCacheStats {
    fn absorb(&mut self, r: &ReuseStats) {
        if r.whole_report {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        self.classes_reused += r.classes_reused;
        self.classes_total += r.classes_total;
        self.degraded += usize::from(r.degraded);
    }

    /// Whole-report hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Class-level reuse rate in `[0, 1]` (hits count their classes as
    /// reused via the per-app stats).
    pub fn class_reuse_rate(&self) -> f64 {
        if self.classes_total == 0 {
            0.0
        } else {
            self.classes_reused as f64 / self.classes_total as f64
        }
    }
}

/// Construction options for [`AnalysisService`].
#[derive(Debug, Clone, Default)]
pub struct ServiceOptions {
    /// Checker toggles.
    pub config: CheckerConfig,
    /// Worker count override (`None` = [`crate::pool::default_workers`]).
    pub jobs: Option<usize>,
    /// Disk cache directory (`None` = memory tier only).
    pub cache_dir: Option<PathBuf>,
    /// Disable the cache entirely (lookups and writes).
    pub no_cache: bool,
    /// Memory-tier byte budget override
    /// (`None` = [`crate::store::DEFAULT_MEM_BYTES`]).
    pub mem_budget: Option<usize>,
    /// Disk-tier byte budget: when set, every batch ends with a
    /// watermark-gated [`AnalysisStore::maybe_gc_disk`] — a skipped
    /// check while under budget, a collection down to the low
    /// watermark once occupancy crosses it.
    pub cache_budget: Option<u64>,
}

/// The sharded batch-analysis service.
pub struct AnalysisService {
    config: CheckerConfig,
    /// [`config_fingerprint`] of `config`, computed once — it gates
    /// every disk lookup and never changes for a built service.
    config_fp: u64,
    obs: Obs,
    store: AnalysisStore,
    jobs: Option<usize>,
    no_cache: bool,
    cache_budget: Option<u64>,
}

impl AnalysisService {
    /// Builds a service; `obs` is the observability template every app
    /// derives fresh sinks from.
    pub fn new(options: ServiceOptions, obs: Obs) -> AnalysisService {
        AnalysisService {
            config: options.config,
            config_fp: config_fingerprint(&options.config),
            // The byte budget is the service's memory-tier cap; an
            // entry-count cap on top would silently shrink the tier to
            // 256 apps and push every hit beyond that to the disk tier
            // (a ~100x slower lookup) long before memory is at risk.
            store: AnalysisStore::with_budgets(
                usize::MAX,
                options
                    .mem_budget
                    .unwrap_or(crate::store::DEFAULT_MEM_BYTES),
                options.cache_dir,
            ),
            jobs: options.jobs,
            no_cache: options.no_cache,
            cache_budget: options.cache_budget,
            obs,
        }
    }

    /// The underlying store (for tests and introspection).
    pub fn store(&self) -> &AnalysisStore {
        &self.store
    }

    /// Analyzes one keyed bundle through the cache.
    pub fn analyze_one(&self, key: &str, bytes: &[u8]) -> AppOutcome {
        let checker = self.make_checker();
        self.analyze_with_checker(&checker, key, bytes)
    }

    /// Analyzes a batch of keyed bundles on the worker pool, preserving
    /// input order. Panicking apps (contained) report
    /// [`AnalyzeError::Panic`].
    pub fn analyze_batch(&self, items: &[(String, Vec<u8>)]) -> Vec<AppOutcome> {
        let outcomes = run_pool(
            items.len(),
            self.jobs,
            || self.make_checker(),
            |checker, i| {
                let (key, bytes) = &items[i];
                self.analyze_with_checker(checker, key, bytes)
            },
        );
        let outcomes: Vec<AppOutcome> = outcomes
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| AppOutcome {
                    report: Err(AnalyzeError::Panic(
                        "worker died before writing a result".to_owned(),
                    )),
                    reuse: ReuseStats::default(),
                    delta: None,
                    rendered: None,
                })
            })
            .collect();
        // Auto-GC: a budgeted service never lets the disk tier grow
        // unbounded across batches. Watermark-gated — while the live
        // occupancy estimate is under budget this is one atomic load,
        // not a directory rescan.
        if let Some(budget) = self.cache_budget {
            self.store.maybe_gc_disk(budget, &self.obs.fresh());
        }
        outcomes
    }

    /// Folds a batch's outcomes into aggregate cache stats.
    pub fn batch_stats(outcomes: &[AppOutcome]) -> BatchCacheStats {
        let mut stats = BatchCacheStats::default();
        for o in outcomes {
            if o.report.is_ok() {
                stats.absorb(&o.reuse);
            }
        }
        stats
    }

    fn make_checker(&self) -> NChecker {
        let mut checker = NChecker::with_config(self.config);
        checker.obs = self.obs.fresh();
        checker
    }

    fn analyze_with_checker(&self, checker: &NChecker, key: &str, bytes: &[u8]) -> AppOutcome {
        let svc_obs = self.obs.fresh();

        if self.no_cache {
            let report = checker.analyze_bytes_checked(bytes);
            return AppOutcome {
                report,
                reuse: ReuseStats::default(),
                delta: None,
                rendered: None,
            };
        }

        // The bundle is hashed exactly once per lookup: this same
        // fingerprint gates the memory tier (inside
        // `analyze_bytes_reusing_fp`), the disk tier, and the recorded
        // entry.
        let bundle_fp = nck_dex::wire::fnv1a(bytes);
        let prev = self.store.lookup(key, &svc_obs);

        // Disk tier: only consulted when the memory tier has nothing for
        // this key (a memory entry subsumes its own disk twin). An exact
        // fingerprint match is a whole-report hit — *promoted* into the
        // memory tier so the next lookup for this key skips the read and
        // decode entirely. A *stale* entry (same key, different bundle —
        // a resubmitted version) becomes the delta base, so version
        // diffs survive process restarts.
        let mut disk_base: Option<(u64, AppReport)> = None;
        if prev.is_none() && self.store.has_disk() {
            match self.store.lookup_disk_any(key, self.config_fp, &svc_obs) {
                Some((stored_fp, report)) if stored_fp == bundle_fp => {
                    self.store.count_outcome(true, &svc_obs);
                    // The disk tier holds exactly this: fingerprints and
                    // report, no replay seeds. The promoted entry serves
                    // rung 1 (whole-report reuse) from memory; a changed
                    // bundle recomputes cold either way.
                    self.store.promote(
                        key,
                        AppCacheEntry {
                            bundle_fp,
                            config_fp: self.config_fp,
                            report: report.clone(),
                            ..AppCacheEntry::default()
                        },
                        &svc_obs,
                    );
                    let reuse = ReuseStats {
                        whole_report: true,
                        ..ReuseStats::default()
                    };
                    return AppOutcome {
                        report: Ok(self.stamp(report, &svc_obs)),
                        reuse,
                        delta: None,
                        rendered: self.store.render_cell(key, bundle_fp),
                    };
                }
                Some(stale) => disk_base = Some(stale),
                None => {}
            }
        }

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            checker.analyze_bytes_reusing_fp(bytes, bundle_fp, prev.as_deref())
        }))
        .unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(AnalyzeError::Panic(msg))
        });

        match result {
            Ok((report, entry, reuse)) => {
                self.store.count_outcome(reuse.whole_report, &svc_obs);
                if !reuse.whole_report && reuse.classes_reused > 0 {
                    // Rung 2 of the incremental ladder: class-prefix
                    // replay on a whole-report miss.
                    self.store
                        .count_replay(reuse.classes_reused as u64, &svc_obs);
                }
                // Defect delta: a known key whose bundle changed. The
                // previous report comes from whichever tier held it; the
                // fingerprints ride along from the cache entries — no
                // hashing is spent on delta detection itself. Clean runs
                // only (`entry` is `Some` exactly then): diffing against
                // an incomplete report would invent fixes.
                let delta = match (&entry, reuse.whole_report) {
                    (Some(entry), false) => match (&prev, &disk_base) {
                        (Some(p), _) => Some(diff_reports(
                            key,
                            p.bundle_fp,
                            entry.bundle_fp,
                            &p.report,
                            &report,
                        )),
                        (None, Some((stored_fp, base))) => Some(diff_reports(
                            key,
                            *stored_fp,
                            entry.bundle_fp,
                            base,
                            &report,
                        )),
                        (None, None) => None,
                    },
                    _ => None,
                };
                if delta.is_some() {
                    self.store.count_delta(&svc_obs);
                }
                if let Some(entry) = entry {
                    debug_assert!(
                        !entry.report.degraded(),
                        "degraded apps must bypass the cache write path"
                    );
                    self.store.insert(key, entry, &svc_obs);
                }
                // The resident entry's render cell — present after an
                // insert, and on a rung-1 memory hit (the entry that
                // served it is still resident with this fingerprint).
                let rendered = self.store.render_cell(key, bundle_fp);
                AppOutcome {
                    report: Ok(self.stamp(report, &svc_obs)),
                    reuse,
                    delta,
                    rendered,
                }
            }
            Err(e) => {
                self.store.count_outcome(false, &svc_obs);
                AppOutcome {
                    report: Err(e),
                    reuse: ReuseStats::default(),
                    delta: None,
                    rendered: None,
                }
            }
        }
    }

    /// Merges the service-level metrics (cache counters, lookup spans)
    /// into the report's snapshot so `--json` exports carry
    /// `svc.cache.*` under the schema-v1 `"metrics"` key. No-op when
    /// metrics are disabled (keeping cold/warm reports byte-identical in
    /// benchmark mode).
    fn stamp(&self, mut report: AppReport, svc_obs: &Obs) -> AppReport {
        if svc_obs.metrics.is_enabled() {
            let snap = svc_obs.metrics.snapshot();
            match report.metrics.as_mut() {
                Some(m) => m.merge(&snap),
                None => report.metrics = Some(snap),
            }
        }
        report
    }
}
