//! Directory watching for `nchecker serve --watch DIR`.
//!
//! No inotify (no new dependencies): a [`Watcher`] polls the directory
//! and reports bundles whose *content* changed. The cheap gate is
//! `(mtime, len)` — unchanged metadata skips the read entirely — and
//! the authoritative gate is a content fingerprint, so a `touch` or an
//! in-place rewrite of identical bytes never triggers a re-analysis.
//!
//! The returned key is the file path, which is exactly what makes a
//! re-submitted bundle land on the incremental ladder: same key, new
//! bytes → class-prefix replay (rung 2) instead of a cold run.
//!
//! Deletion is a first-class event: a bundle that vanishes between
//! polls is dropped from the watcher's signature map and reported in
//! [`Poll::removed`], so the daemon can retire its state. Without this,
//! a delete-then-recreate of *identical bytes* would be silently
//! swallowed (the old signature still matches) and long-running watch
//! sessions would leak one map entry per deleted file.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Bundle file extensions the watcher picks up.
const BUNDLE_EXTENSIONS: [&str; 2] = ["apk", "adx"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FileSig {
    mtime: Option<SystemTime>,
    len: u64,
    content_fp: u64,
}

/// One [`Watcher::poll`]'s worth of events.
#[derive(Debug, Default)]
pub struct Poll {
    /// `(key, bytes)` for every new or content-changed bundle, sorted
    /// by path.
    pub changed: Vec<(String, Vec<u8>)>,
    /// Keys of previously seen bundles whose file is gone, sorted.
    pub removed: Vec<String>,
}

/// A polling directory watcher over app bundles.
pub struct Watcher {
    dir: PathBuf,
    seen: BTreeMap<PathBuf, FileSig>,
}

impl Watcher {
    /// Watches `dir`. The first [`Watcher::poll`] reports every bundle
    /// present (a daemon starting over a populated directory analyzes
    /// the backlog).
    pub fn new(dir: impl Into<PathBuf>) -> Watcher {
        Watcher {
            dir: dir.into(),
            seen: BTreeMap::new(),
        }
    }

    /// The watched directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Scans once; reports content changes and deletions. Files that
    /// vanish mid-scan are skipped this round (they surface as
    /// [`Poll::removed`] on the next one), not errors.
    pub fn poll(&mut self) -> io::Result<Poll> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                let ext = path.extension()?.to_str()?;
                (path.is_file() && BUNDLE_EXTENSIONS.contains(&ext)).then_some(path)
            })
            .collect();
        paths.sort();

        let mut out = Poll::default();

        // Retire signatures of files the scan no longer sees. `seen` and
        // `paths` are both sorted, so the difference is one merge walk.
        let present: std::collections::BTreeSet<&PathBuf> = paths.iter().collect();
        let gone: Vec<PathBuf> = self
            .seen
            .keys()
            .filter(|p| !present.contains(p))
            .cloned()
            .collect();
        for path in gone {
            self.seen.remove(&path);
            out.removed.push(path.to_string_lossy().into_owned());
        }

        for path in paths {
            let Ok(meta) = std::fs::metadata(&path) else {
                continue;
            };
            let mtime = meta.modified().ok();
            let len = meta.len();
            if self
                .seen
                .get(&path)
                .is_some_and(|sig| sig.mtime == mtime && sig.len == len)
            {
                continue;
            }
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            let content_fp = nck_dex::wire::fnv1a(&bytes);
            let same_content = self
                .seen
                .get(&path)
                .is_some_and(|sig| sig.content_fp == content_fp);
            self.seen.insert(
                path.clone(),
                FileSig {
                    mtime,
                    len,
                    content_fp,
                },
            );
            if !same_content {
                out.changed
                    .push((path.to_string_lossy().into_owned(), bytes));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nck-watch-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn first_poll_reports_the_backlog_sorted() {
        let dir = tmpdir("backlog");
        std::fs::write(dir.join("b.apk"), b"bbb").unwrap();
        std::fs::write(dir.join("a.adx"), b"aaa").unwrap();
        std::fs::write(dir.join("ignore.txt"), b"no").unwrap();
        let mut w = Watcher::new(&dir);
        let poll = w.poll().unwrap();
        let keys: Vec<&str> = poll.changed.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                dir.join("a.adx").to_str().unwrap(),
                dir.join("b.apk").to_str().unwrap(),
            ]
        );
        assert!(poll.removed.is_empty());
        // Steady state: nothing changed, nothing reported.
        let poll = w.poll().unwrap();
        assert!(poll.changed.is_empty());
        assert!(poll.removed.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn touch_without_content_change_is_ignored() {
        let dir = tmpdir("touch");
        let file = dir.join("app.apk");
        std::fs::write(&file, b"same bytes").unwrap();
        let mut w = Watcher::new(&dir);
        assert_eq!(w.poll().unwrap().changed.len(), 1);
        // Rewrite identical bytes: mtime moves, content does not.
        std::fs::write(&file, b"same bytes").unwrap();
        assert!(w.poll().unwrap().changed.is_empty());
        // A real edit is reported.
        std::fs::write(&file, b"new bytes!").unwrap();
        let poll = w.poll().unwrap();
        assert_eq!(poll.changed.len(), 1);
        assert_eq!(poll.changed[0].1, b"new bytes!");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deleted_files_are_retired_not_leaked() {
        let dir = tmpdir("retire");
        let file = dir.join("app.apk");
        std::fs::write(&file, b"v1 bytes").unwrap();
        let mut w = Watcher::new(&dir);
        assert_eq!(w.poll().unwrap().changed.len(), 1);

        std::fs::remove_file(&file).unwrap();
        let poll = w.poll().unwrap();
        assert!(poll.changed.is_empty());
        assert_eq!(poll.removed, vec![file.to_string_lossy().into_owned()]);
        assert!(w.seen.is_empty(), "signature map must not leak");
        // Removal is reported once, not every poll.
        assert!(w.poll().unwrap().removed.is_empty());

        // Recreating the file with the *same* bytes is a fresh arrival —
        // before retirement this was swallowed by the stale signature.
        std::fs::write(&file, b"v1 bytes").unwrap();
        let poll = w.poll().unwrap();
        assert_eq!(poll.changed.len(), 1, "recreated file must re-analyze");
        assert_eq!(poll.changed[0].1, b"v1 bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
