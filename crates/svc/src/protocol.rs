//! The daemon's wire protocol: line-delimited JSON over a Unix socket
//! or stdin/stdout.
//!
//! Every request is one line holding one JSON object with a `"verb"`
//! field; every reply is one line holding one JSON object with an
//! `"ok"` field. Multi-line payloads (reports, doctor snapshots) ride
//! *inside* the reply as JSON strings — the serializer escapes every
//! newline, so the framing survives and the client recovers the exact
//! bytes by unescaping one string field. That is what makes `report`
//! replies byte-identical to one-shot `--json` output without giving
//! up one-line framing.
//!
//! Verbs:
//!
//! | verb       | fields            | reply                                   |
//! |------------|-------------------|-----------------------------------------|
//! | `submit`   | `path`, `key`?    | `id`, `pending`                         |
//! | `status`   | `id`?             | queue counters, or one job's state      |
//! | `report`   | `id`              | `report` (exact `--json` bytes)         |
//! | `doctor`   | —                 | `doctor` (exact `--doctor` bytes + queue)|
//! | `shutdown` | —                 | `pending`; daemon drains and exits      |
//!
//! Errors are typed: `{"ok": false, "error": {"code": ..., "message":
//! ...}}`. Malformed lines, unknown verbs, and oversized requests get
//! an error reply and the connection stays line-synced (oversized
//! physical lines are drained to their newline); a protocol error never
//! takes the daemon down.

use serde_json::{json, Value};
use std::io::{self, BufRead, Read};

/// Hard cap on one request line, newline included. A line longer than
/// this is drained and answered with [`ErrorCode::Oversized`] — the
/// connection survives, the request does not.
pub const MAX_REQUEST_LINE: usize = 1 << 20;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Enqueue the bundle at `path`; `key` is the app's stable identity
    /// across versions (defaults to the path itself, which is what
    /// makes re-submitting an updated file hit the incremental ladder).
    Submit {
        /// Bundle file to read and analyze.
        path: String,
        /// Cache identity override.
        key: Option<String>,
    },
    /// Queue counters, or one job's state when `id` is given.
    Status {
        /// Job to inspect (`None` = whole-queue view).
        id: Option<u64>,
    },
    /// Fetch a finished job's report.
    Report {
        /// Job to fetch.
        id: u64,
    },
    /// The canonical health snapshot plus the queue section.
    Doctor,
    /// Stop accepting, drain in-flight work, flush the cache, exit.
    Shutdown,
}

/// Typed protocol error codes (the `error.code` reply field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not a JSON object of the expected shape.
    Malformed,
    /// The `verb` field names no known verb.
    UnknownVerb,
    /// The request line exceeded [`MAX_REQUEST_LINE`].
    Oversized,
    /// Admission control rejected the submit: queue at capacity.
    QueueFull,
    /// Submit after shutdown began.
    ShuttingDown,
    /// No such job id (or it aged out of retention).
    NotFound,
    /// The job exists but has not finished yet.
    NotReady,
    /// The job finished with an analysis error.
    AnalysisFailed,
    /// The bundle file could not be read at submit time.
    ReadFailed,
}

impl ErrorCode {
    /// The stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnknownVerb => "unknown-verb",
            ErrorCode::Oversized => "oversized",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::NotFound => "not-found",
            ErrorCode::NotReady => "not-ready",
            ErrorCode::AnalysisFailed => "analysis-failed",
            ErrorCode::ReadFailed => "read-failed",
        }
    }
}

/// A protocol-level failure: code plus human-readable detail.
pub type ProtocolError = (ErrorCode, String);

fn malformed(msg: &str) -> ProtocolError {
    (ErrorCode::Malformed, msg.to_owned())
}

fn id_of(m: &std::collections::BTreeMap<String, Value>) -> Result<Option<u64>, ProtocolError> {
    match m.get("id") {
        None => Ok(None),
        Some(v) => v
            .as_i64()
            .and_then(|n| u64::try_from(n).ok())
            .map(Some)
            .ok_or_else(|| malformed("field \"id\" must be a non-negative integer")),
    }
}

fn str_field(
    m: &std::collections::BTreeMap<String, Value>,
    key: &str,
) -> Result<Option<String>, ProtocolError> {
    match m.get(key) {
        None => Ok(None),
        Some(Value::String(s)) => Ok(Some(s.clone())),
        Some(_) => Err(malformed(&format!("field {key:?} must be a string"))),
    }
}

/// Parses one request line. The error carries the typed code the reply
/// should use.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let v = serde_json::from_str(line.trim_end_matches(['\r', '\n']))
        .map_err(|_| malformed("request is not valid JSON"))?;
    let Value::Object(m) = &v else {
        return Err(malformed("request must be a JSON object"));
    };
    let Some(Value::String(verb)) = m.get("verb") else {
        return Err(malformed("missing string field \"verb\""));
    };
    match verb.as_str() {
        "submit" => {
            let Some(path) = str_field(m, "path")? else {
                return Err(malformed("submit requires a string field \"path\""));
            };
            Ok(Request::Submit {
                path,
                key: str_field(m, "key")?,
            })
        }
        "status" => Ok(Request::Status { id: id_of(m)? }),
        "report" => match id_of(m)? {
            Some(id) => Ok(Request::Report { id }),
            None => Err(malformed("report requires an integer field \"id\"")),
        },
        "doctor" => Ok(Request::Doctor),
        "shutdown" => Ok(Request::Shutdown),
        other => Err((ErrorCode::UnknownVerb, format!("unknown verb {other:?}"))),
    }
}

/// Serializes a reply value to its one-line wire form.
pub fn render_reply(v: &Value) -> String {
    let mut line = serde_json::to_string(v).expect("reply serializes");
    line.push('\n');
    line
}

/// The one-line error reply for `code`.
pub fn error_line(code: ErrorCode, message: &str) -> String {
    render_reply(&json!({
        "ok": false,
        "error": { "code": code.tag(), "message": message },
    }))
}

/// One framed read off the request stream.
#[derive(Debug, PartialEq, Eq)]
pub enum Line {
    /// Stream closed cleanly.
    Eof,
    /// The physical line exceeded [`MAX_REQUEST_LINE`]; it has been
    /// drained to its newline, so the next read starts on the next
    /// request.
    Oversized,
    /// One request line (newline stripped by the parser, not here).
    Text(String),
}

/// Reads one request line, enforcing [`MAX_REQUEST_LINE`]. Invalid
/// UTF-8 is passed through lossily — it fails JSON parsing and earns a
/// `malformed` reply rather than an I/O error.
pub fn read_request_line<R: BufRead>(reader: &mut R) -> io::Result<Line> {
    let mut buf = Vec::new();
    let n = reader
        .take(MAX_REQUEST_LINE as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(Line::Eof);
    }
    if buf.last() != Some(&b'\n') && n > MAX_REQUEST_LINE {
        drain_line(reader)?;
        return Ok(Line::Oversized);
    }
    Ok(Line::Text(String::from_utf8_lossy(&buf).into_owned()))
}

/// Consumes the stream up to and including the next newline (or EOF)
/// without buffering it — the tail of an oversized line.
fn drain_line<R: BufRead>(reader: &mut R) -> io::Result<()> {
    loop {
        let (done, used) = {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                return Ok(());
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(i) => (true, i + 1),
                None => (false, chunk.len()),
            }
        };
        reader.consume(used);
        if done {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn verbs_parse() {
        assert_eq!(
            parse_request(r#"{"verb": "submit", "path": "a.apk"}"#).unwrap(),
            Request::Submit {
                path: "a.apk".to_owned(),
                key: None
            }
        );
        assert_eq!(
            parse_request(r#"{"verb": "submit", "path": "a.apk", "key": "app-1"}"#).unwrap(),
            Request::Submit {
                path: "a.apk".to_owned(),
                key: Some("app-1".to_owned())
            }
        );
        assert_eq!(
            parse_request(r#"{"verb": "status"}"#).unwrap(),
            Request::Status { id: None }
        );
        assert_eq!(
            parse_request("{\"verb\": \"status\", \"id\": 7}\n").unwrap(),
            Request::Status { id: Some(7) }
        );
        assert_eq!(
            parse_request(r#"{"verb": "report", "id": 1}"#).unwrap(),
            Request::Report { id: 1 }
        );
        assert_eq!(
            parse_request(r#"{"verb": "doctor"}"#).unwrap(),
            Request::Doctor
        );
        assert_eq!(
            parse_request(r#"{"verb": "shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_requests_are_typed() {
        for line in [
            "not json",
            "[1, 2]",
            r#"{"path": "a.apk"}"#,
            r#"{"verb": 7}"#,
            r#"{"verb": "submit"}"#,
            r#"{"verb": "submit", "path": 3}"#,
            r#"{"verb": "report"}"#,
            r#"{"verb": "report", "id": -1}"#,
            r#"{"verb": "status", "id": "x"}"#,
        ] {
            let (code, _) = parse_request(line).unwrap_err();
            assert_eq!(code, ErrorCode::Malformed, "line {line:?}");
        }
        let (code, msg) = parse_request(r#"{"verb": "frobnicate"}"#).unwrap_err();
        assert_eq!(code, ErrorCode::UnknownVerb);
        assert!(msg.contains("frobnicate"));
    }

    #[test]
    fn oversized_lines_are_drained_to_stay_line_synced() {
        let mut input = vec![b'x'; MAX_REQUEST_LINE + 100];
        input.push(b'\n');
        input.extend_from_slice(b"{\"verb\": \"doctor\"}\n");
        let mut r = Cursor::new(input);
        assert_eq!(read_request_line(&mut r).unwrap(), Line::Oversized);
        match read_request_line(&mut r).unwrap() {
            Line::Text(t) => assert_eq!(parse_request(&t).unwrap(), Request::Doctor),
            other => panic!("expected the next request, got {other:?}"),
        }
        assert_eq!(read_request_line(&mut r).unwrap(), Line::Eof);
    }

    #[test]
    fn unterminated_final_line_is_still_served() {
        let mut r = Cursor::new(b"{\"verb\": \"status\"}".to_vec());
        match read_request_line(&mut r).unwrap() {
            Line::Text(t) => assert_eq!(parse_request(&t).unwrap(), Request::Status { id: None }),
            other => panic!("expected text, got {other:?}"),
        }
        assert_eq!(read_request_line(&mut r).unwrap(), Line::Eof);
    }

    #[test]
    fn a_line_of_exactly_the_cap_is_accepted() {
        // Content + newline == MAX_REQUEST_LINE: legal.
        let mut input = vec![b' '; MAX_REQUEST_LINE - 1];
        input.push(b'\n');
        let mut r = Cursor::new(input);
        assert!(matches!(read_request_line(&mut r).unwrap(), Line::Text(_)));
    }

    #[test]
    fn error_lines_are_one_line_json() {
        let line = error_line(ErrorCode::QueueFull, "queue at capacity (4)");
        assert!(line.ends_with('\n'));
        assert_eq!(line.matches('\n').count(), 1);
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v["ok"], false);
        assert_eq!(v["error"]["code"].as_str().unwrap(), "queue-full");
    }

    #[test]
    fn embedded_multiline_payloads_stay_one_line() {
        let reply = render_reply(&json!({"ok": true, "report": "{\n  \"a\": 1\n}\n"}));
        assert_eq!(reply.matches('\n').count(), 1);
        let v = serde_json::from_str(&reply).unwrap();
        assert_eq!(v["report"].as_str().unwrap(), "{\n  \"a\": 1\n}\n");
    }
}
