//! The sharded, content-addressed analysis store.
//!
//! Two tiers:
//!
//! - **Memory** — full [`AppCacheEntry`]s (replay seeds, `Arc`'d
//!   dataflow artifacts, report) sharded by app key, LRU-evicted under
//!   *both* an entry-count cap and an approximate byte budget (one batch
//!   of huge apps must not blow past a memory target that a thousand
//!   small apps respect). Seeds embed interned symbol ids and shared
//!   pointers, so this tier is process-local by construction.
//! - **Disk** (optional, under `--cache-dir`) — the durable subset: the
//!   bundle and config fingerprints plus the report in the faithful
//!   [`crate::wire`] format. A disk hit serves an *identical* bundle
//!   across process restarts; a changed bundle misses and re-records —
//!   but the stale entry is still *readable* ([`AnalysisStore::lookup_disk_any`]),
//!   which is what lets a resubmitted app version produce a defect
//!   delta even across process boundaries.
//!
//! The disk tier is garbage-collected by [`AnalysisStore::gc_disk`]:
//! size-budgeted LRU eviction ordered by per-entry *atime sidecar*
//! files (entry mtime is the fallback stamp for entries never read
//! back). A disk hit does **no** sidecar I/O on the hot path: reads
//! land in an in-memory write-behind journal
//! ([`AnalysisStore::flush_atimes`]) that is flushed in batches —
//! before every GC scan, on [`AnalysisStore::sync_disk`], and when the
//! store drops. A crash loses only the unflushed journal; GC then
//! degrades to the mtime fallback for those entries (an entry is never
//! evicted *wrongly*, only ranked by its older stamp). Eviction is
//! plain `unlink` against tmp+rename writers, so a concurrent reader
//! sees a full entry or a miss — never a torn one. Quarantined
//! `.quarantine` files are outside the cache namespace: GC neither
//! counts them against the budget nor touches them.
//!
//! The store also keeps a **live occupancy estimate** of the disk tier
//! (seeded by one startup scan, maintained on every insert, eviction,
//! and quarantine), so a budgeted service can gate GC on a watermark
//! ([`AnalysisStore::maybe_gc_disk`]) instead of paying a full
//! directory rescan per batch: under the high watermark the check is
//! one atomic load and a `svc.cache.gc_skipped` bump.
//!
//! Every lookup runs under a `cache_lookup` span and bumps the
//! `svc.cache.{hit,miss}` counters on the obs handle it is given;
//! evictions bump `svc.cache.evict`, GC bumps `svc.cache.gc_*`. Corrupt
//! disk files decode as misses, never errors — and are *quarantined*
//! (renamed out of the cache namespace) so they are not re-read and
//! re-rejected on every subsequent lookup.
//!
//! Besides the per-app obs handle, the store owns a service-lifetime
//! [`Metrics`] registry mirroring every `svc.cache.*` counter. Per-app
//! handles are often disabled (reports must stay byte-identical to
//! uninstrumented runs), but a long-lived service still needs the
//! lifetime totals — the `--doctor` snapshot and the daemon's `doctor`
//! verb read them from [`AnalysisStore::metrics`].

use nchecker::cache::AppCacheEntry;
use nck_obs::{Metrics, Obs};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::SystemTime;

const SHARDS: usize = 16;

/// Default memory-tier capacity (entries across all shards).
pub const DEFAULT_CAPACITY: usize = 256;

/// Default memory-tier byte budget (approximate, across all shards).
/// Generous enough that the entry-count cap binds first for typical
/// corpora; the byte cap exists for the huge-app tail.
pub const DEFAULT_MEM_BYTES: usize = 256 << 20;

fn key_hash(key: &str) -> u64 {
    nck_dex::wire::fnv1a(key.as_bytes())
}

/// One resident memory-tier entry.
struct MemEntry {
    /// Last-used tick (LRU ordering).
    tick: u64,
    /// Approximate byte charge ([`AppCacheEntry::approx_bytes`]).
    approx: usize,
    entry: Arc<AppCacheEntry>,
    /// Lazily-filled rendered one-shot JSON of this entry's report,
    /// shared out via [`AnalysisStore::render_cell`]. Reset whenever
    /// the entry is replaced, so the bytes always describe `entry`.
    rendered: Arc<RenderCell>,
}

/// A memoization slot for one cache entry's rendered one-shot `--json`
/// bytes. Filled at most once per resident entry; consumers that find
/// it filled skip re-encoding the report entirely.
#[derive(Debug, Default)]
pub struct RenderCell(OnceLock<Arc<String>>);

impl RenderCell {
    /// The cached rendering, computing (and caching) it via `render` on
    /// first use.
    pub fn get_or_render(&self, render: impl FnOnce() -> String) -> Arc<String> {
        Arc::clone(self.0.get_or_init(|| Arc::new(render())))
    }

    /// The cached rendering, if one was ever computed.
    pub fn get(&self) -> Option<Arc<String>> {
        self.0.get().cloned()
    }
}

struct Shard {
    entries: HashMap<String, MemEntry>,
    /// Sum of the approx-bytes column.
    bytes: usize,
}

/// A sharded two-tier analysis cache, safe to hammer from the pool.
pub struct AnalysisStore {
    shards: Vec<Mutex<Shard>>,
    clock: AtomicU64,
    capacity: usize,
    mem_budget: usize,
    disk: Option<PathBuf>,
    metrics: Metrics,
    /// Write-behind atime journal: entry path → last read stamp.
    /// Flushed to sidecar files by [`AnalysisStore::flush_atimes`].
    atime_journal: Mutex<HashMap<PathBuf, SystemTime>>,
    /// Live disk-tier occupancy estimate, bytes. Valid once
    /// `disk_seeded` ran; resynced to exact numbers by every GC scan.
    disk_bytes: AtomicU64,
    /// Gates the one startup scan that seeds `disk_bytes`.
    disk_seeded: Once,
}

impl AnalysisStore {
    /// An in-memory store with the default capacity and no disk tier.
    pub fn new() -> AnalysisStore {
        AnalysisStore::with_options(DEFAULT_CAPACITY, None)
    }

    /// A store with an explicit entry capacity, the default byte
    /// budget, and an optional disk directory (created on first write).
    pub fn with_options(capacity: usize, disk: Option<PathBuf>) -> AnalysisStore {
        AnalysisStore::with_budgets(capacity, DEFAULT_MEM_BYTES, disk)
    }

    /// A store with explicit entry and byte caps on the memory tier.
    /// Eviction triggers when *either* cap is exceeded; a shard always
    /// retains at least its newest entry, so one entry larger than the
    /// whole budget still caches (and evicts everything else).
    pub fn with_budgets(
        capacity: usize,
        mem_budget: usize,
        disk: Option<PathBuf>,
    ) -> AnalysisStore {
        AnalysisStore {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        bytes: 0,
                    })
                })
                .collect(),
            clock: AtomicU64::new(0),
            capacity: capacity.max(1),
            mem_budget: mem_budget.max(1),
            disk,
            metrics: Metrics::enabled(),
            atime_journal: Mutex::new(HashMap::new()),
            disk_bytes: AtomicU64::new(0),
            disk_seeded: Once::new(),
        }
    }

    /// Whether a disk tier is configured.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// The store-lifetime metrics registry: every `svc.cache.*` counter
    /// this store ever bumped, regardless of whether the per-app obs
    /// handle of the moment was recording.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn count(&self, name: &str, by: u64, obs: &Obs) {
        self.metrics.inc(name, by);
        obs.metrics.inc(name, by);
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        &self.shards[(key_hash(key) as usize) % SHARDS]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Memory-tier lookup. Counts neither hit nor miss — the *outcome*
    /// of the analysis (whole-report reuse vs. recompute) decides that;
    /// see [`AnalysisStore::count_outcome`].
    pub fn lookup(&self, key: &str, obs: &Obs) -> Option<Arc<AppCacheEntry>> {
        let _s = obs.tracer.span("cache_lookup");
        let mut shard = lock(self.shard(key));
        let tick = self.tick();
        shard.entries.get_mut(key).map(|slot| {
            slot.tick = tick;
            Arc::clone(&slot.entry)
        })
    }

    /// The render-memoization cell of the resident memory entry for
    /// `key`, provided that entry was recorded for `bundle_fp` (a cell
    /// must never serve bytes rendered from a different bundle's
    /// report). `None` when the key is absent or the entry moved on.
    pub fn render_cell(&self, key: &str, bundle_fp: u64) -> Option<Arc<RenderCell>> {
        let shard = lock(self.shard(key));
        shard
            .entries
            .get(key)
            .filter(|m| m.entry.bundle_fp == bundle_fp)
            .map(|m| Arc::clone(&m.rendered))
    }

    /// Disk-tier lookup: returns the cached report only when both
    /// fingerprints match exactly.
    ///
    /// A *stale* entry (well-formed, but recorded for a different
    /// bundle) is a plain miss and stays on disk for the next insert to
    /// overwrite. A *corrupt* entry (unparseable, wrong wire schema, or
    /// a shape the decoder rejects) is quarantined: left in place it
    /// would be re-read and re-rejected on every lookup and permanently
    /// inflate the disk occupancy stats.
    pub fn lookup_disk(
        &self,
        key: &str,
        bundle_fp: u64,
        config_fp: u64,
        obs: &Obs,
    ) -> Option<nchecker::AppReport> {
        let (stored_fp, report) = self.lookup_disk_any(key, config_fp, obs)?;
        (stored_fp == bundle_fp).then_some(report)
    }

    /// Disk-tier read *without* the bundle-fingerprint gate: returns
    /// whatever well-formed entry exists for `(key, config_fp)`, along
    /// with the bundle fingerprint it was recorded for. The caller
    /// decides hit (fingerprints match) vs. *delta base* (they differ —
    /// the entry's report describes the previous version of this app).
    /// Corrupt entries quarantine exactly as in
    /// [`AnalysisStore::lookup_disk`]. Reading records the entry in the
    /// in-memory atime journal (no sidecar I/O on the hot path), which
    /// is what makes [`AnalysisStore::gc_disk`]'s eviction order an LRU
    /// rather than FIFO.
    pub fn lookup_disk_any(
        &self,
        key: &str,
        config_fp: u64,
        obs: &Obs,
    ) -> Option<(u64, nchecker::AppReport)> {
        let dir = self.disk.as_deref()?;
        let _s = obs.tracer.span("cache_lookup_disk");
        let path = disk_path(dir, key, config_fp);
        let text = std::fs::read_to_string(&path).ok()?;
        match decode_disk_entry(&text, config_fp) {
            DiskEntry::Entry(stored_fp, report) => {
                lock_plain(&self.atime_journal).insert(path, SystemTime::now());
                Some((stored_fp, *report))
            }
            DiskEntry::Corrupt => {
                self.quarantine(&path, obs);
                None
            }
        }
    }

    /// Flushes the write-behind atime journal: every journaled read
    /// becomes a sidecar file whose mtime is the recorded read stamp,
    /// so relative recency survives the batching exactly. Entries that
    /// vanished since the read (evicted, quarantined) are dropped
    /// rather than resurrected as orphan sidecars. Called before every
    /// GC scan, by [`AnalysisStore::sync_disk`], and on drop; a crash
    /// in between loses only the journal, never an entry.
    pub fn flush_atimes(&self) {
        let drained: Vec<(PathBuf, SystemTime)> = {
            let mut journal = lock_plain(&self.atime_journal);
            journal.drain().collect()
        };
        for (path, stamp) in drained {
            if !path.exists() {
                continue;
            }
            let sidecar = path.with_extension("atime");
            if std::fs::write(&sidecar, b"").is_ok() {
                if let Ok(f) = std::fs::File::options().write(true).open(&sidecar) {
                    let _ = f.set_modified(stamp);
                }
            }
        }
    }

    /// Reads pending in the atime journal (tests and introspection).
    pub fn journaled_atimes(&self) -> usize {
        lock_plain(&self.atime_journal).len()
    }

    /// Renames a corrupt cache file out of the cache namespace
    /// (`.json` → `.quarantine`, which [`scan_disk`] and lookups both
    /// ignore), deleting it outright if even the rename fails. The
    /// atime sidecar goes with it — a quarantined entry must never be
    /// charged against the GC budget again.
    fn quarantine(&self, path: &Path, obs: &Obs) {
        self.seed_occupancy();
        let len = std::fs::metadata(path).map_or(0, |m| m.len());
        if std::fs::rename(path, path.with_extension("quarantine")).is_err() {
            let _ = std::fs::remove_file(path);
        }
        let _ = std::fs::remove_file(path.with_extension("atime"));
        lock_plain(&self.atime_journal).remove(path);
        self.sub_occupancy(len);
        self.count("svc.cache.corrupt_evict", 1, obs);
        obs.events.warn(&format!(
            "cache: quarantined corrupt entry {}",
            path.display()
        ));
    }

    /// Records a finished clean analysis in both tiers. Degraded apps
    /// must never reach this (the service enforces it; the checker
    /// already returns no entry for them).
    pub fn insert(&self, key: &str, entry: AppCacheEntry, obs: &Obs) {
        if let Some(dir) = self.disk.as_deref() {
            self.seed_occupancy();
            let (new_len, old_len) = write_disk(dir, key, &entry, obs);
            self.sub_occupancy(old_len);
            self.disk_bytes.fetch_add(new_len, Ordering::Relaxed);
        }
        self.insert_memory(key, entry, obs);
    }

    /// Promotes an entry into the memory tier *only* — the disk tier
    /// already holds it. Used on a disk hit so the next lookup for the
    /// same key is a memory hit instead of a read + decode.
    pub fn promote(&self, key: &str, entry: AppCacheEntry, obs: &Obs) {
        self.insert_memory(key, entry, obs);
    }

    fn insert_memory(&self, key: &str, entry: AppCacheEntry, obs: &Obs) {
        let approx = entry.approx_bytes();
        let slot = MemEntry {
            tick: self.tick(),
            approx,
            entry: Arc::new(entry),
            rendered: Arc::new(RenderCell::default()),
        };
        let mut shard = lock(self.shard(key));
        if let Some(old) = shard.entries.insert(key.to_owned(), slot) {
            shard.bytes -= old.approx;
        }
        shard.bytes += approx;
        // Per-shard share of the global caps, at least 1 entry / 1 byte.
        // Evicting down to (but never past) a single entry means an
        // over-budget giant still caches.
        let cap = self.capacity.div_ceil(SHARDS);
        let byte_cap = self.mem_budget.div_ceil(SHARDS);
        while (shard.entries.len() > cap || shard.bytes > byte_cap) && shard.entries.len() > 1 {
            let oldest = shard
                .entries
                .iter()
                .min_by(|(ka, ma), (kb, mb)| (ma.tick, ka.as_str()).cmp(&(mb.tick, kb.as_str())))
                .map(|(k, _)| k.clone())
                .expect("non-empty shard");
            if let Some(old) = shard.entries.remove(&oldest) {
                shard.bytes -= old.approx;
            }
            self.count("svc.cache.evict", 1, obs);
        }
    }

    /// Bumps `svc.cache.hit` or `svc.cache.miss` for one analyzed app.
    /// Whole-report reuse (from either tier) is the only thing counted
    /// as a hit: partial prefix reuse still recomputes the report, and
    /// its savings show up in the reuse stats instead.
    pub fn count_outcome(&self, hit: bool, obs: &Obs) {
        self.count(
            if hit {
                "svc.cache.hit"
            } else {
                "svc.cache.miss"
            },
            1,
            obs,
        );
    }

    /// Records one rung-2 incremental analysis: a cache miss whose
    /// class prefix replayed. `classes` is the replayed class count.
    pub fn count_replay(&self, classes: u64, obs: &Obs) {
        self.count("svc.cache.replay_apps", 1, obs);
        self.count("svc.cache.replay_classes", classes, obs);
    }

    /// Records one computed defect delta (a resubmission under a known
    /// key whose bundle changed).
    pub fn count_delta(&self, obs: &Obs) {
        self.count("svc.cache.deltas", 1, obs);
    }

    /// Number of memory-tier entries, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).entries.len()).sum()
    }

    /// Whether the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard memory-tier entry counts, in shard order.
    pub fn mem_shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| lock(s).entries.len()).collect()
    }

    /// Approximate memory-tier bytes, across all shards (the
    /// [`AppCacheEntry::approx_bytes`] accounting the byte cap evicts
    /// on).
    pub fn mem_bytes(&self) -> usize {
        self.shards.iter().map(|s| lock(s).bytes).sum()
    }

    /// Records the memory tier's occupancy as point-in-time gauges:
    /// `svc.cache.mem_entries` (total), `svc.cache.mem_bytes`
    /// (approximate resident size), and `svc.cache.mem_largest_shard`
    /// (balance indicator).
    pub fn record_gauges(&self, metrics: &nck_obs::Metrics) {
        let sizes = self.mem_shard_sizes();
        metrics.gauge("svc.cache.mem_entries", sizes.iter().sum::<usize>() as i64);
        metrics.gauge("svc.cache.mem_bytes", self.mem_bytes() as i64);
        metrics.gauge(
            "svc.cache.mem_largest_shard",
            sizes.iter().copied().max().unwrap_or(0) as i64,
        );
    }

    /// Scans this store's disk tier. Zeroed stats when no disk tier is
    /// configured or the directory does not exist yet.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.as_deref().map_or_else(DiskStats::new, scan_disk)
    }

    /// Seeds the live occupancy estimate with one full scan, exactly
    /// once per store. Every disk mutation calls this first, so the
    /// estimate never double-counts the seeding scan's own bytes.
    fn seed_occupancy(&self) {
        self.disk_seeded.call_once(|| {
            self.disk_bytes
                .store(self.disk_stats().bytes, Ordering::Relaxed);
        });
    }

    fn sub_occupancy(&self, len: u64) {
        let _ = self
            .disk_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(len))
            });
    }

    /// The live disk-tier occupancy estimate, in bytes. Seeded by one
    /// scan on first use, then maintained incrementally on every
    /// insert, quarantine, and GC resync — reading it is one atomic
    /// load, not a directory walk.
    pub fn disk_occupancy(&self) -> u64 {
        self.seed_occupancy();
        self.disk_bytes.load(Ordering::Relaxed)
    }

    /// Watermark-gated GC: a no-op (one atomic load plus a
    /// `svc.cache.gc_skipped` bump) while the occupancy estimate is at
    /// or under `budget` (the high watermark). When occupancy crosses
    /// it, collects down to the *low* watermark — `budget` minus one
    /// eighth — so the next run is not re-triggered by the very next
    /// insert (hysteresis). Returns `None` when the run was skipped.
    pub fn maybe_gc_disk(&self, budget: u64, obs: &Obs) -> Option<GcStats> {
        self.disk.as_ref()?;
        if self.disk_occupancy() <= budget {
            self.count("svc.cache.gc_skipped", 1, obs);
            return None;
        }
        let low = budget - budget / 8;
        Some(self.gc_disk(low, obs))
    }

    /// Garbage-collects the disk tier down to `budget` bytes of cache
    /// entries, evicting least-recently-used first (atime sidecar,
    /// falling back to the entry's own mtime for entries never read
    /// back; ties break on file name so repeated runs evict
    /// deterministically).
    ///
    /// Safe under concurrent readers and writers: eviction is a plain
    /// `unlink`, and entries are written tmp+rename, so a reader racing
    /// GC sees the full entry or a miss — never a torn file.
    /// `.quarantine` and `.tmp` files are outside the cache namespace:
    /// neither counted against the budget nor deleted.
    ///
    /// Counts `svc.cache.gc_runs`, `svc.cache.gc_evicted`, and
    /// `svc.cache.gc_freed_bytes`. A no-op (no disk tier, or already
    /// under budget) still counts the run.
    pub fn gc_disk(&self, budget: u64, obs: &Obs) -> GcStats {
        self.count("svc.cache.gc_runs", 1, obs);
        let mut stats = GcStats::default();
        let Some(dir) = self.disk.as_deref() else {
            return stats;
        };
        let _s = obs.tracer.span("cache_gc");
        // Journaled reads become sidecars before the scan, so the
        // eviction order sees every recorded recency. Unflushed entries
        // from a *crashed* predecessor fall back to entry mtime below.
        self.flush_atimes();
        let mut entries: Vec<(SystemTime, String, u64)> = Vec::new();
        let Ok(dirents) = std::fs::read_dir(dir) else {
            return stats;
        };
        for dirent in dirents.flatten() {
            let name = dirent.file_name();
            let Some(name) = name.to_str() else { continue };
            if !is_entry_name(name) {
                continue;
            }
            let Ok(meta) = dirent.metadata() else {
                continue;
            };
            let atime = std::fs::metadata(dir.join(name).with_extension("atime"))
                .and_then(|m| m.modified())
                .or_else(|_| meta.modified())
                .unwrap_or(SystemTime::UNIX_EPOCH);
            entries.push((atime, name.to_owned(), meta.len()));
        }
        stats.entries = entries.len() as u64;
        stats.bytes = entries.iter().map(|(_, _, len)| len).sum();
        if stats.bytes <= budget {
            return stats;
        }
        entries.sort();
        let mut live = stats.bytes;
        for (_, name, len) in entries {
            if live <= budget {
                break;
            }
            let path = dir.join(&name);
            if std::fs::remove_file(&path).is_ok() {
                let _ = std::fs::remove_file(path.with_extension("atime"));
                live -= len;
                stats.evicted += 1;
                stats.freed_bytes += len;
            }
        }
        self.count("svc.cache.gc_evicted", stats.evicted, obs);
        self.count("svc.cache.gc_freed_bytes", stats.freed_bytes, obs);
        // The scan just measured the tier exactly; resync the estimate.
        self.disk_seeded.call_once(|| {});
        self.disk_bytes.store(stats.live_bytes(), Ordering::Relaxed);
        if stats.evicted > 0 {
            obs.events.info(&format!(
                "cache-gc: evicted {} of {} entries ({} bytes freed)",
                stats.evicted, stats.entries, stats.freed_bytes
            ));
        }
        stats
    }

    /// Best-effort flush of the disk tier: writes out the atime
    /// journal, then fsyncs the cache directory. Entry files are
    /// written tmp+rename; the directory fsync is what makes the
    /// renames themselves durable, so a daemon calls this once at
    /// shutdown rather than per write.
    pub fn sync_disk(&self) {
        self.flush_atimes();
        if let Some(dir) = self.disk.as_deref() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
}

impl Drop for AnalysisStore {
    fn drop(&mut self) {
        // A clean shutdown persists every journaled read; a crash
        // skips this and GC degrades to the mtime fallback.
        self.flush_atimes();
    }
}

/// One [`AnalysisStore::gc_disk`] run's accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Cache entries found by the scan (before eviction).
    pub entries: u64,
    /// Their total bytes (before eviction).
    pub bytes: u64,
    /// Entries evicted this run.
    pub evicted: u64,
    /// Bytes those evictions freed.
    pub freed_bytes: u64,
}

impl GcStats {
    /// Bytes still held by cache entries after the run.
    pub fn live_bytes(&self) -> u64 {
        self.bytes - self.freed_bytes
    }
}

enum DiskEntry {
    /// A well-formed entry: the bundle fingerprint it was recorded for,
    /// plus its report.
    Entry(u64, Box<nchecker::AppReport>),
    Corrupt,
}

fn decode_disk_entry(text: &str, config_fp: u64) -> DiskEntry {
    let Ok(v) = serde_json::from_str(text) else {
        return DiskEntry::Corrupt;
    };
    let fps = (|| {
        let b = v.get("bundle_fp")?.as_str()?.parse::<u64>().ok()?;
        let c = v.get("config_fp")?.as_str()?.parse::<u64>().ok()?;
        Some((b, c))
    })();
    let Some((stored_bundle, stored_config)) = fps else {
        return DiskEntry::Corrupt;
    };
    if stored_config != config_fp {
        // The file name encodes the config fingerprint, so a mismatch
        // inside means the payload does not belong to its name.
        return DiskEntry::Corrupt;
    }
    match v.get("report").and_then(crate::wire::report_from_wire) {
        Some(report) => DiskEntry::Entry(stored_bundle, Box::new(report)),
        None => DiskEntry::Corrupt,
    }
}

/// Disk-tier occupancy, derived from the cache directory alone (the
/// shard of each entry is recoverable from its file name).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Cache entries (well-formed `.json` files).
    pub entries: u64,
    /// Total bytes across those entries.
    pub bytes: u64,
    /// Entries per shard, `SHARDS` slots in shard order.
    pub shards: Vec<u64>,
}

impl DiskStats {
    /// Empty stats with all shard slots present.
    pub fn new() -> DiskStats {
        DiskStats {
            entries: 0,
            bytes: 0,
            shards: vec![0; SHARDS],
        }
    }
}

/// Whether `name` is a well-formed cache entry file name
/// (`{key_hash:016x}-{config_fp:016x}.json`). `.tmp` leftovers,
/// `.atime` sidecars, and `.quarantine`d corrupt entries all fail this.
fn is_entry_name(name: &str) -> bool {
    let Some(stem) = name.strip_suffix(".json") else {
        return false;
    };
    let mut parts = stem.splitn(2, '-');
    let (Some(key_hex), Some(cfg_hex)) = (parts.next(), parts.next()) else {
        return false;
    };
    key_hex.len() == 16
        && cfg_hex.len() == 16
        && u64::from_str_radix(key_hex, 16).is_ok()
        && u64::from_str_radix(cfg_hex, 16).is_ok()
}

/// Scans `dir` for cache entries. Files that are not well-formed cache
/// names — including `.tmp` leftovers, `.atime` sidecars, and
/// `.quarantine`d corrupt entries — are ignored.
fn scan_disk(dir: &Path) -> DiskStats {
    let mut stats = DiskStats::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return stats;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !is_entry_name(name) {
            continue;
        }
        let key_hash = u64::from_str_radix(&name[..16], 16).expect("validated hex");
        stats.entries += 1;
        stats.shards[(key_hash as usize) % SHARDS] += 1;
        if let Ok(meta) = entry.metadata() {
            stats.bytes += meta.len();
        }
    }
    stats
}

impl Default for AnalysisStore {
    fn default() -> Self {
        AnalysisStore::new()
    }
}

fn lock(m: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn lock_plain<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Disk file name: key hash + config fingerprint, both hex. The key is
/// hashed (not embedded) so arbitrary package strings cannot escape the
/// cache directory.
fn disk_path(dir: &Path, key: &str, config_fp: u64) -> PathBuf {
    dir.join(format!("{:016x}-{config_fp:016x}.json", key_hash(key)))
}

/// Writes one entry tmp+rename, returning `(new_len, replaced_len)` —
/// the bytes the write added and the bytes of whatever same-named
/// entry it overwrote — so the caller can maintain the live occupancy
/// estimate without a rescan.
fn write_disk(dir: &Path, key: &str, entry: &AppCacheEntry, obs: &Obs) -> (u64, u64) {
    // u64 fingerprints ride as strings: the wire format's numbers are
    // i64, and fingerprints use the full unsigned range.
    let v = serde_json::json!({
        "schema": crate::wire::WIRE_SCHEMA,
        "bundle_fp": entry.bundle_fp.to_string(),
        "config_fp": entry.config_fp.to_string(),
        "report": crate::wire::report_to_wire(&entry.report),
    });
    let Ok(text) = serde_json::to_string(&v) else {
        return (0, 0);
    };
    // Cache writes are best-effort: a read-only or vanished directory
    // degrades to memory-only, it does not fail the analysis.
    if std::fs::create_dir_all(dir).is_err() {
        obs.events.warn("cache dir could not be created");
        return (0, 0);
    }
    let path = disk_path(dir, key, entry.config_fp);
    let old_len = std::fs::metadata(&path).map_or(0, |m| m.len());
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, &text).is_ok() {
        if std::fs::rename(&tmp, &path).is_err() {
            obs.events.warn("cache file rename failed");
        } else {
            return (text.len() as u64, old_len);
        }
    }
    (0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nchecker::cache::AppCacheEntry;
    use nchecker::AppReport;

    fn entry(bundle_fp: u64, package: &str) -> AppCacheEntry {
        let mut report = AppReport::default();
        report.stats.package = package.to_owned();
        AppCacheEntry {
            bundle_fp,
            config_fp: 42,
            class_fps: Vec::new(),
            lift_seed: Default::default(),
            callee_fps: Vec::new(),
            analyses: Default::default(),
            summary_seed: Default::default(),
            report,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nck-svc-store-{tag}-{}-{}",
            std::process::id(),
            key_hash(tag)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lookup_returns_what_insert_stored() {
        let store = AnalysisStore::new();
        let obs = Obs::disabled();
        assert!(store.lookup("app.a", &obs).is_none());
        store.insert("app.a", entry(1, "app.a"), &obs);
        let got = store.lookup("app.a", &obs).unwrap();
        assert_eq!(got.bundle_fp, 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        // Capacity 1 → every shard caps at 1 entry; two keys in the
        // same shard must evict the older.
        let store = AnalysisStore::with_options(1, None);
        let obs = Obs::enabled();
        // Find two keys landing in the same shard.
        let k1 = "app.x".to_owned();
        let mut k2 = None;
        for i in 0..200 {
            let cand = format!("app.y{i}");
            if (key_hash(&cand) as usize) % SHARDS == (key_hash(&k1) as usize) % SHARDS {
                k2 = Some(cand);
                break;
            }
        }
        let k2 = k2.expect("a colliding shard key exists");
        store.insert(&k1, entry(1, &k1), &obs);
        store.insert(&k2, entry(2, &k2), &obs);
        assert!(store.lookup(&k1, &obs).is_none(), "older key evicted");
        assert!(store.lookup(&k2, &obs).is_some());
        assert_eq!(
            *obs.metrics
                .snapshot()
                .counters
                .get("svc.cache.evict")
                .unwrap(),
            1
        );
    }

    #[test]
    fn byte_budget_evicts_before_the_entry_cap() {
        // Entry cap is generous; the byte budget is what binds. Entries
        // with many class fingerprints are charged more.
        let big = |fp: u64, package: &str| {
            let mut e = entry(fp, package);
            e.class_fps = vec![0; 1000]; // ~384 KB of charged bytes
            e
        };
        let budget = big(0, "probe").approx_bytes() * SHARDS * 2;
        let store = AnalysisStore::with_budgets(1_000_000, budget, None);
        let obs = Obs::enabled();
        // Find three keys in one shard: per-shard byte cap fits ~2 big
        // entries, so the third insert evicts the least recently used.
        let mut keys = Vec::new();
        for i in 0..400 {
            let cand = format!("app.b{i}");
            if (key_hash(&cand) as usize).is_multiple_of(SHARDS) {
                keys.push(cand);
                if keys.len() == 3 {
                    break;
                }
            }
        }
        assert_eq!(keys.len(), 3, "three same-shard keys exist");
        for (i, k) in keys.iter().enumerate() {
            store.insert(k, big(i as u64, k), &obs);
        }
        assert!(
            store.lookup(&keys[0], &obs).is_none(),
            "oldest evicted by byte pressure"
        );
        assert!(store.lookup(&keys[2], &obs).is_some());
        assert!(
            obs.metrics.snapshot().counters["svc.cache.evict"] >= 1,
            "byte eviction counted"
        );
        // Accounting matches what is resident.
        assert!(store.mem_bytes() <= budget.div_ceil(SHARDS) * SHARDS);
    }

    #[test]
    fn reinserting_a_key_replaces_its_byte_charge() {
        let store = AnalysisStore::new();
        let obs = Obs::disabled();
        let mut fat = entry(1, "app.r");
        fat.class_fps = vec![0; 1000];
        let fat_bytes = fat.approx_bytes();
        store.insert("app.r", fat, &obs);
        assert_eq!(store.mem_bytes(), fat_bytes);
        let lean = entry(2, "app.r");
        let lean_bytes = lean.approx_bytes();
        store.insert("app.r", lean, &obs);
        assert_eq!(store.mem_bytes(), lean_bytes, "old charge released");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn an_oversized_entry_still_caches() {
        // One entry bigger than the whole budget: everything else
        // evicts, the newcomer stays.
        let store = AnalysisStore::with_budgets(16, 1, None);
        let obs = Obs::enabled();
        store.insert("app.huge", entry(1, "app.huge"), &obs);
        assert!(store.lookup("app.huge", &obs).is_some());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn disk_tier_roundtrips_and_rejects_stale_fingerprints() {
        let dir = tmpdir("roundtrip");
        let store = AnalysisStore::with_options(8, Some(dir.clone()));
        let obs = Obs::disabled();
        store.insert("app.d", entry(7, "app.d"), &obs);
        let hit = store.lookup_disk("app.d", 7, 42, &obs).unwrap();
        assert_eq!(hit.stats.package, "app.d");
        assert!(
            store.lookup_disk("app.d", 8, 42, &obs).is_none(),
            "bundle moved"
        );
        assert!(
            store.lookup_disk("app.d", 7, 43, &obs).is_none(),
            "config moved"
        );
        // Corrupt file: miss, not error.
        std::fs::write(disk_path(&dir, "app.d", 42), "{not json").unwrap();
        assert!(store.lookup_disk("app.d", 7, 42, &obs).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lookup_disk_any_recovers_the_stale_entry_for_deltas() {
        let dir = tmpdir("staleany");
        let store = AnalysisStore::with_options(8, Some(dir.clone()));
        let obs = Obs::disabled();
        store.insert("app.v", entry(7, "app.v"), &obs);
        // The strict lookup under the *new* bundle misses...
        assert!(store.lookup_disk("app.v", 8, 42, &obs).is_none());
        // ...but the any-lookup recovers the previous version's report
        // and says which bundle it belonged to.
        let (stored_fp, report) = store.lookup_disk_any("app.v", 42, &obs).unwrap();
        assert_eq!(stored_fp, 7);
        assert_eq!(report.stats.package, "app.v");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_quarantined_and_not_reread() {
        let dir = tmpdir("corrupt");
        let store = AnalysisStore::with_options(8, Some(dir.clone()));
        let obs = Obs::enabled();
        store.insert("app.q", entry(9, "app.q"), &obs);
        let path = disk_path(&dir, "app.q", 42);
        std::fs::write(&path, "{definitely not json").unwrap();

        // First lookup: miss, file moved out of the cache namespace,
        // counter bumped on both the per-app obs and the store registry.
        assert!(store.lookup_disk("app.q", 9, 42, &obs).is_none());
        assert!(!path.exists(), "corrupt file left in the cache namespace");
        assert!(
            path.with_extension("quarantine").exists(),
            "corrupt file quarantined, not silently lost"
        );
        assert_eq!(
            obs.metrics.snapshot().counters["svc.cache.corrupt_evict"],
            1
        );
        assert_eq!(
            store.metrics().snapshot().counters["svc.cache.corrupt_evict"],
            1
        );
        assert_eq!(
            store.disk_stats().entries,
            0,
            "occupancy no longer counts the corrupt entry"
        );

        // Second lookup: plain miss — the bad file is gone, so it is
        // neither re-read nor re-quarantined.
        assert!(store.lookup_disk("app.q", 9, 42, &obs).is_none());
        assert_eq!(
            obs.metrics.snapshot().counters["svc.cache.corrupt_evict"],
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_wire_schema_is_corrupt_but_stale_fingerprints_are_not() {
        let dir = tmpdir("staleschema");
        let store = AnalysisStore::with_options(8, Some(dir.clone()));
        let obs = Obs::enabled();
        store.insert("app.s", entry(5, "app.s"), &obs);
        let path = disk_path(&dir, "app.s", 42);

        // Stale: well-formed entry for a different bundle — left on
        // disk (the next insert overwrites it), no quarantine.
        assert!(store.lookup_disk("app.s", 6, 42, &obs).is_none());
        assert!(path.exists(), "stale entries stay for overwrite");
        assert!(!obs
            .metrics
            .snapshot()
            .counters
            .contains_key("svc.cache.corrupt_evict"));

        // Wrong wire schema: decoder rejects the payload → corrupt.
        let mut v = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        if let serde_json::Value::Object(m) = &mut v {
            if let Some(serde_json::Value::Object(r)) = m.get_mut("report") {
                r.insert("schema".to_owned(), serde_json::json!(999));
            }
        }
        std::fs::write(&path, serde_json::to_string(&v).unwrap()).unwrap();
        assert!(store.lookup_disk("app.s", 5, 42, &obs).is_none());
        assert!(!path.exists(), "undecodable entry quarantined");
        assert_eq!(
            obs.metrics.snapshot().counters["svc.cache.corrupt_evict"],
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_least_recently_used_down_to_budget() {
        let dir = tmpdir("gc");
        let store = AnalysisStore::with_options(8, Some(dir.clone()));
        let obs = Obs::enabled();
        for (i, key) in ["app.old", "app.mid", "app.new"].iter().enumerate() {
            store.insert(key, entry(i as u64, key), &obs);
        }
        // Deterministic recency: give old/mid/new strictly increasing
        // atime stamps via explicit sidecar mtimes (filesystem clocks
        // are too coarse to rely on insert order).
        for (age, key) in ["app.old", "app.mid", "app.new"].iter().enumerate() {
            let sidecar = disk_path(&dir, key, 42).with_extension("atime");
            std::fs::write(&sidecar, b"").unwrap();
            let stamp = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000_000 + age as u64 * 100);
            let f = std::fs::File::options().write(true).open(&sidecar).unwrap();
            f.set_modified(stamp).unwrap();
        }
        let one_entry = std::fs::metadata(disk_path(&dir, "app.old", 42))
            .unwrap()
            .len();
        // Budget for roughly two entries: the oldest goes.
        let stats = store.gc_disk(one_entry * 2 + one_entry / 2, &obs);
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evicted, 1);
        assert!(stats.freed_bytes > 0);
        assert!(!disk_path(&dir, "app.old", 42).exists(), "LRU evicted");
        assert!(disk_path(&dir, "app.new", 42).exists());
        assert!(
            !disk_path(&dir, "app.old", 42)
                .with_extension("atime")
                .exists(),
            "sidecar evicted with its entry"
        );
        let snap = store.metrics().snapshot();
        assert_eq!(snap.counters["svc.cache.gc_runs"], 1);
        assert_eq!(snap.counters["svc.cache.gc_evicted"], 1);
        assert!(snap.counters["svc.cache.gc_freed_bytes"] > 0);
        // Under budget: a run is counted, nothing is evicted.
        let stats = store.gc_disk(u64::MAX, &obs);
        assert_eq!(stats.evicted, 0);
        assert_eq!(stats.entries, 2);
        assert_eq!(store.metrics().snapshot().counters["svc.cache.gc_runs"], 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_reads_journal_the_atime_and_flush_writes_the_sidecar() {
        let dir = tmpdir("atime");
        let store = AnalysisStore::with_options(8, Some(dir.clone()));
        let obs = Obs::disabled();
        store.insert("app.t", entry(3, "app.t"), &obs);
        let sidecar = disk_path(&dir, "app.t", 42).with_extension("atime");
        assert!(store.lookup_disk("app.t", 3, 42, &obs).is_some());
        assert!(
            !sidecar.exists(),
            "the hit path must not do sidecar I/O — the read is journaled"
        );
        assert_eq!(store.journaled_atimes(), 1);
        store.flush_atimes();
        assert!(sidecar.exists(), "flush materialized the sidecar");
        assert_eq!(store.journaled_atimes(), 0, "flush drained the journal");
        assert_eq!(
            store.disk_stats().entries,
            1,
            "sidecars are not cache entries"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_preserves_read_order_and_skips_vanished_entries() {
        let dir = tmpdir("flushorder");
        let store = AnalysisStore::with_options(8, Some(dir.clone()));
        let obs = Obs::disabled();
        for key in ["app.first", "app.second", "app.gone"] {
            store.insert(key, entry(1, key), &obs);
        }
        // Journal reads with explicit, strictly increasing stamps.
        for (age, key) in ["app.first", "app.second"].iter().enumerate() {
            let path = disk_path(&dir, key, 42);
            let stamp = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(2_000_000 + age as u64 * 100);
            lock_plain(&store.atime_journal).insert(path, stamp);
        }
        // A journaled entry that was evicted before the flush must not
        // come back as an orphan sidecar.
        let gone = disk_path(&dir, "app.gone", 42);
        lock_plain(&store.atime_journal).insert(gone.clone(), SystemTime::now());
        std::fs::remove_file(&gone).unwrap();
        store.flush_atimes();
        assert!(!gone.with_extension("atime").exists(), "no orphan sidecar");
        let mtime = |key: &str| {
            std::fs::metadata(disk_path(&dir, key, 42).with_extension("atime"))
                .unwrap()
                .modified()
                .unwrap()
        };
        assert!(
            mtime("app.first") < mtime("app.second"),
            "flush reproduced the journaled stamps exactly"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn occupancy_estimate_tracks_inserts_without_rescans() {
        let dir = tmpdir("occupancy");
        // Pre-existing tier from a previous process: the seed scan must
        // count it.
        {
            let store = AnalysisStore::with_options(8, Some(dir.clone()));
            store.insert("app.pre", entry(1, "app.pre"), &Obs::disabled());
        }
        let store = AnalysisStore::with_options(8, Some(dir.clone()));
        let obs = Obs::disabled();
        let seeded = store.disk_occupancy();
        assert_eq!(seeded, store.disk_stats().bytes, "seed scan is exact");
        store.insert("app.a", entry(2, "app.a"), &obs);
        assert_eq!(store.disk_occupancy(), store.disk_stats().bytes);
        // Overwriting a key replaces its charge instead of adding.
        store.insert("app.a", entry(3, "app.a"), &obs);
        assert_eq!(store.disk_occupancy(), store.disk_stats().bytes);
        // Quarantine releases the corrupt entry's charge.
        let path = disk_path(&dir, "app.a", 42);
        let corrupt_len = 7u64;
        std::fs::write(&path, "corrupt").unwrap();
        let before = store.disk_occupancy();
        assert!(store.lookup_disk("app.a", 3, 42, &obs).is_none());
        assert_eq!(store.disk_occupancy(), before - corrupt_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn maybe_gc_skips_under_watermark_and_collects_to_the_low_one() {
        let dir = tmpdir("watermark");
        let store = AnalysisStore::with_options(8, Some(dir.clone()));
        let obs = Obs::enabled();
        for i in 0..4 {
            let key = format!("app.w{i}");
            store.insert(&key, entry(i, &key), &obs);
        }
        let occupied = store.disk_occupancy();
        // Under the high watermark: skipped, counted, no run.
        assert!(store.maybe_gc_disk(occupied + 1, &obs).is_none());
        let snap = store.metrics().snapshot();
        assert_eq!(snap.counters["svc.cache.gc_skipped"], 1);
        assert!(!snap.counters.contains_key("svc.cache.gc_runs"));
        // Over it: runs, and collects below the *low* watermark
        // (budget - budget/8), not merely below the budget.
        let budget = occupied - 1;
        let stats = store.maybe_gc_disk(budget, &obs).expect("over watermark");
        assert!(stats.evicted > 0);
        assert!(store.disk_occupancy() <= budget - budget / 8);
        assert_eq!(
            store.disk_occupancy(),
            store.disk_stats().bytes,
            "GC resynced the estimate to the exact scan"
        );
        assert_eq!(store.metrics().snapshot().counters["svc.cache.gc_runs"], 1);
        // No disk tier: no skip counting, no run.
        let memonly = AnalysisStore::new();
        assert!(memonly.maybe_gc_disk(0, &obs).is_none());
        assert!(!memonly
            .metrics()
            .snapshot()
            .counters
            .contains_key("svc.cache.gc_skipped"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promote_is_memory_only_and_serves_the_next_lookup() {
        let dir = tmpdir("promote");
        let store = AnalysisStore::with_options(8, Some(dir.clone()));
        let obs = Obs::disabled();
        assert!(store.lookup("app.p", &obs).is_none());
        store.promote("app.p", entry(11, "app.p"), &obs);
        assert_eq!(store.lookup("app.p", &obs).unwrap().bundle_fp, 11);
        assert_eq!(store.disk_stats().entries, 0, "promotion writes no disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_cell_memoizes_and_is_reset_on_replacement() {
        let store = AnalysisStore::new();
        let obs = Obs::disabled();
        store.insert("app.c", entry(5, "app.c"), &obs);
        assert!(
            store.render_cell("app.c", 6).is_none(),
            "bundle fingerprint gates the cell"
        );
        let cell = store.render_cell("app.c", 5).unwrap();
        assert!(cell.get().is_none());
        let first = cell.get_or_render(|| "rendered".to_owned());
        let second = cell.get_or_render(|| "never recomputed".to_owned());
        assert_eq!(*first, "rendered");
        assert!(Arc::ptr_eq(&first, &second), "one render, shared out");
        // Replacing the entry resets the memoization.
        store.insert("app.c", entry(6, "app.c"), &obs);
        let fresh = store.render_cell("app.c", 6).unwrap();
        assert!(fresh.get().is_none(), "new entry, empty cell");
        assert!(store.render_cell("app.c", 5).is_none());
    }

    #[test]
    fn replay_counters_land_on_both_registries() {
        let store = AnalysisStore::new();
        let obs = Obs::enabled();
        store.count_replay(12, &obs);
        for snap in [obs.metrics.snapshot(), store.metrics().snapshot()] {
            assert_eq!(snap.counters["svc.cache.replay_apps"], 1);
            assert_eq!(snap.counters["svc.cache.replay_classes"], 12);
        }
    }

    #[test]
    fn disk_stats_count_entries_bytes_and_shards() {
        let dir = tmpdir("diskstats");
        let store = AnalysisStore::with_options(8, Some(dir.clone()));
        let obs = Obs::disabled();
        assert_eq!(store.disk_stats(), DiskStats::new(), "missing dir is empty");
        store.insert("app.a", entry(1, "app.a"), &obs);
        store.insert("app.b", entry(2, "app.b"), &obs);
        // Alien files and tmp leftovers are not entries.
        std::fs::write(dir.join("README"), "not a cache file").unwrap();
        std::fs::write(dir.join("0123456789abcdef-0123456789abcdef.tmp"), "x").unwrap();
        let stats = store.disk_stats();
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes > 0);
        assert_eq!(stats.shards.len(), SHARDS);
        assert_eq!(stats.shards.iter().sum::<u64>(), 2);
        let mut expected = vec![0u64; SHARDS];
        expected[(key_hash("app.a") as usize) % SHARDS] += 1;
        expected[(key_hash("app.b") as usize) % SHARDS] += 1;
        assert_eq!(stats.shards, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_gauges_reports_mem_occupancy() {
        let store = AnalysisStore::new();
        let obs = Obs::enabled();
        store.insert("app.a", entry(1, "app.a"), &obs);
        store.insert("app.b", entry(2, "app.b"), &obs);
        store.record_gauges(&obs.metrics);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.gauges["svc.cache.mem_entries"].value, 2);
        assert!(snap.gauges["svc.cache.mem_largest_shard"].value >= 1);
        assert_eq!(
            snap.gauges["svc.cache.mem_bytes"].value,
            store.mem_bytes() as i64
        );
        assert!(snap.gauges["svc.cache.mem_bytes"].value > 0);
    }

    #[test]
    fn outcome_counters_land_on_the_obs_handle() {
        let store = AnalysisStore::new();
        let obs = Obs::enabled();
        store.count_outcome(true, &obs);
        store.count_outcome(false, &obs);
        store.count_outcome(false, &obs);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counters["svc.cache.hit"], 1);
        assert_eq!(snap.counters["svc.cache.miss"], 2);
    }
}
