//! Faithful JSON round-trip of [`AppReport`] for the on-disk cache tier.
//!
//! The CLI's `--json` export ([`nchecker::json`]) is a *rendering*: it
//! flattens evidence to display strings and merges defect parameters
//! into the kind id, which is right for consumers but lossy for a
//! cache. This module is the opposite trade: every field of the report
//! survives the round trip bit-for-bit, so a disk hit returns a report
//! indistinguishable from re-running the analysis. Traces and metrics
//! are deliberately *not* carried — cache entries hold unsealed reports
//! (observability is per-run, not per-content).
//!
//! Unknown schema versions and malformed payloads decode to `None`; the
//! caller treats that as a cache miss, never an error.

use nchecker::checker::{AnalysisSkip, AppReport, AppStats, SkipCause};
use nchecker::report::{DefectKind, Evidence, Location, OverRetryContext, Report};
use nck_netlibs::library::Library;
use serde_json::{json, Value};

/// Schema version of the disk format; bump on any shape change so old
/// files miss instead of misparse.
pub const WIRE_SCHEMA: u64 = 1;

fn kind_to_json(kind: DefectKind) -> Value {
    match kind {
        DefectKind::MissedConnectivityCheck => json!({"id": "missed-connectivity-check"}),
        DefectKind::MissedTimeout => json!({"id": "missed-timeout"}),
        DefectKind::MissedRetry => json!({"id": "missed-retry"}),
        DefectKind::NoRetryInActivity => json!({"id": "no-retry-in-activity"}),
        DefectKind::OverRetry {
            context,
            default_caused,
        } => json!({
            "id": "over-retry",
            "context": match context {
                OverRetryContext::Service => "service",
                OverRetryContext::Post => "post",
            },
            "default_caused": default_caused,
        }),
        DefectKind::MissedFailureNotification => json!({"id": "missed-failure-notification"}),
        DefectKind::NoErrorTypeCheck => json!({"id": "no-error-type-check"}),
        DefectKind::MissedResponseCheck => json!({"id": "missed-response-check"}),
    }
}

fn kind_from_json(v: &Value) -> Option<DefectKind> {
    Some(match v.get("id")?.as_str()? {
        "missed-connectivity-check" => DefectKind::MissedConnectivityCheck,
        "missed-timeout" => DefectKind::MissedTimeout,
        "missed-retry" => DefectKind::MissedRetry,
        "no-retry-in-activity" => DefectKind::NoRetryInActivity,
        "over-retry" => DefectKind::OverRetry {
            context: match v.get("context")?.as_str()? {
                "service" => OverRetryContext::Service,
                "post" => OverRetryContext::Post,
                _ => return None,
            },
            default_caused: v.get("default_caused")?.as_bool()?,
        },
        "missed-failure-notification" => DefectKind::MissedFailureNotification,
        "no-error-type-check" => DefectKind::NoErrorTypeCheck,
        "missed-response-check" => DefectKind::MissedResponseCheck,
        _ => return None,
    })
}

fn library_tag(l: Library) -> &'static str {
    match l {
        Library::HttpUrlConnection => "huc",
        Library::ApacheHttpClient => "apache",
        Library::Volley => "volley",
        Library::OkHttp => "okhttp",
        Library::AndroidAsyncHttp => "aah",
        Library::BasicHttpClient => "basic",
    }
}

fn library_from_tag(s: &str) -> Option<Library> {
    Some(match s {
        "huc" => Library::HttpUrlConnection,
        "apache" => Library::ApacheHttpClient,
        "volley" => Library::Volley,
        "okhttp" => Library::OkHttp,
        "aah" => Library::AndroidAsyncHttp,
        "basic" => Library::BasicHttpClient,
        _ => return None,
    })
}

fn evidence_to_json(e: &Evidence) -> Value {
    match e {
        Evidence::Request { method, stmt, api } => {
            json!({"t": "request", "method": method, "stmt": stmt, "api": api})
        }
        Evidence::CallEdge {
            caller,
            callee,
            stmt,
        } => json!({"t": "call-edge", "caller": caller, "callee": callee, "stmt": stmt}),
        Evidence::IrFact { method, stmt, what } => {
            json!({"t": "ir-fact", "method": method, "stmt": stmt, "what": what})
        }
        Evidence::SummaryFact { method, what } => {
            json!({"t": "summary-fact", "method": method, "what": what})
        }
        Evidence::Absence { what, scanned } => {
            json!({"t": "absence", "what": what, "scanned": scanned})
        }
    }
}

fn str_of(v: &Value, key: &str) -> Option<String> {
    Some(v.get(key)?.as_str()?.to_owned())
}

fn u32_of(v: &Value, key: &str) -> Option<u32> {
    u32::try_from(v.get(key)?.as_i64()?).ok()
}

fn usize_of(v: &Value, key: &str) -> Option<usize> {
    usize::try_from(v.get(key)?.as_i64()?).ok()
}

fn evidence_from_json(v: &Value) -> Option<Evidence> {
    Some(match v.get("t")?.as_str()? {
        "request" => Evidence::Request {
            method: str_of(v, "method")?,
            stmt: u32_of(v, "stmt")?,
            api: str_of(v, "api")?,
        },
        "call-edge" => Evidence::CallEdge {
            caller: str_of(v, "caller")?,
            callee: str_of(v, "callee")?,
            stmt: u32_of(v, "stmt")?,
        },
        "ir-fact" => Evidence::IrFact {
            method: str_of(v, "method")?,
            stmt: u32_of(v, "stmt")?,
            what: str_of(v, "what")?,
        },
        "summary-fact" => Evidence::SummaryFact {
            method: str_of(v, "method")?,
            what: str_of(v, "what")?,
        },
        "absence" => Evidence::Absence {
            what: str_of(v, "what")?,
            scanned: usize_of(v, "scanned")?,
        },
        _ => return None,
    })
}

fn defect_to_json(r: &Report) -> Value {
    json!({
        "kind": kind_to_json(r.kind),
        "library": library_tag(r.library),
        "location": {
            "class": r.location.class,
            "method": r.location.method,
            "stmt": r.location.stmt,
        },
        "message": r.message,
        "context": r.context,
        "call_stack": r.call_stack,
        "fix": r.fix,
        "provenance": r.provenance.iter().map(evidence_to_json).collect::<Vec<_>>(),
    })
}

fn defect_from_json(v: &Value) -> Option<Report> {
    let loc = v.get("location")?;
    Some(Report {
        kind: kind_from_json(v.get("kind")?)?,
        library: library_from_tag(v.get("library")?.as_str()?)?,
        location: Location {
            class: str_of(loc, "class")?,
            method: str_of(loc, "method")?,
            stmt: u32_of(loc, "stmt")?,
        },
        message: str_of(v, "message")?,
        context: str_of(v, "context")?,
        call_stack: v
            .get("call_stack")?
            .as_array()?
            .iter()
            .map(|s| s.as_str().map(str::to_owned))
            .collect::<Option<Vec<_>>>()?,
        fix: str_of(v, "fix")?,
        provenance: v
            .get("provenance")?
            .as_array()?
            .iter()
            .map(evidence_from_json)
            .collect::<Option<Vec<_>>>()?,
    })
}

/// The `(name, getter, setter)` triples of every numeric [`AppStats`]
/// field, so serialization and deserialization cannot drift apart.
macro_rules! stats_fields {
    ($m:ident) => {
        $m!(
            requests,
            requests_missing_conn,
            requests_missing_timeout,
            retry_capable_requests,
            requests_missing_retry,
            user_requests,
            user_requests_missing_notification,
            user_requests_explicit_cb,
            user_requests_explicit_cb_notified,
            user_requests_implicit_cb,
            user_requests_implicit_cb_notified,
            typed_error_callbacks,
            typed_error_callbacks_checked,
            responses,
            responses_missing_check,
            custom_retry_loops,
            no_retry_activity,
            over_retry_service,
            over_retry_service_default,
            over_retry_post,
            over_retry_post_default,
            summary_methods,
            summary_sccs,
            summary_const_returns,
            summary_largest_scc,
            summary_field_consts,
            summary_hits
        )
    };
}

fn stats_to_json(s: &AppStats) -> Value {
    let mut obj = std::collections::BTreeMap::new();
    obj.insert("package".to_owned(), json!(s.package));
    obj.insert(
        "libraries".to_owned(),
        json!(s
            .libraries
            .iter()
            .map(|l| library_tag(*l))
            .collect::<Vec<_>>()),
    );
    macro_rules! put {
        ($($field:ident),*) => {
            $( obj.insert(stringify!($field).to_owned(), json!(s.$field)); )*
        };
    }
    stats_fields!(put);
    Value::Object(obj)
}

fn stats_from_json(v: &Value) -> Option<AppStats> {
    let mut s = AppStats {
        package: str_of(v, "package")?,
        ..AppStats::default()
    };
    for l in v.get("libraries")?.as_array()? {
        s.libraries.insert(library_from_tag(l.as_str()?)?);
    }
    macro_rules! take {
        ($($field:ident),*) => {
            $( s.$field = usize_of(v, stringify!($field))?; )*
        };
    }
    stats_fields!(take);
    Some(s)
}

/// Serializes an unsealed report (traces and metrics are dropped).
pub fn report_to_wire(r: &AppReport) -> Value {
    json!({
        "schema": WIRE_SCHEMA,
        "stats": stats_to_json(&r.stats),
        "defects": r.defects.iter().map(defect_to_json).collect::<Vec<_>>(),
        "skipped_methods": r.skipped_methods.iter().map(|s| json!({
            "method": s.method,
            "cause": match s.cause { SkipCause::Verify => "verify", SkipCause::Lift => "lift" },
            "detail": s.detail,
        })).collect::<Vec<_>>(),
    })
}

/// Decodes a report; `None` on any schema or shape mismatch.
pub fn report_from_wire(v: &Value) -> Option<AppReport> {
    if v.get("schema")?.as_i64()? != WIRE_SCHEMA as i64 {
        return None;
    }
    Some(AppReport {
        stats: stats_from_json(v.get("stats")?)?,
        defects: v
            .get("defects")?
            .as_array()?
            .iter()
            .map(defect_from_json)
            .collect::<Option<Vec<_>>>()?,
        skipped_methods: v
            .get("skipped_methods")?
            .as_array()?
            .iter()
            .map(|s| {
                Some(AnalysisSkip {
                    method: str_of(s, "method")?,
                    cause: match s.get("cause")?.as_str()? {
                        "verify" => SkipCause::Verify,
                        "lift" => SkipCause::Lift,
                        _ => return None,
                    },
                    detail: str_of(s, "detail")?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        trace: None,
        metrics: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_report() -> AppReport {
        let mut r = AppReport::default();
        r.stats.package = "com.example.app".into();
        r.stats.libraries.insert(Library::Volley);
        r.stats.libraries.insert(Library::OkHttp);
        r.stats.requests = 5;
        r.stats.requests_missing_conn = 2;
        r.stats.summary_hits = 11;
        r.defects.push(Report {
            kind: DefectKind::OverRetry {
                context: OverRetryContext::Post,
                default_caused: true,
            },
            library: Library::Volley,
            location: Location {
                class: "com.example.Main".into(),
                method: "onCreate".into(),
                stmt: 12,
            },
            message: "POST retried".into(),
            context: "user".into(),
            call_stack: vec!["a".into(), "b".into()],
            fix: "disable retries".into(),
            provenance: vec![
                Evidence::Request {
                    method: "Lcom/example/Main;.onCreate".into(),
                    stmt: 12,
                    api: "RequestQueue.add".into(),
                },
                Evidence::CallEdge {
                    caller: "x".into(),
                    callee: "y".into(),
                    stmt: 3,
                },
                Evidence::IrFact {
                    method: "m".into(),
                    stmt: 4,
                    what: "const".into(),
                },
                Evidence::SummaryFact {
                    method: "m".into(),
                    what: "returns true".into(),
                },
                Evidence::Absence {
                    what: "retry limit".into(),
                    scanned: 2,
                },
            ],
        });
        r.defects.push(Report {
            kind: DefectKind::MissedConnectivityCheck,
            library: Library::HttpUrlConnection,
            location: Location {
                class: "c".into(),
                method: "m".into(),
                stmt: 0,
            },
            message: String::new(),
            context: String::new(),
            call_stack: Vec::new(),
            fix: String::new(),
            provenance: Vec::new(),
        });
        r.skipped_methods.push(AnalysisSkip {
            method: "Lcom/example/Main;.broken".into(),
            cause: SkipCause::Verify,
            detail: "register out of frame".into(),
        });
        r
    }

    #[test]
    fn wire_roundtrip_is_faithful() {
        let r = busy_report();
        let text = serde_json::to_string(&report_to_wire(&r)).unwrap();
        let back = report_from_wire(&serde_json::from_str(&text).unwrap()).unwrap();
        // AppReport has no PartialEq; the rendered JSON of both runs is
        // the comparison surface the rest of the system already uses.
        assert_eq!(
            serde_json::to_string(&nchecker::json::app_report_to_json(&r)).unwrap(),
            serde_json::to_string(&nchecker::json::app_report_to_json(&back)).unwrap()
        );
        // And field-level spot checks on what the render flattens.
        assert_eq!(back.defects[0].provenance, r.defects[0].provenance);
        assert_eq!(back.defects[0].kind, r.defects[0].kind);
        assert_eq!(back.stats.libraries, r.stats.libraries);
        assert_eq!(back.skipped_methods, r.skipped_methods);
    }

    #[test]
    fn wrong_schema_is_a_miss() {
        let mut v = report_to_wire(&busy_report());
        if let Value::Object(m) = &mut v {
            m.insert("schema".to_owned(), json!(999));
        }
        assert!(report_from_wire(&v).is_none());
    }

    #[test]
    fn malformed_payload_is_a_miss_not_a_panic() {
        for text in [
            "{}",
            "[]",
            "null",
            r#"{"schema": 1}"#,
            r#"{"schema": 1, "stats": {}, "defects": [{}], "skipped_methods": []}"#,
        ] {
            let v: Value = serde_json::from_str(text).unwrap();
            assert!(report_from_wire(&v).is_none(), "payload {text:?}");
        }
    }
}
