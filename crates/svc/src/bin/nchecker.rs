//! The `nchecker` command-line tool: analyze APK bundles and print the
//! warning reports (§4.6, Figure 7), batched through the analysis
//! service — worker pool plus content-addressed cache.
//!
//! ```text
//! nchecker [--summary|--json] [--strict] [--no-interproc] [--targeted]
//!          [--keep-going] [--trace] [--metrics] [--quiet|-v|-vv]
//!          [--jobs N] [--cache-dir DIR] [--no-cache] <app.apk>...
//! ```
//!
//! Exit codes: `0` all apps analyzed cleanly, `1` at least one app failed
//! to analyze, `2` usage error, `3` every app analyzed but at least one
//! was degraded (some methods skipped as unanalyzable).

use nchecker::CheckerConfig;
use nck_obs::{Events, Level, Metrics, Obs, Tracer};
use nck_svc::{AnalysisService, ServiceOptions};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nchecker [--summary|--json] [--strict] [--no-interproc] [--targeted] \
         [--keep-going] [--trace] [--metrics] [--quiet|-v|-vv] [--jobs N] [--cache-dir DIR] \
         [--no-cache] <app.apk>..."
    );
    eprintln!();
    eprintln!("Statically analyzes ADX app bundles for network programming defects.");
    eprintln!("  --summary       print one line per app instead of full reports");
    eprintln!("  --json          print one JSON document per app");
    eprintln!("  --strict        require connectivity checks to be control conditions");
    eprintln!("  --interproc     enable the summary engine (the default)");
    eprintln!("  --no-interproc  ablate the interprocedural summary engine");
    eprintln!("  --targeted      demand-driven mode: prescan the constant pool and lift");
    eprintln!("                  only the defect-relevant slice (same reports, faster)");
    eprintln!("  --keep-going, -k  continue analyzing remaining apps after a failure");
    eprintln!("  --trace         record per-phase spans; tree printed to stderr");
    eprintln!("  --metrics       record pipeline metrics (embedded in --json output)");
    eprintln!("  --jobs N        analyze up to N apps in parallel (default: CPU count)");
    eprintln!("  --cache-dir DIR persist the analysis cache under DIR across runs");
    eprintln!("  --no-cache      disable the analysis cache entirely");
    eprintln!("  --quiet, -q     suppress all diagnostics on stderr");
    eprintln!("  -v, -vv         raise diagnostic verbosity to info / debug");
    eprintln!();
    eprintln!("exit codes: 0 clean, 1 analysis failure, 2 usage, 3 degraded");
    ExitCode::from(2)
}

const FLAGS: &[&str] = &[
    "--summary",
    "--json",
    "--strict",
    "--interproc",
    "--no-interproc",
    "--targeted",
    "--keep-going",
    "-k",
    "--trace",
    "--metrics",
    "--no-cache",
    "--quiet",
    "-q",
    "-v",
    "-vv",
];

const EXIT_FAILED: u8 = 1;
const EXIT_DEGRADED: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let summary = args.iter().any(|a| a == "--summary");
    let json = args.iter().any(|a| a == "--json");
    let strict = args.iter().any(|a| a == "--strict");
    let targeted = args.iter().any(|a| a == "--targeted");
    let keep_going = args.iter().any(|a| a == "--keep-going" || a == "-k");
    let trace = args.iter().any(|a| a == "--trace");
    let metrics = args.iter().any(|a| a == "--metrics");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let quiet = args.iter().any(|a| a == "--quiet" || a == "-q");
    let verbose = args.iter().any(|a| a == "-v");
    let very_verbose = args.iter().any(|a| a == "-vv");
    // Last occurrence wins when both interproc flags are given.
    let interproc = !matches!(
        args.iter()
            .rev()
            .find(|a| *a == "--interproc" || *a == "--no-interproc"),
        Some(a) if a == "--no-interproc"
    );

    // Value-taking flags and positionals.
    let mut jobs: Option<usize> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                jobs = Some(n);
            }
            "--cache-dir" => {
                let Some(dir) = it.next() else {
                    return usage();
                };
                cache_dir = Some(PathBuf::from(dir));
            }
            s if s.starts_with('-') => {
                if !FLAGS.contains(&s) {
                    return usage();
                }
            }
            _ => paths.push(a),
        }
    }
    if paths.is_empty() {
        return usage();
    }
    if let Some(0) = jobs {
        return usage();
    }

    let events = if quiet {
        Events::silent()
    } else if very_verbose {
        Events::at(Level::Debug)
    } else if verbose {
        Events::at(Level::Info)
    } else {
        Events::default()
    };
    let config = CheckerConfig {
        strict_connectivity: strict,
        interproc,
        targeted,
        ..CheckerConfig::default()
    };
    let obs = Obs {
        tracer: if trace {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        },
        // --trace implies metrics: the span tree and counters describe
        // the same run and are cheap to record together.
        metrics: if metrics || trace {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        },
        events: events.clone(),
    };

    // Read everything up front; the batch then runs on the pool.
    let mut items: Vec<(String, Vec<u8>)> = Vec::new();
    let mut failures = 0usize;
    for path in &paths {
        match std::fs::read(path) {
            Ok(bytes) => {
                events.debug(&format!("{path}: read {} bytes", bytes.len()));
                items.push(((*path).clone(), bytes));
            }
            Err(e) => {
                events.error(&format!("{path}: {e}"));
                failures += 1;
                if !keep_going {
                    return ExitCode::from(EXIT_FAILED);
                }
            }
        }
    }

    let service = AnalysisService::new(
        ServiceOptions {
            config,
            jobs,
            cache_dir,
            no_cache,
        },
        obs,
    );
    let outcomes = service.analyze_batch(&items);
    let cache_stats = AnalysisService::batch_stats(&outcomes);

    let mut degraded = 0usize;
    for ((path, _), outcome) in items.iter().zip(&outcomes) {
        match &outcome.report {
            Ok(report) => {
                events.info(&format!(
                    "{path}: {} requests, {} defects",
                    report.stats.requests,
                    report.defects.len()
                ));
                if report.degraded() {
                    degraded += 1;
                    events.warn(&format!(
                        "{path}: degraded analysis, {} method(s) skipped",
                        report.skipped_methods.len()
                    ));
                    for s in &report.skipped_methods {
                        events.debug(&format!(
                            "{path}: skipped {} [{}]: {}",
                            s.method, s.cause, s.detail
                        ));
                    }
                }
                if json {
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&nchecker::app_report_to_json(report))
                            .expect("report serializes")
                    );
                } else if summary {
                    println!(
                        "{path}: {} ({} requests, {} defects{})",
                        report.stats.package,
                        report.stats.requests,
                        report.defects.len(),
                        if report.degraded() { ", degraded" } else { "" }
                    );
                } else {
                    println!(
                        "=== {} ({} defects) ===",
                        report.stats.package,
                        report.defects.len()
                    );
                    for d in &report.defects {
                        println!("{}", d.render());
                    }
                }
                // Observability output goes to stderr so stdout stays
                // machine-parseable under --json.
                if let Some(t) = &report.trace {
                    eprintln!("--- trace: {} ---", report.stats.package);
                    eprint!("{}", t.render());
                }
                if !json {
                    if let Some(m) = &report.metrics {
                        eprintln!("--- metrics: {} ---", report.stats.package);
                        eprint!("{}", m.render());
                    }
                }
            }
            Err(e) => {
                events.error(&format!("{path}: {e}"));
                failures += 1;
                if !keep_going {
                    return ExitCode::from(EXIT_FAILED);
                }
            }
        }
    }

    // Cache accounting, part of the end-of-run report. Stderr under
    // --json so stdout stays one JSON document per app.
    if !no_cache {
        let line = format!(
            "cache: {} hit(s), {} miss(es) ({:.0}% whole-report), classes reused {}/{}",
            cache_stats.hits,
            cache_stats.misses,
            cache_stats.hit_rate() * 100.0,
            cache_stats.classes_reused,
            cache_stats.classes_total,
        );
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }

    if failures > 0 {
        ExitCode::from(EXIT_FAILED)
    } else if degraded > 0 {
        ExitCode::from(EXIT_DEGRADED)
    } else {
        ExitCode::SUCCESS
    }
}
