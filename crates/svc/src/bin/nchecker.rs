//! The `nchecker` command-line tool: analyze APK bundles and print the
//! warning reports (§4.6, Figure 7), batched through the analysis
//! service — worker pool plus content-addressed cache.
//!
//! ```text
//! nchecker [--summary|--json] [--strict] [--no-interproc] [--targeted]
//!          [--icc] [--keep-going] [--trace] [--metrics] [--quiet|-v|-vv]
//!          [--trace-out FILE] [--log-json FILE] [--doctor]
//!          [--jobs N] [--cache-dir DIR] [--no-cache] [--cache-budget BYTES]
//!          [--delta-out FILE] <app.apk>...
//! nchecker serve (--stdio | --socket PATH) [--watch DIR] [--poll-ms N]
//!          [--queue-capacity N] [checker and cache flags]
//! nchecker vet --workers N [--corpus-dir DIR | <app.apk>...]
//!          [--delta-out FILE] [--summary] [checker and cache flags]
//! nchecker cache-gc --cache-dir DIR --cache-budget BYTES
//! ```
//!
//! `vet` is the store-scale front end: it shards the corpus across N
//! worker *processes* (each an `nchecker serve --stdio` child) and
//! prints the reports in input order — byte-identical to what a single
//! `nchecker --json` run over the same paths would print.
//!
//! Exit codes: `0` all apps analyzed cleanly, `1` at least one app failed
//! to analyze, `2` usage error, `3` every app analyzed but at least one
//! was degraded (some methods skipped as unanalyzable).

use nchecker::CheckerConfig;
use nck_obs::{Events, JsonObj, JsonlSink, Level, Metrics, Obs, PhaseTotals, Series, Tracer};
use nck_svc::{
    daemon, doctor, AnalysisService, AnalysisStore, Daemon, DaemonOptions, OrchestratorOptions,
    ServiceOptions, Watcher,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nchecker [--summary|--json] [--strict] [--no-interproc] [--targeted] \
         [--icc] [--keep-going] [--trace] [--metrics] [--quiet|-v|-vv] [--trace-out FILE] \
         [--log-json FILE] [--doctor] [--jobs N] [--cache-dir DIR] \
         [--no-cache] <app.apk>...\n\
         \x20      nchecker serve (--stdio | --socket PATH) [--watch DIR] [--poll-ms N] \
         [--queue-capacity N] [checker and cache flags]\n\
         \x20      nchecker vet --workers N [--corpus-dir DIR | <app.apk>...] \
         [--delta-out FILE] [--summary] [checker and cache flags]\n\
         \x20      nchecker cache-gc --cache-dir DIR --cache-budget BYTES"
    );
    eprintln!();
    eprintln!("Statically analyzes ADX app bundles for network programming defects.");
    eprintln!("  --summary       print one line per app instead of full reports");
    eprintln!("  --json          print one JSON document per app");
    eprintln!("  --strict        require connectivity checks to be control conditions");
    eprintln!("  --interproc     enable the summary engine (the default)");
    eprintln!("  --no-interproc  ablate the interprocedural summary engine");
    eprintln!("  --targeted      demand-driven mode: prescan the constant pool and lift");
    eprintln!("                  only the defect-relevant slice (same reports, faster).");
    eprintln!("                  Ignored when --icc is also given (the ICC model reads");
    eprintln!("                  component bodies outside the relevance slice); the");
    eprintln!("                  fallback to whole-app analysis is warned and counted");
    eprintln!("                  (targeted.fallback_icc)");
    eprintln!("  --icc           model inter-component communication (launch chains)");
    eprintln!("  --keep-going, -k  continue analyzing remaining apps after a failure");
    eprintln!("  --trace         record per-phase spans; tree printed to stderr");
    eprintln!("  --metrics       record pipeline metrics (embedded in --json output)");
    eprintln!("  --trace-out FILE  write a Chrome Trace Event JSON of the whole run");
    eprintln!("                  (load in Perfetto or chrome://tracing)");
    eprintln!("  --log-json FILE write structured JSONL telemetry: events, per-app");
    eprintln!("                  phase totals, cache and targeted-funnel records");
    eprintln!("  --doctor        print one canonical JSON health snapshot instead of");
    eprintln!("                  reports (byte-deterministic; apps optional)");
    eprintln!("  --jobs N        analyze up to N apps in parallel (default: CPU count)");
    eprintln!("  --cache-dir DIR persist the analysis cache under DIR across runs");
    eprintln!("  --no-cache      disable the analysis cache entirely");
    eprintln!("  --cache-budget BYTES  GC the disk cache down to BYTES after each run");
    eprintln!("                  (suffixes K/M/G, base 1024); see also `cache-gc`");
    eprintln!("  --delta-out FILE  write one JSONL defect-delta record per resubmitted");
    eprintln!("                  app whose bundle changed (added/fixed/unchanged)");
    eprintln!("  --quiet, -q     suppress all diagnostics on stderr");
    eprintln!("  -v, -vv         raise diagnostic verbosity to info / debug");
    eprintln!();
    eprintln!("serve mode (persistent daemon; line-delimited JSON protocol):");
    eprintln!("  --stdio         speak the protocol on stdin/stdout");
    eprintln!("  --socket PATH   listen on a Unix socket at PATH");
    eprintln!("  --watch DIR     re-analyze bundles in DIR when their content changes");
    eprintln!("  --poll-ms N     watch poll interval in milliseconds (default: 500)");
    eprintln!("  --queue-capacity N  bound the request queue (default: 64); submits");
    eprintln!("                  beyond it are rejected with a queue-full reply");
    eprintln!();
    eprintln!("vet mode (multi-process store-scale vetting):");
    eprintln!("  --workers N     worker processes (default: 2); the corpus is");
    eprintln!("                  partitioned across them by key hash");
    eprintln!("  --corpus-dir DIR  vet every *.apk/*.adx under DIR (recursive),");
    eprintln!("                  sorted; positional paths also accepted");
    eprintln!("  --summary       per-shard accounting only; skip report output");
    eprintln!("  stdout is the workers' reports in input order, byte-identical");
    eprintln!("  to one-shot --json output over the same paths");
    eprintln!();
    eprintln!("exit codes: 0 clean, 1 analysis failure, 2 usage, 3 degraded");
    ExitCode::from(2)
}

const FLAGS: &[&str] = &[
    "--summary",
    "--json",
    "--strict",
    "--interproc",
    "--no-interproc",
    "--targeted",
    "--icc",
    "--keep-going",
    "-k",
    "--trace",
    "--metrics",
    "--doctor",
    "--no-cache",
    "--quiet",
    "-q",
    "-v",
    "-vv",
];

const EXIT_FAILED: u8 = 1;
const EXIT_DEGRADED: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return serve_main(&args[1..]),
        Some("vet") => return vet_main(&args[1..]),
        Some("cache-gc") => return gc_main(&args[1..]),
        _ => {}
    }
    let summary = args.iter().any(|a| a == "--summary");
    let json = args.iter().any(|a| a == "--json");
    let strict = args.iter().any(|a| a == "--strict");
    let targeted = args.iter().any(|a| a == "--targeted");
    let icc = args.iter().any(|a| a == "--icc");
    let keep_going = args.iter().any(|a| a == "--keep-going" || a == "-k");
    let trace = args.iter().any(|a| a == "--trace");
    let metrics = args.iter().any(|a| a == "--metrics");
    let doctor_mode = args.iter().any(|a| a == "--doctor");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let quiet = args.iter().any(|a| a == "--quiet" || a == "-q");
    let verbose = args.iter().any(|a| a == "-v");
    let very_verbose = args.iter().any(|a| a == "-vv");
    // Last occurrence wins when both interproc flags are given.
    let interproc = !matches!(
        args.iter()
            .rev()
            .find(|a| *a == "--interproc" || *a == "--no-interproc"),
        Some(a) if a == "--no-interproc"
    );

    // Value-taking flags and positionals.
    let mut jobs: Option<usize> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut cache_budget: Option<u64> = None;
    let mut delta_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut log_json: Option<PathBuf> = None;
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                jobs = Some(n);
            }
            "--cache-dir" => {
                let Some(dir) = it.next() else {
                    return usage();
                };
                cache_dir = Some(PathBuf::from(dir));
            }
            "--cache-budget" => {
                let Some(n) = it.next().and_then(|v| parse_bytes(v)) else {
                    return usage();
                };
                cache_budget = Some(n);
            }
            "--delta-out" => {
                let Some(file) = it.next() else {
                    return usage();
                };
                delta_out = Some(PathBuf::from(file));
            }
            "--trace-out" => {
                let Some(file) = it.next() else {
                    return usage();
                };
                trace_out = Some(PathBuf::from(file));
            }
            "--log-json" => {
                let Some(file) = it.next() else {
                    return usage();
                };
                log_json = Some(PathBuf::from(file));
            }
            s if s.starts_with('-') => {
                if !FLAGS.contains(&s) {
                    return usage();
                }
            }
            _ => paths.push(a),
        }
    }
    // `--doctor` reports on the cache dir and config alone; everything
    // else needs at least one bundle.
    if paths.is_empty() && !doctor_mode {
        return usage();
    }
    if let Some(0) = jobs {
        return usage();
    }

    let sink = match &log_json {
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => Some(sink),
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                return ExitCode::from(EXIT_FAILED);
            }
        },
        None => None,
    };
    let mut events = if quiet {
        Events::silent()
    } else if very_verbose {
        Events::at(Level::Debug)
    } else if verbose {
        Events::at(Level::Info)
    } else {
        Events::default()
    };
    if let Some(sink) = &sink {
        events = events.with_sink(sink.clone());
    }
    let config = CheckerConfig {
        strict_connectivity: strict,
        interproc,
        targeted,
        icc,
        ..CheckerConfig::default()
    };
    // The exporters need spans and counters even when the stderr views
    // (--trace/--metrics) are off: recording is silent unless a flag
    // asks for the stderr rendering.
    let want_tracer = trace || trace_out.is_some() || log_json.is_some() || doctor_mode;
    let want_metrics = metrics || trace || want_tracer;
    let obs = Obs {
        tracer: if want_tracer {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        },
        metrics: if want_metrics {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        },
        events: events.clone(),
    };

    // Read everything up front; the batch then runs on the pool.
    let mut items: Vec<(String, Vec<u8>)> = Vec::new();
    let mut failures = 0usize;
    for path in &paths {
        match std::fs::read(path) {
            Ok(bytes) => {
                events.debug(&format!("{path}: read {} bytes", bytes.len()));
                items.push(((*path).clone(), bytes));
            }
            Err(e) => {
                events.error(&format!("{path}: {e}"));
                failures += 1;
                if !keep_going {
                    return ExitCode::from(EXIT_FAILED);
                }
            }
        }
    }

    let service = AnalysisService::new(
        ServiceOptions {
            config,
            jobs,
            cache_dir,
            no_cache,
            mem_budget: None,
            cache_budget,
        },
        obs,
    );
    let outcomes = service.analyze_batch(&items);
    let cache_stats = AnalysisService::batch_stats(&outcomes);

    let mut degraded = 0usize;
    for ((path, _), outcome) in items.iter().zip(&outcomes) {
        match &outcome.report {
            Ok(report) => {
                events.info(&format!(
                    "{path}: {} requests, {} defects",
                    report.stats.requests,
                    report.defects.len()
                ));
                if report.degraded() {
                    degraded += 1;
                    events.warn(&format!(
                        "{path}: degraded analysis, {} method(s) skipped",
                        report.skipped_methods.len()
                    ));
                    for s in &report.skipped_methods {
                        events.debug(&format!(
                            "{path}: skipped {} [{}]: {}",
                            s.method, s.cause, s.detail
                        ));
                    }
                }
                if doctor_mode {
                    // The snapshot is the only stdout content.
                } else if json {
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&nchecker::app_report_to_json(report))
                            .expect("report serializes")
                    );
                } else if summary {
                    println!(
                        "{path}: {} ({} requests, {} defects{})",
                        report.stats.package,
                        report.stats.requests,
                        report.defects.len(),
                        if report.degraded() { ", degraded" } else { "" }
                    );
                } else {
                    println!(
                        "=== {} ({} defects) ===",
                        report.stats.package,
                        report.defects.len()
                    );
                    for d in &report.defects {
                        println!("{}", d.render());
                    }
                }
                // Observability output goes to stderr so stdout stays
                // machine-parseable under --json. The stderr renderings
                // stay opt-in even when an exporter enabled recording.
                if trace {
                    if let Some(t) = &report.trace {
                        eprintln!("--- trace: {} ---", report.stats.package);
                        eprint!("{}", t.render());
                    }
                }
                if metrics && !json {
                    if let Some(m) = &report.metrics {
                        eprintln!("--- metrics: {} ---", report.stats.package);
                        eprint!("{}", m.render());
                    }
                }
            }
            Err(e) => {
                events.error(&format!("{path}: {e}"));
                failures += 1;
                if !keep_going {
                    return ExitCode::from(EXIT_FAILED);
                }
            }
        }
    }

    // Corpus-level aggregation over the attached per-app telemetry.
    let mut merged = nck_obs::MetricsSnapshot::default();
    let mut phases = PhaseTotals::new();
    let mut latency = Series::new();
    for outcome in &outcomes {
        if let Ok(report) = &outcome.report {
            if let Some(m) = &report.metrics {
                merged.merge(m);
            }
            if let Some(t) = &report.trace {
                phases.absorb(t);
                latency.push(t.wall_nanos() / 1_000);
            }
        }
    }
    // The per-app snapshots cannot see the store; the batch end is the
    // only point where its occupancy is final.
    let store_metrics = Metrics::enabled();
    service.store().record_gauges(&store_metrics);
    merged.merge(&store_metrics.snapshot());
    let analysis_failures = failures;

    // Defect deltas, one JSONL record per resubmitted-and-changed app,
    // in input order (apps without a delta contribute no line).
    if let Some(path) = &delta_out {
        let mut text = String::new();
        for outcome in &outcomes {
            if let Some(delta) = &outcome.delta {
                text.push_str(&serde_json::to_string(&delta.to_json()).expect("delta serializes"));
                text.push('\n');
            }
        }
        if let Err(e) = std::fs::write(path, text) {
            events.error(&format!("{}: {e}", path.display()));
            failures += 1;
        } else {
            events.info(&format!("wrote {}", path.display()));
        }
    }

    if let Some(path) = &trace_out {
        let traces: Vec<(String, nck_obs::PipelineTrace)> = items
            .iter()
            .zip(&outcomes)
            .filter_map(|((path, _), outcome)| match &outcome.report {
                Ok(report) => report.trace.clone().map(|t| {
                    let label = if report.stats.package.is_empty() {
                        path.clone()
                    } else {
                        report.stats.package.clone()
                    };
                    (label, t)
                }),
                Err(_) => None,
            })
            .collect();
        if let Err(e) = std::fs::write(path, nck_obs::chrome_trace(&traces)) {
            events.error(&format!("{}: {e}", path.display()));
            failures += 1;
        } else {
            events.info(&format!(
                "wrote {} ({} app traces)",
                path.display(),
                traces.len()
            ));
        }
    }

    if let Some(sink) = &sink {
        emit_jsonl(sink, &items, &outcomes, &cache_stats, &merged, &mut latency);
        sink.flush();
    }

    if doctor_mode {
        let report = doctor::DoctorReport {
            config: &config,
            store: service.store(),
            metrics: &merged,
            phases: &phases,
            apps: items.len(),
            failed: analysis_failures,
            degraded,
        };
        print!("{}", doctor::render(&report));
    } else if !no_cache && !items.is_empty() {
        // Cache accounting, part of the end-of-run report. Stderr under
        // --json so stdout stays one JSON document per app.
        let mut line = format!(
            "cache: {} hit(s), {} miss(es) ({:.0}% whole-report), classes reused {}/{}",
            cache_stats.hits,
            cache_stats.misses,
            cache_stats.hit_rate() * 100.0,
            cache_stats.classes_reused,
            cache_stats.classes_total,
        );
        if let (Some(p50), Some(p90), Some(p99)) = (
            latency.percentile(50.0),
            latency.percentile(90.0),
            latency.percentile(99.0),
        ) {
            line.push_str(&format!(
                "\nlatency: p50 {p50} µs, p90 {p90} µs, p99 {p99} µs per app"
            ));
        }
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }

    if failures > 0 {
        ExitCode::from(EXIT_FAILED)
    } else if degraded > 0 {
        ExitCode::from(EXIT_DEGRADED)
    } else {
        ExitCode::SUCCESS
    }
}

/// Flags `nchecker serve` accepts without a value.
const SERVE_FLAGS: &[&str] = &[
    "--stdio",
    "--strict",
    "--interproc",
    "--no-interproc",
    "--targeted",
    "--icc",
    "--no-cache",
    "--quiet",
    "-q",
    "-v",
    "-vv",
];

/// The `nchecker serve` entry point: builds the daemon, spawns the
/// dispatcher (and the watcher when `--watch` is given), then serves
/// the protocol on stdio or a Unix socket until shutdown, draining
/// in-flight work before exiting.
fn serve_main(args: &[String]) -> ExitCode {
    let strict = args.iter().any(|a| a == "--strict");
    let targeted = args.iter().any(|a| a == "--targeted");
    let icc = args.iter().any(|a| a == "--icc");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let stdio = args.iter().any(|a| a == "--stdio");
    let quiet = args.iter().any(|a| a == "--quiet" || a == "-q");
    let verbose = args.iter().any(|a| a == "-v");
    let very_verbose = args.iter().any(|a| a == "-vv");
    let interproc = !matches!(
        args.iter()
            .rev()
            .find(|a| *a == "--interproc" || *a == "--no-interproc"),
        Some(a) if a == "--no-interproc"
    );

    let mut jobs: Option<usize> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut cache_budget: Option<u64> = None;
    let mut socket: Option<PathBuf> = None;
    let mut watch: Option<PathBuf> = None;
    let mut poll_ms: u64 = 500;
    let mut queue_capacity: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                jobs = Some(n);
            }
            "--cache-dir" => {
                let Some(dir) = it.next() else {
                    return usage();
                };
                cache_dir = Some(PathBuf::from(dir));
            }
            "--cache-budget" => {
                let Some(n) = it.next().and_then(|v| parse_bytes(v)) else {
                    return usage();
                };
                cache_budget = Some(n);
            }
            "--socket" => {
                let Some(path) = it.next() else {
                    return usage();
                };
                socket = Some(PathBuf::from(path));
            }
            "--watch" => {
                let Some(dir) = it.next() else {
                    return usage();
                };
                watch = Some(PathBuf::from(dir));
            }
            "--poll-ms" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                poll_ms = n;
            }
            "--queue-capacity" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                queue_capacity = Some(n);
            }
            s if s.starts_with('-') => {
                if !SERVE_FLAGS.contains(&s) {
                    return usage();
                }
            }
            _ => return usage(),
        }
    }
    // Exactly one transport.
    if stdio == socket.is_some() {
        return usage();
    }
    if let (Some(0), _) | (_, Some(0)) = (jobs, queue_capacity) {
        return usage();
    }

    let events = if quiet {
        Events::silent()
    } else if very_verbose {
        Events::at(Level::Debug)
    } else if verbose {
        Events::at(Level::Info)
    } else {
        Events::default()
    };
    let config = CheckerConfig {
        strict_connectivity: strict,
        interproc,
        targeted,
        icc,
        ..CheckerConfig::default()
    };
    let daemon = Arc::new(Daemon::new(
        DaemonOptions {
            service: ServiceOptions {
                config,
                jobs,
                cache_dir,
                no_cache,
                mem_budget: None,
                cache_budget,
            },
            queue_capacity,
        },
        events.clone(),
    ));

    let dispatcher = {
        let d = Arc::clone(&daemon);
        std::thread::spawn(move || d.run_dispatcher())
    };
    let watcher = watch.map(|dir| {
        let d = Arc::clone(&daemon);
        let ev = events.clone();
        std::thread::spawn(move || watch_loop(&d, &dir, poll_ms, &ev))
    });

    let served = if stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        daemon::serve_lines(&daemon, &mut stdin.lock(), &mut stdout.lock())
    } else {
        let path = socket.expect("socket transport selected");
        events.info(&format!("serve: listening on {}", path.display()));
        daemon::serve_socket(&daemon, &path)
    };

    // Graceful exit: no new admissions, drain what is queued and
    // in flight (the dispatcher flushes the disk cache), then reap the
    // helper threads.
    daemon.begin_shutdown();
    daemon.await_drained();
    let _ = dispatcher.join();
    if let Some(w) = watcher {
        let _ = w.join();
    }
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            events.error(&format!("serve: {e}"));
            ExitCode::from(EXIT_FAILED)
        }
    }
}

/// Parses a byte-size argument: plain digits, or a K/M/G suffix
/// (base 1024, case-insensitive).
fn parse_bytes(s: &str) -> Option<u64> {
    let (digits, shift) = match s.char_indices().last()? {
        (i, 'k') | (i, 'K') => (&s[..i], 10),
        (i, 'm') | (i, 'M') => (&s[..i], 20),
        (i, 'g') | (i, 'G') => (&s[..i], 30),
        _ => (s, 0),
    };
    let n: u64 = digits.parse().ok()?;
    n.checked_shl(shift)
}

/// Collects every `*.apk` / `*.adx` under `dir`, recursively, sorted by
/// path — the fixed input order a sharded corpus tree is vetted in.
fn collect_corpus_dir(dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path
                .extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| e == "apk" || e == "adx")
            {
                out.push(path.to_string_lossy().into_owned());
            }
        }
    }
    out.sort();
    Ok(())
}

/// Flags `nchecker vet` accepts without a value.
const VET_FLAGS: &[&str] = &[
    "--summary",
    "--strict",
    "--interproc",
    "--no-interproc",
    "--targeted",
    "--icc",
    "--quiet",
    "-q",
    "-v",
];

/// The `nchecker vet` entry point: shard the corpus across worker
/// processes and merge reports back in input order.
fn vet_main(args: &[String]) -> ExitCode {
    let summary = args.iter().any(|a| a == "--summary");
    let strict = args.iter().any(|a| a == "--strict");
    let targeted = args.iter().any(|a| a == "--targeted");
    let icc = args.iter().any(|a| a == "--icc");
    let quiet = args.iter().any(|a| a == "--quiet" || a == "-q");
    let verbose = args.iter().any(|a| a == "-v");
    let interproc = !matches!(
        args.iter()
            .rev()
            .find(|a| *a == "--interproc" || *a == "--no-interproc"),
        Some(a) if a == "--no-interproc"
    );

    let mut workers = 2usize;
    let mut window = 32usize;
    let mut jobs: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut cache_budget: Option<u64> = None;
    let mut delta_out: Option<PathBuf> = None;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut worker_exe: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => return usage(),
            },
            "--window" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => window = n,
                _ => return usage(),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => return usage(),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => cache_dir = Some(dir.clone()),
                None => return usage(),
            },
            "--cache-budget" => match it.next().and_then(|v| parse_bytes(v)) {
                Some(n) => cache_budget = Some(n),
                None => return usage(),
            },
            "--delta-out" => match it.next() {
                Some(f) => delta_out = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--corpus-dir" => match it.next() {
                Some(d) => corpus_dir = Some(PathBuf::from(d)),
                None => return usage(),
            },
            // Testing hook: run THIS program as the worker instead of
            // current_exe (lets harnesses interpose a crashing wrapper).
            "--worker-exe" => match it.next() {
                Some(exe) => worker_exe = Some(exe.clone()),
                None => return usage(),
            },
            s if s.starts_with('-') => {
                if !VET_FLAGS.contains(&s) {
                    return usage();
                }
            }
            _ => paths.push(a.clone()),
        }
    }

    let events = if quiet {
        Events::silent()
    } else if verbose {
        Events::at(Level::Info)
    } else {
        Events::default()
    };
    if let Some(dir) = &corpus_dir {
        if let Err(e) = collect_corpus_dir(dir, &mut paths) {
            events.error(&format!("{}: {e}", dir.display()));
            return ExitCode::from(EXIT_FAILED);
        }
    }
    if paths.is_empty() {
        return usage();
    }

    // The worker command: this very binary in serve --stdio mode, with
    // the checker and cache configuration forwarded. Queue capacity is
    // pinned to the submit window so pipelined chunks are never
    // admission-rejected.
    let exe = match worker_exe {
        Some(exe) => exe,
        None => match std::env::current_exe() {
            Ok(p) => p.to_string_lossy().into_owned(),
            Err(e) => {
                events.error(&format!("cannot resolve own executable: {e}"));
                return ExitCode::from(EXIT_FAILED);
            }
        },
    };
    let mut worker_cmd = vec![
        exe,
        "serve".to_owned(),
        "--stdio".to_owned(),
        "--quiet".to_owned(),
        "--queue-capacity".to_owned(),
        window.to_string(),
    ];
    if strict {
        worker_cmd.push("--strict".to_owned());
    }
    if targeted {
        worker_cmd.push("--targeted".to_owned());
    }
    if icc {
        worker_cmd.push("--icc".to_owned());
    }
    if !interproc {
        worker_cmd.push("--no-interproc".to_owned());
    }
    if let Some(j) = jobs {
        worker_cmd.push("--jobs".to_owned());
        worker_cmd.push(j.to_string());
    }
    if let Some(dir) = &cache_dir {
        worker_cmd.push("--cache-dir".to_owned());
        worker_cmd.push(dir.clone());
    }
    if let Some(b) = cache_budget {
        worker_cmd.push("--cache-budget".to_owned());
        worker_cmd.push(b.to_string());
    }

    let options = OrchestratorOptions {
        workers,
        worker_cmd,
        window,
        ..OrchestratorOptions::default()
    };
    let outcome = nck_svc::vet(&options, &paths);

    // stdout: the workers' reports in input order — the same bytes a
    // single-process `nchecker --json` run over these paths prints.
    if !summary {
        let mut stdout = std::io::stdout().lock();
        use std::io::Write;
        for report in outcome.reports.iter().flatten() {
            if stdout.write_all(report.as_bytes()).is_err() {
                return ExitCode::from(EXIT_FAILED);
            }
        }
    }

    let mut failures = 0usize;
    for (idx, msg) in &outcome.errors {
        events.error(&format!("{}: {msg}", paths[*idx]));
        failures += 1;
    }
    if let Some(path) = &delta_out {
        let mut text = String::new();
        for delta in outcome.deltas.iter().flatten() {
            text.push_str(&serde_json::to_string(delta).expect("delta serializes"));
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, text) {
            events.error(&format!("{}: {e}", path.display()));
            failures += 1;
        }
    }

    for s in &outcome.shards {
        events.info(&format!(
            "vet: shard {}: {} assigned, {} completed, {} failed, {} restart(s), {} ms",
            s.shard, s.assigned, s.completed, s.failed, s.restarts, s.wall_ms
        ));
    }
    for shard in &outcome.stragglers {
        events.warn(&format!("vet: shard {shard} straggled"));
    }
    let restarts: usize = outcome.shards.iter().map(|s| s.restarts).sum();
    let deltas = outcome.deltas.iter().flatten().count();
    events.warn(&format!(
        "vet: {} app(s) over {} worker(s): {} completed, {} failed, {} degraded, \
         {} delta(s), {} restart(s), {} spawned, {} reused",
        paths.len(),
        workers,
        outcome.completed(),
        failures,
        outcome.degraded,
        deltas,
        restarts,
        outcome.worker_spawns,
        outcome.workers_reused,
    ));

    if failures > 0 {
        ExitCode::from(EXIT_FAILED)
    } else if outcome.degraded > 0 {
        ExitCode::from(EXIT_DEGRADED)
    } else {
        ExitCode::SUCCESS
    }
}

/// The `nchecker cache-gc` entry point: one explicit GC pass over a
/// disk cache directory.
fn gc_main(args: &[String]) -> ExitCode {
    let mut cache_dir: Option<PathBuf> = None;
    let mut budget: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cache-dir" => match it.next() {
                Some(dir) => cache_dir = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--cache-budget" => match it.next().and_then(|v| parse_bytes(v)) {
                Some(n) => budget = Some(n),
                None => return usage(),
            },
            "--quiet" | "-q" => {}
            _ => return usage(),
        }
    }
    let (Some(dir), Some(budget)) = (cache_dir, budget) else {
        return usage();
    };
    let store = AnalysisStore::with_options(1, Some(dir));
    let stats = store.gc_disk(budget, &Obs::disabled());
    println!(
        "cache-gc: {} entries ({} bytes) -> evicted {}, freed {} bytes, {} bytes live",
        stats.entries,
        stats.bytes,
        stats.evicted,
        stats.freed_bytes,
        stats.live_bytes(),
    );
    ExitCode::SUCCESS
}

/// The `--watch` loop: polls the directory and submits changed
/// bundles under their path as the cache key, so an edited bundle
/// rides the incremental ladder instead of a cold run. Bundles whose
/// file disappears have their finished daemon state retired — a watch
/// session over a churning directory must not accumulate state for
/// files that no longer exist.
fn watch_loop(daemon: &Daemon, dir: &Path, poll_ms: u64, events: &Events) {
    let mut watcher = Watcher::new(dir);
    while !daemon.shutting_down() {
        match watcher.poll() {
            Ok(poll) => {
                for key in poll.removed {
                    let dropped = daemon.retire_key(&key);
                    events.info(&format!("watch: {key} deleted, {dropped} job(s) retired"));
                }
                for (key, bytes) in poll.changed {
                    match daemon.submit_bytes(key.clone(), bytes) {
                        Ok((id, _)) => events.info(&format!("watch: {key} submitted as job {id}")),
                        Err((_, msg)) => events.warn(&format!("watch: {key}: {msg}")),
                    }
                }
            }
            Err(e) => events.warn(&format!("watch: {}: {e}", dir.display())),
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms.max(10)));
    }
}

/// Writes the structured JSONL records for the batch: one `app` record
/// per analyzed bundle (phase totals and cache outcome), one `cache`
/// record, one `funnel` record (targeted-mode counters), and one `run`
/// summary record with the latency percentiles.
fn emit_jsonl(
    sink: &JsonlSink,
    items: &[(String, Vec<u8>)],
    outcomes: &[nck_svc::AppOutcome],
    cache_stats: &nck_svc::BatchCacheStats,
    merged: &nck_obs::MetricsSnapshot,
    latency: &mut Series,
) {
    for ((path, _), outcome) in items.iter().zip(outcomes) {
        match &outcome.report {
            Ok(report) => {
                let mut rec = JsonObj::new()
                    .str("t", "app")
                    .str("app", path)
                    .str("package", &report.stats.package)
                    .u64("defects", report.defects.len() as u64)
                    .bool("degraded", report.degraded())
                    .bool("cache_hit", outcome.reuse.whole_report);
                if let Some(t) = &report.trace {
                    rec = rec.u64("wall_us", t.wall_nanos() / 1_000);
                    let mut per_app = PhaseTotals::new();
                    per_app.absorb(t);
                    let mut phases_obj = JsonObj::new();
                    for (phase_path, total) in per_app.iter() {
                        phases_obj = phases_obj.raw(
                            phase_path,
                            &JsonObj::new()
                                .u64("us", total.nanos / 1_000)
                                .u64("items", total.items)
                                .u64("count", total.count)
                                .finish(),
                        );
                    }
                    rec = rec.raw("phases", &phases_obj.finish());
                }
                sink.emit(&rec.finish());
            }
            Err(e) => {
                sink.emit(
                    &JsonObj::new()
                        .str("t", "app")
                        .str("app", path)
                        .str("error", &e.to_string())
                        .finish(),
                );
            }
        }
    }
    sink.emit(
        &JsonObj::new()
            .str("t", "cache")
            .u64("hits", cache_stats.hits as u64)
            .u64("misses", cache_stats.misses as u64)
            .u64("classes_reused", cache_stats.classes_reused as u64)
            .u64("classes_total", cache_stats.classes_total as u64)
            .u64("degraded", cache_stats.degraded as u64)
            .u64("evictions", counter(merged, "svc.cache.evict"))
            .finish(),
    );
    sink.emit(
        &JsonObj::new()
            .str("t", "funnel")
            .u64(
                "prescan_skipped",
                counter(merged, "targeted.prescan_skipped"),
            )
            .u64(
                "touching_classes",
                counter(merged, "targeted.touching_classes"),
            )
            .u64("relevant_refs", counter(merged, "targeted.relevant_refs"))
            .u64("slice_methods", counter(merged, "targeted.slice_methods"))
            .u64("methods_total", counter(merged, "targeted.methods_total"))
            .u64("methods_lifted", counter(merged, "targeted.methods_lifted"))
            .finish(),
    );
    let mut run = JsonObj::new()
        .str("t", "run")
        .u64("apps", items.len() as u64)
        .u64(
            "failed",
            outcomes.iter().filter(|o| o.report.is_err()).count() as u64,
        )
        .i64(
            "cache_mem_entries",
            merged
                .gauges
                .get("svc.cache.mem_entries")
                .map_or(0, |g| g.value),
        );
    if let (Some(p50), Some(p90), Some(p99)) = (
        latency.percentile(50.0),
        latency.percentile(90.0),
        latency.percentile(99.0),
    ) {
        run = run
            .u64("wall_us_p50", p50)
            .u64("wall_us_p90", p90)
            .u64("wall_us_p99", p99)
            .u64("wall_us_max", latency.max().unwrap_or(0));
    }
    sink.emit(&run.finish());
}

fn counter(snap: &nck_obs::MetricsSnapshot, name: &str) -> u64 {
    snap.counters.get(name).copied().unwrap_or(0)
}
