//! `nck-svc`: the sharded batch-analysis service.
//!
//! NChecker's corpus experiments re-analyze thousands of app bundles,
//! and real deployments re-analyze *updated versions* of the same apps.
//! This crate packages the batch machinery those workloads share:
//!
//! - [`pool`] — a fault-tolerant work-stealing worker pool (panics are
//!   contained per job; one adversarial bundle cannot take a run down),
//! - [`store`] — a sharded, content-addressed analysis cache with an
//!   in-memory tier (full replay seeds) and an optional on-disk tier
//!   (durable whole-report entries in the [`wire`] format),
//! - [`service`] — the [`service::AnalysisService`] façade gluing pool,
//!   store, and checker together behind a keyed batch API,
//! - [`daemon`] + [`protocol`] — the long-running `nchecker serve`
//!   front end: a bounded admission queue over the service, spoken to
//!   in line-delimited JSON over a Unix socket or stdio,
//! - [`watch`] — polling directory watcher feeding the daemon changed
//!   bundles (the `--watch` mode).
//!
//! The incremental contract, end to end: analyzing version *N+1* of a
//! bundle whose key was analyzed before replays every leading class
//! whose content fingerprint is unchanged (verification skipped, lift
//! replayed, per-method dataflow shared by `Arc`, interprocedural
//! summaries seeded and recomputed only for the transitive dirty set),
//! then re-runs the checkers in full — producing a report byte-identical
//! to a cold analysis of the same bytes.

pub mod daemon;
pub mod doctor;
pub mod pool;
pub mod protocol;
pub mod service;
pub mod store;
pub mod watch;
pub mod wire;

pub use daemon::{Daemon, DaemonOptions};
pub use doctor::DoctorReport;
pub use pool::{default_workers, run_pool};
pub use protocol::{ErrorCode, Request, MAX_REQUEST_LINE};
pub use service::{AnalysisService, AppOutcome, BatchCacheStats, ServiceOptions};
pub use store::{AnalysisStore, DiskStats};
pub use watch::Watcher;
