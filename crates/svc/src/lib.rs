//! `nck-svc`: the sharded batch-analysis service.
//!
//! NChecker's corpus experiments re-analyze thousands of app bundles,
//! and real deployments re-analyze *updated versions* of the same apps.
//! This crate packages the batch machinery those workloads share:
//!
//! - [`pool`] — a fault-tolerant work-stealing worker pool (panics are
//!   contained per job; one adversarial bundle cannot take a run down),
//! - [`store`] — a sharded, content-addressed analysis cache with an
//!   in-memory tier (full replay seeds) and an optional on-disk tier
//!   (durable whole-report entries in the [`wire`] format),
//! - [`service`] — the [`service::AnalysisService`] façade gluing pool,
//!   store, and checker together behind a keyed batch API,
//! - [`daemon`] + [`protocol`] — the long-running `nchecker serve`
//!   front end: a bounded admission queue over the service, spoken to
//!   in line-delimited JSON over a Unix socket or stdio,
//! - [`watch`] — polling directory watcher feeding the daemon changed
//!   bundles (the `--watch` mode),
//! - [`orchestrator`] — the store-scale tier: partitions a corpus by
//!   content hash across worker *processes* (each an `nchecker serve
//!   --stdio` child spoken to over the wire protocol), with the shared
//!   disk cache as the coordination-free result tier,
//! - [`delta`] — defect deltas between versions of the same app
//!   (added / fixed / unchanged), computed on resubmission under a
//!   known key.
//!
//! The incremental contract, end to end: analyzing version *N+1* of a
//! bundle whose key was analyzed before replays every leading class
//! whose content fingerprint is unchanged (verification skipped, lift
//! replayed, per-method dataflow shared by `Arc`, interprocedural
//! summaries seeded and recomputed only for the transitive dirty set),
//! then re-runs the checkers in full — producing a report byte-identical
//! to a cold analysis of the same bytes.

pub mod daemon;
pub mod delta;
pub mod doctor;
pub mod orchestrator;
pub mod pool;
pub mod protocol;
pub mod service;
pub mod store;
pub mod watch;
pub mod wire;

pub use daemon::{Daemon, DaemonOptions};
pub use delta::{defect_id, diff_reports, DeltaReport};
pub use doctor::DoctorReport;
pub use orchestrator::{vet, OrchestratorOptions, ShardReport, VetOutcome, WorkerFleet};
pub use pool::{default_workers, run_pool};
pub use protocol::{ErrorCode, Request, MAX_REQUEST_LINE};
pub use service::{AnalysisService, AppOutcome, BatchCacheStats, ServiceOptions};
pub use store::{AnalysisStore, DiskStats, GcStats, RenderCell};
pub use watch::Watcher;
