//! The multi-process shard orchestrator behind `nchecker vet`.
//!
//! Store-scale vetting wants more isolation than a thread pool gives:
//! one pathological bundle must not take down (or even slow) the other
//! shards, and a corpus worth of cache entries must not live in one
//! address space. So the orchestrator partitions the corpus by content
//! hash of the *key* across N worker **processes** — each a spawned
//! `nchecker serve --stdio` child spoken to over the existing
//! line-delimited wire protocol — and merges their reports back into
//! input order. The workers share nothing in memory; the on-disk
//! [`crate::AnalysisStore`] tier (when `--cache-dir` is passed through)
//! is the common cache, coordination-free because entries are
//! content-addressed and written tmp+rename.
//!
//! Reliability is the orchestrator's job, not the workers':
//!
//! - **Crash-restart** — a worker that dies mid-chunk (EOF on its
//!   stdout, a write failure, a malformed reply) is killed, respawned,
//!   and the chunk's unfinished items are resubmitted, up to
//!   [`OrchestratorOptions::max_restarts`] per shard. The shared disk
//!   cache makes resubmission cheap: items the dead worker finished
//!   writing are whole-report hits the second time.
//! - **Straggler detection** — a shard still running after
//!   `straggler_factor ×` the median completed-shard wall time is
//!   flagged in [`VetOutcome::stragglers`] (detection, not preemption:
//!   killing a slow shard would trade latency for lost work).
//! - **Per-shard accounting** — every [`ShardReport`] carries assigned
//!   / completed / failed counts, restarts, and wall time, so a vetting
//!   run's summary names the shard that misbehaved.
//!
//! Output discipline: results land in input-order slots, and the
//! report string for each app is the daemon's `report` verb payload —
//! which the daemon guarantees is byte-identical to one-shot
//! `--json` output. Concatenating [`VetOutcome::reports`] therefore
//! reproduces exactly what a single `nchecker --json` run over the
//! same paths would print.
//!
//! Workers are owned by a [`WorkerFleet`], which outlives any single
//! [`WorkerFleet::vet`] round: the shard processes stay alive between
//! rounds, so a continuous-vetting loop (re-vetting a corpus wave
//! after wave) pays process spawn and startup exactly once per shard,
//! not once per wave. A shard with no items in a round spawns nothing;
//! a warm worker that died between rounds respawns on demand through
//! the normal restart path. The one-shot [`vet`] entry point wraps a
//! fleet around a single round and shuts it down.

use crate::protocol;
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Tuning for a [`vet`] run.
#[derive(Debug, Clone)]
pub struct OrchestratorOptions {
    /// Worker processes to spawn (clamped to at least 1).
    pub workers: usize,
    /// The worker command line: argv[0] plus arguments. Must speak the
    /// serve wire protocol on stdio.
    pub worker_cmd: Vec<String>,
    /// Submits pipelined per chunk before reading replies back. Must
    /// stay at or below the worker's queue capacity, or admission
    /// control rejects the overflow.
    pub window: usize,
    /// Worker restarts tolerated per shard before the shard's remaining
    /// items are marked failed.
    pub max_restarts: usize,
    /// A shard is a straggler after `straggler_factor ×` the median
    /// completed-shard wall time (with a small absolute floor so tiny
    /// corpora do not flag noise).
    pub straggler_factor: u32,
}

impl Default for OrchestratorOptions {
    fn default() -> OrchestratorOptions {
        OrchestratorOptions {
            workers: 2,
            worker_cmd: Vec::new(),
            window: 32,
            max_restarts: 2,
            straggler_factor: 4,
        }
    }
}

/// One shard's accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index (also the worker index).
    pub shard: usize,
    /// Items partitioned onto this shard.
    pub assigned: usize,
    /// Items with a report.
    pub completed: usize,
    /// Items that failed (analysis error, or worker restarts
    /// exhausted).
    pub failed: usize,
    /// Worker processes respawned for this shard.
    pub restarts: usize,
    /// Shard wall time, milliseconds.
    pub wall_ms: u64,
}

/// A finished [`vet`] run.
#[derive(Debug, Default)]
pub struct VetOutcome {
    /// Per-input report strings (exact one-shot `--json` bytes), in
    /// input order. `None` where that input failed.
    pub reports: Vec<Option<String>>,
    /// Per-input defect deltas (the daemon's `delta` payload), in input
    /// order; `None` for first submissions and failures.
    pub deltas: Vec<Option<Value>>,
    /// `(input index, message)` for every failed input, sorted by
    /// index.
    pub errors: Vec<(usize, String)>,
    /// Inputs whose analysis degraded (methods skipped).
    pub degraded: usize,
    /// Per-shard accounting, in shard order.
    pub shards: Vec<ShardReport>,
    /// Shard indices flagged as stragglers.
    pub stragglers: Vec<usize>,
    /// Worker processes spawned during this round (cold shards plus
    /// crash respawns). A round served entirely by a warm fleet is 0.
    pub worker_spawns: usize,
    /// Shards served by a worker that was already alive when the round
    /// started.
    pub workers_reused: usize,
}

impl VetOutcome {
    /// Inputs that produced a report.
    pub fn completed(&self) -> usize {
        self.reports.iter().flatten().count()
    }
}

/// Which shard an input key belongs to: content hash of the key, not
/// round-robin, so a re-vetting run with the same worker count routes
/// every key to the same shard (and its warm worker-local state).
pub fn shard_of(key: &str, workers: usize) -> usize {
    (nck_dex::wire::fnv1a(key.as_bytes()) as usize) % workers.max(1)
}

/// Pure straggler rule, factored out for testing: given completed
/// shard wall times and a still-running shard's elapsed time, is the
/// runner a straggler? Needs a majority of shards finished to have a
/// meaningful median, and floors the threshold at 50ms so micro-corpora
/// never flag.
pub fn is_straggler(
    completed_walls: &[Duration],
    elapsed: Duration,
    factor: u32,
    total: usize,
) -> bool {
    if completed_walls.len() * 2 < total {
        return false;
    }
    let mut walls = completed_walls.to_vec();
    walls.sort();
    let median = walls[walls.len() / 2];
    let threshold = (median * factor.max(1)).max(Duration::from_millis(50));
    elapsed > threshold
}

/// One worker process and its wire-protocol plumbing.
struct Worker {
    child: Child,
    stdin: BufWriter<std::process::ChildStdin>,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Worker {
    fn spawn(cmd: &[String]) -> std::io::Result<Worker> {
        let (argv0, rest) = cmd.split_first().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "empty worker command")
        })?;
        let mut child = Command::new(argv0)
            .args(rest)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        Ok(Worker {
            child,
            stdin: BufWriter::new(stdin),
            stdout: BufReader::new(stdout),
        })
    }

    /// One request/reply round trip. The daemon replies serially in
    /// request order, so pipelined callers read replies in send order.
    fn send(&mut self, req: &Value) -> std::io::Result<()> {
        let line = serde_json::to_string(req).expect("request serializes");
        self.stdin.write_all(line.as_bytes())?;
        self.stdin.write_all(b"\n")?;
        self.stdin.flush()
    }

    fn recv(&mut self) -> std::io::Result<Value> {
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "worker closed its stdout",
            ));
        }
        serde_json::from_str(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed worker reply: {e}"),
            )
        })
    }

    fn rpc(&mut self, req: &Value) -> std::io::Result<Value> {
        self.send(req)?;
        self.recv()
    }

    /// Graceful stop: `shutdown` verb, then reap. Kill as the fallback
    /// so a wedged worker cannot hang the orchestrator.
    fn shutdown(mut self) {
        let _ = self.rpc(&serde_json::json!({"verb": "shutdown"}));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                _ => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// What one input ended as, inside a shard.
enum ItemResult {
    Done {
        report: String,
        delta: Option<Value>,
        degraded: bool,
    },
    Failed(String),
}

/// How a shard used its worker slot during one round.
#[derive(Debug, Default, Clone, Copy)]
struct ShardUse {
    /// Workers respawned after a death.
    restarts: usize,
    /// Processes spawned (cold start plus respawns).
    spawned: usize,
    /// 1 when the round started on an already-warm worker.
    reused: usize,
}

/// Runs one shard: submits its items through the worker process in
/// `slot` — reusing it warm when present, spawning it when not —
/// restarting it (and resubmitting the chunk's unfinished items) on
/// death. The worker is *left alive in the slot* when the round ends;
/// the owning [`WorkerFleet`] decides when it shuts down. A shard with
/// no items spawns nothing.
fn run_shard(
    slot: &mut Option<Worker>,
    cmd: &[String],
    window: usize,
    max_restarts: usize,
    items: &[(usize, String)],
) -> (BTreeMap<usize, ItemResult>, ShardUse) {
    let mut results: BTreeMap<usize, ItemResult> = BTreeMap::new();
    let mut usage = ShardUse::default();
    if items.is_empty() {
        return (results, usage);
    }
    if slot.is_some() {
        usage.reused = 1;
    } else {
        match Worker::spawn(cmd) {
            Ok(w) => {
                *slot = Some(w);
                usage.spawned += 1;
            }
            Err(e) => {
                for (idx, _) in items {
                    results.insert(
                        *idx,
                        ItemResult::Failed(format!("worker spawn failed: {e}")),
                    );
                }
                return (results, usage);
            }
        }
    }

    let window = window.max(1);
    let mut chunk_start = 0usize;
    while chunk_start < items.len() {
        let chunk: Vec<&(usize, String)> = items[chunk_start..]
            .iter()
            .filter(|(idx, _)| !results.contains_key(idx))
            .take(window)
            .collect();
        if chunk.is_empty() {
            chunk_start = items.len();
            continue;
        }
        let w = slot.as_mut().expect("live worker");
        match run_chunk(w, &chunk, &mut results) {
            Ok(()) => {
                // Everything in the chunk resolved (done or failed);
                // advance past every leading resolved item.
                while chunk_start < items.len() && results.contains_key(&items[chunk_start].0) {
                    chunk_start += 1;
                }
            }
            Err(e) => {
                // Worker I/O died mid-chunk. Kill, maybe respawn, and
                // retry the chunk's unfinished items — finished ones
                // keep their results, and re-analysis of items the dead
                // worker had completed hits the shared disk cache.
                slot.take().expect("live worker").kill();
                if usage.restarts >= max_restarts {
                    for (idx, _) in items {
                        results.entry(*idx).or_insert_with(|| {
                            ItemResult::Failed(format!(
                                "worker died ({e}); restart budget ({max_restarts}) exhausted"
                            ))
                        });
                    }
                    return (results, usage);
                }
                usage.restarts += 1;
                match Worker::spawn(cmd) {
                    Ok(w) => {
                        *slot = Some(w);
                        usage.spawned += 1;
                    }
                    Err(spawn_err) => {
                        for (idx, _) in items {
                            results.entry(*idx).or_insert_with(|| {
                                ItemResult::Failed(format!("worker respawn failed: {spawn_err}"))
                            });
                        }
                        return (results, usage);
                    }
                }
            }
        }
    }
    (results, usage)
}

/// One pipelined chunk: submit everything, then resolve each id to a
/// report. `Err` means the worker connection is unusable (caller
/// restarts); per-item analysis failures are recorded and are *not*
/// errors.
fn run_chunk(
    worker: &mut Worker,
    chunk: &[&(usize, String)],
    results: &mut BTreeMap<usize, ItemResult>,
) -> std::io::Result<()> {
    // Phase 1: pipelined submits (the daemon replies in request order).
    for (_, path) in chunk {
        worker.send(&serde_json::json!({"verb": "submit", "path": path}))?;
    }
    let mut job_ids: Vec<(usize, Option<u64>)> = Vec::with_capacity(chunk.len());
    for (idx, path) in chunk {
        let reply = worker.recv()?;
        if reply["ok"].as_bool() == Some(true) {
            job_ids.push((*idx, reply["id"].as_i64().map(|id| id as u64)));
        } else {
            // An admission reject is a protocol-level surprise (the
            // window is sized to the queue) but not a dead worker.
            results.insert(
                *idx,
                ItemResult::Failed(format!(
                    "{path}: submit rejected: {}",
                    reply["error"]["code"].as_str().unwrap_or("unknown")
                )),
            );
            job_ids.push((*idx, None));
        }
    }

    // Phase 2: fetch each report, polling not-ready jobs. The daemon
    // drains in batches, so by the time the first report is ready the
    // rest of the chunk usually is too.
    for (idx, id) in job_ids {
        let Some(id) = id else { continue };
        loop {
            let reply = worker.rpc(&serde_json::json!({"verb": "report", "id": id}))?;
            if reply["ok"].as_bool() == Some(true) {
                results.insert(
                    idx,
                    ItemResult::Done {
                        report: reply["report"].as_str().unwrap_or("").to_owned(),
                        delta: match &reply["delta"] {
                            Value::Null => None,
                            d => Some(d.clone()),
                        },
                        degraded: reply["degraded"].as_bool().unwrap_or(false),
                    },
                );
                break;
            }
            match reply["error"]["code"].as_str() {
                Some(code) if code == protocol::ErrorCode::NotReady.tag() => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Some(code) => {
                    results.insert(
                        idx,
                        ItemResult::Failed(format!(
                            "{code}: {}",
                            reply["error"]["message"]
                                .as_str()
                                .unwrap_or("analysis failed")
                        )),
                    );
                    break;
                }
                None => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "worker reply carries neither ok nor error",
                    ));
                }
            }
        }
    }
    Ok(())
}

/// A persistent fleet of shard worker processes. One fleet serves any
/// number of [`WorkerFleet::vet`] rounds; workers spawned for a round
/// stay alive for the next, so continuous vetting pays spawn and
/// startup once per shard, not once per wave. Key→shard routing is
/// stable ([`shard_of`]), so a re-vetted key lands on the same warm
/// worker — and its warm memory-tier cache — every round.
pub struct WorkerFleet {
    options: OrchestratorOptions,
    slots: Vec<Option<Worker>>,
}

impl WorkerFleet {
    /// A fleet with every slot cold. No processes spawn until a round
    /// routes items to their shards.
    pub fn new(options: OrchestratorOptions) -> WorkerFleet {
        let workers = options.workers.max(1);
        WorkerFleet {
            options,
            slots: (0..workers).map(|_| None).collect(),
        }
    }

    /// Workers currently alive in the fleet.
    pub fn warm_workers(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Vets `paths` across the fleet: partitions by key hash, runs
    /// every shard concurrently (reusing warm workers, spawning cold
    /// ones), and merges results back into input order.
    pub fn vet(&mut self, paths: &[String]) -> VetOutcome {
        let options = &self.options;
        let workers = options.workers.max(1);
        let mut partitions: Vec<Vec<(usize, String)>> = vec![Vec::new(); workers];
        for (idx, path) in paths.iter().enumerate() {
            partitions[shard_of(path, workers)].push((idx, path.clone()));
        }

        let mut outcome = VetOutcome {
            reports: (0..paths.len()).map(|_| None).collect(),
            deltas: (0..paths.len()).map(|_| None).collect(),
            ..VetOutcome::default()
        };

        let started = Instant::now();
        let shard_walls: Vec<std::sync::Mutex<Option<Duration>>> =
            (0..workers).map(|_| std::sync::Mutex::new(None)).collect();
        let mut shard_results: Vec<Option<(BTreeMap<usize, ItemResult>, ShardUse)>> =
            (0..workers).map(|_| None).collect();
        let mut stragglers: Vec<usize> = Vec::new();

        std::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .iter()
                .enumerate()
                .zip(self.slots.iter_mut())
                .map(|((shard, items), slot)| {
                    let walls = &shard_walls;
                    let opts = options;
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let r = run_shard(
                            slot,
                            &opts.worker_cmd,
                            opts.window,
                            opts.max_restarts,
                            items,
                        );
                        *walls[shard].lock().expect("wall slot") = Some(t0.elapsed());
                        r
                    })
                })
                .collect();

            // Straggler watch: poll until every shard finishes, flagging
            // shards that outlive the completed median by the factor.
            loop {
                let walls: Vec<Duration> = shard_walls
                    .iter()
                    .filter_map(|w| *w.lock().expect("wall slot"))
                    .collect();
                if walls.len() == workers {
                    break;
                }
                let elapsed = started.elapsed();
                for (shard, slot) in shard_walls.iter().enumerate() {
                    if slot.lock().expect("wall slot").is_none()
                        && !stragglers.contains(&shard)
                        && is_straggler(&walls, elapsed, options.straggler_factor, workers)
                    {
                        stragglers.push(shard);
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }

            for (shard, handle) in handles.into_iter().enumerate() {
                shard_results[shard] = Some(handle.join().unwrap_or_else(|_| {
                    let mut failed = BTreeMap::new();
                    for (idx, _) in &partitions[shard] {
                        failed.insert(*idx, ItemResult::Failed("shard thread panicked".to_owned()));
                    }
                    (failed, ShardUse::default())
                }));
            }
        });

        for (shard, slot) in shard_results.into_iter().enumerate() {
            let (results, usage) = slot.expect("joined shard");
            outcome.worker_spawns += usage.spawned;
            outcome.workers_reused += usage.reused;
            let mut report = ShardReport {
                shard,
                assigned: partitions[shard].len(),
                completed: 0,
                failed: 0,
                restarts: usage.restarts,
                wall_ms: shard_walls[shard]
                    .lock()
                    .expect("wall slot")
                    .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
            };
            for (idx, result) in results {
                match result {
                    ItemResult::Done {
                        report: text,
                        delta,
                        degraded,
                    } => {
                        report.completed += 1;
                        outcome.degraded += usize::from(degraded);
                        outcome.reports[idx] = Some(text);
                        outcome.deltas[idx] = delta;
                    }
                    ItemResult::Failed(msg) => {
                        report.failed += 1;
                        outcome.errors.push((idx, msg));
                    }
                }
            }
            outcome.shards.push(report);
        }
        outcome.errors.sort_by_key(|(idx, _)| *idx);
        stragglers.sort_unstable();
        outcome.stragglers = stragglers;
        outcome
    }

    /// Graceful teardown: every warm worker gets the `shutdown` verb
    /// and a reap (with the kill fallback), in shard order.
    pub fn shutdown(mut self) {
        for slot in &mut self.slots {
            if let Some(w) = slot.take() {
                w.shutdown();
            }
        }
    }
}

impl Drop for WorkerFleet {
    fn drop(&mut self) {
        // A dropped (not shut down) fleet must not leak processes, and
        // must not hang for the graceful-shutdown deadline per worker:
        // kill outright.
        for slot in &mut self.slots {
            if let Some(w) = slot.take() {
                w.kill();
            }
        }
    }
}

/// Vets `paths` across worker processes in one round: a [`WorkerFleet`]
/// spun up for the call and shut down after it. Continuous vetting
/// should hold a fleet instead and call [`WorkerFleet::vet`] per wave.
pub fn vet(options: &OrchestratorOptions, paths: &[String]) -> VetOutcome {
    let mut fleet = WorkerFleet::new(options.clone());
    let outcome = fleet.vet(paths);
    fleet.shutdown();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_partition_is_stable_and_total() {
        let keys = ["a.apk", "b.apk", "dir/c.apk", "dir/d.adx"];
        for workers in 1..=4 {
            for k in keys {
                let s = shard_of(k, workers);
                assert!(s < workers);
                assert_eq!(s, shard_of(k, workers), "stable per key");
            }
        }
        // Hash partitioning actually spreads keys (not all one shard).
        let spread: std::collections::BTreeSet<usize> = (0..64)
            .map(|i| shard_of(&format!("app{i:03}.apk"), 4))
            .collect();
        assert!(spread.len() > 1);
    }

    #[test]
    fn straggler_rule_needs_a_median_and_a_margin() {
        let ms = Duration::from_millis;
        // Not enough finished shards: never a straggler.
        assert!(!is_straggler(&[ms(10)], ms(10_000), 4, 4));
        // Majority finished, runner just over the median: fine.
        assert!(!is_straggler(&[ms(100), ms(120), ms(110)], ms(200), 4, 4));
        // Runner far past factor × median: flagged.
        assert!(is_straggler(&[ms(100), ms(120), ms(110)], ms(600), 4, 4));
        // The 50ms floor: micro-shards never flag at micro-elapsed.
        assert!(!is_straggler(&[ms(1), ms(1), ms(1)], ms(40), 4, 4));
        assert!(is_straggler(&[ms(1), ms(1), ms(1)], ms(60), 4, 4));
    }

    #[test]
    fn vet_with_an_unspawnable_worker_fails_every_input_cleanly() {
        let options = OrchestratorOptions {
            workers: 2,
            worker_cmd: vec!["/nonexistent/bin/definitely-not-here".to_owned()],
            ..OrchestratorOptions::default()
        };
        let paths = vec!["a.apk".to_owned(), "b.apk".to_owned(), "c.apk".to_owned()];
        let out = vet(&options, &paths);
        assert_eq!(out.completed(), 0);
        assert_eq!(out.errors.len(), 3);
        assert_eq!(out.reports, vec![None, None, None]);
        assert_eq!(out.shards.len(), 2);
        let assigned: usize = out.shards.iter().map(|s| s.assigned).sum();
        let failed: usize = out.shards.iter().map(|s| s.failed).sum();
        assert_eq!(assigned, 3);
        assert_eq!(failed, 3);
        assert!(out.errors.iter().all(|(_, m)| m.contains("spawn failed")));
        assert_eq!(out.worker_spawns, 0, "failed spawns are not spawns");
        assert_eq!(out.workers_reused, 0);
    }

    #[test]
    fn a_fleet_round_with_no_items_spawns_nothing() {
        let mut fleet = WorkerFleet::new(OrchestratorOptions {
            workers: 3,
            worker_cmd: vec!["/nonexistent/bin/definitely-not-here".to_owned()],
            ..OrchestratorOptions::default()
        });
        let out = fleet.vet(&[]);
        assert_eq!(out.worker_spawns, 0);
        assert_eq!(out.workers_reused, 0);
        assert_eq!(fleet.warm_workers(), 0);
        assert_eq!(out.shards.len(), 3);
        assert!(out.shards.iter().all(|s| s.assigned == 0));
        fleet.shutdown();
    }
}
