//! The long-running analysis daemon behind `nchecker serve`.
//!
//! A [`Daemon`] owns an [`AnalysisService`] and a bounded request
//! queue in front of it. Clients submit bundle paths over the
//! [`crate::protocol`] wire (Unix socket or stdio); a dispatcher
//! thread drains the queue in batches onto the work-stealing pool;
//! finished jobs keep their rendered report — the *exact* bytes the
//! one-shot CLI would print under `--json` — until they age out of
//! retention.
//!
//! Admission control is explicit: a submit against a full queue is
//! rejected with a typed `queue-full` reply (never blocked, never
//! silently dropped), and a submit after shutdown began gets
//! `shutting-down`. Shutdown is graceful — in-flight and queued apps
//! drain, then the disk cache tier is flushed before the dispatcher
//! exits.
//!
//! Two invariants worth naming:
//!
//! - The per-app observability template stays **disabled** (tracer and
//!   metrics): enabling it would seal telemetry into the reports and
//!   break byte-identity with plain one-shot `--json` output. Queue
//!   telemetry therefore lives in the daemon's own lifetime registry
//!   ([`Daemon::metrics`]), and cache telemetry in the store's.
//! - [`Daemon::doctor_string`] serves the *same canonical document* as
//!   `nchecker --doctor` over the same store, plus one extra top-level
//!   `"queue"` object — strip that key and the bytes match.

use crate::doctor::{self, DoctorReport};
use crate::protocol::{self, ErrorCode, Line, ProtocolError, Request};
use crate::service::{AnalysisService, ServiceOptions};
use nchecker::CheckerConfig;
use nck_obs::{Events, Metrics, MetricsSnapshot, Obs, PhaseTotals, Tracer};
use serde_json::{json, Value};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Default bound on the request queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Finished jobs retained for `report` fetches; older ones age out
/// (a later `report` gets `not-found`).
pub const DONE_RETENTION: usize = 1024;

/// Queue-wait histogram bounds, in microseconds: 100µs to 10min. The
/// default exponential buckets top out at ~33ms, far too tight for a
/// queue that can legitimately hold work for seconds.
const WAIT_US_BUCKETS: [u64; 8] = [
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    60_000_000,
    600_000_000,
];

/// Construction options for [`Daemon`].
#[derive(Debug, Clone, Default)]
pub struct DaemonOptions {
    /// The underlying batch service (config, jobs, cache tiers).
    pub service: ServiceOptions,
    /// Request-queue bound (`0` is clamped to `1`); `None` =
    /// [`DEFAULT_QUEUE_CAPACITY`].
    pub queue_capacity: Option<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
    Failed,
}

impl Phase {
    fn tag(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Failed => "failed",
        }
    }
}

struct Job {
    key: String,
    /// Present while queued; taken at dispatch.
    bytes: Option<Vec<u8>>,
    phase: Phase,
    enqueued: Instant,
    /// Exact one-shot `--json` bytes (pretty + trailing newline),
    /// shared with the store's render cell when the report came out of
    /// (or went into) the cache — a repeat hit serves these bytes
    /// without re-encoding the report.
    report_json: Option<std::sync::Arc<String>>,
    /// Defect delta against the previous version of this key, when the
    /// service computed one (JSONL object shape).
    delta: Option<Value>,
    error: Option<String>,
    degraded: bool,
    defects: usize,
}

struct State {
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, Job>,
    done_order: VecDeque<u64>,
    next_id: u64,
    accepting: bool,
    stopped: bool,
    inflight: usize,
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    degraded: u64,
    /// Watched files that vanished and had their finished state dropped.
    retired: u64,
}

impl State {
    fn new() -> State {
        State {
            queue: VecDeque::new(),
            jobs: BTreeMap::new(),
            done_order: VecDeque::new(),
            next_id: 1,
            accepting: true,
            stopped: false,
            inflight: 0,
            submitted: 0,
            rejected: 0,
            completed: 0,
            failed: 0,
            degraded: 0,
            retired: 0,
        }
    }
}

/// One protocol reply: the wire line plus whether the connection (and
/// daemon) should begin shutting down after it is written.
pub struct Reply {
    /// The one-line reply, newline included.
    pub line: String,
    /// `true` after a `shutdown` verb was accepted.
    pub shutdown: bool,
}

impl Reply {
    fn plain(v: &Value) -> Reply {
        Reply {
            line: protocol::render_reply(v),
            shutdown: false,
        }
    }

    fn error(code: ErrorCode, message: &str) -> Reply {
        Reply {
            line: protocol::error_line(code, message),
            shutdown: false,
        }
    }
}

/// The daemon: bounded queue + dispatcher + protocol handler.
pub struct Daemon {
    service: AnalysisService,
    config: CheckerConfig,
    capacity: usize,
    /// Lifetime queue telemetry: `svc.queue.{depth,inflight}` gauges,
    /// `svc.queue.{submitted,rejected,completed,failed}` counters, and
    /// the `svc.queue.wait_us` histogram.
    metrics: Metrics,
    state: Mutex<State>,
    /// Signals the dispatcher: work arrived or shutdown began.
    work: Condvar,
    /// Signals drain waiters: the dispatcher exited.
    idle: Condvar,
}

impl Daemon {
    /// Builds a daemon. The per-app obs template is forced to disabled
    /// tracer/metrics (see the module invariant); `events` flows
    /// through for diagnostics.
    pub fn new(options: DaemonOptions, events: Events) -> Daemon {
        let config = options.service.config;
        let obs = Obs {
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
            events,
        };
        Daemon {
            service: AnalysisService::new(options.service, obs),
            config,
            capacity: options
                .queue_capacity
                .unwrap_or(DEFAULT_QUEUE_CAPACITY)
                .max(1),
            metrics: Metrics::enabled(),
            state: Mutex::new(State::new()),
            work: Condvar::new(),
            idle: Condvar::new(),
        }
    }

    /// The underlying service (for tests and introspection).
    pub fn service(&self) -> &AnalysisService {
        &self.service
    }

    /// The daemon's lifetime queue-telemetry registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Whether shutdown has begun (new submits are rejected).
    pub fn shutting_down(&self) -> bool {
        !self.state.lock().expect("daemon state").accepting
    }

    /// Reads `path` and enqueues it under `key` (default: the path
    /// itself, so re-submitting an updated file hits the incremental
    /// ladder).
    pub fn submit_path(
        &self,
        path: &str,
        key: Option<String>,
    ) -> Result<(u64, usize), ProtocolError> {
        let bytes =
            std::fs::read(path).map_err(|e| (ErrorCode::ReadFailed, format!("{path}: {e}")))?;
        self.submit_bytes(key.unwrap_or_else(|| path.to_owned()), bytes)
    }

    /// Enqueues a bundle. Admission control: `queue-full` at capacity,
    /// `shutting-down` after shutdown began. Returns the job id and the
    /// queue depth after the enqueue.
    pub fn submit_bytes(&self, key: String, bytes: Vec<u8>) -> Result<(u64, usize), ProtocolError> {
        let mut st = self.state.lock().expect("daemon state");
        if !st.accepting {
            return Err((
                ErrorCode::ShuttingDown,
                "daemon is shutting down; submit rejected".to_owned(),
            ));
        }
        if st.queue.len() >= self.capacity {
            st.rejected += 1;
            self.metrics.inc("svc.queue.rejected", 1);
            return Err((
                ErrorCode::QueueFull,
                format!(
                    "queue at capacity ({}); retry after jobs drain",
                    self.capacity
                ),
            ));
        }
        let id = st.next_id;
        st.next_id += 1;
        st.submitted += 1;
        st.jobs.insert(
            id,
            Job {
                key,
                bytes: Some(bytes),
                phase: Phase::Queued,
                enqueued: Instant::now(),
                report_json: None,
                delta: None,
                error: None,
                degraded: false,
                defects: 0,
            },
        );
        st.queue.push_back(id);
        let depth = st.queue.len();
        self.metrics.inc("svc.queue.submitted", 1);
        self.metrics.gauge("svc.queue.depth", depth as i64);
        self.work.notify_one();
        Ok((id, depth))
    }

    /// Retires all finished (done or failed) jobs submitted under
    /// `key`: their retained reports are dropped and later `report`
    /// fetches get `not-found`. The watch loop calls this when a
    /// watched bundle file disappears — without it a long watch session
    /// retains state for files that no longer exist, and
    /// [`DONE_RETENTION`] is the only thing that ever frees it. Queued
    /// and running jobs are left alone (their bytes were already read;
    /// the submission is honored). Counts one `svc.watch.retired` per
    /// call, i.e. per vanished path. Returns the jobs dropped.
    pub fn retire_key(&self, key: &str) -> usize {
        let mut st = self.state.lock().expect("daemon state");
        let ids: Vec<u64> = st
            .jobs
            .iter()
            .filter(|(_, j)| j.key == key && matches!(j.phase, Phase::Done | Phase::Failed))
            .map(|(id, _)| *id)
            .collect();
        for id in &ids {
            st.jobs.remove(id);
        }
        st.done_order.retain(|id| !ids.contains(id));
        st.retired += 1;
        self.metrics.inc("svc.watch.retired", 1);
        ids.len()
    }

    /// Stops admission. Idempotent; returns the depth still queued.
    pub fn begin_shutdown(&self) -> usize {
        let mut st = self.state.lock().expect("daemon state");
        st.accepting = false;
        self.work.notify_all();
        st.queue.len()
    }

    /// Blocks until the dispatcher has drained everything and exited.
    /// Only meaningful with [`Daemon::run_dispatcher`] running.
    pub fn await_drained(&self) {
        let mut st = self.state.lock().expect("daemon state");
        while !st.stopped {
            st = self.idle.wait(st).expect("daemon state");
        }
    }

    /// The dispatcher loop: waits for work, drains the queue in
    /// batches onto the pool, and on shutdown flushes the disk cache
    /// before signalling drain waiters. Run on a dedicated thread.
    pub fn run_dispatcher(&self) {
        loop {
            let batch = {
                let mut st = self.state.lock().expect("daemon state");
                loop {
                    if !st.queue.is_empty() {
                        break;
                    }
                    if !st.accepting {
                        drop(st);
                        self.service.store().sync_disk();
                        let mut st = self.state.lock().expect("daemon state");
                        st.stopped = true;
                        self.idle.notify_all();
                        return;
                    }
                    st = self.work.wait(st).expect("daemon state");
                }
                self.begin_batch(&mut st)
            };
            self.run_batch(batch);
        }
    }

    /// Drains the queue synchronously on the calling thread (tests and
    /// single-shot embedding; the daemon binary uses the dispatcher).
    pub fn drain_now(&self) {
        loop {
            let batch = {
                let mut st = self.state.lock().expect("daemon state");
                if st.queue.is_empty() {
                    return;
                }
                self.begin_batch(&mut st)
            };
            self.run_batch(batch);
        }
    }

    /// Takes every queued job: marks it running, records its queue
    /// wait, and returns `(id, key, bytes)` triples for the pool.
    fn begin_batch(&self, st: &mut State) -> Vec<(u64, String, Vec<u8>)> {
        let mut batch = Vec::with_capacity(st.queue.len());
        while let Some(id) = st.queue.pop_front() {
            let Some(job) = st.jobs.get_mut(&id) else {
                continue;
            };
            job.phase = Phase::Running;
            let wait_us = u64::try_from(job.enqueued.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.metrics
                .observe_with("svc.queue.wait_us", &WAIT_US_BUCKETS, wait_us);
            let bytes = job.bytes.take().unwrap_or_default();
            batch.push((id, job.key.clone(), bytes));
        }
        st.inflight = batch.len();
        self.metrics.gauge("svc.queue.depth", 0);
        self.metrics.gauge("svc.queue.inflight", batch.len() as i64);
        batch
    }

    fn run_batch(&self, batch: Vec<(u64, String, Vec<u8>)>) {
        let (ids, items): (Vec<u64>, Vec<(String, Vec<u8>)>) = batch
            .into_iter()
            .map(|(id, key, bytes)| (id, (key, bytes)))
            .unzip();
        let outcomes = self.service.analyze_batch(&items);
        let mut st = self.state.lock().expect("daemon state");
        for (id, outcome) in ids.into_iter().zip(outcomes) {
            self.finish_job(&mut st, id, outcome);
        }
        st.inflight = 0;
        self.metrics.gauge("svc.queue.inflight", 0);
    }

    fn finish_job(&self, st: &mut State, id: u64, outcome: crate::service::AppOutcome) {
        let Some(job) = st.jobs.get_mut(&id) else {
            return;
        };
        match outcome.report {
            Ok(report) => {
                // The exact byte surface the one-shot CLI prints under
                // --json: pretty JSON plus the println! newline. The
                // daemon's per-app obs is always disabled, so this
                // rendering is a pure function of the report — which is
                // what makes memoizing it in the store's render cell
                // sound. A repeat hit whose cell is already filled
                // costs an Arc clone here, not a re-encode.
                let render = || {
                    let mut text =
                        serde_json::to_string_pretty(&nchecker::app_report_to_json(&report))
                            .expect("report serializes");
                    text.push('\n');
                    text
                };
                let text = match &outcome.rendered {
                    Some(cell) => cell.get_or_render(render),
                    None => std::sync::Arc::new(render()),
                };
                job.degraded = report.degraded();
                job.defects = report.defects.len();
                job.report_json = Some(text);
                job.delta = outcome.delta.map(|d| d.to_json());
                job.phase = Phase::Done;
                st.completed += 1;
                self.metrics.inc("svc.queue.completed", 1);
                if job.degraded {
                    st.degraded += 1;
                }
            }
            Err(e) => {
                job.error = Some(e.to_string());
                job.phase = Phase::Failed;
                st.failed += 1;
                self.metrics.inc("svc.queue.failed", 1);
            }
        }
        st.done_order.push_back(id);
        while st.done_order.len() > DONE_RETENTION {
            if let Some(old) = st.done_order.pop_front() {
                st.jobs.remove(&old);
            }
        }
    }

    /// Dispatches one framed read: `None` on EOF (caller closes), a
    /// reply otherwise. Protocol errors become typed error replies —
    /// never panics, never wedges the connection.
    pub fn handle_line(&self, line: &Line) -> Option<Reply> {
        match line {
            Line::Eof => None,
            Line::Oversized => Some(Reply::error(
                ErrorCode::Oversized,
                &format!("request line exceeds {} bytes", protocol::MAX_REQUEST_LINE),
            )),
            Line::Text(text) => Some(match protocol::parse_request(text) {
                Ok(req) => self.handle_request(req),
                Err((code, msg)) => Reply::error(code, &msg),
            }),
        }
    }

    /// Executes one parsed request.
    pub fn handle_request(&self, req: Request) -> Reply {
        match req {
            Request::Submit { path, key } => match self.submit_path(&path, key) {
                Ok((id, pending)) => Reply::plain(&json!({
                    "ok": true,
                    "verb": "submit",
                    "id": id,
                    "pending": pending,
                })),
                Err((code, msg)) => Reply::error(code, &msg),
            },
            Request::Status { id: None } => {
                let st = self.state.lock().expect("daemon state");
                Reply::plain(&json!({
                    "ok": true,
                    "verb": "status",
                    "accepting": st.accepting,
                    "pending": st.queue.len(),
                    "inflight": st.inflight,
                    "submitted": st.submitted,
                    "rejected": st.rejected,
                    "completed": st.completed,
                    "failed": st.failed,
                    "retired": st.retired,
                }))
            }
            Request::Status { id: Some(id) } => {
                let st = self.state.lock().expect("daemon state");
                match st.jobs.get(&id) {
                    None => Reply::error(ErrorCode::NotFound, &format!("no job {id}")),
                    Some(job) => Reply::plain(&json!({
                        "ok": true,
                        "verb": "status",
                        "id": id,
                        "key": job.key,
                        "state": job.phase.tag(),
                    })),
                }
            }
            Request::Report { id } => {
                let st = self.state.lock().expect("daemon state");
                match st.jobs.get(&id) {
                    None => Reply::error(ErrorCode::NotFound, &format!("no job {id}")),
                    Some(job) => match job.phase {
                        Phase::Queued | Phase::Running => Reply::error(
                            ErrorCode::NotReady,
                            &format!("job {id} is {}", job.phase.tag()),
                        ),
                        Phase::Failed => Reply::error(
                            ErrorCode::AnalysisFailed,
                            job.error.as_deref().unwrap_or("analysis failed"),
                        ),
                        Phase::Done => Reply::plain(&json!({
                            "ok": true,
                            "verb": "report",
                            "id": id,
                            "key": job.key,
                            "degraded": job.degraded,
                            "defects": job.defects,
                            // The report string stays byte-identical to
                            // one-shot --json; the delta rides alongside
                            // (null on first submission).
                            "delta": job.delta.clone().unwrap_or(Value::Null),
                            "report": job.report_json.as_deref().map_or("", String::as_str),
                        })),
                    },
                }
            }
            Request::Doctor => Reply::plain(&json!({
                "ok": true,
                "verb": "doctor",
                "doctor": self.doctor_string(),
            })),
            Request::Shutdown => {
                let pending = self.begin_shutdown();
                Reply {
                    line: protocol::render_reply(&json!({
                        "ok": true,
                        "verb": "shutdown",
                        "pending": pending,
                    })),
                    shutdown: true,
                }
            }
        }
    }

    /// The canonical doctor document this daemon serves: byte-identical
    /// to `nchecker --doctor` over the same store and config, plus one
    /// top-level `"queue"` object.
    pub fn doctor_string(&self) -> String {
        let st = self.state.lock().expect("daemon state");
        // The daemon has no "last run" in the one-shot sense and its
        // per-app metrics are disabled by construction; the doctor's
        // funnel and phase sections therefore read an empty snapshot,
        // while cache counters come from the store's lifetime registry
        // and queue counters from the daemon's.
        let empty = MetricsSnapshot::default();
        let phases = PhaseTotals::new();
        let report = DoctorReport {
            config: &self.config,
            store: self.service.store(),
            metrics: &empty,
            phases: &phases,
            apps: (st.completed + st.failed) as usize,
            failed: st.failed as usize,
            degraded: st.degraded as usize,
        };
        let mut v = doctor::doctor_json(&report);
        let queue = self.queue_json(&st);
        if let Value::Object(m) = &mut v {
            m.insert("queue".to_owned(), queue);
        }
        let mut text = serde_json::to_string_pretty(&v).expect("doctor snapshot serializes");
        text.push('\n');
        text
    }

    fn queue_json(&self, st: &State) -> Value {
        let snap = self.metrics.snapshot();
        let wait = snap.histograms.get("svc.queue.wait_us");
        let pct = |p: f64| wait.and_then(|h| h.percentile_bound(p)).unwrap_or(0);
        json!({
            "capacity": self.capacity,
            "depth": st.queue.len(),
            "inflight": st.inflight,
            "accepting": st.accepting,
            "submitted": st.submitted,
            "rejected": st.rejected,
            "completed": st.completed,
            "failed": st.failed,
            "degraded": st.degraded,
            "retired": st.retired,
            "wait_us": {
                "count": wait.map_or(0, |h| h.count),
                "p50": pct(50.0),
                "p99": pct(99.0),
            },
        })
    }
}

/// Serves one client connection; returns `true` when the client issued
/// an accepted `shutdown`. A client disconnect (read or write failure)
/// closes this connection only — the daemon survives.
pub fn serve_connection(daemon: &Daemon, stream: UnixStream) -> bool {
    let Ok(read_half) = stream.try_clone() else {
        return false;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let line = match protocol::read_request_line(&mut reader) {
            Ok(line) => line,
            Err(_) => return false,
        };
        let Some(reply) = daemon.handle_line(&line) else {
            return false;
        };
        if writer.write_all(reply.line.as_bytes()).is_err() || writer.flush().is_err() {
            return reply.shutdown;
        }
        if reply.shutdown {
            return true;
        }
    }
}

/// Binds `path` and serves connections until a client issues
/// `shutdown` (each connection gets its own thread). The stale socket
/// file of a dead daemon is replaced; the file is removed on exit.
pub fn serve_socket(daemon: &Arc<Daemon>, path: &Path) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    loop {
        let (stream, _) = listener.accept()?;
        if daemon.shutting_down() {
            // Woken by the handler's self-connect below (accept has no
            // timeout); the wake connection itself is dropped.
            break;
        }
        let d = Arc::clone(daemon);
        let wake = path.to_path_buf();
        std::thread::spawn(move || {
            if serve_connection(&d, stream) {
                let _ = UnixStream::connect(&wake);
            }
        });
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Serves requests from `reader` to `writer` until EOF or `shutdown`
/// (the stdio transport). EOF counts as an implicit shutdown request:
/// a pipe that closes wants the daemon to drain and exit.
pub fn serve_lines<R: BufRead, W: Write>(
    daemon: &Daemon,
    reader: &mut R,
    writer: &mut W,
) -> io::Result<()> {
    loop {
        let line = protocol::read_request_line(reader)?;
        let Some(reply) = daemon.handle_line(&line) else {
            break;
        };
        writer.write_all(reply.line.as_bytes())?;
        writer.flush()?;
        if reply.shutdown {
            break;
        }
    }
    daemon.begin_shutdown();
    Ok(())
}
