//! Report deltas: what changed between two analyses of the same app.
//!
//! A store-scale vetting pipeline sees the same app key over and over —
//! every resubmission is a new bundle under a known package. The
//! interesting output for a reviewer is not the full report (it was
//! already read last time) but the *difference*: which defects are new
//! in this version, which were fixed, and how many carried over.
//!
//! A [`DeltaReport`] is computed whenever an analysis under a known key
//! could not reuse the whole cached report — i.e. the bundle actually
//! changed. The previous report comes from whichever cache tier held
//! it: the in-memory entry within one process, or the stale-but-
//! readable disk entry across process restarts
//! ([`crate::AnalysisStore::lookup_disk_any`]). No extra hashing is
//! spent on delta detection — the checker already fingerprints every
//! bundle for whole-report reuse, so the two fingerprints ride along
//! for free as version identifiers.
//!
//! Defects are identified by *kind at method granularity*
//! ([`defect_id`]): the statement offset is deliberately excluded, so
//! an unrelated edit that shifts code does not report a defect as
//! fixed-here-added-there. Duplicate ids (the same defect kind twice in
//! one method) are handled as a multiset, so going from two
//! missed-timeout requests in a method to one counts as a fix.

use nchecker::json::kind_id;
use nchecker::{AppReport, Report};
use std::collections::BTreeMap;

/// The defect difference between two versions of one app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaReport {
    /// The app key both versions were submitted under.
    pub key: String,
    /// Bundle fingerprint of the previous (baseline) version.
    pub prev_fp: u64,
    /// Bundle fingerprint of the version just analyzed.
    pub new_fp: u64,
    /// Defect ids present now but not before, sorted.
    pub added: Vec<String>,
    /// Defect ids present before but not now, sorted.
    pub fixed: Vec<String>,
    /// Defects present in both versions.
    pub unchanged: usize,
}

/// The stable identity of a defect across app versions: its kind tag
/// anchored to the class and method it fires in. Statement offsets are
/// excluded on purpose — unrelated edits shift code, and a shifted
/// defect is the *same* defect.
pub fn defect_id(r: &Report) -> String {
    format!(
        "{}@{}.{}",
        kind_id(r.kind),
        r.location.class,
        r.location.method
    )
}

fn id_multiset(report: &AppReport) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for d in &report.defects {
        *m.entry(defect_id(d)).or_insert(0) += 1;
    }
    m
}

/// Multiset difference of the two reports' defect ids. An id occurring
/// `p` times before and `n` times now contributes `min(p, n)` to
/// `unchanged`, `n - p` copies to `added` (when positive), and `p - n`
/// copies to `fixed`.
pub fn diff_reports(
    key: &str,
    prev_fp: u64,
    new_fp: u64,
    prev: &AppReport,
    new: &AppReport,
) -> DeltaReport {
    let prev_ids = id_multiset(prev);
    let new_ids = id_multiset(new);
    let mut added = Vec::new();
    let mut fixed = Vec::new();
    let mut unchanged = 0usize;
    for (id, &n) in &new_ids {
        let p = prev_ids.get(id).copied().unwrap_or(0);
        unchanged += p.min(n);
        for _ in p..n {
            added.push(id.clone());
        }
    }
    for (id, &p) in &prev_ids {
        let n = new_ids.get(id).copied().unwrap_or(0);
        for _ in n..p {
            fixed.push(id.clone());
        }
    }
    // BTreeMap iteration already sorts; duplicates stay adjacent.
    DeltaReport {
        key: key.to_owned(),
        prev_fp,
        new_fp,
        added,
        fixed,
        unchanged,
    }
}

impl DeltaReport {
    /// Whether the two versions have identical defect multisets.
    pub fn is_clean(&self) -> bool {
        self.added.is_empty() && self.fixed.is_empty()
    }

    /// The JSONL export shape: one self-describing object per delta,
    /// fingerprints in hex (they identify versions, not quantities).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "t": "delta",
            "key": self.key,
            "prev_fp": format!("{:016x}", self.prev_fp),
            "new_fp": format!("{:016x}", self.new_fp),
            "added": self.added,
            "fixed": self.fixed,
            "unchanged": self.unchanged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nchecker::{DefectKind, Location};
    use nck_netlibs::Library;

    fn defect(kind: DefectKind, class: &str, method: &str) -> Report {
        Report {
            kind,
            library: Library::HttpUrlConnection,
            location: Location {
                class: class.to_owned(),
                method: method.to_owned(),
                stmt: 0,
            },
            message: String::new(),
            context: String::new(),
            call_stack: Vec::new(),
            fix: String::new(),
            provenance: Vec::new(),
        }
    }

    fn report(defects: Vec<Report>) -> AppReport {
        AppReport {
            defects,
            ..AppReport::default()
        }
    }

    #[test]
    fn identical_reports_produce_a_clean_delta() {
        let r = report(vec![defect(DefectKind::MissedTimeout, "A", "run")]);
        let d = diff_reports("app", 1, 2, &r, &r);
        assert!(d.is_clean());
        assert_eq!(d.unchanged, 1);
        assert_eq!((d.prev_fp, d.new_fp), (1, 2));
    }

    #[test]
    fn added_and_fixed_partition_the_symmetric_difference() {
        let prev = report(vec![
            defect(DefectKind::MissedTimeout, "A", "run"),
            defect(DefectKind::MissedRetry, "A", "run"),
        ]);
        let new = report(vec![
            defect(DefectKind::MissedTimeout, "A", "run"),
            defect(DefectKind::MissedConnectivityCheck, "B", "go"),
        ]);
        let d = diff_reports("app", 1, 2, &prev, &new);
        assert_eq!(d.added, vec!["missed-connectivity-check@B.go"]);
        assert_eq!(d.fixed, vec!["missed-retry@A.run"]);
        assert_eq!(d.unchanged, 1);
        assert!(!d.is_clean());
    }

    #[test]
    fn statement_shifts_do_not_move_a_defect() {
        let mut shifted = defect(DefectKind::MissedTimeout, "A", "run");
        shifted.location.stmt = 99;
        let d = diff_reports(
            "app",
            1,
            2,
            &report(vec![defect(DefectKind::MissedTimeout, "A", "run")]),
            &report(vec![shifted]),
        );
        assert!(d.is_clean(), "same kind, same method: same defect");
    }

    #[test]
    fn duplicate_ids_diff_as_a_multiset() {
        let twice = report(vec![
            defect(DefectKind::MissedTimeout, "A", "run"),
            defect(DefectKind::MissedTimeout, "A", "run"),
        ]);
        let once = report(vec![defect(DefectKind::MissedTimeout, "A", "run")]);
        let d = diff_reports("app", 1, 2, &twice, &once);
        assert_eq!(d.unchanged, 1);
        assert_eq!(d.fixed, vec!["missed-timeout@A.run"], "one of two fixed");
        assert!(d.added.is_empty());
        let d = diff_reports("app", 2, 3, &once, &twice);
        assert_eq!(d.added, vec!["missed-timeout@A.run"]);
        assert!(d.fixed.is_empty());
    }

    #[test]
    fn json_shape_is_stable_and_sorted() {
        let d = diff_reports(
            "com.a.b",
            0xabc,
            0xdef,
            &report(vec![defect(DefectKind::MissedRetry, "Z", "m")]),
            &report(vec![
                defect(DefectKind::MissedTimeout, "B", "n"),
                defect(DefectKind::MissedConnectivityCheck, "A", "m"),
            ]),
        );
        let v = d.to_json();
        assert_eq!(v["t"], "delta");
        assert_eq!(v["key"], "com.a.b");
        assert_eq!(v["prev_fp"], "0000000000000abc");
        assert_eq!(v["new_fp"], "0000000000000def");
        let added: Vec<&str> = v["added"]
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_str().unwrap())
            .collect();
        assert_eq!(
            added,
            vec!["missed-connectivity-check@A.m", "missed-timeout@B.n"],
            "added ids sorted"
        );
        assert_eq!(v["unchanged"], 0);
    }
}
