//! The `--doctor` health snapshot: one canonical JSON document
//! describing the deployment — build and config fingerprints, cache
//! occupancy, the targeted-mode funnel, and the last run's phase
//! totals.
//!
//! The snapshot is **byte-deterministic**: repeated runs over an
//! unchanged cache directory produce identical bytes, regardless of
//! `--jobs`. That property is what makes snapshots diffable receipts
//! for a long-lived service, and it constrains the schema:
//!
//! - keys serialize sorted (the vendored `serde_json` backs objects
//!   with a `BTreeMap`),
//! - no floats anywhere (their formatting is a portability hazard and
//!   their values rarely deterministic),
//! - no wall-clock readings — phase totals carry span *counts* and
//!   *item counts* only. Timings belong to `--trace-out`/`--log-json`.
//!
//! Counter-derived fields stay deterministic under parallelism because
//! each app's cache outcome (hit/miss) and workload counters depend
//! only on the input and the cache directory contents, never on
//! scheduling; per-shard eviction counts likewise depend only on how
//! many distinct keys land in each shard. The one soft spot is
//! `cache.mem.bytes`: when the memory tier actually evicted, the
//! *membership* of the resident set (unlike its size) depends on
//! completion order, so byte-comparing snapshots across `--jobs` is
//! only guaranteed for runs that stayed within the memory tier's caps.

use crate::store::AnalysisStore;
use nchecker::cache::{config_fingerprint, ANALYSIS_VERSION};
use nchecker::CheckerConfig;
use nck_obs::{MetricsSnapshot, PhaseTotals};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Everything the doctor snapshot reports on.
pub struct DoctorReport<'a> {
    /// The effective checker configuration.
    pub config: &'a CheckerConfig,
    /// The service's analysis store (memory + optional disk tier).
    pub store: &'a AnalysisStore,
    /// Metrics merged across the last run's apps (empty when no run
    /// happened).
    pub metrics: &'a MetricsSnapshot,
    /// Phase totals of the last run (empty when no run happened).
    pub phases: &'a PhaseTotals,
    /// Apps submitted in the last run.
    pub apps: usize,
    /// Apps that failed to analyze.
    pub failed: usize,
    /// Apps analyzed degraded (methods skipped).
    pub degraded: usize,
}

fn counter(metrics: &MetricsSnapshot, name: &str) -> u64 {
    metrics.counters.get(name).copied().unwrap_or(0)
}

/// Builds the canonical snapshot document. Serialize with
/// [`render`] for the canonical byte form.
pub fn doctor_json(r: &DoctorReport<'_>) -> Value {
    let disk = r.store.disk_stats();
    let mem_shards = r.store.mem_shard_sizes();
    // Cache counters come from the store's own lifetime registry, not
    // the merged per-app metrics: the store is the authoritative owner
    // of its traffic, and a daemon (whose per-app obs handles stay
    // disabled so reports match one-shot `--json` bytes) would
    // otherwise report zeros forever.
    let store_counters = r.store.metrics().snapshot();
    let phases: BTreeMap<String, Value> = r
        .phases
        .iter()
        .map(|(path, t)| {
            (
                path.to_owned(),
                json!({ "count": t.count, "items": t.items }),
            )
        })
        .collect();
    json!({
        "schema": 1,
        "build": {
            "analysis_version": ANALYSIS_VERSION,
            "bin": "nchecker",
            "version": env!("CARGO_PKG_VERSION"),
        },
        "config": {
            "fingerprint": format!("{:016x}", config_fingerprint(r.config)),
            "interproc": r.config.interproc,
            "strict_connectivity": r.config.strict_connectivity,
            "targeted": r.config.targeted,
            "icc": r.config.icc,
        },
        "cache": {
            "disk": {
                "configured": r.store.has_disk(),
                "entries": disk.entries,
                "bytes": disk.bytes,
                "shards": disk.shards,
            },
            "mem": {
                "entries": mem_shards.iter().sum::<usize>(),
                "bytes": r.store.mem_bytes(),
                "shards": mem_shards,
            },
            "gc": {
                "runs": counter(&store_counters, "svc.cache.gc_runs"),
                "evicted": counter(&store_counters, "svc.cache.gc_evicted"),
                "freed_bytes": counter(&store_counters, "svc.cache.gc_freed_bytes"),
                "skipped": counter(&store_counters, "svc.cache.gc_skipped"),
            },
            "hit": counter(&store_counters, "svc.cache.hit"),
            "miss": counter(&store_counters, "svc.cache.miss"),
            "evict": counter(&store_counters, "svc.cache.evict"),
            "corrupt_evict": counter(&store_counters, "svc.cache.corrupt_evict"),
            "deltas": counter(&store_counters, "svc.cache.deltas"),
            "replay_apps": counter(&store_counters, "svc.cache.replay_apps"),
            "replay_classes": counter(&store_counters, "svc.cache.replay_classes"),
        },
        "funnel": {
            "fallback_icc": counter(r.metrics, "targeted.fallback_icc"),
            "prescan_skipped": counter(r.metrics, "targeted.prescan_skipped"),
            "touching_classes": counter(r.metrics, "targeted.touching_classes"),
            "relevant_refs": counter(r.metrics, "targeted.relevant_refs"),
            "slice_methods": counter(r.metrics, "targeted.slice_methods"),
            "methods_total": counter(r.metrics, "targeted.methods_total"),
            "methods_lifted": counter(r.metrics, "targeted.methods_lifted"),
        },
        "last_run": {
            "apps": r.apps,
            "failed": r.failed,
            "degraded": r.degraded,
            "phases": Value::Object(phases),
        },
    })
}

/// The canonical byte form: pretty-printed (sorted keys come free from
/// the `BTreeMap`-backed object representation) plus a trailing
/// newline.
pub fn render(r: &DoctorReport<'_>) -> String {
    let mut text =
        serde_json::to_string_pretty(&doctor_json(r)).expect("doctor snapshot serializes");
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_obs::Metrics;

    fn empty_report<'a>(
        config: &'a CheckerConfig,
        store: &'a AnalysisStore,
        metrics: &'a MetricsSnapshot,
        phases: &'a PhaseTotals,
    ) -> DoctorReport<'a> {
        DoctorReport {
            config,
            store,
            metrics,
            phases,
            apps: 0,
            failed: 0,
            degraded: 0,
        }
    }

    #[test]
    fn snapshot_has_required_sections_and_no_floats() {
        let config = CheckerConfig::default();
        let store = AnalysisStore::new();
        let obs = nck_obs::Obs::disabled();
        store.count_outcome(true, &obs);
        store.count_outcome(true, &obs);
        let m = Metrics::enabled();
        m.inc("targeted.methods_total", 10);
        let metrics = m.snapshot();
        let phases = PhaseTotals::new();
        let r = empty_report(&config, &store, &metrics, &phases);
        let v = doctor_json(&r);
        for key in ["schema", "build", "config", "cache", "funnel", "last_run"] {
            assert!(v.get(key).is_some(), "missing section {key}");
        }
        assert_eq!(v["cache"]["hit"], 2);
        assert_eq!(v["cache"]["miss"], 0);
        assert_eq!(v["funnel"]["methods_total"], 10);
        assert_eq!(v["build"]["analysis_version"], ANALYSIS_VERSION);
        assert_eq!(
            v["config"]["fingerprint"].as_str().unwrap().len(),
            16,
            "fingerprint is fixed-width hex"
        );
        let text = render(&r);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn snapshot_bytes_are_stable_across_rebuilds() {
        let config = CheckerConfig::default();
        let store = AnalysisStore::new();
        let metrics = MetricsSnapshot::default();
        let phases = PhaseTotals::new();
        let a = render(&empty_report(&config, &store, &metrics, &phases));
        let b = render(&empty_report(&config, &store, &metrics, &phases));
        assert_eq!(a, b);
    }

    #[test]
    fn config_changes_move_the_fingerprint() {
        let store = AnalysisStore::new();
        let metrics = MetricsSnapshot::default();
        let phases = PhaseTotals::new();
        let default = CheckerConfig::default();
        let targeted = CheckerConfig {
            targeted: true,
            ..CheckerConfig::default()
        };
        let a = doctor_json(&empty_report(&default, &store, &metrics, &phases));
        let b = doctor_json(&empty_report(&targeted, &store, &metrics, &phases));
        assert_ne!(a["config"]["fingerprint"], b["config"]["fingerprint"]);
        assert_eq!(b["config"]["targeted"], true);
    }
}
