//! A fault-tolerant work-stealing worker pool.
//!
//! This is the generalized engine behind every parallel corpus run: `n`
//! jobs are pre-distributed round-robin across per-worker deques, each
//! worker drains its own deque from the front and steals from the back
//! of its neighbours' when empty (stolen work is the *oldest* queued, so
//! contention stays at opposite deque ends), and every job runs under
//! panic containment — a panicking job loses only its own result slot,
//! and the worker rebuilds its state and keeps going.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Default worker count: available parallelism, capped at 16 (analysis
/// is memory-bandwidth-bound well before that on bigger hosts).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

fn pop_or_steal(me: usize, deques: &[Mutex<VecDeque<usize>>]) -> Option<usize> {
    // Own deque first, front end.
    if let Some(i) = lock(&deques[me]).pop_front() {
        return Some(i);
    }
    // Steal from the back of the others, scanning from the right
    // neighbour so thieves spread out instead of mobbing deque 0.
    let n = deques.len();
    for off in 1..n {
        if let Some(i) = lock(&deques[(me + off) % n]).pop_back() {
            return Some(i);
        }
    }
    None
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Jobs run under catch_unwind, so a poisoned deque or slot means a
    // panic escaped mid-lock; the data (a queue of indices / a result
    // option) is still well-formed, so recover rather than cascade.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `n` jobs across a work-stealing pool and returns one slot per
/// job, in order. A slot is `None` only when the job's panic escaped
/// `task`'s own containment *and* the pool's backstop — i.e. the job
/// panicked; all other jobs are unaffected.
///
/// `workers` overrides the pool size ([`default_workers`] when `None`;
/// clamped to at least 1 and at most `n`). `make_worker` builds each
/// worker's private state (e.g. a configured checker); after a contained
/// panic the state is rebuilt, since the panicking job may have left it
/// inconsistent.
pub fn run_pool<W, T>(
    n: usize,
    workers: Option<usize>,
    make_worker: impl Fn() -> W + Sync,
    task: impl Fn(&mut W, usize) -> T + Sync,
) -> Vec<Option<T>>
where
    T: Send,
{
    if n == 0 {
        return Vec::new();
    }
    let n_workers = workers.unwrap_or_else(default_workers).clamp(1, n);
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..n_workers)
        .map(|w| Mutex::new((w..n).step_by(n_workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for me in 0..n_workers {
            let deques = &deques;
            let slots = &slots;
            let make_worker = &make_worker;
            let task = &task;
            scope.spawn(move |_| {
                let mut state = make_worker();
                while let Some(i) = pop_or_steal(me, deques) {
                    match catch_unwind(AssertUnwindSafe(|| task(&mut state, i))) {
                        Ok(v) => *lock(&slots[i]) = Some(v),
                        Err(_) => {
                            // The job panicked through `task`'s own
                            // containment; its slot stays empty and the
                            // worker state is suspect — rebuild it.
                            state = make_worker();
                        }
                    }
                }
            });
        }
    })
    .expect("pool workers");

    slots.into_iter().map(|s| lock(&s).take()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_jobs_complete_in_order_slots() {
        let out = run_pool(100, Some(4), || (), |(), i| i * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, Some(i * 2));
        }
    }

    #[test]
    fn single_worker_and_more_workers_than_jobs() {
        assert_eq!(
            run_pool(3, Some(1), || (), |(), i| i),
            vec![Some(0), Some(1), Some(2)]
        );
        assert_eq!(
            run_pool(2, Some(64), || (), |(), i| i),
            vec![Some(0), Some(1)]
        );
        assert!(run_pool(0, None, || (), |(), i: usize| i).is_empty());
    }

    #[test]
    fn panicking_job_loses_only_its_slot() {
        let rebuilds = AtomicUsize::new(0);
        let out = run_pool(
            20,
            Some(3),
            || {
                rebuilds.fetch_add(1, Ordering::SeqCst);
            },
            |(), i| {
                if i == 7 {
                    panic!("job 7 explodes");
                }
                i
            },
        );
        assert_eq!(out[7], None);
        for (i, v) in out.iter().enumerate() {
            if i != 7 {
                assert_eq!(*v, Some(i), "job {i} unaffected");
            }
        }
        // Initial 3 worker states plus at least one rebuild after the
        // contained panic.
        assert!(rebuilds.load(Ordering::SeqCst) >= 4);
    }

    #[test]
    fn workers_steal_a_skewed_queue() {
        // One worker's own deque holds a long serial job list; stealing
        // must spread the rest. Verified indirectly: every job completes
        // even when worker 0's deque is stacked with slow jobs.
        let out = run_pool(
            32,
            Some(4),
            || (),
            |(), i| {
                if i % 4 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                i + 1
            },
        );
        assert!(out.iter().all(|v| v.is_some()));
    }

    #[test]
    fn worker_state_is_private_and_reused() {
        // Each worker counts its jobs in private state; totals add up.
        let totals = Mutex::new(Vec::new());
        let out = run_pool(
            50,
            Some(4),
            || 0usize,
            |count, i| {
                *count += 1;
                // Record the running count on the last visible job.
                if *count > 0 {
                    totals.lock().unwrap().push(1usize);
                }
                i
            },
        );
        assert_eq!(out.iter().flatten().count(), 50);
        assert_eq!(totals.lock().unwrap().len(), 50);
    }
}
