//! Cold/warm differential tests: the incremental path must be
//! *invisible* in the output. Whatever the cache did — whole-report
//! reuse, class-prefix replay after an app update, disk-tier restore —
//! the rendered report must be byte-identical to a cold analysis of the
//! same bytes.

use nchecker::app_report_to_json;
use nchecker::AppReport;
use nck_appgen::spec::{AppSpec, ConnCheck, Notification, Origin, RequestSpec, RespCheck};
use nck_appgen::{evolve, generate_with_bulk, profile};
use nck_netlibs::api::HttpMethod;
use nck_netlibs::library::{Library, ALL_LIBRARIES};
use nck_obs::Obs;
use nck_svc::{AnalysisService, ServiceOptions};
use proptest::prelude::*;

/// The byte-identity comparison surface: the same JSON rendering the
/// CLI emits under `--json` (observability disabled, so no volatile
/// timing fields).
fn render(r: &AppReport) -> String {
    serde_json::to_string(&app_report_to_json(r)).expect("report renders")
}

fn service() -> AnalysisService {
    AnalysisService::new(ServiceOptions::default(), Obs::disabled())
}

fn suite(n: usize, bulk: usize, seed: u64) -> (Vec<AppSpec>, Vec<(String, Vec<u8>)>) {
    let specs: Vec<AppSpec> = profile::corpus(seed).into_iter().take(n).collect();
    let items = specs
        .iter()
        .map(|s| (s.package.clone(), generate_with_bulk(s, bulk).to_bytes()))
        .collect();
    (specs, items)
}

#[test]
fn identical_bundles_hit_whole_report_and_match_cold() {
    let (_, items) = suite(16, 2, 2016);
    let svc = service();
    let cold = svc.analyze_batch(&items);
    let warm = svc.analyze_batch(&items);
    for ((c, w), (key, _)) in cold.iter().zip(&warm).zip(&items) {
        let c = c.report.as_ref().expect("cold analyzes");
        let w = w.report.as_ref().expect("warm analyzes");
        assert_eq!(render(c), render(w), "{key}: warm must equal cold");
    }
    let stats = AnalysisService::batch_stats(&warm);
    assert_eq!(stats.hits, 16, "every re-analysis is a whole-report hit");
    assert_eq!(stats.misses, 0);
}

#[test]
fn updated_bundles_replay_prefixes_and_match_cold() {
    let (specs, v1) = suite(16, 8, 2016);
    let v2: Vec<(String, Vec<u8>)> = specs
        .iter()
        .map(|s| {
            let e = evolve(s, 0.10, 7);
            (s.package.clone(), generate_with_bulk(&e.spec, 8).to_bytes())
        })
        .collect();

    // Warm: analyze v1 to populate the cache, then the updates.
    let warm_svc = service();
    let _ = warm_svc.analyze_batch(&v1);
    let warm = warm_svc.analyze_batch(&v2);
    // Cold: a fresh service sees v2 first.
    let cold = service().analyze_batch(&v2);

    let mut reused = 0usize;
    for ((w, c), (key, _)) in warm.iter().zip(&cold).zip(&v2) {
        let wr = w.report.as_ref().expect("warm analyzes");
        let cr = c.report.as_ref().expect("cold analyzes");
        assert_eq!(render(cr), render(wr), "{key}: update must match cold");
        assert!(
            !w.reuse.whole_report,
            "{key}: an updated bundle cannot be a whole-report hit"
        );
        reused += w.reuse.classes_reused;
    }
    // The ballast prefix (8 classes per app) is unchanged by an update,
    // so substantial class-level reuse must show up.
    assert!(
        reused >= 8 * specs.len(),
        "expected at least the ballast prefix reused, got {reused}"
    );
}

#[test]
fn disk_tier_serves_identical_bundles_across_restarts() {
    let dir = std::env::temp_dir().join(format!("nck-svc-disk-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_, items) = suite(4, 1, 99);
    let opts = || ServiceOptions {
        cache_dir: Some(dir.clone()),
        ..ServiceOptions::default()
    };

    let first = AnalysisService::new(opts(), Obs::disabled());
    let cold = first.analyze_batch(&items);
    drop(first);

    // A fresh service (fresh memory tier) must restore from disk.
    let second = AnalysisService::new(opts(), Obs::disabled());
    let warm = second.analyze_batch(&items);
    let stats = AnalysisService::batch_stats(&warm);
    assert_eq!(stats.hits, 4, "all served from the disk tier");
    for ((c, w), (key, _)) in cold.iter().zip(&warm).zip(&items) {
        assert_eq!(
            render(c.report.as_ref().unwrap()),
            render(w.report.as_ref().unwrap()),
            "{key}: disk restore must be faithful"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_cache_mode_stores_nothing_and_matches_cached_output() {
    let (_, items) = suite(4, 1, 7);
    let plain = AnalysisService::new(
        ServiceOptions {
            no_cache: true,
            ..ServiceOptions::default()
        },
        Obs::disabled(),
    );
    let cached = service();
    let a = plain.analyze_batch(&items);
    let b = cached.analyze_batch(&items);
    for ((x, y), (key, _)) in a.iter().zip(&b).zip(&items) {
        assert_eq!(
            render(x.report.as_ref().unwrap()),
            render(y.report.as_ref().unwrap()),
            "{key}: cache must not change output"
        );
    }
    assert!(plain.store().is_empty(), "no-cache mode must not store");
    assert_eq!(cached.store().len(), 4);
}

/// Worker-count independence: the batch pool, the intra-app parallel
/// method-analysis phase, and the parallel SCC summary levels must all
/// be invisible in the output. Four runs at different `--jobs` settings
/// (fresh service each time, cache off, so nothing is reused between
/// runs) must render byte-identical reports for every app.
#[test]
fn reports_are_byte_identical_across_jobs() {
    let (_, items) = suite(16, 2, 2016);
    let run = |jobs: usize| -> Vec<String> {
        let svc = AnalysisService::new(
            ServiceOptions {
                jobs: Some(jobs),
                no_cache: true,
                ..ServiceOptions::default()
            },
            Obs::disabled(),
        );
        svc.analyze_batch(&items)
            .iter()
            .map(|o| render(o.report.as_ref().expect("app analyzes")))
            .collect()
    };
    let baseline = run(1);
    for jobs in [2usize, 4, 8] {
        let got = run(jobs);
        for ((b, g), (key, _)) in baseline.iter().zip(&got).zip(&items) {
            assert_eq!(b, g, "{key}: --jobs {jobs} diverged from --jobs 1");
        }
    }
}

/// Degraded apps (any skipped method) must analyze deterministically
/// but never populate the cache: a skipped method is unknown behaviour,
/// not replayable truth.
#[test]
fn degraded_apps_bypass_the_cache_write_path() {
    let spec = AppSpec::new(
        "com.svc.broken",
        vec![RequestSpec::new(
            Library::BasicHttpClient,
            Origin::UserClick,
        )],
    );
    let mut apk = nck_appgen::generate(&spec);
    // Graft a method whose body touches a register outside its frame:
    // method-scoped verify damage, so analysis degrades instead of
    // failing.
    let adx = &mut apk.adx;
    let class_ty = adx.classes[0].ty;
    let void = adx.pools.type_("V");
    let proto = adx.pools.proto(void, vec![]);
    let name = adx.pools.string("broken");
    let method = adx.pools.method(class_ty, proto, name);
    adx.classes[0].methods.push(nck_dex::MethodDef {
        method,
        flags: nck_dex::AccessFlags::PUBLIC,
        code: Some(nck_dex::CodeItem {
            registers: 1,
            ins: 0,
            insns: vec![
                nck_dex::Insn::Move {
                    dst: nck_dex::Reg(9),
                    src: nck_dex::Reg(0),
                },
                nck_dex::Insn::Return { src: None },
            ],
            tries: vec![],
        }),
    });
    let bytes = apk.to_bytes();

    let svc = service();
    let first = svc.analyze_one("com.svc.broken", &bytes);
    let r1 = first.report.as_ref().expect("degrades, not fails");
    assert!(r1.degraded());
    assert!(first.reuse.degraded);
    assert!(svc.store().is_empty(), "degraded app must not be cached");

    let second = svc.analyze_one("com.svc.broken", &bytes);
    let r2 = second.report.as_ref().expect("degrades, not fails");
    assert!(!second.reuse.whole_report, "nothing cached to hit");
    assert_eq!(render(r1), render(r2), "degraded analysis is deterministic");
    assert!(svc.store().is_empty());
}

/// Analysis-mode isolation: a report computed in full mode must never be
/// served to a targeted-mode run (or vice versa), on either cache tier.
/// The two modes are report-equivalent by construction, but a cache that
/// conflated them would silently paper over any divergence — so the
/// config fingerprint must keep their entries apart.
#[test]
fn targeted_and_full_mode_never_share_cache_entries() {
    use nchecker::CheckerConfig;
    let dir = std::env::temp_dir().join(format!("nck-svc-mode-isolation-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_, items) = suite(4, 1, 41);
    let opts = |targeted: bool| ServiceOptions {
        config: CheckerConfig {
            targeted,
            ..CheckerConfig::default()
        },
        cache_dir: Some(dir.clone()),
        ..ServiceOptions::default()
    };

    // Full mode populates both tiers.
    let full = AnalysisService::new(opts(false), Obs::disabled());
    let cold_full = full.analyze_batch(&items);
    drop(full);

    // A targeted service over the same disk tier must miss everything:
    // the full-mode entries carry a different config fingerprint.
    let targeted = AnalysisService::new(opts(true), Obs::disabled());
    let cold_targeted = targeted.analyze_batch(&items);
    let stats = AnalysisService::batch_stats(&cold_targeted);
    assert_eq!(stats.hits, 0, "full-mode cache must not serve targeted");
    assert_eq!(stats.misses, 4);
    drop(targeted);

    // Targeted entries were written under their own key: a fresh
    // targeted service hits, and a fresh full service still misses.
    let targeted2 = AnalysisService::new(opts(true), Obs::disabled());
    let warm_targeted = targeted2.analyze_batch(&items);
    let stats = AnalysisService::batch_stats(&warm_targeted);
    assert_eq!(stats.hits, 4, "targeted entries serve targeted runs");
    let full2 = AnalysisService::new(opts(false), Obs::disabled());
    let warm_full = full2.analyze_batch(&items);
    let stats = AnalysisService::batch_stats(&warm_full);
    assert_eq!(stats.hits, 4, "full entries survive alongside targeted");

    // And the whole point of the equivalence: all four runs rendered the
    // same report for every app.
    for (((f, t), w), (key, _)) in cold_full
        .iter()
        .zip(&cold_targeted)
        .zip(&warm_targeted)
        .zip(&items)
    {
        let f = render(f.report.as_ref().unwrap());
        assert_eq!(f, render(t.report.as_ref().unwrap()), "{key}: modes agree");
        assert_eq!(f, render(w.report.as_ref().unwrap()), "{key}: warm agrees");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn arb_library() -> impl Strategy<Value = Library> {
    (0usize..ALL_LIBRARIES.len()).prop_map(|i| ALL_LIBRARIES[i])
}

fn arb_origin() -> impl Strategy<Value = Origin> {
    prop_oneof![
        Just(Origin::UserClick),
        Just(Origin::ActivityLifecycle),
        Just(Origin::Service),
    ]
}

fn arb_conn() -> impl Strategy<Value = ConnCheck> {
    prop_oneof![
        Just(ConnCheck::Missing),
        Just(ConnCheck::Guarding),
        Just(ConnCheck::UnusedResult),
        Just(ConnCheck::InterComponent),
        Just(ConnCheck::GuardingViaHelper),
    ]
}

fn arb_notification() -> impl Strategy<Value = Notification> {
    prop_oneof![
        Just(Notification::Missing),
        Just(Notification::Alert),
        Just(Notification::InterComponent),
    ]
}

prop_compose! {
    fn arb_request()(
        library in arb_library(),
        origin in arb_origin(),
        post in any::<bool>(),
        conn_check in arb_conn(),
        set_timeout in any::<bool>(),
        set_retries in prop_oneof![Just(None), Just(Some(0u32)), Just(Some(2u32))],
        notification in arb_notification(),
        check_error_types in any::<bool>(),
        resp in 0u8..3,
    ) -> RequestSpec {
        let mut r = RequestSpec::new(library, origin);
        r.http_method = if post { HttpMethod::Post } else { HttpMethod::Get };
        r.conn_check = conn_check;
        r.set_timeout = set_timeout;
        r.set_retries = set_retries;
        r.notification = notification;
        r.check_error_types = check_error_types;
        if library.has_response_check_api() {
            r.response = match resp {
                0 => RespCheck::NotUsed,
                1 => RespCheck::Checked,
                _ => RespCheck::Unchecked,
            };
        }
        // Volley couples timeout and retry in one policy object.
        if library == Library::Volley {
            r.set_timeout = r.set_retries.is_some();
        }
        r
    }
}

prop_compose! {
    fn arb_spec()(
        requests in prop::collection::vec(arb_request(), 1..3),
        tag in 0u32..1_000_000,
    ) -> AppSpec {
        AppSpec::new(&format!("com.prop.app{tag}"), requests)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary specs and arbitrary updates: analyzing v1 then v2
    /// through one cached service yields byte-identical v2 output to a
    /// fresh cold service.
    #[test]
    fn warm_reanalysis_of_an_update_matches_cold(
        spec in arb_spec(),
        bulk in 0usize..4,
        evolve_seed in any::<u64>(),
    ) {
        let v1 = generate_with_bulk(&spec, bulk).to_bytes();
        let e = evolve(&spec, 0.34, evolve_seed);
        let v2 = generate_with_bulk(&e.spec, bulk).to_bytes();

        let warm_svc = service();
        let _ = warm_svc.analyze_one(&spec.package, &v1);
        let warm = warm_svc.analyze_one(&spec.package, &v2);
        let cold = service().analyze_one(&spec.package, &v2);

        prop_assert_eq!(
            render(cold.report.as_ref().expect("cold analyzes")),
            render(warm.report.as_ref().expect("warm analyzes"))
        );
    }
}
