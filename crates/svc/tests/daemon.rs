//! Tests of the `nchecker serve` daemon: wire-protocol round trips,
//! report byte-identity with the one-shot CLI, doctor equivalence
//! modulo the queue section, admission control, protocol error paths,
//! the socket transport, and watch-mode incrementality.

use nck_appgen::spec::{AppSpec, Origin, RequestSpec};
use nck_appgen::{evolve, generate_with_bulk, profile};
use nck_netlibs::library::Library;
use nck_obs::{Events, Obs};
use nck_svc::daemon::{self, Reply};
use nck_svc::protocol::{ErrorCode, Line, MAX_REQUEST_LINE};
use nck_svc::{AnalysisService, Daemon, DaemonOptions, ServiceOptions, Watcher};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nck-daemon-{name}-{}", std::process::id()))
}

fn quiet_daemon(options: DaemonOptions) -> Daemon {
    Daemon::new(options, Events::silent())
}

fn default_daemon() -> Daemon {
    quiet_daemon(DaemonOptions::default())
}

/// Parses a one-line reply.
fn parse(reply: &Reply) -> Value {
    assert!(reply.line.ends_with('\n'), "replies are newline-terminated");
    assert_eq!(
        reply.line.matches('\n').count(),
        1,
        "replies are exactly one line: {}",
        reply.line
    );
    serde_json::from_str(&reply.line).expect("replies are JSON")
}

fn request(daemon: &Daemon, line: &str) -> Reply {
    daemon
        .handle_line(&Line::Text(line.to_owned()))
        .expect("text lines always get a reply")
}

fn error_code(v: &Value) -> String {
    assert_eq!(v["ok"], false, "expected an error reply: {v:?}");
    v["error"]["code"].as_str().expect("typed code").to_owned()
}

/// What the one-shot CLI prints to stdout under `--json`: the pretty
/// rendering plus the `println!` newline.
fn one_shot_json(bytes: &[u8]) -> String {
    let svc = AnalysisService::new(ServiceOptions::default(), Obs::disabled());
    let outcome = svc.analyze_one("oneshot", bytes);
    let report = outcome.report.expect("analyzes");
    let mut text = serde_json::to_string_pretty(&nchecker::app_report_to_json(&report))
        .expect("report serializes");
    text.push('\n');
    text
}

fn sample_app(pkg: &str) -> Vec<u8> {
    let spec = AppSpec::new(
        pkg,
        vec![RequestSpec::new(Library::OkHttp, Origin::UserClick)],
    );
    nck_appgen::generate(&spec).to_bytes()
}

#[test]
fn submit_report_round_trip_is_byte_identical_to_one_shot_json() {
    let bytes = sample_app("com.daemon.roundtrip");
    let path = temp_path("roundtrip.apk");
    std::fs::write(&path, &bytes).unwrap();

    let daemon = default_daemon();
    let v = parse(&request(
        &daemon,
        &format!(
            r#"{{"verb": "submit", "path": {:?}}}"#,
            path.to_str().unwrap()
        ),
    ));
    assert_eq!(v["ok"], true);
    let id = v["id"].as_i64().expect("job id");
    assert_eq!(v["pending"], 1);

    // Not dispatched yet: report is typed not-ready, status is queued.
    let nr = parse(&request(
        &daemon,
        &format!(r#"{{"verb": "report", "id": {id}}}"#),
    ));
    assert_eq!(error_code(&nr), "not-ready");
    let st = parse(&request(
        &daemon,
        &format!(r#"{{"verb": "status", "id": {id}}}"#),
    ));
    assert_eq!(st["state"].as_str().unwrap(), "queued");

    daemon.drain_now();

    let st = parse(&request(
        &daemon,
        &format!(r#"{{"verb": "status", "id": {id}}}"#),
    ));
    assert_eq!(st["state"].as_str().unwrap(), "done");
    let r = parse(&request(
        &daemon,
        &format!(r#"{{"verb": "report", "id": {id}}}"#),
    ));
    assert_eq!(r["ok"], true);
    assert_eq!(r["degraded"], false);
    assert_eq!(
        r["report"].as_str().expect("report payload"),
        one_shot_json(&bytes),
        "daemon report must be byte-identical to one-shot --json output"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn daemon_doctor_matches_cli_doctor_modulo_the_queue_section() {
    let cache = temp_path("doctor-cache");
    let _ = std::fs::remove_dir_all(&cache);

    // Warm the disk tier so the snapshot has something to report on.
    let specs: Vec<AppSpec> = profile::corpus(11).into_iter().take(3).collect();
    let items: Vec<(String, Vec<u8>)> = specs
        .iter()
        .map(|s| (s.package.clone(), generate_with_bulk(s, 1).to_bytes()))
        .collect();
    let warm = AnalysisService::new(
        ServiceOptions {
            cache_dir: Some(cache.clone()),
            ..ServiceOptions::default()
        },
        Obs::disabled(),
    );
    let _ = warm.analyze_batch(&items);
    drop(warm);

    // The one-shot CLI over the same cache dir, no bundles.
    let cli = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--doctor")
        .arg("--cache-dir")
        .arg(&cache)
        .output()
        .expect("cli runs");
    assert!(cli.status.success());
    let cli_doc = String::from_utf8(cli.stdout).expect("doctor is UTF-8");

    // A fresh daemon over the same cache dir.
    let daemon = quiet_daemon(DaemonOptions {
        service: ServiceOptions {
            cache_dir: Some(cache.clone()),
            ..ServiceOptions::default()
        },
        queue_capacity: None,
    });
    let reply = parse(&request(&daemon, r#"{"verb": "doctor"}"#));
    let daemon_doc = reply["doctor"].as_str().expect("doctor payload").to_owned();
    assert_eq!(daemon_doc, daemon.doctor_string());

    // Strip the daemon-only "queue" object; everything else must be
    // byte-identical to the CLI document.
    let mut v = serde_json::from_str(&daemon_doc).expect("daemon doctor is JSON");
    let queue = if let Value::Object(m) = &mut v {
        m.remove("queue")
            .expect("daemon doctor has a queue section")
    } else {
        panic!("doctor document is an object");
    };
    let mut stripped = serde_json::to_string_pretty(&v).unwrap();
    stripped.push('\n');
    assert_eq!(
        stripped, cli_doc,
        "daemon doctor must equal `nchecker --doctor` modulo the queue section"
    );

    // And the queue section carries the admission-control gauges.
    for key in [
        "capacity",
        "depth",
        "inflight",
        "accepting",
        "submitted",
        "rejected",
        "wait_us",
    ] {
        assert!(queue.get(key).is_some(), "queue section missing {key}");
    }

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn malformed_and_unknown_requests_get_typed_errors() {
    let daemon = default_daemon();
    for (line, want) in [
        ("not json at all", "malformed"),
        ("[1, 2, 3]", "malformed"),
        (r#"{"path": "x.apk"}"#, "malformed"),
        (r#"{"verb": "submit"}"#, "malformed"),
        (r#"{"verb": "report"}"#, "malformed"),
        (r#"{"verb": "frobnicate"}"#, "unknown-verb"),
    ] {
        let v = parse(&request(&daemon, line));
        assert_eq!(error_code(&v), want, "line {line:?}");
    }
    // Oversized frames are typed too, and Eof yields no reply.
    let v = parse(&daemon.handle_line(&Line::Oversized).unwrap());
    assert_eq!(error_code(&v), "oversized");
    assert!(daemon.handle_line(&Line::Eof).is_none());
}

#[test]
fn unreadable_and_unknown_ids_get_typed_errors() {
    let daemon = default_daemon();
    let v = parse(&request(
        &daemon,
        r#"{"verb": "submit", "path": "/nonexistent/nope.apk"}"#,
    ));
    assert_eq!(error_code(&v), "read-failed");
    let v = parse(&request(&daemon, r#"{"verb": "report", "id": 42}"#));
    assert_eq!(error_code(&v), "not-found");
    let v = parse(&request(&daemon, r#"{"verb": "status", "id": 42}"#));
    assert_eq!(error_code(&v), "not-found");
}

#[test]
fn admission_control_rejects_on_full_queue_and_after_shutdown() {
    let daemon = quiet_daemon(DaemonOptions {
        service: ServiceOptions::default(),
        queue_capacity: Some(2),
    });
    let bytes = sample_app("com.daemon.full");
    // No dispatcher running: the queue fills.
    assert!(daemon.submit_bytes("a".into(), bytes.clone()).is_ok());
    assert!(daemon.submit_bytes("b".into(), bytes.clone()).is_ok());
    let (code, msg) = daemon.submit_bytes("c".into(), bytes.clone()).unwrap_err();
    assert_eq!(code, ErrorCode::QueueFull);
    assert!(msg.contains("capacity"), "{msg}");

    // The rejection is counted for doctor.
    let snap = daemon.metrics().snapshot();
    assert_eq!(snap.counters.get("svc.queue.rejected"), Some(&1));
    assert_eq!(snap.counters.get("svc.queue.submitted"), Some(&2));

    // Draining frees capacity again.
    daemon.drain_now();
    assert!(daemon.submit_bytes("c".into(), bytes.clone()).is_ok());

    // After shutdown begins, submits are rejected with shutting-down.
    let v = parse(&request(&daemon, r#"{"verb": "shutdown"}"#));
    assert_eq!(v["ok"], true);
    assert_eq!(v["pending"], 1);
    let (code, _) = daemon.submit_bytes("d".into(), bytes).unwrap_err();
    assert_eq!(code, ErrorCode::ShuttingDown);
    // Status still answers while draining.
    let st = parse(&request(&daemon, r#"{"verb": "status"}"#));
    assert_eq!(st["accepting"], false);
}

/// Full socket transport exercise: submit/status/report/doctor over a
/// Unix socket, an oversized request that must stay line-synced, a
/// client that disconnects mid-exchange without wedging the daemon,
/// and a clean shutdown that drains in-flight work.
#[test]
fn socket_transport_serves_and_survives_rude_clients() {
    let bytes = sample_app("com.daemon.socket");
    let app = temp_path("socket.apk");
    std::fs::write(&app, &bytes).unwrap();
    let sock = temp_path("sock");
    let _ = std::fs::remove_file(&sock);

    let daemon = Arc::new(default_daemon());
    let dispatcher = {
        let d = Arc::clone(&daemon);
        std::thread::spawn(move || d.run_dispatcher())
    };
    let acceptor = {
        let d = Arc::clone(&daemon);
        let path = sock.clone();
        std::thread::spawn(move || daemon::serve_socket(&d, &path))
    };
    // Wait for the listener to bind.
    let mut conn = None;
    for _ in 0..200 {
        match UnixStream::connect(&sock) {
            Ok(c) => {
                conn = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    let conn = conn.expect("daemon socket comes up");
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut writer = conn;
    let mut exchange = |line: String| -> Value {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        serde_json::from_str(&reply).expect("reply is JSON")
    };

    // A rude client first: disconnects right after sending a request.
    {
        let mut rude = UnixStream::connect(&sock).unwrap();
        rude.write_all(br#"{"verb": "doctor"}"#).unwrap();
        // Dropped here, mid-response at best.
    }

    // An oversized line: typed error, and the connection stays usable.
    let huge = format!(
        r#"{{"verb": "submit", "path": "{}"}}"#,
        "x".repeat(MAX_REQUEST_LINE)
    );
    let v = exchange(huge);
    assert_eq!(error_code(&v), "oversized");

    let v = exchange(format!(
        r#"{{"verb": "submit", "path": {:?}}}"#,
        app.to_str().unwrap()
    ));
    assert_eq!(v["ok"], true, "{v:?}");
    let id = v["id"].as_i64().unwrap();

    // Poll until the dispatcher finishes the job.
    let mut state = String::new();
    for _ in 0..500 {
        let v = exchange(format!(r#"{{"verb": "status", "id": {id}}}"#));
        state = v["state"].as_str().unwrap().to_owned();
        if state == "done" || state == "failed" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(state, "done");

    let v = exchange(format!(r#"{{"verb": "report", "id": {id}}}"#));
    assert_eq!(
        v["report"].as_str().unwrap(),
        one_shot_json(&bytes),
        "socket-served report must match one-shot --json bytes"
    );

    let v = exchange(r#"{"verb": "doctor"}"#.to_owned());
    let doc = serde_json::from_str(v["doctor"].as_str().unwrap()).expect("doctor payload is JSON");
    assert_eq!(doc["queue"]["completed"], 1);

    let v = exchange(r#"{"verb": "shutdown"}"#.to_owned());
    assert_eq!(v["ok"], true);

    daemon.await_drained();
    dispatcher.join().unwrap();
    acceptor.join().unwrap().expect("socket loop exits cleanly");
    assert!(!sock.exists(), "socket file is removed on exit");
    std::fs::remove_file(&app).ok();
}

/// Watch mode's contract with the incremental ladder: editing a small
/// fraction of an app and re-submitting it under the same key (the
/// file path) must land on rung 2 — class-prefix replay — visible in
/// the store's lifetime `svc.cache.replay_*` counters.
#[test]
fn watch_resubmission_hits_the_replay_rung() {
    let dir = temp_path("watchdir");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let spec = profile::corpus(23).into_iter().next().expect("corpus app");
    let bundle = dir.join("app.apk");
    std::fs::write(&bundle, generate_with_bulk(&spec, 8).to_bytes()).unwrap();

    let daemon = default_daemon();
    let mut watcher = Watcher::new(&dir);
    let submit_changed = |watcher: &mut Watcher| {
        let changed = watcher.poll().unwrap().changed;
        let n = changed.len();
        for (key, bytes) in changed {
            daemon.submit_bytes(key, bytes).unwrap();
        }
        daemon.drain_now();
        n
    };

    assert_eq!(submit_changed(&mut watcher), 1, "backlog analyzed");
    assert_eq!(submit_changed(&mut watcher), 0, "steady state");

    // A 1-class-scale edit: same key, mostly-unchanged class list.
    let evolved = evolve(&spec, 0.10, 5);
    std::fs::write(&bundle, generate_with_bulk(&evolved.spec, 8).to_bytes()).unwrap();
    assert_eq!(submit_changed(&mut watcher), 1, "edit detected");

    let snap = daemon.service().store().metrics().snapshot();
    let replay_apps = snap
        .counters
        .get("svc.cache.replay_apps")
        .copied()
        .unwrap_or(0);
    let replay_classes = snap
        .counters
        .get("svc.cache.replay_classes")
        .copied()
        .unwrap_or(0);
    assert_eq!(
        replay_apps, 1,
        "the edit must replay, not run cold: {snap:?}"
    );
    assert!(
        replay_classes >= 8,
        "the unchanged ballast prefix must be replayed, got {replay_classes}"
    );
    // And the first run was a plain miss, not a replay.
    assert_eq!(snap.counters.get("svc.cache.miss").copied(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end over the actual binary in `--stdio` mode: submit, poll,
/// fetch the report, compare against the same binary's one-shot
/// `--json` stdout, then shut down cleanly.
#[test]
fn stdio_binary_round_trip_matches_one_shot_json() {
    let bytes = sample_app("com.daemon.stdio");
    let app = temp_path("stdio.apk");
    std::fs::write(&app, &bytes).unwrap();

    let one_shot = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--json")
        .arg("--no-cache")
        .arg(&app)
        .output()
        .expect("one-shot runs");
    assert!(one_shot.status.success());

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("serve")
        .arg("--stdio")
        .arg("--quiet")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut exchange = |line: String| -> Value {
        stdin.write_all(line.as_bytes()).unwrap();
        stdin.write_all(b"\n").unwrap();
        stdin.flush().unwrap();
        let mut reply = String::new();
        stdout.read_line(&mut reply).unwrap();
        serde_json::from_str(&reply).expect("reply is JSON")
    };

    let v = exchange(format!(
        r#"{{"verb": "submit", "path": {:?}}}"#,
        app.to_str().unwrap()
    ));
    assert_eq!(v["ok"], true, "{v:?}");
    let id = v["id"].as_i64().unwrap();

    let mut state = String::new();
    for _ in 0..500 {
        let v = exchange(format!(r#"{{"verb": "status", "id": {id}}}"#));
        state = v["state"].as_str().unwrap().to_owned();
        if state == "done" || state == "failed" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(state, "done");

    let v = exchange(format!(r#"{{"verb": "report", "id": {id}}}"#));
    assert_eq!(
        v["report"].as_str().unwrap().as_bytes(),
        &one_shot.stdout[..],
        "stdio-served report must match the binary's one-shot --json stdout"
    );

    let v = exchange(r#"{"verb": "shutdown"}"#.to_owned());
    assert_eq!(v["ok"], true);
    drop(stdin);
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "clean shutdown exits 0");
    std::fs::remove_file(&app).ok();
}

/// Retiring a key (the watch loop's response to a deleted bundle)
/// drops its finished jobs, surfaces in the queue counters, and makes
/// a later `report` a clean not-found.
#[test]
fn retiring_a_key_drops_its_jobs_and_counts() {
    let daemon = default_daemon();
    let spec = profile::corpus(23).into_iter().next().expect("corpus app");
    let bytes = generate_with_bulk(&spec, 4).to_bytes();
    let (id, _) = daemon
        .submit_bytes("watched.apk".to_owned(), bytes.clone())
        .unwrap();
    daemon.drain_now();
    let v = parse(&request(
        &daemon,
        &format!(r#"{{"verb": "report", "id": {id}}}"#),
    ));
    assert_eq!(v["ok"], true);

    // Resubmitting the same key after churn attaches a delta to the
    // report reply; the first report carried null.
    assert_eq!(v["delta"], Value::Null, "first submission: no delta");
    let evolved = evolve(&spec, 0.10, 5);
    let (id2, _) = daemon
        .submit_bytes(
            "watched.apk".to_owned(),
            generate_with_bulk(&evolved.spec, 4).to_bytes(),
        )
        .unwrap();
    daemon.drain_now();
    let v = parse(&request(
        &daemon,
        &format!(r#"{{"verb": "report", "id": {id2}}}"#),
    ));
    assert_eq!(v["ok"], true);
    assert_eq!(v["delta"]["t"], "delta", "churned resubmit carries a delta");

    assert_eq!(daemon.retire_key("watched.apk"), 2, "both jobs dropped");
    for id in [id, id2] {
        let v = parse(&request(
            &daemon,
            &format!(r#"{{"verb": "report", "id": {id}}}"#),
        ));
        assert_eq!(error_code(&v), "not-found");
    }
    let st = parse(&request(&daemon, r#"{"verb": "status"}"#));
    assert_eq!(st["retired"].as_i64(), Some(1), "{st:?}");
    assert_eq!(
        daemon
            .metrics()
            .snapshot()
            .counters
            .get("svc.watch.retired")
            .copied(),
        Some(1)
    );

    // Retiring an unknown key is a no-op, not an error.
    assert_eq!(daemon.retire_key("never-seen.apk"), 0);
}
