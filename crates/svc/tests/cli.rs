//! Tests of the `nchecker` command-line binary.

use nck_appgen::spec::{AppSpec, Origin, RequestSpec};
use nck_netlibs::library::Library;

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("nck-cli-{name}-{}", std::process::id()))
}

#[test]
fn summary_mode_prints_one_line_per_app() {
    let spec = AppSpec::new(
        "com.test.cli",
        vec![RequestSpec::new(
            Library::BasicHttpClient,
            Origin::UserClick,
        )],
    );
    let path = temp_path("ok.apk");
    nck_appgen::generate(&spec).save(&path).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--summary")
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("com.test.cli"), "{stdout}");
    assert!(stdout.contains("defects"), "{stdout}");
}

#[test]
fn full_mode_prints_reports() {
    let spec = AppSpec::new(
        "com.test.cli2",
        vec![RequestSpec::new(Library::Volley, Origin::UserClick)],
    );
    let path = temp_path("full.apk");
    nck_appgen::generate(&spec).save(&path).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fix Suggestion"), "{stdout}");
}

#[test]
fn bad_file_fails() {
    let path = temp_path("bad.apk");
    std::fs::write(&path, b"not an apk").unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
}

#[test]
fn no_arguments_shows_usage() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .output()
        .expect("cli runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn json_mode_emits_valid_json() {
    let spec = AppSpec::new(
        "com.test.json",
        vec![RequestSpec::new(
            Library::BasicHttpClient,
            Origin::UserClick,
        )],
    );
    let path = temp_path("json.apk");
    nck_appgen::generate(&spec).save(&path).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--json")
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"kind\""), "{stdout}");
    assert!(stdout.contains("missed-connectivity-check"), "{stdout}");
    assert!(
        stdout.contains("\"package\": \"com.test.json\""),
        "{stdout}"
    );
}

#[test]
fn cache_dir_persists_entries_and_reports_hits() {
    let spec = AppSpec::new(
        "com.test.cached",
        vec![RequestSpec::new(Library::OkHttp, Origin::UserClick)],
    );
    let path = temp_path("cached.apk");
    let cache = temp_path("cache-dir");
    let _ = std::fs::remove_dir_all(&cache);
    nck_appgen::generate(&spec).save(&path).unwrap();

    let run = || {
        std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
            .arg("--summary")
            .arg("--cache-dir")
            .arg(&cache)
            .arg(&path)
            .output()
            .expect("cli runs")
    };
    let first = run();
    assert!(first.status.success());
    let entries = std::fs::read_dir(&cache).map(|d| d.count()).unwrap_or(0);
    assert!(entries > 0, "cache dir must gain an entry");
    assert!(
        String::from_utf8_lossy(&first.stdout).contains("cache: 0 hit(s), 1 miss(es)"),
        "{}",
        String::from_utf8_lossy(&first.stdout)
    );

    // A second process restores the report from disk.
    let second = run();
    assert!(second.status.success());
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(stdout.contains("cache: 1 hit(s), 0 miss(es)"), "{stdout}");

    std::fs::remove_file(&path).ok();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn no_cache_silences_the_cache_summary() {
    let spec = AppSpec::new(
        "com.test.nocache",
        vec![RequestSpec::new(Library::OkHttp, Origin::UserClick)],
    );
    let path = temp_path("nocache.apk");
    nck_appgen::generate(&spec).save(&path).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--summary")
        .arg("--no-cache")
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("cache:"), "{stdout}");
}

#[test]
fn jobs_flag_accepts_a_worker_count_and_rejects_zero() {
    let spec = AppSpec::new(
        "com.test.jobs",
        vec![RequestSpec::new(Library::Volley, Origin::UserClick)],
    );
    let path = temp_path("jobs.apk");
    nck_appgen::generate(&spec).save(&path).unwrap();

    let ok = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--summary")
        .arg("--jobs")
        .arg("2")
        .arg(&path)
        .output()
        .expect("cli runs");
    assert!(ok.status.success());

    let zero = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--jobs")
        .arg("0")
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert_eq!(zero.status.code(), Some(2), "--jobs 0 is a usage error");
}
