//! Tests of the `nchecker` command-line binary.

use nck_appgen::spec::{AppSpec, Origin, RequestSpec};
use nck_netlibs::library::Library;

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("nck-cli-{name}-{}", std::process::id()))
}

#[test]
fn summary_mode_prints_one_line_per_app() {
    let spec = AppSpec::new(
        "com.test.cli",
        vec![RequestSpec::new(
            Library::BasicHttpClient,
            Origin::UserClick,
        )],
    );
    let path = temp_path("ok.apk");
    nck_appgen::generate(&spec).save(&path).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--summary")
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("com.test.cli"), "{stdout}");
    assert!(stdout.contains("defects"), "{stdout}");
}

#[test]
fn full_mode_prints_reports() {
    let spec = AppSpec::new(
        "com.test.cli2",
        vec![RequestSpec::new(Library::Volley, Origin::UserClick)],
    );
    let path = temp_path("full.apk");
    nck_appgen::generate(&spec).save(&path).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Fix Suggestion"), "{stdout}");
}

#[test]
fn bad_file_fails() {
    let path = temp_path("bad.apk");
    std::fs::write(&path, b"not an apk").unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
}

#[test]
fn no_arguments_shows_usage() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .output()
        .expect("cli runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn json_mode_emits_valid_json() {
    let spec = AppSpec::new(
        "com.test.json",
        vec![RequestSpec::new(
            Library::BasicHttpClient,
            Origin::UserClick,
        )],
    );
    let path = temp_path("json.apk");
    nck_appgen::generate(&spec).save(&path).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--json")
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"kind\""), "{stdout}");
    assert!(stdout.contains("missed-connectivity-check"), "{stdout}");
    assert!(
        stdout.contains("\"package\": \"com.test.json\""),
        "{stdout}"
    );
}

#[test]
fn cache_dir_persists_entries_and_reports_hits() {
    let spec = AppSpec::new(
        "com.test.cached",
        vec![RequestSpec::new(Library::OkHttp, Origin::UserClick)],
    );
    let path = temp_path("cached.apk");
    let cache = temp_path("cache-dir");
    let _ = std::fs::remove_dir_all(&cache);
    nck_appgen::generate(&spec).save(&path).unwrap();

    let run = || {
        std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
            .arg("--summary")
            .arg("--cache-dir")
            .arg(&cache)
            .arg(&path)
            .output()
            .expect("cli runs")
    };
    let first = run();
    assert!(first.status.success());
    let entries = std::fs::read_dir(&cache).map(|d| d.count()).unwrap_or(0);
    assert!(entries > 0, "cache dir must gain an entry");
    assert!(
        String::from_utf8_lossy(&first.stdout).contains("cache: 0 hit(s), 1 miss(es)"),
        "{}",
        String::from_utf8_lossy(&first.stdout)
    );

    // A second process restores the report from disk.
    let second = run();
    assert!(second.status.success());
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(stdout.contains("cache: 1 hit(s), 0 miss(es)"), "{stdout}");

    std::fs::remove_file(&path).ok();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn no_cache_silences_the_cache_summary() {
    let spec = AppSpec::new(
        "com.test.nocache",
        vec![RequestSpec::new(Library::OkHttp, Origin::UserClick)],
    );
    let path = temp_path("nocache.apk");
    nck_appgen::generate(&spec).save(&path).unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--summary")
        .arg("--no-cache")
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("cache:"), "{stdout}");
}

fn make_apps(prefix: &str, n: usize) -> Vec<std::path::PathBuf> {
    (0..n)
        .map(|i| {
            let spec = AppSpec::new(
                &format!("com.test.{prefix}{i}"),
                vec![RequestSpec::new(Library::OkHttp, Origin::UserClick)],
            );
            let path = temp_path(&format!("{prefix}{i}.apk"));
            nck_appgen::generate(&spec).save(&path).unwrap();
            path
        })
        .collect()
}

#[test]
fn doctor_snapshot_is_byte_identical_across_runs_and_jobs() {
    let apps = make_apps("doctor", 4);
    let cache = temp_path("doctor-cache");
    let _ = std::fs::remove_dir_all(&cache);

    let run = |jobs: &str| {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
            .arg("--doctor")
            .arg("--cache-dir")
            .arg(&cache)
            .arg("--jobs")
            .arg(jobs)
            .args(&apps)
            .output()
            .expect("cli runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    // Warm the cache, then compare warm snapshots: the disk tier is
    // unchanged from here on.
    let _cold = run("2");
    let warm1 = run("1");
    let warm8 = run("8");
    let warm1b = run("1");
    assert_eq!(warm1, warm1b, "repeated runs must be byte-identical");
    assert_eq!(warm1, warm8, "--jobs must not change the snapshot");

    let v: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&warm1).unwrap()).expect("doctor emits JSON");
    assert_eq!(v["schema"], 1);
    assert_eq!(v["cache"]["hit"], 4, "warm run hits all apps");
    assert_eq!(v["cache"]["disk"]["entries"], 4);
    assert_eq!(v["last_run"]["apps"], 4);
    for key in ["build", "config", "funnel"] {
        assert!(v.get(key).is_some(), "missing {key}");
    }

    for p in &apps {
        std::fs::remove_file(p).ok();
    }
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn doctor_works_without_bundles() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--doctor")
        .output()
        .expect("cli runs");
    assert!(out.status.success());
    let v: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&out.stdout).unwrap()).expect("doctor emits JSON");
    assert_eq!(v["last_run"]["apps"], 0);
    assert_eq!(v["cache"]["disk"]["configured"], false);
}

#[test]
fn trace_out_writes_a_chrome_trace() {
    let apps = make_apps("traceout", 3);
    let trace_file = temp_path("trace.json");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--summary")
        .arg("--trace-out")
        .arg(&trace_file)
        .args(&apps)
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The stderr span tree stays opt-in (--trace): recording for the
    // exporter must not spam the terminal.
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("--- trace:"),
        "no stderr tree without --trace"
    );

    let text = std::fs::read_to_string(&trace_file).expect("trace file written");
    let v: serde_json::Value = serde_json::from_str(&text).expect("trace is JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    let spans: Vec<&serde_json::Value> = events.iter().filter(|e| e["ph"] == "X").collect();
    assert!(spans.len() >= 3, "one root span per app at least");
    assert!(
        events.iter().any(|e| e["ph"] == "M"),
        "lane metadata present"
    );
    // Monotonic ts within each lane.
    let mut last_ts: std::collections::BTreeMap<i64, f64> = Default::default();
    for s in &spans {
        let tid = s["tid"].as_i64().unwrap();
        let ts = s["ts"].as_f64().unwrap();
        assert!(
            ts >= last_ts.get(&tid).copied().unwrap_or(f64::MIN),
            "ts not monotonic in lane {tid}"
        );
        last_ts.insert(tid, ts);
    }
    // Every app label appears on some root span.
    for i in 0..3 {
        let pkg = format!("com.test.traceout{i}");
        assert!(
            spans.iter().any(|s| s["args"]["app"] == pkg.as_str()),
            "missing app {pkg}"
        );
    }

    for p in &apps {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_file(&trace_file).ok();
}

#[test]
fn log_json_writes_typed_records() {
    let apps = make_apps("logjson", 2);
    let log_file = temp_path("log.jsonl");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--summary")
        .arg("--quiet")
        .arg("--log-json")
        .arg(&log_file)
        .args(&apps)
        .output()
        .expect("cli runs");
    assert!(out.status.success());

    let text = std::fs::read_to_string(&log_file).expect("log file written");
    let mut types = std::collections::BTreeSet::new();
    let mut app_records = 0;
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("every line is JSON");
        let t = v["t"].as_str().expect("every record is typed").to_owned();
        if t == "app" {
            app_records += 1;
            assert!(v["wall_us"].as_i64().unwrap() > 0, "wall time recorded");
            assert!(v["phases"]["app"]["count"].as_i64().unwrap() >= 1);
        }
        if t == "run" {
            assert_eq!(v["apps"], 2);
            assert!(v["wall_us_p50"].as_i64().unwrap() > 0);
            assert!(v["wall_us_p99"].as_i64().unwrap() >= v["wall_us_p50"].as_i64().unwrap());
        }
        types.insert(t);
    }
    assert_eq!(app_records, 2, "one app record per bundle");
    for t in ["app", "cache", "funnel", "run"] {
        assert!(types.contains(t), "missing record type {t} in:\n{text}");
    }

    for p in &apps {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_file(&log_file).ok();
}

#[test]
fn jobs_flag_accepts_a_worker_count_and_rejects_zero() {
    let spec = AppSpec::new(
        "com.test.jobs",
        vec![RequestSpec::new(Library::Volley, Origin::UserClick)],
    );
    let path = temp_path("jobs.apk");
    nck_appgen::generate(&spec).save(&path).unwrap();

    let ok = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--summary")
        .arg("--jobs")
        .arg("2")
        .arg(&path)
        .output()
        .expect("cli runs");
    assert!(ok.status.success());

    let zero = std::process::Command::new(env!("CARGO_BIN_EXE_nchecker"))
        .arg("--jobs")
        .arg("0")
        .arg(&path)
        .output()
        .expect("cli runs");
    std::fs::remove_file(&path).ok();
    assert_eq!(zero.status.code(), Some(2), "--jobs 0 is a usage error");
}
