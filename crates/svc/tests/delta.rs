//! Report-delta correctness against appgen ground truth: version-churn
//! deltas must reconcile the two versions' defect multisets exactly,
//! survive a process boundary through the disk cache, and stay silent
//! on identical resubmission.

use nck_appgen::CorpusStream;
use nck_obs::Obs;
use nck_svc::{defect_id, AnalysisService, ServiceOptions};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nck-delta-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn multiset(ids: impl IntoIterator<Item = String>) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for id in ids {
        *out.entry(id).or_insert(0) += 1;
    }
    out
}

fn report_ids(report: &nchecker::AppReport) -> BTreeMap<String, usize> {
    multiset(report.defects.iter().map(defect_id))
}

/// Version-churn deltas over a streamed corpus: for every app, the
/// delta must satisfy `ids(v0) - fixed + added == ids(v1)` with the
/// right `unchanged` count, and the defect *kinds* of v0 must match
/// the generator's expected tool report.
#[test]
fn churn_deltas_reconcile_the_ground_truth_multisets() {
    let stream = CorpusStream::new(31, 24);
    let svc = AnalysisService::new(ServiceOptions::default(), Obs::disabled());

    let mut deltas = 0usize;
    for i in 0..stream.len() {
        let v0 = stream.spec_at(i);
        let v1 = stream.version_at(i, 1);
        let key = v0.package.clone();

        let out0 = svc.analyze_one(&key, &nck_appgen::generate(&v0).to_bytes());
        let r0 = out0.report.as_ref().expect("v0 analyzes");
        assert!(out0.delta.is_none(), "first submission has no delta");

        // Ground truth: the generator knows what the tool reports.
        let mut expected_kinds: Vec<String> = v0
            .expected_tool_report()
            .iter()
            .map(|k| nchecker::kind_id(*k).to_owned())
            .collect();
        expected_kinds.sort();
        let mut got_kinds: Vec<String> = r0
            .defects
            .iter()
            .map(|d| nchecker::kind_id(d.kind).to_owned())
            .collect();
        got_kinds.sort();
        assert_eq!(got_kinds, expected_kinds, "app {i} v0 kinds");

        let bytes0 = nck_appgen::generate(&v0).to_bytes();
        let bytes1 = nck_appgen::generate(&v1).to_bytes();
        let out1 = svc.analyze_one(&key, &bytes1);
        let r1 = out1.report.as_ref().expect("v1 analyzes");
        let delta = match out1.delta {
            Some(delta) => delta,
            None => {
                // Churn may leave an app untouched; only *identical*
                // bytes excuse a missing delta.
                assert_eq!(bytes0, bytes1, "app {i}: changed bytes need a delta");
                continue;
            }
        };
        deltas += 1;

        let ids0 = report_ids(r0);
        let ids1 = report_ids(r1);
        assert_eq!(
            delta.unchanged + delta.added.len(),
            ids1.values().sum::<usize>(),
            "app {i}: unchanged + added covers v1"
        );
        assert_eq!(
            delta.unchanged + delta.fixed.len(),
            ids0.values().sum::<usize>(),
            "app {i}: unchanged + fixed covers v0"
        );
        // ids(v0) - fixed + added == ids(v1), as multisets.
        let mut reconstructed = ids0.clone();
        for id in &delta.fixed {
            let n = reconstructed
                .get_mut(id)
                .unwrap_or_else(|| panic!("app {i}: fixed id {id} not in v0"));
            *n -= 1;
        }
        reconstructed.retain(|_, n| *n > 0);
        for id in &delta.added {
            *reconstructed.entry(id.clone()).or_insert(0) += 1;
        }
        assert_eq!(reconstructed, ids1, "app {i}: delta reconciles v0 -> v1");
    }
    assert!(deltas > 0);
}

/// The delta base survives a process boundary: a fresh service over the
/// same cache directory diffs the new version against the *stored*
/// report, and its delta matches the single-process one.
#[test]
fn deltas_survive_a_process_boundary_through_the_disk_cache() {
    let cache = temp_dir("xproc");
    let stream = CorpusStream::new(37, 8);
    let options = || ServiceOptions {
        cache_dir: Some(cache.clone()),
        ..ServiceOptions::default()
    };

    // "Process" 1: analyze v0, populating the disk tier. A second
    // single-process service computes the reference deltas in-memory.
    let first = AnalysisService::new(options(), Obs::disabled());
    let reference = AnalysisService::new(ServiceOptions::default(), Obs::disabled());
    for i in 0..stream.len() {
        let key = stream.spec_at(i).package;
        let bytes = nck_appgen::generate(&stream.spec_at(i)).to_bytes();
        assert!(first.analyze_one(&key, &bytes).report.is_ok());
        assert!(reference.analyze_one(&key, &bytes).report.is_ok());
    }
    drop(first);

    // "Process" 2: a fresh service, empty memory tier, same disk dir.
    let second = AnalysisService::new(options(), Obs::disabled());
    let mut cross_process_deltas = 0usize;
    for i in 0..stream.len() {
        let key = stream.spec_at(i).package;
        let bytes = nck_appgen::generate(&stream.version_at(i, 1)).to_bytes();
        let expected = reference.analyze_one(&key, &bytes).delta;
        let got = second.analyze_one(&key, &bytes).delta;
        match (got, expected) {
            (Some(got), Some(expected)) => {
                assert_eq!(got.added, expected.added, "app {i}");
                assert_eq!(got.fixed, expected.fixed, "app {i}");
                assert_eq!(got.unchanged, expected.unchanged, "app {i}");
                cross_process_deltas += 1;
            }
            (None, None) => {} // version 1 kept identical bytes
            (got, expected) => panic!("app {i}: {got:?} vs {expected:?}"),
        }
    }
    assert!(cross_process_deltas > 0, "churn must produce deltas");
}

/// Identical resubmission is a whole-report cache hit: no delta, and
/// the JSON wire form keeps its shape.
#[test]
fn identical_resubmission_produces_no_delta_and_json_keeps_its_shape() {
    let stream = CorpusStream::new(41, 2);
    let svc = AnalysisService::new(ServiceOptions::default(), Obs::disabled());
    let spec = stream.spec_at(0);
    let bytes = nck_appgen::generate(&spec).to_bytes();
    assert!(svc.analyze_one(&spec.package, &bytes).delta.is_none());
    assert!(
        svc.analyze_one(&spec.package, &bytes).delta.is_none(),
        "identical resubmit must not fabricate a delta"
    );

    // And a real churn delta serializes with the documented shape.
    let evolved = nck_appgen::generate(&stream.version_at(0, 1)).to_bytes();
    let delta = svc
        .analyze_one(&spec.package, &evolved)
        .delta
        .expect("churn delta");
    let v = delta.to_json();
    assert_eq!(v["t"], "delta");
    assert_eq!(v["key"], spec.package.as_str());
    for field in ["prev_fp", "new_fp"] {
        assert_eq!(v[field].as_str().expect("hex fp").len(), 16);
    }
    assert!(v["added"].as_array().is_some());
    assert!(v["fixed"].as_array().is_some());
    assert!(v["unchanged"].as_i64().is_some());
}
